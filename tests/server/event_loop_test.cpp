// The epoll engine (ServerEngine::kEventLoop) end to end: every opcode over
// real loopback TCP, request batching and coalescing, the session cap, the
// inflight/batch/wake metrics, shutdown semantics, chaos failpoints on the
// nonblocking socket paths, and the periodic metrics dump.
#include "server/event_loop.h"

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/temp_dir.h"
#include "core/cluster.h"
#include "net/connection.h"
#include "net/frame.h"
#include "net/messages.h"
#include "server/io_server.h"

namespace dpfs::server {
namespace {

bool WaitFor(const std::function<bool()>& pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Coalescing is pure math; pin its merge rules directly.

TEST(CoalesceTest, AdjacentReadsMerge) {
  const std::vector<net::ReadFragment> merged = CoalesceAdjacentReads(
      {{0, 64}, {64, 64}, {128, 32}, {512, 16}, {528, 16}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (net::ReadFragment{0, 160}));
  EXPECT_EQ(merged[1], (net::ReadFragment{512, 32}));
}

TEST(CoalesceTest, NonAdjacentAndOutOfOrderReadsUntouched) {
  const std::vector<net::ReadFragment> fragments = {
      {64, 32}, {0, 32}, {200, 8}};  // out of order / gaps: reply order
  EXPECT_EQ(CoalesceAdjacentReads(fragments), fragments);
  EXPECT_TRUE(CoalesceAdjacentReads({}).empty());
}

TEST(CoalesceTest, OverlappingReadsNeverMerge) {
  const std::vector<net::ReadFragment> fragments = {{0, 64}, {32, 64}};
  EXPECT_EQ(CoalesceAdjacentReads(fragments), fragments);
}

TEST(CoalesceTest, AdjacentWritesMergeBytes) {
  std::vector<net::WriteFragment> fragments;
  fragments.push_back({0, Bytes{1, 2}});
  fragments.push_back({2, Bytes{3, 4}});
  fragments.push_back({10, Bytes{9}});
  const std::vector<net::WriteFragment> merged =
      CoalesceAdjacentWrites(std::move(fragments));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].offset, 0u);
  EXPECT_EQ(merged[0].data, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(merged[1].offset, 10u);
  EXPECT_EQ(merged[1].data, (Bytes{9}));
}

TEST(CoalesceTest, OverlappingWritesKeepLastWriterWinsOrder) {
  // {0,"ab"} then {1,"cd"} overlap: merging would change the final bytes.
  std::vector<net::WriteFragment> fragments;
  fragments.push_back({0, Bytes{'a', 'b'}});
  fragments.push_back({1, Bytes{'c', 'd'}});
  const std::vector<net::WriteFragment> merged =
      CoalesceAdjacentWrites(std::move(fragments));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[1].offset, 1u);
}

// ---------------------------------------------------------------------------
// A live event-loop server on loopback.

class EventLoopServerTest : public ::testing::Test {
 protected:
  EventLoopServerTest() : dir_(TempDir::Create("dpfs-evloop").value()) {}

  void StartServer(std::size_t max_sessions = 0) {
    ServerOptions options;
    options.root_dir = dir_.path();
    options.engine = ServerEngine::kEventLoop;
    options.max_sessions = max_sessions;
    server_ = IoServer::Start(std::move(options)).value();
    ASSERT_EQ(server_->engine(), ServerEngine::kEventLoop);
  }

  void TearDown() override { failpoint::DisarmAll(); }

  net::ServerConnection Connect() {
    return net::ServerConnection::Connect(server_->endpoint()).value();
  }

  TempDir dir_;
  std::unique_ptr<IoServer> server_;
};

TEST_F(EventLoopServerTest, AllOpcodesRoundTrip) {
  StartServer();
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Ping().ok());

  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3, 4, 5, 6, 7, 8}});
  ASSERT_TRUE(conn.Write("/data", std::move(writes)).ok());
  EXPECT_EQ(conn.Read("/data", {{2, 4}}).value(), (Bytes{3, 4, 5, 6}));
  // Out-of-order fragments must concatenate in request order (coalescing
  // must not reorder them).
  EXPECT_EQ(conn.Read("/data", {{4, 2}, {0, 2}}).value(),
            (Bytes{5, 6, 1, 2}));

  const net::StatReply stat = conn.Stat("/data").value();
  EXPECT_TRUE(stat.exists);
  EXPECT_EQ(stat.size, 8u);
  EXPECT_TRUE(conn.Truncate("/data", 4).ok());
  EXPECT_TRUE(conn.Rename("/data", "/renamed").ok());
  const std::vector<net::SubfileInfo> listing = conn.List().value();
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].name, "/renamed");
  EXPECT_EQ(listing[0].size, 4u);
  EXPECT_TRUE(conn.Delete("/renamed").ok());

  const net::StatsReply stats = conn.Stats().value();
  EXPECT_GE(stats.requests, 8u);
  EXPECT_GE(stats.sessions_accepted, 1u);
  const std::string metrics_text = conn.Metrics().value();
  EXPECT_NE(metrics_text.find("io_server.epoll_wake"), std::string::npos);
}

TEST_F(EventLoopServerTest, ErrorRepliesKeepConnectionAlive) {
  StartServer();
  net::ServerConnection conn = Connect();
  EXPECT_FALSE(conn.Read("/../../etc/passwd", {{0, 4}}).ok());
  EXPECT_EQ(conn.Delete("/missing").code(), StatusCode::kNotFound);
  EXPECT_TRUE(conn.Ping().ok());
}

TEST_F(EventLoopServerTest, PipelinedRequestsBatchAndReplyInOrder) {
  StartServer();
  std::vector<net::WriteFragment> seed;
  seed.push_back({0, Bytes{10, 20, 30, 40}});
  {
    net::ServerConnection conn = Connect();
    ASSERT_TRUE(conn.Write("/p", std::move(seed)).ok());
  }

  const metrics::Histogram& batch =
      metrics::GetHistogram("io_server.batch_size");
  const std::uint64_t batches_before = batch.GetSnapshot().count;

  // Raw socket: queue several requests before reading any reply, so the
  // reactor drains >1 frame in one readable wake and services them as a
  // batch. Replies must come back in request order.
  net::TcpSocket raw =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  constexpr int kPipelined = 8;
  Bytes wire;
  for (int i = 0; i < kPipelined; ++i) {
    BinaryWriter body;
    net::ReadRequest request;
    request.subfile = "/p";
    request.fragments = {{static_cast<std::uint64_t>(i % 4), 1}};
    request.Encode(body);
    const Bytes frame = net::EncodeFrame(
        net::EncodeRequest(net::MessageType::kRead, body.buffer())).value();
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(raw.SendAll(wire).ok());
  for (int i = 0; i < kPipelined; ++i) {
    Bytes payload;
    ASSERT_TRUE(net::RecvFrame(raw, payload).ok());
    const net::DecodedReply reply = net::DecodeReply(payload).value();
    ASSERT_TRUE(reply.status.ok());
    const Bytes expected{static_cast<std::uint8_t>(10 * (i % 4) + 10)};
    EXPECT_EQ(Bytes(reply.body.begin(), reply.body.end()), expected);
  }
  EXPECT_GT(batch.GetSnapshot().count, batches_before);
}

TEST_F(EventLoopServerTest, ByteAtATimeDeliveryStillDecodes) {
  StartServer();
  net::TcpSocket raw =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  const Bytes frame = net::EncodeFrame(
      net::EncodeRequest(net::MessageType::kPing, {})).value();
  for (const std::uint8_t byte : frame) {
    ASSERT_TRUE(raw.SendAll({&byte, 1}).ok());
  }
  Bytes payload;
  ASSERT_TRUE(net::RecvFrame(raw, payload).ok());
  EXPECT_TRUE(net::DecodeReply(payload).value().status.ok());
}

TEST_F(EventLoopServerTest, AdjacentFragmentsCoalesceWithIdenticalBytes) {
  StartServer();
  net::ServerConnection conn = Connect();
  Bytes content(256);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::uint8_t>(i);
  }
  const metrics::Counter& coalesced =
      metrics::GetCounter("io_server.coalesced_fragments");
  const std::uint64_t before = coalesced.value();

  // Four adjacent write bricks -> one pwrite; bytes must land identically.
  std::vector<net::WriteFragment> writes;
  for (int i = 0; i < 4; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * 64;
    writes.push_back({off, Bytes(content.begin() + off,
                                 content.begin() + off + 64)});
  }
  ASSERT_TRUE(conn.Write("/c", std::move(writes)).ok());
  // Four adjacent read bricks -> one pread; concatenation unchanged.
  EXPECT_EQ(conn.Read("/c", {{0, 64}, {64, 64}, {128, 64}, {192, 64}})
                .value(),
            content);
  EXPECT_GE(coalesced.value(), before + 6);  // 3 merges each way
}

TEST_F(EventLoopServerTest, ConcurrentClients) {
  StartServer();
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      Result<net::ServerConnection> conn =
          net::ServerConnection::Connect(server_->endpoint());
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      net::ServerConnection connection = std::move(conn).value();
      const std::string subfile = "/client" + std::to_string(c);
      for (int op = 0; op < kOpsPerClient; ++op) {
        Bytes payload(256, static_cast<std::uint8_t>(c * 16 + op));
        std::vector<net::WriteFragment> writes;
        writes.push_back({static_cast<std::uint64_t>(op) * 256, payload});
        if (!connection.Write(subfile, std::move(writes)).ok()) {
          failures.fetch_add(1);
          return;
        }
        const Result<Bytes> read = connection.Read(
            subfile, {{static_cast<std::uint64_t>(op) * 256, 256}});
        if (!read.ok() || read.value() != payload) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->stats().sessions_accepted.load(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(server_->stats().errors.load(), 0u);
}

TEST_F(EventLoopServerTest, InflightGaugeTracksSessions) {
  StartServer();
  const metrics::Gauge& inflight =
      metrics::GetGauge("io_server.inflight_sessions");
  const std::int64_t baseline = inflight.value();
  {
    net::ServerConnection conn = Connect();
    ASSERT_TRUE(conn.Ping().ok());  // serving for sure once replied
    EXPECT_GE(inflight.value(), baseline + 1);
  }
  // Disconnect is noticed asynchronously by the loop.
  EXPECT_TRUE(WaitFor([&] { return inflight.value() <= baseline; }));
}

TEST_F(EventLoopServerTest, SessionCapRejectsBusyAndRecovers) {
  StartServer(/*max_sessions=*/1);
  std::optional<net::ServerConnection> first = Connect();
  ASSERT_TRUE(first->Ping().ok());  // occupies the single slot

  net::ServerConnection second = Connect();
  const Status busy = second.Ping();
  EXPECT_EQ(busy.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server_->stats().sessions_rejected_busy.load(), 1u);

  // Slot frees once the first session goes away; a new session serves.
  first.reset();
  EXPECT_TRUE(WaitFor([&] {
    net::ServerConnection retry =
        net::ServerConnection::Connect(server_->endpoint()).value();
    return retry.Ping().ok();
  }));
}

TEST_F(EventLoopServerTest, FailpointBusyStormRejectsEverySession) {
  StartServer();
  failpoint::Spec busy;
  busy.action = failpoint::Action::kBusy;
  failpoint::Arm("server.session", busy);
  net::ServerConnection conn = Connect();
  EXPECT_EQ(conn.Ping().code(), StatusCode::kResourceExhausted);
  failpoint::DisarmAll();
  net::ServerConnection after = Connect();
  EXPECT_TRUE(after.Ping().ok());
}

TEST_F(EventLoopServerTest, ShutdownOpcodeRepliesThenStopsAccepting) {
  StartServer();
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Shutdown().ok());  // the queued reply must still flush
  EXPECT_TRUE(WaitFor([&] {
    return !net::ServerConnection::Connect(server_->endpoint()).ok();
  }));
  server_->Stop();
}

TEST_F(EventLoopServerTest, StopIsIdempotentAndRefusesNewConnections) {
  StartServer();
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Ping().ok());
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(net::ServerConnection::Connect(server_->endpoint()).ok());
}

// ---------------------------------------------------------------------------
// Chaos on the nonblocking socket paths (docs/FAULT_INJECTION.md).

TEST_F(EventLoopServerTest, ShortReadsAreReassembled) {
  StartServer();
  // Server-side recv hands back at most 3 bytes per call; only the reactor
  // uses RecvSome, so client traffic is unaffected.
  failpoint::Spec short_io;
  short_io.action = failpoint::Action::kShortIo;
  short_io.arg = 3;
  failpoint::Arm("net.recv_some", short_io);

  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(100, 7)});
  ASSERT_TRUE(conn.Write("/short", std::move(writes)).ok());
  EXPECT_EQ(conn.Read("/short", {{0, 100}}).value(), Bytes(100, 7));
  EXPECT_EQ(server_->stats().errors.load(), 0u);
}

TEST_F(EventLoopServerTest, SpuriousWakeupsAreHarmless) {
  StartServer();
  failpoint::Spec spurious;
  spurious.action = failpoint::Action::kShortIo;
  spurious.arg = 0;  // report would-block without transferring anything
  spurious.count = 5;
  failpoint::Arm("net.recv_some", spurious);
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Ping().ok());
}

TEST_F(EventLoopServerTest, ShortWritesResumeMidFrame) {
  StartServer();
  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(4096, 9)});
  ASSERT_TRUE(conn.Write("/sw", std::move(writes)).ok());

  // Replies now dribble out 7 bytes per send; the write buffer must carry
  // the frame across calls without corruption.
  failpoint::Spec short_io;
  short_io.action = failpoint::Action::kShortIo;
  short_io.arg = 7;
  failpoint::Arm("net.send_some", short_io);
  EXPECT_EQ(conn.Read("/sw", {{0, 4096}}).value(), Bytes(4096, 9));
  EXPECT_EQ(server_->stats().errors.load(), 0u);
}

TEST_F(EventLoopServerTest, RecvDisconnectDropsSessionServerSurvives) {
  StartServer();
  net::ServerConnection conn = Connect();
  ASSERT_TRUE(conn.Ping().ok());

  failpoint::Spec disconnect;
  disconnect.action = failpoint::Action::kDisconnect;
  disconnect.count = 1;
  failpoint::Arm("net.recv_some", disconnect);
  EXPECT_FALSE(conn.Ping().ok());
  failpoint::DisarmAll();

  net::ServerConnection fresh = Connect();
  EXPECT_TRUE(fresh.Ping().ok());
}

TEST_F(EventLoopServerTest, BeforeReplyDisconnectCountsError) {
  StartServer();
  net::ServerConnection conn = Connect();
  ASSERT_TRUE(conn.Ping().ok());
  failpoint::Spec drop;
  drop.action = failpoint::Action::kDisconnect;
  drop.count = 1;
  failpoint::Arm("server.before_reply", drop);
  EXPECT_FALSE(conn.Ping().ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().errors.load() >= 1; }));
  failpoint::DisarmAll();
  net::ServerConnection fresh = Connect();
  EXPECT_TRUE(fresh.Ping().ok());
}

// ---------------------------------------------------------------------------
// Session-scaling acceptance: one event-loop server holds 4x the sessions a
// capped thread server allows, every one of them live.

TEST(EventLoopScalingTest, FourTimesTheThreadCapAllServed) {
  constexpr std::size_t kThreadCap = 16;
  constexpr std::size_t kEventSessions = 4 * kThreadCap;

  core::ClusterOptions thread_options;
  thread_options.num_servers = 1;
  thread_options.max_sessions = kThreadCap;
  std::unique_ptr<core::LocalCluster> thread_cluster =
      core::LocalCluster::Start(std::move(thread_options)).value();

  core::ClusterOptions event_options;
  event_options.num_servers = 1;
  event_options.engine = ServerEngine::kEventLoop;
  event_options.max_sessions = kEventSessions;
  std::unique_ptr<core::LocalCluster> event_cluster =
      core::LocalCluster::Start(std::move(event_options)).value();

  // The thread engine's cap bites within kThreadCap+1 held-open sessions.
  {
    std::vector<net::ServerConnection> held;
    bool rejected = false;
    for (std::size_t i = 0; i <= kThreadCap && !rejected; ++i) {
      net::ServerConnection conn =
          net::ServerConnection::Connect(
              thread_cluster->server(0).endpoint())
              .value();
      rejected = conn.Ping().code() == StatusCode::kResourceExhausted;
      if (!rejected) held.push_back(std::move(conn));
    }
    EXPECT_TRUE(rejected);
  }

  // The reactor serves 4x that cap concurrently: every session live at the
  // same time, every request answered, nothing rejected.
  std::vector<net::ServerConnection> held;
  held.reserve(kEventSessions);
  for (std::size_t i = 0; i < kEventSessions; ++i) {
    net::ServerConnection conn =
        net::ServerConnection::Connect(event_cluster->server(0).endpoint())
            .value();
    ASSERT_TRUE(conn.Ping().ok()) << "session " << i;
    held.push_back(std::move(conn));
  }
  const metrics::Gauge& inflight =
      metrics::GetGauge("io_server.inflight_sessions");
  EXPECT_GE(inflight.value(), static_cast<std::int64_t>(kEventSessions));
  // And they are all still serving, not just connected.
  for (std::size_t i = 0; i < kEventSessions; ++i) {
    ASSERT_TRUE(held[i].Ping().ok()) << "session " << i;
  }
  EXPECT_EQ(event_cluster->server(0).stats().sessions_rejected_busy.load(),
            0u);
}

// ---------------------------------------------------------------------------
// Periodic metrics dump (docs/OBSERVABILITY.md).

TEST(MetricsDumpTest, WritesSnapshotsWhileRunningAndOnStop) {
  const TempDir dir = TempDir::Create("dpfs-dump").value();
  const std::filesystem::path path = dir.path() / "snap.txt";
  ServerOptions options;
  options.root_dir = dir.path() / "root";
  options.engine = ServerEngine::kEventLoop;
  options.metrics_dump_interval = std::chrono::milliseconds(10);
  options.metrics_dump_path = path;
  std::unique_ptr<IoServer> server =
      IoServer::Start(std::move(options)).value();

  net::ServerConnection conn =
      net::ServerConnection::Connect(server->endpoint()).value();
  ASSERT_TRUE(conn.Ping().ok());
  ASSERT_TRUE(WaitFor([&] { return std::filesystem::exists(path); }));
  server->Stop();  // final snapshot lands before Stop returns

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  EXPECT_NE(text.find("counter io_server.requests.ping"), std::string::npos);
  EXPECT_NE(text.find("gauge io_server.inflight_sessions"),
            std::string::npos);
  EXPECT_NE(text.find("histogram io_server.batch_size"), std::string::npos);
  // Atomic publication: the tmp file never lingers.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(MetricsDumpTest, DefaultsToMetricsTxtUnderRoot) {
  const TempDir dir = TempDir::Create("dpfs-dump2").value();
  ServerOptions options;
  options.root_dir = dir.path();
  options.metrics_dump_interval = std::chrono::milliseconds(10);
  std::unique_ptr<IoServer> server =
      IoServer::Start(std::move(options)).value();
  server->Stop();
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "metrics.txt"));
}

}  // namespace
}  // namespace dpfs::server
