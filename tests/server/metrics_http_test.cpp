// The /metrics scrape endpoint (docs/OBSERVABILITY.md "Scraping"): a plain
// HTTP GET against the dedicated listener returns the registry's text
// exposition, anything else 404s, and both daemons (dpfsd's IoServer and
// dpfs-metad) wire it through their --metrics-port option.
#include "server/metrics_http.h"

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/temp_dir.h"
#include "metad/metad.h"
#include "metadb/sharded_database.h"
#include "net/socket.h"
#include "server/io_server.h"

namespace dpfs::server {
namespace {

/// One blocking HTTP exchange against 127.0.0.1:port; returns the raw
/// response (status line + headers + body).
std::string HttpGet(std::uint16_t port, const std::string& request_line) {
  net::TcpSocket socket = net::TcpSocket::Connect("127.0.0.1", port).value();
  const std::string request = request_line + "\r\nHost: test\r\n\r\n";
  EXPECT_TRUE(
      socket
          .SendAll(ByteSpan(
              reinterpret_cast<const unsigned char*>(request.data()),
              request.size()))
          .ok());
  std::string response;
  Bytes chunk(4096);
  for (;;) {
    const Result<net::TcpSocket::SomeIo> got =
        socket.RecvSome(MutableByteSpan(chunk));
    if (!got.ok() || got.value().closed || got.value().bytes == 0) break;
    response.append(reinterpret_cast<const char*>(chunk.data()),
                    got.value().bytes);
  }
  return response;
}

TEST(MetricsHttpServerTest, ServesRegistrySnapshot) {
  auto server = MetricsHttpServer::Start(0).value();
  ASSERT_NE(server->port(), 0);
  metrics::GetCounter("test.metrics_http.canary").Add(7);

  const std::string response = HttpGet(server->port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("counter test.metrics_http.canary 7"),
            std::string::npos);
  // The scrape itself is counted and visible on the next scrape.
  const std::string again = HttpGet(server->port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(again.find("counter metrics_http.requests"), std::string::npos);
}

TEST(MetricsHttpServerTest, UnknownRoutesAre404) {
  auto server = MetricsHttpServer::Start(0).value();
  EXPECT_NE(HttpGet(server->port(), "GET /other HTTP/1.0")
                .find("HTTP/1.0 404 Not Found"),
            std::string::npos);
  EXPECT_NE(HttpGet(server->port(), "POST /metrics HTTP/1.0")
                .find("HTTP/1.0 404 Not Found"),
            std::string::npos);
}

TEST(MetricsHttpServerTest, StopUnblocksTheAcceptLoop) {
  auto server = MetricsHttpServer::Start(0).value();
  const std::uint16_t port = server->port();
  server->Stop();
  EXPECT_FALSE(net::TcpSocket::Connect("127.0.0.1", port).ok());
  server->Stop();  // idempotent
}

TEST(MetricsHttpServerTest, IoServerWiresTheEndpointThroughItsOptions) {
  TempDir dir = TempDir::Create("dpfs-mhttp").value();
  ServerOptions options;
  options.root_dir = dir.path();
  options.metrics_port = kEphemeralMetricsPort;
  auto server = IoServer::Start(std::move(options)).value();
  ASSERT_NE(server->metrics_http_port(), 0);
  const std::string response =
      HttpGet(server->metrics_http_port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  server->Stop();
  EXPECT_FALSE(
      net::TcpSocket::Connect("127.0.0.1", server->metrics_http_port()).ok());
}

TEST(MetricsHttpServerTest, DisabledByDefault) {
  TempDir dir = TempDir::Create("dpfs-mhttp-off").value();
  ServerOptions options;
  options.root_dir = dir.path();
  auto server = IoServer::Start(std::move(options)).value();
  EXPECT_EQ(server->metrics_http_port(), 0);
}

TEST(MetricsHttpServerTest, MetadWiresTheEndpointThroughItsOptions) {
  TempDir dir = TempDir::Create("dpfs-mhttp-metad").value();
  std::shared_ptr<metadb::ShardedDatabase> db =
      metadb::ShardedDatabase::Open((dir.path() / "meta").string(), 1).value();
  metad::MetadOptions options;
  options.metrics_port = kEphemeralMetricsPort;
  auto service = metad::MetadService::Start(db, options).value();
  ASSERT_NE(service->metrics_http_port(), 0);
  const std::string response =
      HttpGet(service->metrics_http_port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  service->Stop();
}

}  // namespace
}  // namespace dpfs::server
