// A live IoServer on loopback, driven through ServerConnection.
#include "server/io_server.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/temp_dir.h"
#include "net/connection.h"

namespace dpfs::server {
namespace {

class IoServerTest : public ::testing::Test {
 protected:
  IoServerTest() : dir_(TempDir::Create("dpfs-server").value()) {
    ServerOptions options;
    options.root_dir = dir_.path();
    server_ = IoServer::Start(std::move(options)).value();
  }

  net::ServerConnection Connect() {
    return net::ServerConnection::Connect(server_->endpoint()).value();
  }

  TempDir dir_;
  std::unique_ptr<IoServer> server_;
};

TEST_F(IoServerTest, Ping) {
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Ping().ok());
}

TEST_F(IoServerTest, WriteThenRead) {
  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3, 4, 5, 6, 7, 8}});
  ASSERT_TRUE(conn.Write("/data", std::move(writes)).ok());
  const Bytes data = conn.Read("/data", {{2, 4}}).value();
  EXPECT_EQ(data, (Bytes{3, 4, 5, 6}));
}

TEST_F(IoServerTest, MultiFragmentReadConcatenates) {
  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{10, 11, 12, 13, 14, 15}});
  ASSERT_TRUE(conn.Write("/f", std::move(writes)).ok());
  const Bytes data = conn.Read("/f", {{4, 2}, {0, 2}}).value();
  EXPECT_EQ(data, (Bytes{14, 15, 10, 11}));
}

TEST_F(IoServerTest, StatAndDelete) {
  net::ServerConnection conn = Connect();
  EXPECT_FALSE(conn.Stat("/f").value().exists);
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  ASSERT_TRUE(conn.Write("/f", std::move(writes)).ok());
  const net::StatReply stat = conn.Stat("/f").value();
  EXPECT_TRUE(stat.exists);
  EXPECT_EQ(stat.size, 3u);
  EXPECT_TRUE(conn.Delete("/f").ok());
  EXPECT_FALSE(conn.Stat("/f").value().exists);
  EXPECT_EQ(conn.Delete("/f").code(), StatusCode::kNotFound);
}

TEST_F(IoServerTest, Truncate) {
  net::ServerConnection conn = Connect();
  ASSERT_TRUE(conn.Truncate("/f", 512).ok());
  EXPECT_EQ(conn.Stat("/f").value().size, 512u);
}

TEST_F(IoServerTest, PathEscapeReturnsErrorNotCrash) {
  net::ServerConnection conn = Connect();
  const Result<Bytes> data = conn.Read("/../../etc/passwd", {{0, 4}});
  EXPECT_FALSE(data.ok());
  // The connection survives the error reply.
  EXPECT_TRUE(conn.Ping().ok());
}

TEST_F(IoServerTest, ConcurrentClients) {
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      Result<net::ServerConnection> conn =
          net::ServerConnection::Connect(server_->endpoint());
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      net::ServerConnection connection = std::move(conn).value();
      const std::string subfile = "/client" + std::to_string(c);
      for (int op = 0; op < kOpsPerClient; ++op) {
        Bytes payload(256, static_cast<std::uint8_t>(c * 16 + op));
        std::vector<net::WriteFragment> writes;
        writes.push_back({static_cast<std::uint64_t>(op) * 256, payload});
        if (!connection.Write(subfile, std::move(writes)).ok()) {
          failures.fetch_add(1);
          return;
        }
        const Result<Bytes> read =
            connection.Read(subfile,
                            {{static_cast<std::uint64_t>(op) * 256, 256}});
        if (!read.ok() || read.value() != payload) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->stats().sessions_accepted.load(), 8u);
}

TEST_F(IoServerTest, StatsCountBytes) {
  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(1000, 1)});
  ASSERT_TRUE(conn.Write("/f", std::move(writes)).ok());
  ASSERT_TRUE(conn.Read("/f", {{0, 400}}).ok());
  EXPECT_EQ(server_->stats().bytes_written.load(), 1000u);
  EXPECT_EQ(server_->stats().bytes_read.load(), 400u);
  EXPECT_GE(server_->stats().requests.load(), 2u);
}

TEST_F(IoServerTest, StatsRpcReportsCounters) {
  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(500, 3)});
  ASSERT_TRUE(conn.Write("/s", std::move(writes)).ok());
  ASSERT_TRUE(conn.Read("/s", {{0, 200}}).ok());

  const net::StatsReply stats = conn.Stats().value();
  EXPECT_EQ(stats.bytes_written, 500u);
  EXPECT_EQ(stats.bytes_read, 200u);
  EXPECT_GE(stats.requests, 3u);  // write + read + stats
  EXPECT_GE(stats.sessions_accepted, 1u);
  EXPECT_EQ(stats.stored_bytes, 500u);
  // The fd cache served the read without a second open.
  EXPECT_GE(stats.fd_cache_hits, 1u);
  EXPECT_GE(stats.fd_cache_misses, 1u);
}

TEST_F(IoServerTest, StopIsIdempotentAndUnblocksClients) {
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Ping().ok());
  server_->Stop();
  server_->Stop();  // second call must be safe
  // New connections are refused after stop.
  EXPECT_FALSE(net::ServerConnection::Connect(server_->endpoint()).ok());
}

TEST_F(IoServerTest, ShutdownMessageStopsAccepting) {
  net::ServerConnection conn = Connect();
  EXPECT_TRUE(conn.Shutdown().ok());
  // Give the accept loop a moment to wind down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(net::ServerConnection::Connect(server_->endpoint()).ok());
}

TEST_F(IoServerTest, SubfilesLandUnderServerRoot) {
  net::ServerConnection conn = Connect();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1}});
  ASSERT_TRUE(conn.Write("/home/user/file.dpfs", std::move(writes)).ok());
  EXPECT_TRUE(
      std::filesystem::exists(dir_.path() / "home/user/file.dpfs"));
}

}  // namespace
}  // namespace dpfs::server
