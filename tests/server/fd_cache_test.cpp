#include "server/fd_cache.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <thread>

#include "common/temp_dir.h"

namespace dpfs::server {
namespace {

class FdCacheTest : public ::testing::Test {
 protected:
  FdCacheTest() : dir_(TempDir::Create("dpfs-fdcache").value()) {}

  std::string Path(const std::string& name) {
    return (dir_.path() / name).string();
  }

  TempDir dir_;
};

TEST_F(FdCacheTest, CreateOpensAndCaches) {
  FdCache cache(8);
  const SharedFdPtr fd1 = cache.Acquire(Path("a"), true).value();
  const SharedFdPtr fd2 = cache.Acquire(Path("a"), true).value();
  EXPECT_EQ(fd1->get(), fd2->get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(FdCacheTest, MissingFileWithoutCreateIsNotFound) {
  FdCache cache(8);
  const Result<SharedFdPtr> fd = cache.Acquire(Path("missing"), false);
  EXPECT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kNotFound);
}

TEST_F(FdCacheTest, CreateMakesParentDirectories) {
  FdCache cache(8);
  EXPECT_TRUE(cache.Acquire(Path("deep/nested/file"), true).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_.path() / "deep/nested/file"));
}

TEST_F(FdCacheTest, EvictsLeastRecentlyUsed) {
  FdCache cache(2);
  (void)cache.Acquire(Path("a"), true).value();
  (void)cache.Acquire(Path("b"), true).value();
  (void)cache.Acquire(Path("a"), true).value();  // touch a
  (void)cache.Acquire(Path("c"), true).value();  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  const std::uint64_t misses_before = cache.misses();
  (void)cache.Acquire(Path("a"), true).value();  // still cached
  EXPECT_EQ(cache.misses(), misses_before);
  (void)cache.Acquire(Path("b"), true).value();  // was evicted
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST_F(FdCacheTest, EvictedFdStaysUsableWhileReferenced) {
  FdCache cache(1);
  const SharedFdPtr held = cache.Acquire(Path("held"), true).value();
  (void)cache.Acquire(Path("other"), true).value();  // evicts "held"
  // The descriptor we still hold must remain valid.
  EXPECT_EQ(::pwrite(held->get(), "x", 1, 0), 1);
}

TEST_F(FdCacheTest, InvalidateDropsEntry) {
  FdCache cache(8);
  (void)cache.Acquire(Path("a"), true).value();
  cache.Invalidate(Path("a"));
  EXPECT_EQ(cache.size(), 0u);
  cache.Invalidate(Path("a"));  // idempotent
}

TEST_F(FdCacheTest, ClearDropsEverything) {
  FdCache cache(8);
  (void)cache.Acquire(Path("a"), true).value();
  (void)cache.Acquire(Path("b"), true).value();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(FdCacheTest, ConcurrentAcquireIsSafe) {
  FdCache cache(4);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name = "f" + std::to_string((t + i) % 6);
        const Result<SharedFdPtr> fd = cache.Acquire(Path(name), true);
        if (!fd.ok() || fd.value()->get() < 0) {
          failures.fetch_add(1);
          return;
        }
        char byte = static_cast<char>(i);
        if (::pwrite(fd.value()->get(), &byte, 1, t) != 1) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 4u);
}

TEST_F(FdCacheTest, ReadOnlyAcquireSeesExistingContent) {
  std::ofstream(Path("data")) << "hello";
  FdCache cache(8);
  const SharedFdPtr fd = cache.Acquire(Path("data"), false).value();
  char buf[5];
  ASSERT_EQ(::pread(fd->get(), buf, 5, 0), 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
}

}  // namespace
}  // namespace dpfs::server
