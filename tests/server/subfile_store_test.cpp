#include "server/subfile_store.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace dpfs::server {
namespace {

class SubfileStoreTest : public ::testing::Test {
 protected:
  SubfileStoreTest()
      : dir_(TempDir::Create("dpfs-store").value()), store_(dir_.path()) {}

  TempDir dir_;
  SubfileStore store_;
};

TEST_F(SubfileStoreTest, WriteThenReadBack) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3, 4}});
  ASSERT_TRUE(store_.WriteFragments("/f", writes, false).ok());
  const Bytes data = store_.ReadFragments("/f", {{0, 4}}).value();
  EXPECT_EQ(data, (Bytes{1, 2, 3, 4}));
}

TEST_F(SubfileStoreTest, WriteAtOffsetCreatesSparseHole) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({100, Bytes{7, 8}});
  ASSERT_TRUE(store_.WriteFragments("/sparse", writes, false).ok());
  // The hole reads as zeroes.
  const Bytes data = store_.ReadFragments("/sparse", {{98, 4}}).value();
  EXPECT_EQ(data, (Bytes{0, 0, 7, 8}));
}

TEST_F(SubfileStoreTest, ReadPastEofZeroFills) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{5}});
  ASSERT_TRUE(store_.WriteFragments("/short", writes, false).ok());
  const Bytes data = store_.ReadFragments("/short", {{0, 8}}).value();
  EXPECT_EQ(data, (Bytes{5, 0, 0, 0, 0, 0, 0, 0}));
}

TEST_F(SubfileStoreTest, ReadMissingSubfileIsAllZeroes) {
  const Bytes data = store_.ReadFragments("/nothing", {{0, 4}}).value();
  EXPECT_EQ(data, (Bytes{0, 0, 0, 0}));
}

TEST_F(SubfileStoreTest, MultipleFragmentsConcatenatedInOrder) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3, 4, 5, 6, 7, 8}});
  ASSERT_TRUE(store_.WriteFragments("/f", writes, false).ok());
  const Bytes data = store_.ReadFragments("/f", {{6, 2}, {0, 2}}).value();
  EXPECT_EQ(data, (Bytes{7, 8, 1, 2}));
}

TEST_F(SubfileStoreTest, NestedSubfilePathsCreateDirectories) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{42}});
  ASSERT_TRUE(
      store_.WriteFragments("/home/xhshen/dpfs.test", writes, false).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_.path() / "home/xhshen/dpfs.test"));
  EXPECT_EQ(store_.ReadFragments("/home/xhshen/dpfs.test", {{0, 1}}).value(),
            (Bytes{42}));
}

TEST_F(SubfileStoreTest, PathEscapeRejected) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1}});
  EXPECT_FALSE(store_.WriteFragments("/../escape", writes, false).ok());
  EXPECT_FALSE(store_.ReadFragments("/a/../../b", {{0, 1}}).ok());
  EXPECT_FALSE(store_.WriteFragments("/", writes, false).ok());
}

TEST_F(SubfileStoreTest, StatReportsExistenceAndSize) {
  EXPECT_FALSE(store_.Stat("/f").value().exists);
  std::vector<net::WriteFragment> writes;
  writes.push_back({10, Bytes{1, 2}});
  ASSERT_TRUE(store_.WriteFragments("/f", writes, false).ok());
  const net::StatReply stat = store_.Stat("/f").value();
  EXPECT_TRUE(stat.exists);
  EXPECT_EQ(stat.size, 12u);
}

TEST_F(SubfileStoreTest, DeleteRemovesSubfile) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1}});
  ASSERT_TRUE(store_.WriteFragments("/f", writes, false).ok());
  ASSERT_TRUE(store_.Delete("/f").ok());
  EXPECT_FALSE(store_.Stat("/f").value().exists);
  EXPECT_EQ(store_.Delete("/f").code(), StatusCode::kNotFound);
}

TEST_F(SubfileStoreTest, TruncateSetsSize) {
  ASSERT_TRUE(store_.Truncate("/f", 1000).ok());
  EXPECT_EQ(store_.Stat("/f").value().size, 1000u);
  ASSERT_TRUE(store_.Truncate("/f", 10).ok());
  EXPECT_EQ(store_.Stat("/f").value().size, 10u);
}

TEST_F(SubfileStoreTest, SyncWriteSucceeds) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  EXPECT_TRUE(store_.WriteFragments("/durable", writes, true).ok());
}

TEST_F(SubfileStoreTest, TotalBytesStored) {
  EXPECT_EQ(store_.TotalBytesStored().value(), 0u);
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(100, 1)});
  ASSERT_TRUE(store_.WriteFragments("/a", writes, false).ok());
  ASSERT_TRUE(store_.WriteFragments("/sub/b", writes, false).ok());
  EXPECT_EQ(store_.TotalBytesStored().value(), 200u);
}

TEST_F(SubfileStoreTest, RenameMovesContents) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  ASSERT_TRUE(store_.WriteFragments("/before", writes, false).ok());
  ASSERT_TRUE(store_.Rename("/before", "/dir/after").ok());
  EXPECT_FALSE(store_.Stat("/before").value().exists);
  EXPECT_EQ(store_.ReadFragments("/dir/after", {{0, 3}}).value(),
            (Bytes{1, 2, 3}));
}

TEST_F(SubfileStoreTest, RenameMissingSourceIsNotFound) {
  EXPECT_EQ(store_.Rename("/ghost", "/x").code(), StatusCode::kNotFound);
}

TEST_F(SubfileStoreTest, RenameRejectsEscapes) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1}});
  ASSERT_TRUE(store_.WriteFragments("/f", writes, false).ok());
  EXPECT_FALSE(store_.Rename("/f", "/../../outside").ok());
  EXPECT_FALSE(store_.Rename("/../outside", "/f2").ok());
}

TEST_F(SubfileStoreTest, RenameInvalidatesFdCache) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{9}});
  ASSERT_TRUE(store_.WriteFragments("/cached", writes, false).ok());
  // Prime the cache with a read, rename, then the old name reads as holes
  // (fresh zeroes) and the new name serves the data.
  ASSERT_TRUE(store_.ReadFragments("/cached", {{0, 1}}).ok());
  ASSERT_TRUE(store_.Rename("/cached", "/moved").ok());
  EXPECT_EQ(store_.ReadFragments("/cached", {{0, 1}}).value(), (Bytes{0}));
  EXPECT_EQ(store_.ReadFragments("/moved", {{0, 1}}).value(), (Bytes{9}));
}

TEST_F(SubfileStoreTest, OverlappingWritesLastWins) {
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 1, 1, 1}});
  writes.push_back({2, Bytes{9, 9}});
  ASSERT_TRUE(store_.WriteFragments("/f", writes, false).ok());
  EXPECT_EQ(store_.ReadFragments("/f", {{0, 4}}).value(),
            (Bytes{1, 1, 9, 9}));
}

}  // namespace
}  // namespace dpfs::server
