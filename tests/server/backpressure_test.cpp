// Server session caps and client retry: the paper's "server too busy to
// handle all the requests; the un-handled requests have to try again later".
#include <gtest/gtest.h>

#include <thread>

#include "common/temp_dir.h"
#include "core/cluster.h"
#include "net/connection.h"
#include "server/io_server.h"

namespace dpfs::server {
namespace {

TEST(BackpressureTest, OverloadedServerRepliesBusy) {
  const TempDir dir = TempDir::Create("dpfs-busy").value();
  ServerOptions options;
  options.root_dir = dir.path();
  options.max_sessions = 1;
  auto server = IoServer::Start(std::move(options)).value();

  // First session occupies the only slot.
  net::ServerConnection first =
      net::ServerConnection::Connect(server->endpoint()).value();
  ASSERT_TRUE(first.Ping().ok());

  // Second session gets one busy reply.
  net::ServerConnection second =
      net::ServerConnection::Connect(server->endpoint()).value();
  const Status busy = second.Ping();
  EXPECT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server->stats().sessions_rejected_busy.load(), 1u);

  // The occupying session keeps working throughout.
  EXPECT_TRUE(first.Ping().ok());
}

TEST(BackpressureTest, SlotFreesWhenSessionEnds) {
  const TempDir dir = TempDir::Create("dpfs-busy2").value();
  ServerOptions options;
  options.root_dir = dir.path();
  options.max_sessions = 1;
  auto server = IoServer::Start(std::move(options)).value();

  {
    net::ServerConnection conn =
        net::ServerConnection::Connect(server->endpoint()).value();
    ASSERT_TRUE(conn.Ping().ok());
  }  // session closes
  // The slot is released (give the session thread a moment to unwind).
  for (int attempt = 0; attempt < 50; ++attempt) {
    net::ServerConnection conn =
        net::ServerConnection::Connect(server->endpoint()).value();
    if (conn.Ping().ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "slot never freed";
}

TEST(BackpressureTest, ClientRetriesThroughBusyServer) {
  // A cluster whose single server accepts one session at a time; many
  // client threads hammer it. Retries must let every operation succeed.
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 1;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  // Recreate the server with a session cap is not supported in-place, so
  // instead simulate contention through the pool: the pool reuses sessions,
  // so force fresh connections by clearing it between bursts.
  auto fs = cluster->fs();
  client::CreateOptions create;
  create.total_bytes = 4096;
  create.brick_bytes = 512;
  client::FileHandle handle = fs->Create("/burst.bin", create).value();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      client::FileHandle h = fs->Open("/burst.bin").value();
      h.client_id = static_cast<std::uint32_t>(t);
      for (int op = 0; op < 10; ++op) {
        const Bytes data(512, static_cast<std::uint8_t>(t * 10 + op));
        if (!fs->WriteBytes(h, (t % 8) * 512, data).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(BackpressureTest, RetriesExhaustEventually) {
  const TempDir dir = TempDir::Create("dpfs-busy3").value();
  ServerOptions options;
  options.root_dir = dir.path();
  options.max_sessions = 1;
  auto server = IoServer::Start(std::move(options)).value();

  // Hold the only slot forever.
  net::ServerConnection holder =
      net::ServerConnection::Connect(server->endpoint()).value();
  ASSERT_TRUE(holder.Ping().ok());

  // A FileSystem pointed at this server gives up after its retries.
  auto db = metadb::Database::OpenInMemory();
  std::shared_ptr<metadb::Database> shared = std::move(db);
  auto fs = client::FileSystem::Connect(shared).value();
  client::ServerInfo info;
  info.name = "busy";
  info.endpoint = server->endpoint();
  info.capacity_bytes = 1 << 20;
  ASSERT_TRUE(fs->metadata().RegisterServer(info).ok());
  client::CreateOptions create;
  create.total_bytes = 64;
  client::FileHandle handle = fs->Create("/f", create).value();
  client::IoOptions io;
  io.max_retries = 2;
  const Status status = fs->WriteBytes(handle, 0, Bytes(64, 1), io);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dpfs::server
