// Wire-protocol robustness: a live server must survive malformed frames,
// garbage bytes, truncated messages, and abrupt disconnects — replying with
// errors where it can and dropping the session where it cannot, but never
// crashing or wedging.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/temp_dir.h"
#include "net/connection.h"
#include "net/frame.h"
#include "server/io_server.h"

namespace dpfs::server {
namespace {

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  ProtocolFuzzTest() : dir_(TempDir::Create("dpfs-fuzz").value()) {
    ServerOptions options;
    options.root_dir = dir_.path();
    server_ = IoServer::Start(std::move(options)).value();
  }

  /// The server is still healthy if a fresh connection can ping it.
  void ExpectServerAlive() {
    Result<net::ServerConnection> conn =
        net::ServerConnection::Connect(server_->endpoint());
    ASSERT_TRUE(conn.ok());
    EXPECT_TRUE(conn.value().Ping().ok());
  }

  TempDir dir_;
  std::unique_ptr<IoServer> server_;
};

TEST_F(ProtocolFuzzTest, GarbageBytesInsteadOfFrame) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  const Bytes garbage = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  ASSERT_TRUE(socket.SendAll(garbage).ok());
  socket.Close();
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, FrameWithAbsurdLength) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter writer;
  writer.WriteU32(0xFFFFFFFF);  // > kMaxFrameBytes
  writer.WriteU32(0);
  ASSERT_TRUE(socket.SendAll(writer.buffer()).ok());
  // The server drops the session; it must still accept new clients.
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, ValidFrameBadMessageTypeGetsErrorReply) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  const Bytes payload = {0x7F};  // not a MessageType
  ASSERT_TRUE(net::SendFrame(socket, payload).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  const net::DecodedReply decoded = net::DecodeReply(reply).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kProtocolError);
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, TruncatedRequestBodyGetsErrorReply) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  // kRead with a body that claims a subfile string longer than the frame.
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kRead));
  payload.WriteU32(1000);  // string length with no bytes behind it
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_FALSE(net::DecodeReply(reply).value().status.ok());
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, MidFrameDisconnect) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter writer;
  writer.WriteU32(1000);  // promise 1000 bytes
  writer.WriteU32(0);
  ASSERT_TRUE(socket.SendAll(writer.buffer()).ok());
  ASSERT_TRUE(socket.SendAll(Bytes(10, 0)).ok());  // deliver only 10
  socket.Close();
  ExpectServerAlive();
}

TEST_F(ProtocolFuzzTest, RandomFrameStorm) {
  SplitMix64 rng(12345);
  for (int trial = 0; trial < 40; ++trial) {
    Result<net::TcpSocket> socket =
        net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port);
    ASSERT_TRUE(socket.ok());
    // Random (but CRC-valid) frames with random payloads: the server must
    // answer every one with *something* and keep the session usable.
    const int frames = 1 + static_cast<int>(rng.NextBelow(4));
    bool session_alive = true;
    for (int f = 0; f < frames && session_alive; ++f) {
      Bytes payload(rng.NextBelow(64));
      for (std::uint8_t& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.NextU64());
      }
      // Byte 0 is the message type; 7 is kShutdown, which is a *valid*
      // (deliberately unauthenticated) request — steer around it so the
      // storm exercises malformed traffic, not the admin opcode.
      if (!payload.empty() && payload[0] == 7) payload[0] = 0x77;
      if (!net::SendFrame(socket.value(), payload).ok()) break;
      Bytes reply;
      session_alive = net::RecvFrame(socket.value(), reply).ok();
    }
  }
  ExpectServerAlive();
  EXPECT_GE(server_->stats().sessions_accepted.load(), 40u);
}

TEST_F(ProtocolFuzzTest, InterleavedGoodAndBadClients) {
  // A well-behaved client keeps working while another session misbehaves.
  net::ServerConnection good =
      net::ServerConnection::Connect(server_->endpoint()).value();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  ASSERT_TRUE(good.Write("/x", std::move(writes)).ok());

  net::TcpSocket bad =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  ASSERT_TRUE(bad.SendAll(Bytes(3, 0xFF)).ok());

  EXPECT_EQ(good.Read("/x", {{0, 3}}).value(), (Bytes{1, 2, 3}));
  bad.Close();
  EXPECT_TRUE(good.Ping().ok());
}

}  // namespace
}  // namespace dpfs::server
