// Wire-protocol robustness: a live server must survive malformed frames,
// garbage bytes, truncated messages, and abrupt disconnects — replying with
// errors where it can and dropping the session where it cannot, but never
// crashing or wedging. The whole suite runs against both engines (the
// thread-per-connection default and the epoll reactor).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "client/meta_wire.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/temp_dir.h"
#include "metad/metad.h"
#include "metadb/sharded_database.h"
#include "net/connection.h"
#include "net/frame.h"
#include "net/messages.h"
#include "server/io_server.h"

namespace dpfs::server {
namespace {

class ProtocolFuzzTest : public ::testing::TestWithParam<ServerEngine> {
 protected:
  ProtocolFuzzTest() : dir_(TempDir::Create("dpfs-fuzz").value()) {}

  void SetUp() override {
    ServerOptions options;
    options.root_dir = dir_.path();
    options.engine = GetParam();
    server_ = IoServer::Start(std::move(options)).value();
  }

  void TearDown() override { failpoint::DisarmAll(); }

  /// The server is still healthy if a fresh connection can ping it.
  void ExpectServerAlive() {
    Result<net::ServerConnection> conn =
        net::ServerConnection::Connect(server_->endpoint());
    ASSERT_TRUE(conn.ok());
    EXPECT_TRUE(conn.value().Ping().ok());
  }

  /// Session teardown is asynchronous; poll the counter instead of sleeping.
  void WaitForErrors(std::uint64_t at_least) {
    for (int i = 0; i < 200; ++i) {
      if (server_->stats().errors.load() >= at_least) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(server_->stats().errors.load(), at_least);
  }

  TempDir dir_;
  std::unique_ptr<IoServer> server_;
};

TEST_P(ProtocolFuzzTest, GarbageBytesInsteadOfFrame) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  const Bytes garbage = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  ASSERT_TRUE(socket.SendAll(garbage).ok());
  socket.Close();
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, FrameWithAbsurdLength) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter writer;
  writer.WriteU32(0xFFFFFFFF);  // > kMaxFrameBytes
  writer.WriteU32(0);
  ASSERT_TRUE(socket.SendAll(writer.buffer()).ok());
  // The server drops the session; it must still accept new clients.
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, ValidFrameBadMessageTypeGetsErrorReply) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  const Bytes payload = {0x7F};  // not a MessageType
  ASSERT_TRUE(net::SendFrame(socket, payload).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  const net::DecodedReply decoded = net::DecodeReply(reply).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kProtocolError);
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, TruncatedRequestBodyGetsErrorReply) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  // kRead with a body that claims a subfile string longer than the frame.
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kRead));
  payload.WriteU32(1000);  // string length with no bytes behind it
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_FALSE(net::DecodeReply(reply).value().status.ok());
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, MidFrameDisconnect) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter writer;
  writer.WriteU32(1000);  // promise 1000 bytes
  writer.WriteU32(0);
  ASSERT_TRUE(socket.SendAll(writer.buffer()).ok());
  ASSERT_TRUE(socket.SendAll(Bytes(10, 0)).ok());  // deliver only 10
  socket.Close();
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, RandomFrameStorm) {
  SplitMix64 rng(12345);
  for (int trial = 0; trial < 40; ++trial) {
    Result<net::TcpSocket> socket =
        net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port);
    ASSERT_TRUE(socket.ok());
    // Random (but CRC-valid) frames with random payloads: the server must
    // answer every one with *something* and keep the session usable.
    const int frames = 1 + static_cast<int>(rng.NextBelow(4));
    bool session_alive = true;
    for (int f = 0; f < frames && session_alive; ++f) {
      Bytes payload(rng.NextBelow(64));
      for (std::uint8_t& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.NextU64());
      }
      // Byte 0 is the message type; 7 is kShutdown, which is a *valid*
      // (deliberately unauthenticated) request — steer around it so the
      // storm exercises malformed traffic, not the admin opcode.
      if (!payload.empty() && payload[0] == 7) payload[0] = 0x77;
      if (!net::SendFrame(socket.value(), payload).ok()) break;
      Bytes reply;
      session_alive = net::RecvFrame(socket.value(), reply).ok();
    }
  }
  ExpectServerAlive();
  EXPECT_GE(server_->stats().sessions_accepted.load(), 40u);
}

TEST_P(ProtocolFuzzTest, FailpointSendCutsFrameAndServerCountsTheError) {
  // net.send_all kDisconnect severs the client's stream after `arg` bytes —
  // a deterministic mid-frame disconnect instead of the hand-rolled one
  // above. The server sees a truncated frame (kProtocolError, not a clean
  // boundary close), counts it, and exits the session cleanly.
  const std::uint64_t errors_before = server_->stats().errors.load();
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kDisconnect;
  spec.arg = 6;  // the 8-byte header is cut short: mid-message at recv
  spec.count = 1;
  failpoint::Arm("net.send_all", spec);

  BinaryWriter writer;
  writer.WriteU32(100);
  writer.WriteU32(0);
  const Status sent = socket.SendAll(writer.buffer());
  EXPECT_EQ(sent.code(), StatusCode::kUnavailable);  // reset at the client
  EXPECT_EQ(failpoint::HitCount("net.send_all"), 1u);

  WaitForErrors(errors_before + 1);
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, FailpointCutInsidePayloadAlsoCounts) {
  // Cut inside the payload (header fully delivered) — the server is waiting
  // on the body when the stream dies.
  const std::uint64_t errors_before = server_->stats().errors.load();
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();

  Bytes payload(64, 0xAB);
  BinaryWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(payload.size()));
  writer.WriteU32(Crc32c(payload));
  writer.WriteRaw(payload);

  failpoint::Spec spec;
  spec.action = failpoint::Action::kDisconnect;
  spec.arg = 8 + 10;  // full header + 10 payload bytes
  spec.count = 1;
  failpoint::Arm("net.send_all", spec);
  EXPECT_FALSE(socket.SendAll(writer.buffer()).ok());

  WaitForErrors(errors_before + 1);
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, OversizedLengthJustPastTheCapDropsSession) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter writer;
  writer.WriteU32(static_cast<std::uint32_t>(net::kMaxFrameBytes + 1));
  writer.WriteU32(0);
  ASSERT_TRUE(socket.SendAll(writer.buffer()).ok());
  // The length check fails before any payload is read; session dropped.
  Bytes reply;
  EXPECT_FALSE(net::RecvFrame(socket, reply).ok());
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, ServerDropsReplyMidSessionClientSeesUnavailable) {
  // server.before_reply kDisconnect: the request was handled but the reply
  // never leaves. The client observes a connection that died at a frame
  // boundary — kUnavailable, the retryable "fate unknown" outcome.
  const std::uint64_t errors_before = server_->stats().errors.load();
  net::ServerConnection conn =
      net::ServerConnection::Connect(server_->endpoint()).value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kDisconnect;
  spec.count = 1;
  failpoint::Arm("server.before_reply", spec);

  const Status ping = conn.Ping();
  EXPECT_EQ(ping.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server_->stats().errors.load(), errors_before + 1);
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, ServerErrorReplyFailpointKeepsSessionUsable) {
  // server.before_reply kReturnError swaps the real reply for an error
  // envelope; unlike the disconnect, the session survives.
  net::ServerConnection conn =
      net::ServerConnection::Connect(server_->endpoint()).value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kIoError;
  spec.message = "injected server fault";
  spec.count = 1;
  failpoint::Arm("server.before_reply", spec);

  const Status ping = conn.Ping();
  EXPECT_EQ(ping.code(), StatusCode::kIoError);
  EXPECT_EQ(ping.message(), "injected server fault");
  // Same connection, next request: back to normal.
  EXPECT_TRUE(conn.Ping().ok());
}

TEST_P(ProtocolFuzzTest, StopJoinsAllSessionsAfterFaultStorm) {
  // A storm of misbehaving sessions — truncated frames, dropped replies —
  // must leave no wedged session thread behind: Stop() joins everything
  // (the test would hang past its timeout on a leak).
  failpoint::Spec drop;
  drop.action = failpoint::Action::kDisconnect;
  drop.skip = 1;  // every session gets one good reply, then a drop
  failpoint::Arm("server.before_reply", drop);

  std::vector<net::ServerConnection> victims;
  for (int i = 0; i < 4; ++i) {
    victims.push_back(
        net::ServerConnection::Connect(server_->endpoint()).value());
    (void)victims.back().Ping();  // only the storm-wide first one succeeds
  }
  // Sessions that die mid-frame on the client side.
  std::vector<net::TcpSocket> truncated;
  for (int i = 0; i < 4; ++i) {
    truncated.push_back(
        net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port)
            .value());
    BinaryWriter writer;
    writer.WriteU32(1000);
    writer.WriteU32(0);
    ASSERT_TRUE(truncated.back().SendAll(writer.buffer()).ok());
  }
  // Sessions blocked mid-recv with nothing sent at all.
  std::vector<net::TcpSocket> idle;
  for (int i = 0; i < 4; ++i) {
    idle.push_back(
        net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port)
            .value());
  }
  // The accept loop drains the TCP backlog asynchronously; make sure every
  // session exists before asking Stop() to join them all.
  for (int i = 0; i < 200 && server_->stats().sessions_accepted.load() < 12u;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server_->stats().sessions_accepted.load(), 12u);
  server_->Stop();  // joins every session thread or the test times out
}

TEST_P(ProtocolFuzzTest, MetricsOpcodeReturnsSnapshotWithLiveCounters) {
  // kMetrics returns the process-wide text snapshot; after real traffic the
  // server-side per-opcode counters must appear with nonzero values.
  net::ServerConnection conn =
      net::ServerConnection::Connect(server_->endpoint()).value();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  ASSERT_TRUE(conn.Write("/m", std::move(writes)).ok());
  ASSERT_TRUE(conn.Read("/m", {{0, 3}}).ok());

  const Result<std::string> snapshot = conn.Metrics();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot.value().find("counter io_server.requests.write "),
            std::string::npos);
  EXPECT_NE(snapshot.value().find("counter io_server.requests.read "),
            std::string::npos);
  EXPECT_NE(snapshot.value().find("histogram io_server.service_time_us.read "),
            std::string::npos);
  EXPECT_NE(snapshot.value().find("subfile_store.bytes_written 3"),
            std::string::npos);
}

TEST_P(ProtocolFuzzTest, MetricsOpcodeIgnoresTrailingBodyBytes) {
  // The request body is empty by contract; extra bytes must not confuse the
  // handler or wedge the session.
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kMetrics));
  payload.WriteU32(0xABCD);  // junk the handler never reads
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_TRUE(net::DecodeReply(reply).value().status.ok());
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, InterleavedGoodAndBadClients) {
  // A well-behaved client keeps working while another session misbehaves.
  net::ServerConnection good =
      net::ServerConnection::Connect(server_->endpoint()).value();
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  ASSERT_TRUE(good.Write("/x", std::move(writes)).ok());

  net::TcpSocket bad =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  ASSERT_TRUE(bad.SendAll(Bytes(3, 0xFF)).ok());

  EXPECT_EQ(good.Read("/x", {{0, 3}}).value(), (Bytes{1, 2, 3}));
  bad.Close();
  EXPECT_TRUE(good.Ping().ok());
}

TEST_P(ProtocolFuzzTest, ByteAtATimeDelivery) {
  // TCP may deliver a frame in arbitrarily small pieces; one byte per
  // segment is the worst case. Both engines must reassemble it.
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  const Bytes frame =
      net::EncodeFrame(net::EncodeRequest(net::MessageType::kPing, {}))
          .value();
  for (const std::uint8_t byte : frame) {
    ASSERT_TRUE(socket.SendAll({&byte, 1}).ok());
  }
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_TRUE(net::DecodeReply(reply).value().status.ok());
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, TwoFramesSplitAtEveryBoundary) {
  // Two back-to-back ping frames, split into two sends at every possible
  // byte position — covering splits inside the header, inside the payload,
  // and exactly on the frame boundary. Each split must produce exactly two
  // in-order replies.
  const Bytes one =
      net::EncodeFrame(net::EncodeRequest(net::MessageType::kPing, {}))
          .value();
  Bytes wire = one;
  wire.insert(wire.end(), one.begin(), one.end());

  for (std::size_t split = 0; split <= wire.size(); ++split) {
    net::TcpSocket socket =
        net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port)
            .value();
    if (split > 0) {
      ASSERT_TRUE(socket.SendAll(ByteSpan(wire).first(split)).ok());
    }
    if (split < wire.size()) {
      // Give the server a chance to consume the prefix as its own segment.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ASSERT_TRUE(socket.SendAll(ByteSpan(wire).subspan(split)).ok());
    }
    for (int i = 0; i < 2; ++i) {
      Bytes reply;
      ASSERT_TRUE(net::RecvFrame(socket, reply).ok())
          << "split=" << split << " reply " << i;
      EXPECT_TRUE(net::DecodeReply(reply).value().status.ok());
    }
  }
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, MetadataOpcodeAimedAtIoServerGetsErrorReply) {
  // A client that dials the wrong port must get a protocol error, not a
  // crash or an OOB metric-array index: the kMeta* range is valid at the
  // envelope layer but refused by the I/O server's handler.
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  client::meta_wire::PathRequest request;
  request.path = "/lost.bin";
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kMetaLookupFile));
  request.Encode(payload);
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  const net::DecodedReply decoded = net::DecodeReply(reply).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kProtocolError);
  EXPECT_NE(decoded.status.message().find("metadata opcode"),
            std::string::npos);
  ExpectServerAlive();
}

// --- list I/O opcodes (docs/WIRE_PROTOCOL.md "List I/O") -------------------

TEST_P(ProtocolFuzzTest, ListRoundTripOnBothEngines) {
  // Happy path first: a scattered list write then a list read of the same
  // extents must hand back exactly the batched payload.
  net::ServerConnection conn =
      net::ServerConnection::Connect(server_->endpoint()).value();
  const std::vector<net::ReadFragment> extents = {{0, 4}, {64, 4}, {1024, 8}};
  Bytes payload = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  ASSERT_TRUE(conn.ListWrite("/lst", extents, payload).ok());
  EXPECT_EQ(conn.ListRead("/lst", extents).value(), payload);
  // The non-list read path sees the same bytes at the scattered offsets.
  EXPECT_EQ(conn.Read("/lst", {{64, 4}}).value(), (Bytes{5, 6, 7, 8}));
}

TEST_P(ProtocolFuzzTest, ListReadTruncatedExtentListGetsErrorReply) {
  // A count that promises more extents than the body carries must be
  // rejected by the length guard, never allocated for.
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kListRead));
  payload.WriteString("/lst");
  payload.WriteU32(0xFFFFFFFFu);  // claims 4 billion extents
  payload.WriteU64(0);
  payload.WriteU64(8);  // ...but carries one
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_EQ(net::DecodeReply(reply).value().status.code(),
            StatusCode::kProtocolError);
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, ListReadOverlappingExtentsRejected) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kListRead));
  payload.WriteString("/lst");
  payload.WriteU32(2);
  payload.WriteU64(0);
  payload.WriteU64(16);
  payload.WriteU64(8);  // starts inside the previous extent
  payload.WriteU64(16);
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  const net::DecodedReply decoded = net::DecodeReply(reply).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kProtocolError);
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, ListWritePayloadMismatchRejectedAndNothingWritten) {
  // The payload must equal the extent sum; a short payload is refused at
  // decode, before any byte reaches the store.
  net::ServerConnection conn =
      net::ServerConnection::Connect(server_->endpoint()).value();
  std::vector<net::WriteFragment> seed;
  seed.push_back({0, Bytes(16, 0xAA)});
  ASSERT_TRUE(conn.Write("/lst", std::move(seed)).ok());

  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port).value();
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kListWrite));
  payload.WriteString("/lst");
  payload.WriteU8(0);  // sync = false
  payload.WriteU32(1);
  payload.WriteU64(0);
  payload.WriteU64(8);            // extent wants 8 bytes
  payload.WriteBytes(Bytes(3, 1));  // payload carries 3
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_EQ(net::DecodeReply(reply).value().status.code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(conn.Read("/lst", {{0, 16}}).value(), Bytes(16, 0xAA));
  ExpectServerAlive();
}

TEST_P(ProtocolFuzzTest, ListOpcodeFrameStorm) {
  // Random bodies behind the two list opcodes specifically: every frame
  // must draw an error reply (or a clean drop), never a crash.
  SplitMix64 rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    Result<net::TcpSocket> socket =
        net::TcpSocket::Connect("127.0.0.1", server_->endpoint().port);
    ASSERT_TRUE(socket.ok());
    Bytes payload(1 + rng.NextBelow(48));
    for (std::uint8_t& byte : payload) {
      byte = static_cast<std::uint8_t>(rng.NextU64());
    }
    payload[0] = static_cast<std::uint8_t>(
        trial % 2 == 0 ? net::MessageType::kListRead
                       : net::MessageType::kListWrite);
    if (!net::SendFrame(socket.value(), payload).ok()) continue;
    Bytes reply;
    (void)net::RecvFrame(socket.value(), reply);
  }
  ExpectServerAlive();
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ProtocolFuzzTest,
    ::testing::Values(ServerEngine::kThreadPerConnection,
                      ServerEngine::kEventLoop),
    [](const ::testing::TestParamInfo<ServerEngine>& param_info) {
      return param_info.param == ServerEngine::kEventLoop
                 ? "EventLoop"
                 : "ThreadPerConnection";
    });

// --- the metadata server under the same storm ------------------------------
//
// dpfs-metad shares the frame/envelope code with the I/O servers but has
// its own session loops and its own dispatch; the robustness contract is
// identical, so it faces the same suite shape on both engines. ("ProtocolFuzz"
// in the name keeps it inside the asan-faults/tsan-faults preset globs.)
class MetadProtocolFuzzTest : public ::testing::TestWithParam<ServerEngine> {
 protected:
  void SetUp() override {
    std::unique_ptr<metadb::ShardedDatabase> db =
        metadb::ShardedDatabase::OpenInMemory(2).value();
    metad::MetadOptions options;
    options.engine = GetParam();
    service_ =
        metad::MetadService::Start(std::move(db), std::move(options)).value();
  }

  void TearDown() override { failpoint::DisarmAll(); }

  void ExpectServiceAlive() {
    Result<net::ServerConnection> conn =
        net::ServerConnection::Connect(service_->endpoint());
    ASSERT_TRUE(conn.ok());
    EXPECT_TRUE(conn.value().Ping().ok());
  }

  std::unique_ptr<metad::MetadService> service_;
};

TEST_P(MetadProtocolFuzzTest, GarbageBytesInsteadOfFrame) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  const Bytes garbage = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  ASSERT_TRUE(socket.SendAll(garbage).ok());
  socket.Close();
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, TypeBytePastTheRangeGetsErrorReply) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  for (const std::uint8_t bad :
       {static_cast<std::uint8_t>(net::kMaxMessageType + 1),
        static_cast<std::uint8_t>(0x7F), static_cast<std::uint8_t>(0)}) {
    const Bytes payload = {bad};
    ASSERT_TRUE(net::SendFrame(socket, payload).ok());
    Bytes reply;
    ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
    EXPECT_EQ(net::DecodeReply(reply).value().status.code(),
              StatusCode::kProtocolError)
        << static_cast<int>(bad);
  }
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, TruncatedMetadataBodyGetsErrorReply) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  // kMetaLookupFile whose path string claims more bytes than the frame has.
  BinaryWriter payload;
  payload.WriteU8(
      static_cast<std::uint8_t>(net::MessageType::kMetaLookupFile));
  payload.WriteU32(1000);  // string length with no bytes behind it
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  EXPECT_FALSE(net::DecodeReply(reply).value().status.ok());
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, IoOpcodeAimedAtMetadGetsErrorReply) {
  // The mirror image of the I/O-server test above: kRead is in range at
  // the envelope layer but this service does not serve it.
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  BinaryWriter payload;
  payload.WriteU8(static_cast<std::uint8_t>(net::MessageType::kRead));
  payload.WriteString("/subfile");
  ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
  Bytes reply;
  ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
  const net::DecodedReply decoded = net::DecodeReply(reply).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kProtocolError);
  EXPECT_NE(decoded.status.message().find("I/O opcode"), std::string::npos);
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, ListOpcodeAimedAtMetadGetsErrorReply) {
  // The list I/O opcodes are in range at the envelope layer but metad does
  // not serve them: same "I/O opcode" refusal as kRead, no metad changes.
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  for (const net::MessageType type :
       {net::MessageType::kListRead, net::MessageType::kListWrite}) {
    BinaryWriter payload;
    payload.WriteU8(static_cast<std::uint8_t>(type));
    payload.WriteString("/subfile");
    ASSERT_TRUE(net::SendFrame(socket, payload.buffer()).ok());
    Bytes reply;
    ASSERT_TRUE(net::RecvFrame(socket, reply).ok());
    const net::DecodedReply decoded = net::DecodeReply(reply).value();
    EXPECT_EQ(decoded.status.code(), StatusCode::kProtocolError);
    EXPECT_NE(decoded.status.message().find("I/O opcode"), std::string::npos)
        << net::MessageTypeName(type);
  }
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, MidFrameDisconnect) {
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  BinaryWriter writer;
  writer.WriteU32(1000);  // promise 1000 bytes
  writer.WriteU32(0);
  ASSERT_TRUE(socket.SendAll(writer.buffer()).ok());
  ASSERT_TRUE(socket.SendAll(Bytes(10, 0)).ok());  // deliver only 10
  socket.Close();
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, TwoFramesSplitInsideTheHeader) {
  // Worst-case reassembly across the shared frame reader: a ping split in
  // the middle of its length header, then a second whole ping.
  const Bytes one =
      net::EncodeFrame(net::EncodeRequest(net::MessageType::kPing, {}))
          .value();
  Bytes wire = one;
  wire.insert(wire.end(), one.begin(), one.end());
  net::TcpSocket socket =
      net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port).value();
  ASSERT_TRUE(socket.SendAll(ByteSpan(wire).first(2)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(socket.SendAll(ByteSpan(wire).subspan(2)).ok());
  for (int i = 0; i < 2; ++i) {
    Bytes reply;
    ASSERT_TRUE(net::RecvFrame(socket, reply).ok()) << "reply " << i;
    EXPECT_TRUE(net::DecodeReply(reply).value().status.ok());
  }
  ExpectServiceAlive();
}

TEST_P(MetadProtocolFuzzTest, RandomFrameStorm) {
  SplitMix64 rng(54321);
  for (int trial = 0; trial < 40; ++trial) {
    Result<net::TcpSocket> socket =
        net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port);
    ASSERT_TRUE(socket.ok());
    const int frames = 1 + static_cast<int>(rng.NextBelow(4));
    bool session_alive = true;
    for (int f = 0; f < frames && session_alive; ++f) {
      Bytes payload(rng.NextBelow(64));
      for (std::uint8_t& byte : payload) {
        byte = static_cast<std::uint8_t>(rng.NextU64());
      }
      // Steer around kShutdown (7), the valid admin opcode, like the
      // I/O-server storm does.
      if (!payload.empty() && payload[0] == 7) payload[0] = 0x77;
      if (!net::SendFrame(socket.value(), payload).ok()) break;
      Bytes reply;
      session_alive = net::RecvFrame(socket.value(), reply).ok();
    }
  }
  ExpectServiceAlive();
  EXPECT_GE(service_->stats().sessions_accepted.load(), 40u);
}

TEST_P(MetadProtocolFuzzTest, StopJoinsSessionsWithClientsMidRecv) {
  // Idle sessions blocked in RecvFrame must not wedge Stop().
  std::vector<net::TcpSocket> idle;
  for (int i = 0; i < 4; ++i) {
    idle.push_back(
        net::TcpSocket::Connect("127.0.0.1", service_->endpoint().port)
            .value());
  }
  for (int i = 0; i < 200 && service_->stats().sessions_accepted.load() < 4u;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(service_->stats().sessions_accepted.load(), 4u);
  service_->Stop();  // joins every session thread or the test times out
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MetadProtocolFuzzTest,
    ::testing::Values(ServerEngine::kThreadPerConnection,
                      ServerEngine::kEventLoop),
    [](const ::testing::TestParamInfo<ServerEngine>& param_info) {
      return param_info.param == ServerEngine::kEventLoop
                 ? "EventLoop"
                 : "ThreadPerConnection";
    });

}  // namespace
}  // namespace dpfs::server
