// Pins the replication extension's pure-math half (layout/replication.h):
// rank 0 is byte-identical to the unreplicated placement, replica ranks
// respect failure domains and the shared cost accumulator, and write-plan
// expansion / read remapping preserve exactly the bytes of the original
// plan at every rank.
#include "layout/replication.h"

#include <gtest/gtest.h>

#include <set>

#include "layout/brick_map.h"
#include "layout/plan.h"

namespace dpfs::layout {
namespace {

ReplicationSpec Spec(std::uint32_t factor,
                     std::vector<std::uint32_t> domains = {}) {
  ReplicationSpec spec;
  spec.factor = factor;
  spec.domains = std::move(domains);
  return spec;
}

TEST(ReplicatedDistributionTest, FactorOneRankZeroIsByteIdentical) {
  // The R=1 pin: one rank, and its bricklists encode to exactly what
  // BrickDistribution::Create produces — the metadata rows, and therefore
  // the whole system, are unchanged when replication is off.
  const std::vector<std::uint32_t> perf = {1, 3, 1, 2};
  const BrickDistribution plain =
      BrickDistribution::Create(PlacementPolicy::kGreedy, 32, perf).value();
  const ReplicatedDistribution replicated =
      ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 32, perf,
                                     Spec(1))
          .value();
  ASSERT_EQ(replicated.factor(), 1u);
  for (ServerId s = 0; s < plain.num_servers(); ++s) {
    EXPECT_EQ(BrickDistribution::EncodeBrickList(replicated.primary().bricks_on(s)),
              BrickDistribution::EncodeBrickList(plain.bricks_on(s)));
  }
  for (BrickId b = 0; b < 32; ++b) {
    EXPECT_EQ(replicated.primary().slot_for(b), plain.slot_for(b));
  }
}

TEST(ReplicatedDistributionTest, PrimaryRankUnchangedByReplication) {
  // Adding replica ranks must not move the primary: rank 0 of an R=3
  // distribution equals the R=1 placement brick for brick.
  const std::vector<std::uint32_t> perf = {1, 2, 1, 2, 1, 1};
  const BrickDistribution plain =
      BrickDistribution::Create(PlacementPolicy::kGreedy, 24, perf).value();
  const ReplicatedDistribution replicated =
      ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 24, perf,
                                     Spec(3))
          .value();
  ASSERT_EQ(replicated.factor(), 3u);
  for (BrickId b = 0; b < 24; ++b) {
    EXPECT_EQ(replicated.primary().server_for(b), plain.server_for(b));
  }
}

TEST(ReplicatedDistributionTest, ReplicasNeverShareAServer) {
  // Default domains: every server its own domain, so a brick's R copies
  // land on R distinct servers.
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kGreedy}) {
    const ReplicatedDistribution dist =
        ReplicatedDistribution::Create(policy, 40, {1, 1, 2, 1, 2}, Spec(3))
            .value();
    for (BrickId b = 0; b < 40; ++b) {
      std::set<ServerId> servers;
      for (std::uint32_t r = 0; r < dist.factor(); ++r) {
        servers.insert(dist.rank(r).server_for(b));
      }
      EXPECT_EQ(servers.size(), 3u) << "brick " << b;
    }
  }
}

TEST(ReplicatedDistributionTest, ReplicasNeverShareAFailureDomain) {
  // 6 servers in 3 racks: each brick's two copies must be in two racks.
  const std::vector<std::uint32_t> racks = {0, 0, 1, 1, 2, 2};
  const ReplicatedDistribution dist =
      ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 36,
                                     {1, 1, 1, 1, 1, 1}, Spec(2, racks))
          .value();
  for (BrickId b = 0; b < 36; ++b) {
    std::set<std::uint32_t> domains;
    for (std::uint32_t r = 0; r < 2; ++r) {
      domains.insert(racks[dist.rank(r).server_for(b)]);
    }
    EXPECT_EQ(domains.size(), 2u) << "brick " << b;
  }
}

TEST(ReplicatedDistributionTest, FactorBeyondDomainsRejected) {
  // 4 servers in 2 racks cannot hold 3 rack-disjoint copies.
  const Result<ReplicatedDistribution> dist = ReplicatedDistribution::Create(
      PlacementPolicy::kGreedy, 8, {1, 1, 1, 1}, Spec(3, {0, 0, 1, 1}));
  EXPECT_EQ(dist.status().code(), StatusCode::kInvalidArgument);
  // Likewise factor > server count with default domains.
  EXPECT_EQ(ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 8,
                                           {1, 1, 1}, Spec(4))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ReplicatedDistributionTest, MisSizedDomainVectorRejected) {
  EXPECT_EQ(ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 8,
                                           {1, 1, 1, 1}, Spec(2, {0, 1}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ReplicatedDistributionTest, SharedAccumulatorSpreadsReplicaLoad) {
  // Homogeneous cluster, R=2: the accumulator is shared across ranks, so
  // total copies (primary + replica) stay balanced — every server ends up
  // with 2*bricks/servers copies, not some servers doubled and some empty.
  const ReplicatedDistribution dist =
      ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 32,
                                     {1, 1, 1, 1}, Spec(2))
          .value();
  std::vector<std::size_t> copies(4, 0);
  for (std::uint32_t r = 0; r < 2; ++r) {
    for (ServerId s = 0; s < 4; ++s) {
      copies[s] += dist.rank(r).bricks_on(s).size();
    }
  }
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(copies[s], 16u) << "server " << s;
  }
}

TEST(ReplicatedDistributionTest, CapacityAwareBudgetsCoverAllCopies) {
  // Budgets count copies, not just primaries: 16 bricks * 2 copies need 32
  // slots; 4 servers * 8 slots exactly fit, 4 * 7 do not.
  EXPECT_TRUE(ReplicatedDistribution::Create(PlacementPolicy::kCapacityAware,
                                             16, {1, 1, 1, 1}, Spec(2),
                                             {8, 8, 8, 8})
                  .ok());
  EXPECT_EQ(ReplicatedDistribution::Create(PlacementPolicy::kCapacityAware, 16,
                                           {1, 1, 1, 1}, Spec(2), {7, 7, 7, 7})
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(ReplicatedDistributionTest, FromRanksRoundTrips) {
  const ReplicatedDistribution dist =
      ReplicatedDistribution::Create(PlacementPolicy::kGreedy, 20,
                                     {1, 2, 1, 1}, Spec(2))
          .value();
  std::vector<BrickDistribution> ranks = dist.ranks();
  const ReplicatedDistribution rebuilt =
      ReplicatedDistribution::FromRanks(std::move(ranks)).value();
  ASSERT_EQ(rebuilt.factor(), 2u);
  for (BrickId b = 0; b < 20; ++b) {
    EXPECT_EQ(rebuilt.rank(0).server_for(b), dist.rank(0).server_for(b));
    EXPECT_EQ(rebuilt.rank(1).server_for(b), dist.rank(1).server_for(b));
  }
}

TEST(ReplicatedDistributionTest, FromRanksRejectsMismatchedShapes) {
  std::vector<BrickDistribution> ranks;
  ranks.push_back(BrickDistribution::RoundRobin(8, 4).value());
  ranks.push_back(BrickDistribution::RoundRobin(12, 4).value());
  EXPECT_EQ(ReplicatedDistribution::FromRanks(std::move(ranks))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ReplicatedDistribution::FromRanks({}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Plan expansion and read remapping.

class ExpandPlanTest : public ::testing::Test {
 protected:
  ExpandPlanTest()
      : map_(BrickMap::Linear(64 * 1024, 4 * 1024).value()),
        dist_(ReplicatedDistribution::Create(PlacementPolicy::kRoundRobin, 16,
                                             {1, 1, 1, 1}, Spec(2))
                  .value()) {}

  [[nodiscard]] ClientPlan WritePlan(std::uint64_t offset,
                                     std::uint64_t length) const {
    PlanOptions options;
    options.direction = IoDirection::kWrite;
    options.combine = true;
    return PlanByteAccess(map_, dist_.primary(), 0, offset, length, options)
        .value();
  }

  BrickMap map_;
  ReplicatedDistribution dist_;
};

TEST_F(ExpandPlanTest, FactorOnePlanPassesThroughUnchanged) {
  const ReplicatedDistribution solo =
      ReplicatedDistribution::Create(PlacementPolicy::kRoundRobin, 16,
                                     {1, 1, 1, 1}, Spec(1))
          .value();
  const ClientPlan plan = WritePlan(0, 32 * 1024);
  const ClientPlan expanded = ExpandWritePlan(plan, solo).value();
  ASSERT_EQ(expanded.requests.size(), plan.requests.size());
  for (std::size_t i = 0; i < plan.requests.size(); ++i) {
    EXPECT_EQ(expanded.requests[i].server, plan.requests[i].server);
    EXPECT_EQ(expanded.requests[i].replica, 0u);
    EXPECT_EQ(expanded.requests[i].bricks, plan.requests[i].bricks);
  }
}

TEST_F(ExpandPlanTest, ExpansionCarriesEveryBrickAtEveryRank) {
  const ClientPlan plan = WritePlan(0, 64 * 1024);
  const ClientPlan expanded = ExpandWritePlan(plan, dist_).value();
  // Transfer doubles: every byte crosses the wire once per rank.
  EXPECT_EQ(expanded.transfer_bytes(), 2 * plan.transfer_bytes());
  // Each (rank, brick) appears exactly once, on that rank's server.
  std::set<std::pair<std::uint32_t, BrickId>> seen;
  for (const ServerRequest& request : expanded.requests) {
    ASSERT_LT(request.replica, 2u);
    for (const BrickRequest& brick : request.bricks) {
      EXPECT_EQ(request.server,
                dist_.rank(request.replica).server_for(brick.brick));
      EXPECT_TRUE(seen.emplace(request.replica, brick.brick).second);
    }
  }
  EXPECT_EQ(seen.size(), 2u * 16u);
}

TEST_F(ExpandPlanTest, ReplicaRequestsFollowTheirOriginal) {
  // Ordering: each original request is immediately followed by its replica
  // copies, so the serial executor writes a brick's copies back to back.
  const ClientPlan plan = WritePlan(0, 64 * 1024);
  const ClientPlan expanded = ExpandWritePlan(plan, dist_).value();
  ASSERT_EQ(plan.requests.size() * 2, expanded.requests.size());
  for (std::size_t i = 0; i < plan.requests.size(); ++i) {
    const ServerRequest& original = expanded.requests[2 * i];
    const ServerRequest& replica = expanded.requests[2 * i + 1];
    EXPECT_EQ(original.replica, 0u);
    EXPECT_EQ(original.server, plan.requests[i].server);
    EXPECT_EQ(original.bricks, plan.requests[i].bricks);
    EXPECT_EQ(replica.replica, 1u);
  }
}

TEST_F(ExpandPlanTest, ListIoPlansAreRejected) {
  PlanOptions options;
  options.direction = IoDirection::kWrite;
  const ClientPlan list_plan =
      PlanListAccess(map_, dist_.primary(), 0,
                     {{0, 512}, {8192, 512}}, options)
          .value();
  EXPECT_EQ(ExpandWritePlan(list_plan, dist_).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(ExpandPlanTest, RemapPreservesBytesAndRegroupsByRankServer) {
  PlanOptions options;
  options.direction = IoDirection::kRead;
  options.combine = true;
  const ClientPlan plan =
      PlanByteAccess(map_, dist_.primary(), 0, 0, 64 * 1024, options).value();
  for (const ServerRequest& request : plan.requests) {
    const std::vector<ServerRequest> remapped =
        RemapRequestToRank(request, dist_.rank(1), 1).value();
    // Same brick set, same per-brick byte accounting, rank-1 servers.
    std::uint64_t bricks_seen = 0;
    ServerId last_server = 0;
    bool first = true;
    for (const ServerRequest& out : remapped) {
      EXPECT_EQ(out.replica, 1u);
      if (!first) {
        EXPECT_GT(out.server, last_server);  // ascending order
      }
      last_server = out.server;
      first = false;
      for (const BrickRequest& brick : out.bricks) {
        EXPECT_EQ(out.server, dist_.rank(1).server_for(brick.brick));
        ++bricks_seen;
      }
    }
    EXPECT_EQ(bricks_seen, request.bricks.size());
    std::uint64_t remapped_bytes = 0;
    for (const ServerRequest& out : remapped) {
      remapped_bytes += out.transfer_bytes();
    }
    EXPECT_EQ(remapped_bytes, request.transfer_bytes());
  }
}

TEST(ReplicaSubfileNameTest, RankZeroIsThePathItself) {
  EXPECT_EQ(ReplicaSubfileName("/a/b.bin", 0), "/a/b.bin");
  EXPECT_EQ(ReplicaSubfileName("/a/b.bin", 1), "/a/b.bin#r1");
  EXPECT_EQ(ReplicaSubfileName("/a/b.bin", 2), "/a/b.bin#r2");
}

}  // namespace
}  // namespace dpfs::layout
