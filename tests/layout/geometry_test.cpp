#include "layout/geometry.h"

#include <gtest/gtest.h>

namespace dpfs::layout {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 0u);
  EXPECT_EQ(NumElements({5}), 5u);
  EXPECT_EQ(NumElements({8, 8}), 64u);
  EXPECT_EQ(NumElements({2, 3, 4}), 24u);
}

TEST(ShapeTest, Validate) {
  EXPECT_FALSE(ValidateShape({}).ok());
  EXPECT_FALSE(ValidateShape({4, 0}).ok());
  EXPECT_TRUE(ValidateShape({1}).ok());
  EXPECT_TRUE(ValidateShape({65536, 65536}).ok());
}

TEST(LinearIndexTest, RowMajor) {
  const Shape shape = {4, 5};
  EXPECT_EQ(LinearIndex(shape, {0, 0}), 0u);
  EXPECT_EQ(LinearIndex(shape, {0, 4}), 4u);
  EXPECT_EQ(LinearIndex(shape, {1, 0}), 5u);
  EXPECT_EQ(LinearIndex(shape, {3, 4}), 19u);
}

TEST(LinearIndexTest, ThreeDimensional) {
  const Shape shape = {2, 3, 4};
  EXPECT_EQ(LinearIndex(shape, {1, 2, 3}), 23u);
  EXPECT_EQ(LinearIndex(shape, {1, 0, 0}), 12u);
}

TEST(LinearIndexTest, InverseRoundTrip) {
  const Shape shape = {3, 4, 5};
  for (std::uint64_t i = 0; i < NumElements(shape); ++i) {
    const Coords coords = CoordsFromLinear(shape, i);
    EXPECT_EQ(LinearIndex(shape, coords), i);
  }
}

TEST(CeilDivTest, Basic) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(0, 5), 0u);
  EXPECT_EQ(CeilDiv(1, 1), 1u);
}

TEST(RegionTest, Validate) {
  const Shape shape = {8, 8};
  EXPECT_TRUE(ValidateRegion(shape, {{0, 0}, {8, 8}}).ok());
  EXPECT_TRUE(ValidateRegion(shape, {{7, 7}, {1, 1}}).ok());
  EXPECT_FALSE(ValidateRegion(shape, {{0, 0}, {9, 8}}).ok());
  EXPECT_FALSE(ValidateRegion(shape, {{4, 4}, {5, 4}}).ok());
  EXPECT_FALSE(ValidateRegion(shape, {{0}, {8}}).ok());       // rank mismatch
  EXPECT_FALSE(ValidateRegion(shape, {{0, 0}, {0, 8}}).ok()); // zero extent
}

TEST(RegionTest, NumElementsAndToString) {
  const Region region{{2, 3}, {4, 5}};
  EXPECT_EQ(region.num_elements(), 20u);
  EXPECT_EQ(region.ToString(), "[2:6, 3:8)");
}

TEST(RegionTest, Intersect) {
  const Region a{{0, 0}, {4, 4}};
  const Region b{{2, 2}, {4, 4}};
  const Region overlap = Intersect(a, b);
  EXPECT_EQ(overlap.lower, (Coords{2, 2}));
  EXPECT_EQ(overlap.extent, (Shape{2, 2}));
}

TEST(RegionTest, IntersectDisjointIsEmpty) {
  const Region a{{0, 0}, {2, 2}};
  const Region b{{4, 4}, {2, 2}};
  EXPECT_TRUE(Intersect(a, b).empty());
}

TEST(RegionTest, IntersectContained) {
  const Region outer{{0, 0}, {10, 10}};
  const Region inner{{3, 4}, {2, 2}};
  EXPECT_EQ(Intersect(outer, inner), inner);
  EXPECT_EQ(Intersect(inner, outer), inner);
}

TEST(RowRunTest, Rank1SingleRun) {
  const Region region{{3}, {5}};
  const auto runs = RegionRowRuns(region);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start, (Coords{3}));
  EXPECT_EQ(runs[0].length, 5u);
}

TEST(RowRunTest, Rank2RowsInOrder) {
  const Region region{{1, 2}, {3, 4}};
  const auto runs = RegionRowRuns(region);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].start, (Coords{1, 2}));
  EXPECT_EQ(runs[1].start, (Coords{2, 2}));
  EXPECT_EQ(runs[2].start, (Coords{3, 2}));
  for (const RowRun& run : runs) EXPECT_EQ(run.length, 4u);
}

TEST(RowRunTest, Rank3Order) {
  const Region region{{0, 0, 0}, {2, 2, 3}};
  const auto runs = RegionRowRuns(region);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].start, (Coords{0, 0, 0}));
  EXPECT_EQ(runs[1].start, (Coords{0, 1, 0}));
  EXPECT_EQ(runs[2].start, (Coords{1, 0, 0}));
  EXPECT_EQ(runs[3].start, (Coords{1, 1, 0}));
}

TEST(RowRunTest, RunCountMatchesFormula) {
  const Region region{{5, 6, 7}, {3, 4, 5}};
  EXPECT_EQ(RegionRowRuns(region).size(),
            region.num_elements() / region.extent.back());
}

TEST(RowRunTest, ColumnRegionHasOneRunPerRow) {
  // A single column of a 2-d array: the worst case for linear striping.
  const Region region{{0, 3}, {100, 1}};
  const auto runs = RegionRowRuns(region);
  EXPECT_EQ(runs.size(), 100u);
  EXPECT_EQ(runs[42].start, (Coords{42, 3}));
  EXPECT_EQ(runs[42].length, 1u);
}

TEST(RowRunTest, ForEachMatchesMaterialized) {
  const Region region{{1, 1}, {5, 7}};
  std::size_t count = 0;
  ForEachRowRun(region, [&](const RowRun& run) {
    EXPECT_EQ(run.length, 7u);
    ++count;
  });
  EXPECT_EQ(count, 5u);
}

}  // namespace
}  // namespace dpfs::layout
