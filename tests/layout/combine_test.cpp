// The §4.2 worked example, verified end to end: four processors accessing a
// 32-brick file striped round-robin over four servers (Fig 3), with and
// without request combination.
#include <gtest/gtest.h>

#include <set>

#include "layout/plan.h"

namespace dpfs::layout {
namespace {

class CombineExampleTest : public ::testing::Test {
 protected:
  CombineExampleTest()
      : map_(BrickMap::Linear(32 * 1024, 1024).value()),
        dist_(BrickDistribution::RoundRobin(32, 4).value()) {}

  /// Processor p accesses bricks 8p..8p+7 (§4.2: "processor 0 accesses
  /// brick 0 to 7 and processor 1 accesses 8 to 15, and so on").
  ClientPlan PlanFor(std::uint32_t processor, bool combine,
                     bool rotate = true) {
    PlanOptions options;
    options.combine = combine;
    options.rotate_start = rotate;
    return PlanByteAccess(map_, dist_, processor, processor * 8 * 1024,
                          8 * 1024, options)
        .value();
  }

  BrickMap map_;
  BrickDistribution dist_;
};

TEST_F(CombineExampleTest, GeneralApproachEightRequestsPerProcessor) {
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(PlanFor(p, /*combine=*/false).num_requests(), 8u);
  }
}

TEST_F(CombineExampleTest, CombinedFourRequestsPerProcessor) {
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(PlanFor(p, /*combine=*/true).num_requests(), 4u);
  }
}

TEST_F(CombineExampleTest, Processor0CombinesBricks0And4) {
  // "The combined approach will let processor 0 access brick 0 and 4 in one
  // request because they reside on the same storage."
  const ClientPlan plan = PlanFor(0, true, /*rotate=*/false);
  ASSERT_EQ(plan.requests[0].bricks.size(), 2u);
  EXPECT_EQ(plan.requests[0].server, 0u);
  EXPECT_EQ(plan.requests[0].bricks[0].brick, 0u);
  EXPECT_EQ(plan.requests[0].bricks[1].brick, 4u);
  // "Next, it accesses brick 1 and 5 in another single request."
  EXPECT_EQ(plan.requests[1].bricks[0].brick, 1u);
  EXPECT_EQ(plan.requests[1].bricks[1].brick, 5u);
}

TEST_F(CombineExampleTest, ScheduleMatchesPaperStagger) {
  // "processor 0 starts its access from subfile-0 (brick 0, 4), while
  // processor 1 starts from subfile-1 (brick 9, 13), processor 2 from
  // subfile-2 (brick 18, 22) and processor 3 from subfile-3 (brick 27, 31)."
  const std::vector<std::vector<BrickId>> expected_first = {
      {0, 4}, {9, 13}, {18, 22}, {27, 31}};
  for (std::uint32_t p = 0; p < 4; ++p) {
    const ClientPlan plan = PlanFor(p, true, /*rotate=*/true);
    ASSERT_EQ(plan.requests.size(), 4u);
    const ServerRequest& first = plan.requests[0];
    EXPECT_EQ(first.server, p);
    ASSERT_EQ(first.bricks.size(), 2u);
    EXPECT_EQ(first.bricks[0].brick, expected_first[p][0]) << "proc " << p;
    EXPECT_EQ(first.bricks[1].brick, expected_first[p][1]) << "proc " << p;
  }
}

TEST_F(CombineExampleTest, WithoutCombinationAllProcessorsStampedeServer0) {
  // "processor 0, 1, 2 and 3 will access brick 0, 8, 16 and 24 respectively.
  // Note that brick 0, 8, 16 and 24 are on the same storage device."
  for (std::uint32_t p = 0; p < 4; ++p) {
    const ClientPlan plan = PlanFor(p, /*combine=*/false);
    EXPECT_EQ(plan.requests[0].server, 0u)
        << "processor " << p << " first request";
    EXPECT_EQ(plan.requests[0].bricks[0].brick, p * 8);
  }
}

TEST_F(CombineExampleTest, CombinationPreservesDataCoverage) {
  for (std::uint32_t p = 0; p < 4; ++p) {
    const ClientPlan general = PlanFor(p, false);
    const ClientPlan combined = PlanFor(p, true);
    std::set<BrickId> general_bricks;
    std::set<BrickId> combined_bricks;
    for (const ServerRequest& request : general.requests) {
      for (const BrickRequest& brick : request.bricks) {
        general_bricks.insert(brick.brick);
      }
    }
    for (const ServerRequest& request : combined.requests) {
      for (const BrickRequest& brick : request.bricks) {
        combined_bricks.insert(brick.brick);
      }
    }
    EXPECT_EQ(general_bricks, combined_bricks);
    EXPECT_EQ(general.useful_bytes(), combined.useful_bytes());
  }
}

TEST_F(CombineExampleTest, RequestCountScalesWithServersNotBricks) {
  // With combination, request count is bounded by the number of servers a
  // client touches, independent of brick count.
  const BrickMap big = BrickMap::Linear(1024 * 1024, 1024).value();  // 1024 bricks
  const BrickDistribution dist = BrickDistribution::RoundRobin(1024, 4).value();
  PlanOptions combined;
  combined.combine = true;
  const ClientPlan plan =
      PlanByteAccess(big, dist, 0, 0, 1024 * 1024, combined).value();
  EXPECT_EQ(plan.num_requests(), 4u);
  std::size_t bricks = 0;
  for (const ServerRequest& request : plan.requests) {
    bricks += request.bricks.size();
  }
  EXPECT_EQ(bricks, 1024u);
}

TEST_F(CombineExampleTest, GreedyPlacementCombinedRequestsFollowBricklists) {
  // Combination works with the greedy distribution too: processor 0 touching
  // everything sends exactly one request per server holding >= 1 brick.
  const BrickDistribution greedy =
      BrickDistribution::Greedy(32, {1, 3, 1, 3}).value();
  PlanOptions combined;
  combined.combine = true;
  combined.rotate_start = false;
  const ClientPlan plan =
      PlanByteAccess(map_, greedy, 0, 0, 32 * 1024, combined).value();
  EXPECT_EQ(plan.num_requests(), 4u);
  for (const ServerRequest& request : plan.requests) {
    EXPECT_EQ(request.bricks.size(),
              greedy.bricks_on(request.server).size());
  }
}

}  // namespace
}  // namespace dpfs::layout
