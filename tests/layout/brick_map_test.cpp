#include "layout/brick_map.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dpfs::layout {
namespace {

TEST(FileLevelTest, NamesRoundTrip) {
  EXPECT_EQ(ParseFileLevel("linear").value(), FileLevel::kLinear);
  EXPECT_EQ(ParseFileLevel("multidim").value(), FileLevel::kMultidim);
  EXPECT_EQ(ParseFileLevel("multidims").value(), FileLevel::kMultidim);
  EXPECT_EQ(ParseFileLevel("ARRAY").value(), FileLevel::kArray);
  EXPECT_FALSE(ParseFileLevel("bogus").ok());
  EXPECT_EQ(FileLevelName(FileLevel::kLinear), "linear");
}

// --- Linear -----------------------------------------------------------------

TEST(LinearMapTest, BrickCountCeil) {
  EXPECT_EQ(BrickMap::Linear(100, 32).value().num_bricks(), 4u);
  EXPECT_EQ(BrickMap::Linear(96, 32).value().num_bricks(), 3u);
  EXPECT_EQ(BrickMap::Linear(0, 32).value().num_bricks(), 0u);
  EXPECT_EQ(BrickMap::Linear(1, 32).value().num_bricks(), 1u);
}

TEST(LinearMapTest, RejectsZeroBrick) {
  EXPECT_FALSE(BrickMap::Linear(100, 0).ok());
}

TEST(LinearMapTest, TailBrickValidBytes) {
  const BrickMap map = BrickMap::Linear(100, 32).value();
  EXPECT_EQ(map.brick_valid_bytes(0), 32u);
  EXPECT_EQ(map.brick_valid_bytes(2), 32u);
  EXPECT_EQ(map.brick_valid_bytes(3), 4u);   // 100 - 96
  EXPECT_EQ(map.brick_valid_bytes(4), 0u);   // past EOF
}

TEST(LinearMapTest, ByteRunSplitsAtBrickBoundaries) {
  const BrickMap map = BrickMap::Linear(100, 32).value();
  std::vector<BrickRun> runs;
  ASSERT_TRUE(map.ForEachByteRun(30, 40, [&](const BrickRun& run) {
    runs.push_back(run);
  }).ok());
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (BrickRun{0, 30, 0, 2}));
  EXPECT_EQ(runs[1], (BrickRun{1, 0, 2, 32}));
  EXPECT_EQ(runs[2], (BrickRun{2, 0, 34, 6}));
}

TEST(LinearMapTest, ByteSummary) {
  const BrickMap map = BrickMap::Linear(100, 32).value();
  const auto usage = map.SummarizeByteRange(30, 40).value();
  ASSERT_EQ(usage.size(), 3u);
  EXPECT_EQ(usage.at(0).useful_bytes, 2u);
  EXPECT_EQ(usage.at(1).useful_bytes, 32u);
  EXPECT_EQ(usage.at(2).useful_bytes, 6u);
}

TEST(LinearMapTest, RegionAccessRequiresArrayShape) {
  const BrickMap map = BrickMap::Linear(100, 32).value();
  const Region region{{0}, {10}};
  EXPECT_FALSE(map.ForEachRun(region, [](const BrickRun&) {}).ok());
  EXPECT_FALSE(map.SummarizeRegion(region).ok());
}

TEST(LinearMapTest, ByteAccessOnTiledMapRejected) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 1).value();
  EXPECT_FALSE(map.ForEachByteRun(0, 8, [](const BrickRun&) {}).ok());
  EXPECT_FALSE(map.SummarizeByteRange(0, 8).ok());
}

// --- Paper Fig 5: linear striping of an 8x8 array, brick = 4 elements -------

class Fig5LinearTest : public ::testing::Test {
 protected:
  Fig5LinearTest()
      : map_(BrickMap::LinearArray({8, 8}, 1, 4).value()) {}
  BrickMap map_;
};

TEST_F(Fig5LinearTest, SixteenBricks) { EXPECT_EQ(map_.num_bricks(), 16u); }

TEST_F(Fig5LinearTest, BrickZeroHoldsElements0To3) {
  // "Brick 0 contains array elements 0, 1, 2 and 3."
  const auto usage = map_.SummarizeRegion({{0, 0}, {1, 4}}).value();
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage.begin()->first, 0u);
  EXPECT_EQ(usage.begin()->second.useful_bytes, 4u);
}

TEST_F(Fig5LinearTest, RowAccessTouchesTwoBricks) {
  // (BLOCK,*): one row = 8 elements = bricks 2r and 2r+1.
  const auto usage = map_.SummarizeRegion({{3, 0}, {1, 8}}).value();
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_TRUE(usage.contains(6));
  EXPECT_TRUE(usage.contains(7));
}

TEST_F(Fig5LinearTest, TwoColumnAccessTouchesEveryOtherBrickHalfUseful) {
  // "(*, BLOCK) ... processor 0 will access the first two columns, so it has
  // to access brick 0, 2, 4, 6, 8, 10, 12 and 14, and only the first two
  // elements of each brick are really useful."
  const auto usage = map_.SummarizeRegion({{0, 0}, {8, 2}}).value();
  ASSERT_EQ(usage.size(), 8u);
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick % 2, 0u) << "brick " << brick;
    EXPECT_EQ(brick_usage.useful_bytes, 2u);
  }
}

// --- Multidim (Fig 6): 8x8 array, 2x2 bricks --------------------------------

class Fig6MultidimTest : public ::testing::Test {
 protected:
  Fig6MultidimTest() : map_(BrickMap::Multidim({8, 8}, {2, 2}, 1).value()) {}
  BrickMap map_;
};

TEST_F(Fig6MultidimTest, SixteenBricksInAFourByFourGrid) {
  EXPECT_EQ(map_.num_bricks(), 16u);
  EXPECT_EQ(map_.brick_grid(), (Shape{4, 4}));
  EXPECT_EQ(map_.brick_bytes(), 4u);
}

TEST_F(Fig6MultidimTest, FirstTwoColumnsNeedOnlyFourBricks) {
  // "When the processor 0 accesses the first two columns again, it only
  // needs to access 4 bricks (0, 4, 8 and 12) and no extra data is accessed."
  const auto usage = map_.SummarizeRegion({{0, 0}, {8, 2}}).value();
  ASSERT_EQ(usage.size(), 4u);
  EXPECT_TRUE(usage.contains(0));
  EXPECT_TRUE(usage.contains(4));
  EXPECT_TRUE(usage.contains(8));
  EXPECT_TRUE(usage.contains(12));
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, 4u);  // the whole brick is useful
  }
}

TEST_F(Fig6MultidimTest, RunsCoverRegionInBufferOrder) {
  std::vector<BrickRun> runs;
  ASSERT_TRUE(map_.ForEachRun({{0, 0}, {3, 3}}, [&](const BrickRun& run) {
    runs.push_back(run);
  }).ok());
  // Buffer offsets must be dense, ordered, and total the region size.
  std::uint64_t expected_offset = 0;
  for (const BrickRun& run : runs) {
    EXPECT_EQ(run.buffer_offset, expected_offset);
    expected_offset += run.length;
  }
  EXPECT_EQ(expected_offset, 9u);
}

TEST_F(Fig6MultidimTest, RunSplitsAtBrickColumnBoundary) {
  // One full row crosses 4 bricks along the last dimension.
  std::vector<BrickRun> runs;
  ASSERT_TRUE(map_.ForEachRun({{5, 0}, {1, 8}}, [&](const BrickRun& run) {
    runs.push_back(run);
  }).ok());
  ASSERT_EQ(runs.size(), 4u);
  // Row 5 lives in brick-row 2 (bricks 8..11), local row 1.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(runs[i].brick, 8u + i);
    EXPECT_EQ(runs[i].offset_in_brick, 2u);  // local (1,0) in a 2x2 brick
    EXPECT_EQ(runs[i].length, 2u);
  }
}

TEST_F(Fig6MultidimTest, SummaryMatchesRunEnumeration) {
  const Region region{{1, 3}, {5, 4}};
  const auto usage = map_.SummarizeRegion(region).value();
  std::map<BrickId, std::uint64_t> from_runs;
  std::map<BrickId, std::uint64_t> run_counts;
  ASSERT_TRUE(map_.ForEachRun(region, [&](const BrickRun& run) {
    from_runs[run.brick] += run.length;
    run_counts[run.brick] += 1;
  }).ok());
  ASSERT_EQ(usage.size(), from_runs.size());
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, from_runs.at(brick));
    EXPECT_EQ(brick_usage.num_runs, run_counts.at(brick));
  }
}

TEST(MultidimMapTest, ElementSizeScalesBytes) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 8).value();
  EXPECT_EQ(map.brick_bytes(), 32u);
  const auto usage = map.SummarizeRegion({{0, 0}, {2, 2}}).value();
  EXPECT_EQ(usage.at(0).useful_bytes, 32u);
}

TEST(MultidimMapTest, EdgeBricksClippedByArrayBounds) {
  // 5x5 array with 2x2 bricks: 3x3 grid, edge bricks partially valid.
  const BrickMap map = BrickMap::Multidim({5, 5}, {2, 2}, 1).value();
  EXPECT_EQ(map.num_bricks(), 9u);
  EXPECT_EQ(map.brick_valid_bytes(0), 4u);  // interior
  EXPECT_EQ(map.brick_valid_bytes(2), 2u);  // right edge: 2x1
  EXPECT_EQ(map.brick_valid_bytes(6), 2u);  // bottom edge: 1x2
  EXPECT_EQ(map.brick_valid_bytes(8), 1u);  // corner: 1x1
}

TEST(MultidimMapTest, ThreeDimensionalBricks) {
  const BrickMap map = BrickMap::Multidim({4, 4, 4}, {2, 2, 2}, 1).value();
  EXPECT_EQ(map.num_bricks(), 8u);
  const auto usage = map.SummarizeRegion({{0, 0, 0}, {2, 2, 2}}).value();
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage.at(0).useful_bytes, 8u);
  EXPECT_EQ(usage.at(0).num_runs, 4u);
}

TEST(MultidimMapTest, InvalidConstructions) {
  EXPECT_FALSE(BrickMap::Multidim({8}, {2, 2}, 1).ok());   // rank mismatch
  EXPECT_FALSE(BrickMap::Multidim({8, 8}, {9, 2}, 1).ok()); // brick too big
  EXPECT_FALSE(BrickMap::Multidim({8, 8}, {2, 2}, 0).ok()); // zero elem
  EXPECT_FALSE(BrickMap::Multidim({}, {}, 1).ok());
}

TEST(MultidimMapTest, OutOfBoundsRegionRejected) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 1).value();
  EXPECT_FALSE(map.SummarizeRegion({{0, 0}, {9, 1}}).ok());
}

// --- Array level (Fig 7) -----------------------------------------------------

TEST(ArrayMapTest, OneBrickPerChunk) {
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {2, 2};
  const BrickMap map = BrickMap::Array({8, 8}, pattern, grid, 1).value();
  EXPECT_EQ(map.level(), FileLevel::kArray);
  EXPECT_EQ(map.num_bricks(), 4u);
  EXPECT_EQ(map.brick_shape(), (Shape{4, 4}));
  EXPECT_EQ(map.brick_bytes(), 16u);
}

TEST(ArrayMapTest, ChunkRegionIsExactlyOneBrick) {
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {2, 2};
  const BrickMap map = BrickMap::Array({8, 8}, pattern, grid, 1).value();
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    const Region chunk =
        ChunkForProcess({8, 8}, pattern, grid, rank).value();
    const auto usage = map.SummarizeRegion(chunk).value();
    ASSERT_EQ(usage.size(), 1u) << "rank " << rank;
    EXPECT_EQ(usage.begin()->first, rank);
    EXPECT_EQ(usage.begin()->second.useful_bytes, 16u);
  }
}

TEST(ArrayMapTest, StarBlockChunks) {
  const HpfPattern pattern = HpfPattern::Parse("(*,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {4};
  const BrickMap map = BrickMap::Array({8, 8}, pattern, grid, 1).value();
  EXPECT_EQ(map.num_bricks(), 4u);
  EXPECT_EQ(map.brick_shape(), (Shape{8, 2}));
}

TEST(ArrayMapTest, NonDivisibleRejected) {
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,*)").value();
  ProcessGrid grid;
  grid.grid = {3};
  EXPECT_FALSE(BrickMap::Array({8, 8}, pattern, grid, 1).ok());
}

// --- Whole-file coverage property -------------------------------------------

class CoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverageTest, EveryElementMapsToExactlyOneBrickByte) {
  // Reading the entire array must touch each brick for exactly its valid
  // byte count, across all three levels.
  BrickMap map = BrickMap::Linear(0, 1).value();
  switch (GetParam()) {
    case 0:
      map = BrickMap::LinearArray({6, 10}, 1, 7).value();
      break;
    case 1:
      map = BrickMap::Multidim({6, 10}, {2, 3}, 1).value();
      break;
    case 2: {
      const HpfPattern pattern = HpfPattern::Parse("(BLOCK,BLOCK)").value();
      ProcessGrid grid;
      grid.grid = {2, 2};
      map = BrickMap::Array({6, 10}, pattern, grid, 1).value();
      break;
    }
  }
  const Region all{{0, 0}, {6, 10}};
  const auto usage = map.SummarizeRegion(all).value();
  std::uint64_t total = 0;
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, map.brick_valid_bytes(brick))
        << "brick " << brick;
    total += brick_usage.useful_bytes;
  }
  EXPECT_EQ(total, 60u);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, CoverageTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace dpfs::layout
