// The paper's §3.2 worked example at full scale: a 64K x 64K array where a
// column access needs all 65536 bricks under linear striping but only 256
// bricks under 256x256 multidimensional striping.
#include <gtest/gtest.h>

#include "layout/brick_map.h"

namespace dpfs::layout {
namespace {

constexpr std::uint64_t k64K = 64 * 1024;

TEST(PaperScaleTest, LinearStripingColumnAccessNeedsAllBricks) {
  // Brick = 64KB, element = 1 byte: each row is one brick, 65536 bricks.
  const BrickMap map =
      BrickMap::LinearArray({k64K, k64K}, 1, 64 * 1024).value();
  ASSERT_EQ(map.num_bricks(), 65536u);

  // One column of data touches every brick, one byte useful per brick.
  const auto usage = map.SummarizeRegion({{0, 0}, {k64K, 1}}).value();
  EXPECT_EQ(usage.size(), 65536u);
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, 1u);
  }
}

TEST(PaperScaleTest, MultidimStripingColumnAccessNeeds256Bricks) {
  // "For the 64K x 64K array example, each brick size would be 256 x 256,
  // so only 256 bricks are needed."
  const BrickMap map =
      BrickMap::Multidim({k64K, k64K}, {256, 256}, 1).value();
  ASSERT_EQ(map.num_bricks(), 65536u);  // 256 x 256 brick grid

  const auto usage = map.SummarizeRegion({{0, 0}, {k64K, 1}}).value();
  EXPECT_EQ(usage.size(), 256u);
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, 256u);  // one column of the brick
  }
}

TEST(PaperScaleTest, BrickCountReductionFactor) {
  const BrickMap linear =
      BrickMap::LinearArray({k64K, k64K}, 1, 64 * 1024).value();
  const BrickMap multidim =
      BrickMap::Multidim({k64K, k64K}, {256, 256}, 1).value();
  const Region column{{0, 0}, {k64K, 1}};
  const std::size_t linear_bricks =
      linear.SummarizeRegion(column).value().size();
  const std::size_t multidim_bricks =
      multidim.SummarizeRegion(column).value().size();
  EXPECT_EQ(linear_bricks / multidim_bricks, 256u);
}

TEST(PaperScaleTest, RowAccessIsCheapInBothLevels) {
  // Linear striping is fine for row access — one brick per row.
  const BrickMap linear =
      BrickMap::LinearArray({k64K, k64K}, 1, 64 * 1024).value();
  EXPECT_EQ(linear.SummarizeRegion({{7, 0}, {1, k64K}}).value().size(), 1u);
  // Multidim needs one brick-row: 256 bricks, all fully useful columns-wise.
  const BrickMap multidim =
      BrickMap::Multidim({k64K, k64K}, {256, 256}, 1).value();
  const auto usage = multidim.SummarizeRegion({{7, 0}, {1, k64K}}).value();
  EXPECT_EQ(usage.size(), 256u);
}

TEST(PaperScaleTest, UsefulFractionOfWholeBrickReads) {
  // Under read-whole-brick semantics the column access through linear
  // striping is 1/65536 efficient; through multidim striping it is 1/256.
  const BrickMap linear =
      BrickMap::LinearArray({k64K, k64K}, 1, 64 * 1024).value();
  const BrickMap multidim =
      BrickMap::Multidim({k64K, k64K}, {256, 256}, 1).value();
  const Region column{{0, 0}, {k64K, 1}};

  const auto linear_usage = linear.SummarizeRegion(column).value();
  std::uint64_t useful = 0;
  std::uint64_t transferred = 0;
  for (const auto& [brick, usage] : linear_usage) {
    useful += usage.useful_bytes;
    transferred += linear.brick_valid_bytes(brick);
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(useful) /
                       static_cast<double>(transferred),
                   1.0 / 65536.0);

  const auto multidim_usage = multidim.SummarizeRegion(column).value();
  useful = transferred = 0;
  for (const auto& [brick, usage] : multidim_usage) {
    useful += usage.useful_bytes;
    transferred += multidim.brick_valid_bytes(brick);
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(useful) /
                       static_cast<double>(transferred),
                   1.0 / 256.0);
}

TEST(PaperScaleTest, Fig11StyleStarBlockChunk) {
  // The Fig 11 workload scaled to the paper's file: 32K x 32K bytes, 8
  // compute nodes in (*,BLOCK). Linear (64 KB bricks) vs multidim (256x256).
  constexpr std::uint64_t k32K = 32 * 1024;
  const BrickMap linear =
      BrickMap::LinearArray({k32K, k32K}, 1, 64 * 1024).value();
  const BrickMap multidim =
      BrickMap::Multidim({k32K, k32K}, {256, 256}, 1).value();
  // "each processor has to access all the bricks (16K = 16384)".
  ASSERT_EQ(linear.num_bricks(), 16384u);
  const Region chunk{{0, 0}, {k32K, k32K / 8}};  // processor 0's columns
  EXPECT_EQ(linear.SummarizeRegion(chunk).value().size(), 16384u);
  // Multidim: 128 brick-rows x 16 brick-cols = 2048 bricks, all fully useful.
  const auto usage = multidim.SummarizeRegion(chunk).value();
  EXPECT_EQ(usage.size(), 2048u);
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, multidim.brick_bytes());
  }
}

}  // namespace
}  // namespace dpfs::layout
