#include "layout/plan.h"

#include <gtest/gtest.h>

namespace dpfs::layout {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  // Fig 3's file: 32 bricks over 4 servers round-robin. We model it as a
  // linear byte file of 32 bricks x 8 bytes.
  PlanTest()
      : map_(BrickMap::Linear(32 * 8, 8).value()),
        dist_(BrickDistribution::RoundRobin(32, 4).value()) {}

  BrickMap map_;
  BrickDistribution dist_;
};

TEST_F(PlanTest, UncombinedOneRequestPerBrick) {
  PlanOptions options;
  options.combine = false;
  // Processor 0 accesses bricks 0..7 (bytes 0..64).
  const ClientPlan plan =
      PlanByteAccess(map_, dist_, 0, 0, 64, options).value();
  EXPECT_EQ(plan.num_requests(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(plan.requests[i].bricks.size(), 1u);
    EXPECT_EQ(plan.requests[i].bricks[0].brick, i);
    EXPECT_EQ(plan.requests[i].server, i % 4);
  }
}

TEST_F(PlanTest, CombinedOneRequestPerServer) {
  // §4.2: "there are only 4 requests needed for each processor, much
  // smaller than 8 requests of general approach."
  PlanOptions options;
  options.combine = true;
  options.rotate_start = false;
  const ClientPlan plan =
      PlanByteAccess(map_, dist_, 0, 0, 64, options).value();
  EXPECT_EQ(plan.num_requests(), 4u);
  for (const ServerRequest& request : plan.requests) {
    EXPECT_EQ(request.bricks.size(), 2u);
  }
  // Client 0's request to server 0 carries bricks 0 and 4.
  EXPECT_EQ(plan.requests[0].server, 0u);
  EXPECT_EQ(plan.requests[0].bricks[0].brick, 0u);
  EXPECT_EQ(plan.requests[0].bricks[1].brick, 4u);
}

TEST_F(PlanTest, RotationStaggersStartServers) {
  PlanOptions options;
  options.combine = true;
  options.rotate_start = true;
  // All four processors access disjoint brick ranges covering all servers.
  for (std::uint32_t client = 0; client < 4; ++client) {
    const ClientPlan plan =
        PlanByteAccess(map_, dist_, client, client * 64, 64, options).value();
    ASSERT_EQ(plan.num_requests(), 4u);
    EXPECT_EQ(plan.requests[0].server, client % 4)
        << "client " << client << " should start on its own server";
  }
}

TEST_F(PlanTest, ReadTransfersWholeBricks) {
  PlanOptions options;
  options.direction = IoDirection::kRead;
  options.combine = false;
  // Read 4 bytes spanning half of brick 1.
  const ClientPlan plan = PlanByteAccess(map_, dist_, 0, 8, 4, options).value();
  ASSERT_EQ(plan.num_requests(), 1u);
  EXPECT_EQ(plan.requests[0].bricks[0].useful_bytes, 4u);
  EXPECT_EQ(plan.requests[0].bricks[0].transfer_bytes, 8u);  // whole brick
  EXPECT_EQ(plan.transfer_bytes(), 8u);
  EXPECT_EQ(plan.useful_bytes(), 4u);
}

TEST_F(PlanTest, WriteTransfersOnlyUsefulBytes) {
  PlanOptions options;
  options.direction = IoDirection::kWrite;
  const ClientPlan plan = PlanByteAccess(map_, dist_, 0, 8, 4, options).value();
  EXPECT_EQ(plan.transfer_bytes(), 4u);
  EXPECT_EQ(plan.useful_bytes(), 4u);
}

TEST_F(PlanTest, ReadOfLinearTailBrickTransfersValidBytesOnly) {
  const BrickMap map = BrickMap::Linear(20, 8).value();  // bricks 8,8,4
  const BrickDistribution dist = BrickDistribution::RoundRobin(3, 2).value();
  PlanOptions options;
  options.direction = IoDirection::kRead;
  const ClientPlan plan = PlanByteAccess(map, dist, 0, 16, 4, options).value();
  ASSERT_EQ(plan.num_requests(), 1u);
  EXPECT_EQ(plan.requests[0].bricks[0].transfer_bytes, 4u);
}

TEST_F(PlanTest, CollectivePlanCoversAllClients) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 1).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(16, 4).value();
  std::vector<Region> regions;
  for (std::uint64_t c = 0; c < 4; ++c) {
    regions.push_back({{0, c * 2}, {8, 2}});  // (*,BLOCK) with 4 clients
  }
  PlanOptions options;
  options.combine = true;
  const IoPlan plan = PlanCollectiveAccess(map, dist, regions, options).value();
  ASSERT_EQ(plan.clients.size(), 4u);
  EXPECT_EQ(plan.total_useful_bytes(), 64u);
  for (const ClientPlan& client : plan.clients) {
    EXPECT_EQ(client.useful_bytes(), 16u);
  }
}

TEST_F(PlanTest, DistributionSmallerThanFileRejected) {
  const BrickDistribution small = BrickDistribution::RoundRobin(4, 2).value();
  PlanOptions options;
  EXPECT_FALSE(PlanByteAccess(map_, small, 0, 0, 64, options).ok());
}

TEST_F(PlanTest, RegionPlanOnShapedLinearFile) {
  // Fig 5 workload through the planner: 8x8 array, 4-element linear bricks,
  // processor reading two columns touches 8 bricks.
  const BrickMap map = BrickMap::LinearArray({8, 8}, 1, 4).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(16, 4).value();
  PlanOptions options;
  options.combine = false;
  const ClientPlan plan =
      PlanRegionAccess(map, dist, 0, {{0, 0}, {8, 2}}, options).value();
  EXPECT_EQ(plan.num_requests(), 8u);
  // Whole-brick reads: 8 bricks x 4 bytes transferred for 16 useful bytes.
  EXPECT_EQ(plan.transfer_bytes(), 32u);
  EXPECT_EQ(plan.useful_bytes(), 16u);
}

TEST_F(PlanTest, CombineReducesRequestsNotBytes) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 1).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(16, 4).value();
  const Region region{{0, 0}, {8, 2}};
  PlanOptions uncombined;
  uncombined.combine = false;
  PlanOptions combined;
  combined.combine = true;
  const ClientPlan plan_u =
      PlanRegionAccess(map, dist, 0, region, uncombined).value();
  const ClientPlan plan_c =
      PlanRegionAccess(map, dist, 0, region, combined).value();
  EXPECT_GT(plan_u.num_requests(), plan_c.num_requests());
  EXPECT_EQ(plan_u.transfer_bytes(), plan_c.transfer_bytes());
  EXPECT_EQ(plan_u.useful_bytes(), plan_c.useful_bytes());
}

TEST_F(PlanTest, BrickOrderPreservedInsideCombinedRequest) {
  PlanOptions options;
  options.combine = true;
  options.rotate_start = false;
  const ClientPlan plan =
      PlanByteAccess(map_, dist_, 0, 0, 32 * 8, options).value();
  for (const ServerRequest& request : plan.requests) {
    for (std::size_t i = 1; i < request.bricks.size(); ++i) {
      EXPECT_LT(request.bricks[i - 1].brick, request.bricks[i].brick);
    }
  }
}

TEST_F(PlanTest, EmptyAccessYieldsEmptyPlan) {
  PlanOptions options;
  const ClientPlan plan = PlanByteAccess(map_, dist_, 0, 0, 0, options).value();
  EXPECT_EQ(plan.num_requests(), 0u);
  EXPECT_EQ(plan.transfer_bytes(), 0u);
}

}  // namespace
}  // namespace dpfs::layout
