#include "layout/plan.h"

#include <gtest/gtest.h>

namespace dpfs::layout {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  // Fig 3's file: 32 bricks over 4 servers round-robin. We model it as a
  // linear byte file of 32 bricks x 8 bytes.
  PlanTest()
      : map_(BrickMap::Linear(32 * 8, 8).value()),
        dist_(BrickDistribution::RoundRobin(32, 4).value()) {}

  BrickMap map_;
  BrickDistribution dist_;
};

TEST_F(PlanTest, UncombinedOneRequestPerBrick) {
  PlanOptions options;
  options.combine = false;
  // Processor 0 accesses bricks 0..7 (bytes 0..64).
  const ClientPlan plan =
      PlanByteAccess(map_, dist_, 0, 0, 64, options).value();
  EXPECT_EQ(plan.num_requests(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(plan.requests[i].bricks.size(), 1u);
    EXPECT_EQ(plan.requests[i].bricks[0].brick, i);
    EXPECT_EQ(plan.requests[i].server, i % 4);
  }
}

TEST_F(PlanTest, CombinedOneRequestPerServer) {
  // §4.2: "there are only 4 requests needed for each processor, much
  // smaller than 8 requests of general approach."
  PlanOptions options;
  options.combine = true;
  options.rotate_start = false;
  const ClientPlan plan =
      PlanByteAccess(map_, dist_, 0, 0, 64, options).value();
  EXPECT_EQ(plan.num_requests(), 4u);
  for (const ServerRequest& request : plan.requests) {
    EXPECT_EQ(request.bricks.size(), 2u);
  }
  // Client 0's request to server 0 carries bricks 0 and 4.
  EXPECT_EQ(plan.requests[0].server, 0u);
  EXPECT_EQ(plan.requests[0].bricks[0].brick, 0u);
  EXPECT_EQ(plan.requests[0].bricks[1].brick, 4u);
}

TEST_F(PlanTest, RotationStaggersStartServers) {
  PlanOptions options;
  options.combine = true;
  options.rotate_start = true;
  // All four processors access disjoint brick ranges covering all servers.
  for (std::uint32_t client = 0; client < 4; ++client) {
    const ClientPlan plan =
        PlanByteAccess(map_, dist_, client, client * 64, 64, options).value();
    ASSERT_EQ(plan.num_requests(), 4u);
    EXPECT_EQ(plan.requests[0].server, client % 4)
        << "client " << client << " should start on its own server";
  }
}

TEST_F(PlanTest, ReadTransfersWholeBricks) {
  PlanOptions options;
  options.direction = IoDirection::kRead;
  options.combine = false;
  // Read 4 bytes spanning half of brick 1.
  const ClientPlan plan = PlanByteAccess(map_, dist_, 0, 8, 4, options).value();
  ASSERT_EQ(plan.num_requests(), 1u);
  EXPECT_EQ(plan.requests[0].bricks[0].useful_bytes, 4u);
  EXPECT_EQ(plan.requests[0].bricks[0].transfer_bytes, 8u);  // whole brick
  EXPECT_EQ(plan.transfer_bytes(), 8u);
  EXPECT_EQ(plan.useful_bytes(), 4u);
}

TEST_F(PlanTest, WriteTransfersOnlyUsefulBytes) {
  PlanOptions options;
  options.direction = IoDirection::kWrite;
  const ClientPlan plan = PlanByteAccess(map_, dist_, 0, 8, 4, options).value();
  EXPECT_EQ(plan.transfer_bytes(), 4u);
  EXPECT_EQ(plan.useful_bytes(), 4u);
}

TEST_F(PlanTest, ReadOfLinearTailBrickTransfersValidBytesOnly) {
  const BrickMap map = BrickMap::Linear(20, 8).value();  // bricks 8,8,4
  const BrickDistribution dist = BrickDistribution::RoundRobin(3, 2).value();
  PlanOptions options;
  options.direction = IoDirection::kRead;
  const ClientPlan plan = PlanByteAccess(map, dist, 0, 16, 4, options).value();
  ASSERT_EQ(plan.num_requests(), 1u);
  EXPECT_EQ(plan.requests[0].bricks[0].transfer_bytes, 4u);
}

TEST_F(PlanTest, CollectivePlanCoversAllClients) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 1).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(16, 4).value();
  std::vector<Region> regions;
  for (std::uint64_t c = 0; c < 4; ++c) {
    regions.push_back({{0, c * 2}, {8, 2}});  // (*,BLOCK) with 4 clients
  }
  PlanOptions options;
  options.combine = true;
  const IoPlan plan = PlanCollectiveAccess(map, dist, regions, options).value();
  ASSERT_EQ(plan.clients.size(), 4u);
  EXPECT_EQ(plan.total_useful_bytes(), 64u);
  for (const ClientPlan& client : plan.clients) {
    EXPECT_EQ(client.useful_bytes(), 16u);
  }
}

TEST_F(PlanTest, DistributionSmallerThanFileRejected) {
  const BrickDistribution small = BrickDistribution::RoundRobin(4, 2).value();
  PlanOptions options;
  EXPECT_FALSE(PlanByteAccess(map_, small, 0, 0, 64, options).ok());
}

TEST_F(PlanTest, RegionPlanOnShapedLinearFile) {
  // Fig 5 workload through the planner: 8x8 array, 4-element linear bricks,
  // processor reading two columns touches 8 bricks.
  const BrickMap map = BrickMap::LinearArray({8, 8}, 1, 4).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(16, 4).value();
  PlanOptions options;
  options.combine = false;
  const ClientPlan plan =
      PlanRegionAccess(map, dist, 0, {{0, 0}, {8, 2}}, options).value();
  EXPECT_EQ(plan.num_requests(), 8u);
  // Whole-brick reads: 8 bricks x 4 bytes transferred for 16 useful bytes.
  EXPECT_EQ(plan.transfer_bytes(), 32u);
  EXPECT_EQ(plan.useful_bytes(), 16u);
}

TEST_F(PlanTest, CombineReducesRequestsNotBytes) {
  const BrickMap map = BrickMap::Multidim({8, 8}, {2, 2}, 1).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(16, 4).value();
  const Region region{{0, 0}, {8, 2}};
  PlanOptions uncombined;
  uncombined.combine = false;
  PlanOptions combined;
  combined.combine = true;
  const ClientPlan plan_u =
      PlanRegionAccess(map, dist, 0, region, uncombined).value();
  const ClientPlan plan_c =
      PlanRegionAccess(map, dist, 0, region, combined).value();
  EXPECT_GT(plan_u.num_requests(), plan_c.num_requests());
  EXPECT_EQ(plan_u.transfer_bytes(), plan_c.transfer_bytes());
  EXPECT_EQ(plan_u.useful_bytes(), plan_c.useful_bytes());
}

TEST_F(PlanTest, BrickOrderPreservedInsideCombinedRequest) {
  PlanOptions options;
  options.combine = true;
  options.rotate_start = false;
  const ClientPlan plan =
      PlanByteAccess(map_, dist_, 0, 0, 32 * 8, options).value();
  for (const ServerRequest& request : plan.requests) {
    for (std::size_t i = 1; i < request.bricks.size(); ++i) {
      EXPECT_LT(request.bricks[i - 1].brick, request.bricks[i].brick);
    }
  }
}

TEST_F(PlanTest, EmptyAccessYieldsEmptyPlan) {
  PlanOptions options;
  const ClientPlan plan = PlanByteAccess(map_, dist_, 0, 0, 0, options).value();
  EXPECT_EQ(plan.num_requests(), 0u);
  EXPECT_EQ(plan.transfer_bytes(), 0u);
}

// --- list I/O (PlanListAccess, docs/NONCONTIGUOUS_IO.md) -------------------

TEST_F(PlanTest, ListAccessOneRequestPerServer) {
  // A strided pattern touching bricks 0..7 (one 2-byte piece each): list
  // I/O always combines, so 4 requests cover 4 servers.
  PlanOptions options;
  options.rotate_start = false;
  std::vector<FileExtent> extents;
  for (std::uint64_t i = 0; i < 8; ++i) extents.push_back({i * 8, 2});
  const ClientPlan plan =
      PlanListAccess(map_, dist_, 0, extents, options).value();
  EXPECT_TRUE(plan.list_io);
  EXPECT_FALSE(plan.whole_brick_reads);
  ASSERT_EQ(plan.num_requests(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    const ServerRequest& request = plan.requests[s];
    EXPECT_EQ(request.server, s);
    // Bricks s and s+4 → subfile slots 0 and 1 → extents at 0 and 8.
    ASSERT_EQ(request.list_extents.size(), 2u);
    EXPECT_EQ(request.list_extents[0], (ListExtent{0, 2 * s, 2}));
    EXPECT_EQ(request.list_extents[1], (ListExtent{8, 2 * (s + 4), 2}));
    ASSERT_EQ(request.bricks.size(), 2u);
    EXPECT_EQ(request.bricks[0].brick, s);
    EXPECT_EQ(request.bricks[1].brick, s + 4);
  }
  // List transfers move exactly the useful bytes.
  EXPECT_EQ(plan.transfer_bytes(), 16u);
  EXPECT_EQ(plan.useful_bytes(), 16u);
}

TEST_F(PlanTest, ListAccessMergesAdjacentPieces) {
  // Two touching extents inside one brick merge to one wire extent; a
  // whole-brick-spanning extent also merges across consecutive slots of the
  // same subfile (bricks 0 and 4 are slots 0 and 1 on server 0).
  PlanOptions options;
  options.rotate_start = false;
  const ClientPlan touching =
      PlanListAccess(map_, dist_, 0, {{0, 3}, {3, 2}}, options).value();
  ASSERT_EQ(touching.num_requests(), 1u);
  ASSERT_EQ(touching.requests[0].list_extents.size(), 1u);
  EXPECT_EQ(touching.requests[0].list_extents[0], (ListExtent{0, 0, 5}));
  EXPECT_EQ(touching.requests[0].bricks[0].fragments, 1u);

  // Bytes 0..48 touch bricks 0..5; server 0's pieces (bricks 0 and 4 →
  // slots 0 and 1) are adjacent in the subfile but NOT in the packed
  // buffer (bricks 1..3 sit between them), so they must stay separate.
  const ClientPlan spanning =
      PlanListAccess(map_, dist_, 0, {{0, 48}}, options).value();
  ASSERT_EQ(spanning.num_requests(), 4u);
  EXPECT_EQ(spanning.requests[0].list_extents.size(), 2u);
  EXPECT_EQ(spanning.requests[0].list_extents[0], (ListExtent{0, 0, 8}));
  EXPECT_EQ(spanning.requests[0].list_extents[1], (ListExtent{8, 32, 8}));
}

TEST_F(PlanTest, ListAccessSingleServerMergesAcrossSlots) {
  // With one server every brick lands on it consecutively: a contiguous
  // file range becomes ONE wire extent spanning slots.
  const BrickDistribution one = BrickDistribution::RoundRobin(32, 1).value();
  PlanOptions options;
  const ClientPlan plan =
      PlanListAccess(map_, one, 0, {{0, 24}}, options).value();
  ASSERT_EQ(plan.num_requests(), 1u);
  ASSERT_EQ(plan.requests[0].list_extents.size(), 1u);
  EXPECT_EQ(plan.requests[0].list_extents[0], (ListExtent{0, 0, 24}));
  EXPECT_EQ(plan.requests[0].bricks.size(), 3u);
}

TEST_F(PlanTest, ListAccessRotationStaggersStartServers) {
  PlanOptions options;
  options.rotate_start = true;
  std::vector<FileExtent> extents;
  for (std::uint64_t i = 0; i < 8; ++i) extents.push_back({i * 8, 2});
  for (std::uint32_t client = 0; client < 4; ++client) {
    const ClientPlan plan =
        PlanListAccess(map_, dist_, client, extents, options).value();
    ASSERT_EQ(plan.num_requests(), 4u);
    EXPECT_EQ(plan.requests[0].server, client % 4);
  }
}

TEST_F(PlanTest, ListAccessValidatesExtents) {
  PlanOptions options;
  // Zero-length extent.
  EXPECT_FALSE(PlanListAccess(map_, dist_, 0, {{0, 0}}, options).ok());
  // Overlap.
  EXPECT_FALSE(
      PlanListAccess(map_, dist_, 0, {{0, 16}, {8, 4}}, options).ok());
  // Out of order.
  EXPECT_FALSE(
      PlanListAccess(map_, dist_, 0, {{64, 4}, {0, 4}}, options).ok());
  // Past the distribution's bricks.
  EXPECT_FALSE(
      PlanListAccess(map_, dist_, 0, {{32 * 8, 4}}, options).ok());
  // Adjacent extents are legal (they merge).
  EXPECT_TRUE(PlanListAccess(map_, dist_, 0, {{0, 4}, {4, 4}}, options).ok());
}

TEST_F(PlanTest, ListAccessRequiresLinearFile) {
  const BrickMap tiled = BrickMap::Multidim({8, 8}, {4, 4}, 1).value();
  const BrickDistribution dist =
      BrickDistribution::RoundRobin(tiled.num_bricks(), 2).value();
  PlanOptions options;
  EXPECT_FALSE(PlanListAccess(tiled, dist, 0, {{0, 4}}, options).ok());
}

TEST_F(PlanTest, ListAccessEmptyExtentsYieldEmptyPlan) {
  PlanOptions options;
  const ClientPlan plan = PlanListAccess(map_, dist_, 0, {}, options).value();
  EXPECT_TRUE(plan.list_io);
  EXPECT_EQ(plan.num_requests(), 0u);
}

TEST_F(PlanTest, ListAccessAccountingMatchesSievePlan) {
  // A list plan's per-brick useful/transfer accounting equals the sieve
  // (non-whole-brick) plan for the same single extent.
  PlanOptions sieve;
  sieve.combine = true;
  sieve.rotate_start = false;
  sieve.whole_brick_reads = false;
  PlanOptions list = sieve;
  const ClientPlan a = PlanByteAccess(map_, dist_, 0, 4, 40, sieve).value();
  const ClientPlan b = PlanListAccess(map_, dist_, 0, {{4, 40}}, list).value();
  EXPECT_EQ(a.transfer_bytes(), b.transfer_bytes());
  EXPECT_EQ(a.useful_bytes(), b.useful_bytes());
  EXPECT_EQ(a.num_requests(), b.num_requests());
}

}  // namespace
}  // namespace dpfs::layout
