#include "layout/hpf.h"

#include <gtest/gtest.h>

namespace dpfs::layout {
namespace {

TEST(HpfPatternTest, ParseCanonicalForms) {
  EXPECT_EQ(HpfPattern::Parse("(BLOCK,*)").value().dims,
            (std::vector<DimDist>{DimDist::kBlock, DimDist::kStar}));
  EXPECT_EQ(HpfPattern::Parse("(*,BLOCK)").value().dims,
            (std::vector<DimDist>{DimDist::kStar, DimDist::kBlock}));
  EXPECT_EQ(HpfPattern::Parse("(BLOCK,BLOCK)").value().dims,
            (std::vector<DimDist>{DimDist::kBlock, DimDist::kBlock}));
}

TEST(HpfPatternTest, ParseIsLenient) {
  EXPECT_TRUE(HpfPattern::Parse("block, *").ok());
  EXPECT_TRUE(HpfPattern::Parse(" ( Block , Block ) ").ok());
  EXPECT_TRUE(HpfPattern::Parse("*,*,BLOCK").ok());
}

TEST(HpfPatternTest, ParseRejectsGarbage) {
  EXPECT_FALSE(HpfPattern::Parse("").ok());
  EXPECT_FALSE(HpfPattern::Parse("(CYCLIC,*)").ok());
  EXPECT_FALSE(HpfPattern::Parse("( , )").ok());
}

TEST(HpfPatternTest, ToStringRoundTrip) {
  for (const char* text : {"(BLOCK,*)", "(*,BLOCK)", "(BLOCK,BLOCK)",
                           "(*,*,BLOCK)"}) {
    EXPECT_EQ(HpfPattern::Parse(text).value().ToString(), text);
  }
}

TEST(HpfPatternTest, NumBlockDims) {
  EXPECT_EQ(HpfPattern::Parse("(BLOCK,*)").value().num_block_dims(), 1u);
  EXPECT_EQ(HpfPattern::Parse("(BLOCK,BLOCK)").value().num_block_dims(), 2u);
  EXPECT_EQ(HpfPattern::Parse("(*,*)").value().num_block_dims(), 0u);
}

TEST(ProcessGridTest, AutoOneDim) {
  EXPECT_EQ(ProcessGrid::Auto(8, 1).grid, (Shape{8}));
  EXPECT_EQ(ProcessGrid::Auto(1, 1).grid, (Shape{1}));
}

TEST(ProcessGridTest, AutoTwoDimsIsNearSquare) {
  const Shape grid4 = ProcessGrid::Auto(4, 2).grid;
  EXPECT_EQ(NumElements(grid4), 4u);
  EXPECT_EQ(grid4, (Shape{2, 2}));
  const Shape grid16 = ProcessGrid::Auto(16, 2).grid;
  EXPECT_EQ(grid16, (Shape{4, 4}));
  const Shape grid8 = ProcessGrid::Auto(8, 2).grid;
  EXPECT_EQ(NumElements(grid8), 8u);
  // 4x2 or 2x4; near-square either way.
  EXPECT_LE(std::max(grid8[0], grid8[1]) / std::min(grid8[0], grid8[1]), 2u);
}

TEST(ProcessGridTest, AutoHandlesPrimes) {
  const Shape grid = ProcessGrid::Auto(7, 2).grid;
  EXPECT_EQ(NumElements(grid), 7u);
}

TEST(ChunkTest, BlockStar) {
  // (BLOCK,*) over 8x8 with 4 processes: each gets 2 full rows (Fig 5's
  // "each processor will access exactly two rows").
  const Shape array = {8, 8};
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,*)").value();
  ProcessGrid grid;
  grid.grid = {4};
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    const Region chunk = ChunkForProcess(array, pattern, grid, rank).value();
    EXPECT_EQ(chunk.lower, (Coords{rank * 2, 0}));
    EXPECT_EQ(chunk.extent, (Shape{2, 8}));
  }
}

TEST(ChunkTest, StarBlock) {
  // (*,BLOCK): each process gets 2 full columns.
  const Shape array = {8, 8};
  const HpfPattern pattern = HpfPattern::Parse("(*,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {4};
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    const Region chunk = ChunkForProcess(array, pattern, grid, rank).value();
    EXPECT_EQ(chunk.lower, (Coords{0, rank * 2}));
    EXPECT_EQ(chunk.extent, (Shape{8, 2}));
  }
}

TEST(ChunkTest, BlockBlock) {
  const Shape array = {8, 8};
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {2, 2};
  EXPECT_EQ(ChunkForProcess(array, pattern, grid, 0).value(),
            (Region{{0, 0}, {4, 4}}));
  EXPECT_EQ(ChunkForProcess(array, pattern, grid, 1).value(),
            (Region{{0, 4}, {4, 4}}));
  EXPECT_EQ(ChunkForProcess(array, pattern, grid, 2).value(),
            (Region{{4, 0}, {4, 4}}));
  EXPECT_EQ(ChunkForProcess(array, pattern, grid, 3).value(),
            (Region{{4, 4}, {4, 4}}));
}

TEST(ChunkTest, ChunksTileTheArrayExactly) {
  const Shape array = {16, 24};
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {4, 3};
  const auto chunks = AllChunks(array, pattern, grid).value();
  ASSERT_EQ(chunks.size(), 12u);
  std::uint64_t covered = 0;
  for (const Region& chunk : chunks) covered += chunk.num_elements();
  EXPECT_EQ(covered, NumElements(array));
  // Pairwise disjoint.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    for (std::size_t j = i + 1; j < chunks.size(); ++j) {
      EXPECT_TRUE(Intersect(chunks[i], chunks[j]).empty())
          << i << " vs " << j;
    }
  }
}

TEST(ChunkTest, ErrorsOnBadInputs) {
  const Shape array = {8, 8};
  const HpfPattern pattern = HpfPattern::Parse("(BLOCK,*)").value();
  ProcessGrid grid;
  grid.grid = {4};
  // Rank out of range.
  EXPECT_FALSE(ChunkForProcess(array, pattern, grid, 4).ok());
  // Pattern rank mismatch.
  EXPECT_FALSE(
      ChunkForProcess({8}, pattern, grid, 0).ok());
  // Non-divisible extent.
  ProcessGrid grid3;
  grid3.grid = {3};
  EXPECT_FALSE(ChunkForProcess(array, pattern, grid3, 0).ok());
  // Grid rank does not match BLOCK count.
  ProcessGrid grid2d;
  grid2d.grid = {2, 2};
  EXPECT_FALSE(ChunkForProcess(array, pattern, grid2d, 0).ok());
}

}  // namespace
}  // namespace dpfs::layout
