#include "layout/placement.h"

#include <gtest/gtest.h>

namespace dpfs::layout {
namespace {

TEST(PolicyTest, Parse) {
  EXPECT_EQ(ParsePlacementPolicy("round-robin").value(),
            PlacementPolicy::kRoundRobin);
  EXPECT_EQ(ParsePlacementPolicy("rr").value(), PlacementPolicy::kRoundRobin);
  EXPECT_EQ(ParsePlacementPolicy("GREEDY").value(), PlacementPolicy::kGreedy);
  EXPECT_FALSE(ParsePlacementPolicy("random").ok());
}

TEST(RoundRobinTest, Fig3Distribution) {
  // Fig 3: 32 bricks over 4 devices round-robin.
  const BrickDistribution dist = BrickDistribution::RoundRobin(32, 4).value();
  EXPECT_EQ(dist.num_bricks(), 32u);
  EXPECT_EQ(dist.num_servers(), 4u);
  for (BrickId brick = 0; brick < 32; ++brick) {
    EXPECT_EQ(dist.server_for(brick), brick % 4);
    EXPECT_EQ(dist.slot_for(brick), brick / 4);
  }
  EXPECT_EQ(dist.bricks_on(0),
            (std::vector<BrickId>{0, 4, 8, 12, 16, 20, 24, 28}));
}

TEST(RoundRobinTest, ZeroServersRejected) {
  EXPECT_FALSE(BrickDistribution::RoundRobin(8, 0).ok());
}

TEST(RoundRobinTest, EmptyFileIsValid) {
  const BrickDistribution dist = BrickDistribution::RoundRobin(0, 4).value();
  EXPECT_EQ(dist.num_bricks(), 0u);
}

TEST(GreedyTest, HomogeneousEqualsRoundRobinCounts) {
  const BrickDistribution dist =
      BrickDistribution::Greedy(32, {1, 1, 1, 1}).value();
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(dist.bricks_on(s).size(), 8u);
  }
}

TEST(GreedyTest, Fig8AlgorithmExactSequence) {
  // Hand-simulate Fig 8 with P = {1, 3}: A starts {0,0}.
  // brick 0: A+P = {1,3} → server 0, A={1,0}
  // brick 1: {2,3} → server 0, A={2,0}
  // brick 2: {3,3} → tie → lowest k = 0, A={3,0}
  // brick 3: {4,3} → server 1, A={3,3}
  // brick 4: {4,6} → server 0, A={4,3}
  // brick 5: {5,6} → server 0, A={5,3}
  const BrickDistribution dist = BrickDistribution::Greedy(6, {1, 3}).value();
  EXPECT_EQ(dist.server_for(0), 0u);
  EXPECT_EQ(dist.server_for(1), 0u);
  EXPECT_EQ(dist.server_for(2), 0u);
  EXPECT_EQ(dist.server_for(3), 1u);
  EXPECT_EQ(dist.server_for(4), 0u);
  EXPECT_EQ(dist.server_for(5), 0u);
}

TEST(GreedyTest, FastServerGetsProportionallyMoreBricks) {
  // §8.2: "class 1 is about 3 times faster than class 3, so the greedy
  // algorithm will assign class 1 storage three times the number of bricks".
  const BrickDistribution dist =
      BrickDistribution::Greedy(4000, {1, 3}).value();
  const double ratio =
      static_cast<double>(dist.bricks_on(0).size()) /
      static_cast<double>(dist.bricks_on(1).size());
  EXPECT_NEAR(ratio, 3.0, 0.01);
}

TEST(GreedyTest, HalfFastHalfSlowMix) {
  // The Fig 13/14 setup: half class-1 (P=1) and half class-3 (P=3) servers.
  const BrickDistribution dist =
      BrickDistribution::Greedy(8000, {1, 1, 3, 3}).value();
  const std::size_t fast =
      dist.bricks_on(0).size() + dist.bricks_on(1).size();
  const std::size_t slow =
      dist.bricks_on(2).size() + dist.bricks_on(3).size();
  EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow), 3.0,
              0.05);
  EXPECT_EQ(fast + slow, 8000u);
}

TEST(GreedyTest, RejectsZeroPerformance) {
  EXPECT_FALSE(BrickDistribution::Greedy(8, {1, 0}).ok());
  EXPECT_FALSE(BrickDistribution::Greedy(8, {}).ok());
}

TEST(GreedyTest, SlotsAreDenseWithinSubfile) {
  const BrickDistribution dist =
      BrickDistribution::Greedy(100, {1, 2, 5}).value();
  for (ServerId s = 0; s < 3; ++s) {
    const std::vector<BrickId>& bricks = dist.bricks_on(s);
    for (std::size_t slot = 0; slot < bricks.size(); ++slot) {
      EXPECT_EQ(dist.slot_for(bricks[slot]), slot);
      EXPECT_EQ(dist.server_for(bricks[slot]), s);
    }
  }
}

TEST(CreateTest, DispatchesByPolicy) {
  const BrickDistribution rr =
      BrickDistribution::Create(PlacementPolicy::kRoundRobin, 12, {1, 3, 1})
          .value();
  EXPECT_EQ(rr.bricks_on(0).size(), 4u);  // RR ignores performance
  const BrickDistribution greedy =
      BrickDistribution::Create(PlacementPolicy::kGreedy, 12, {1, 3, 1})
          .value();
  EXPECT_GT(greedy.bricks_on(0).size(), greedy.bricks_on(1).size());
}

TEST(CapacityAwareTest, RespectsBudgets) {
  // Two equal-speed servers, one tiny: the tiny one takes its 3 bricks and
  // the rest spill to the big one.
  const BrickDistribution dist =
      BrickDistribution::CapacityAware(20, {1, 1}, {100, 3}).value();
  EXPECT_EQ(dist.bricks_on(1).size(), 3u);
  EXPECT_EQ(dist.bricks_on(0).size(), 17u);
}

TEST(CapacityAwareTest, MatchesGreedyWhenCapacityIsAmple) {
  const BrickDistribution greedy =
      BrickDistribution::Greedy(64, {1, 3, 2}).value();
  const BrickDistribution capped =
      BrickDistribution::CapacityAware(64, {1, 3, 2}, {1000, 1000, 1000})
          .value();
  for (BrickId brick = 0; brick < 64; ++brick) {
    EXPECT_EQ(capped.server_for(brick), greedy.server_for(brick));
  }
}

TEST(CapacityAwareTest, InsufficientTotalCapacityFails) {
  const Result<BrickDistribution> dist =
      BrickDistribution::CapacityAware(20, {1, 1}, {10, 9});
  EXPECT_FALSE(dist.ok());
  EXPECT_EQ(dist.status().code(), StatusCode::kResourceExhausted);
}

TEST(CapacityAwareTest, ExactFitUsesEveryBudget) {
  const BrickDistribution dist =
      BrickDistribution::CapacityAware(12, {1, 2, 3}, {4, 4, 4}).value();
  for (ServerId s = 0; s < 3; ++s) {
    EXPECT_EQ(dist.bricks_on(s).size(), 4u);
  }
}

TEST(CapacityAwareTest, MismatchedVectorsRejected) {
  EXPECT_FALSE(BrickDistribution::CapacityAware(4, {1, 1}, {10}).ok());
  EXPECT_FALSE(BrickDistribution::CapacityAware(4, {}, {}).ok());
  EXPECT_FALSE(BrickDistribution::CapacityAware(4, {0, 1}, {10, 10}).ok());
}

TEST(CapacityAwareTest, ZeroCapacityServerGetsNothing) {
  const BrickDistribution dist =
      BrickDistribution::CapacityAware(10, {1, 1, 1}, {20, 0, 20}).value();
  EXPECT_TRUE(dist.bricks_on(1).empty());
  EXPECT_EQ(dist.bricks_on(0).size() + dist.bricks_on(2).size(), 10u);
}

TEST(PolicyTest, ParseCapacityAware) {
  EXPECT_EQ(ParsePlacementPolicy("capacity-aware").value(),
            PlacementPolicy::kCapacityAware);
  EXPECT_EQ(PlacementPolicyName(PlacementPolicy::kCapacityAware),
            "capacity-aware");
}

TEST(BrickListCodecTest, RoundTrip) {
  const std::vector<BrickId> bricks = {0, 2, 6, 8, 12, 14, 18, 20, 24, 26, 30};
  const std::string encoded = BrickDistribution::EncodeBrickList(bricks);
  EXPECT_EQ(encoded, "0,2,6,8,12,14,18,20,24,26,30");
  EXPECT_EQ(BrickDistribution::DecodeBrickList(encoded).value(), bricks);
}

TEST(BrickListCodecTest, EmptyList) {
  EXPECT_EQ(BrickDistribution::EncodeBrickList({}), "");
  EXPECT_TRUE(BrickDistribution::DecodeBrickList("").value().empty());
  EXPECT_TRUE(BrickDistribution::DecodeBrickList("  ").value().empty());
}

TEST(BrickListCodecTest, RejectsGarbage) {
  EXPECT_FALSE(BrickDistribution::DecodeBrickList("1,x,3").ok());
  EXPECT_FALSE(BrickDistribution::DecodeBrickList("1,-2").ok());
}

TEST(FromBrickListsTest, RebuildsDistribution) {
  const BrickDistribution original =
      BrickDistribution::Greedy(64, {1, 2, 3}).value();
  std::vector<std::vector<BrickId>> lists;
  for (ServerId s = 0; s < 3; ++s) lists.push_back(original.bricks_on(s));
  const BrickDistribution rebuilt =
      BrickDistribution::FromBrickLists(64, std::move(lists)).value();
  for (BrickId brick = 0; brick < 64; ++brick) {
    EXPECT_EQ(rebuilt.server_for(brick), original.server_for(brick));
    EXPECT_EQ(rebuilt.slot_for(brick), original.slot_for(brick));
  }
}

TEST(FromBrickListsTest, RejectsInconsistentLists) {
  // Missing brick.
  EXPECT_FALSE(BrickDistribution::FromBrickLists(4, {{0, 1}, {2}}).ok());
  // Duplicate brick.
  EXPECT_FALSE(BrickDistribution::FromBrickLists(4, {{0, 1}, {1, 2, 3}}).ok());
  // Out-of-range brick.
  EXPECT_FALSE(BrickDistribution::FromBrickLists(4, {{0, 1}, {2, 7}}).ok());
}

TEST(DistributionPropertyTest, EveryBrickAssignedExactlyOnce) {
  for (const std::uint32_t servers : {1u, 3u, 7u}) {
    std::vector<std::uint32_t> perf(servers);
    for (std::uint32_t s = 0; s < servers; ++s) perf[s] = 1 + s % 3;
    const BrickDistribution dist =
        BrickDistribution::Greedy(101, perf).value();
    std::size_t total = 0;
    for (ServerId s = 0; s < servers; ++s) total += dist.bricks_on(s).size();
    EXPECT_EQ(total, 101u);
  }
}

}  // namespace
}  // namespace dpfs::layout
