// Randomized property tests over the striping layer: for arbitrary
// geometries and regions, the brick maps must tile exactly, the run
// enumeration must cover the request buffer exactly once, and planning must
// conserve bytes regardless of combination or placement.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "layout/plan.h"

namespace dpfs::layout {
namespace {

struct GeometryCase {
  std::uint64_t seed;
  int level;  // 0 linear-array, 1 multidim, 2 array
};

class RandomGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  /// Builds a random map + in-bounds region from the parameterized seed.
  void Build() {
    const auto [level, seed] = GetParam();
    SplitMix64 rng(static_cast<std::uint64_t>(seed) * 7919 + level);
    const std::size_t rank = 1 + rng.NextBelow(3);
    Shape shape(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      shape[d] = 1 + rng.NextBelow(40);
    }
    element_size_ = 1 + rng.NextBelow(8);

    switch (level) {
      case 0: {
        const std::uint64_t brick_bytes = 1 + rng.NextBelow(64);
        map_ = BrickMap::LinearArray(shape, element_size_, brick_bytes).value();
        break;
      }
      case 1: {
        Shape brick(rank);
        for (std::size_t d = 0; d < rank; ++d) {
          brick[d] = 1 + rng.NextBelow(shape[d]);
        }
        map_ = BrickMap::Multidim(shape, brick, element_size_).value();
        break;
      }
      case 2: {
        // Array level needs divisible dims; force them.
        HpfPattern pattern;
        ProcessGrid grid;
        for (std::size_t d = 0; d < rank; ++d) {
          const bool block = rng.NextBelow(2) == 0 || d == 0;
          pattern.dims.push_back(block ? DimDist::kBlock : DimDist::kStar);
          if (block) {
            const std::uint64_t parts = 1 + rng.NextBelow(4);
            shape[d] = ((shape[d] + parts - 1) / parts) * parts;
            grid.grid.push_back(parts);
          }
        }
        map_ = BrickMap::Array(shape, pattern, grid, element_size_).value();
        break;
      }
    }
    shape_ = map_.array_shape();
    region_.lower.resize(rank);
    region_.extent.resize(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      region_.lower[d] = rng.NextBelow(shape_[d]);
      region_.extent[d] = 1 + rng.NextBelow(shape_[d] - region_.lower[d]);
    }
  }

  BrickMap map_;
  Shape shape_;
  Region region_;
  std::uint64_t element_size_ = 1;
};

TEST_P(RandomGeometryTest, WholeArraySummaryTilesExactly) {
  Build();
  Region all;
  all.lower.assign(shape_.size(), 0);
  all.extent = shape_;
  const auto usage = map_.SummarizeRegion(all).value();
  std::uint64_t total = 0;
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, map_.brick_valid_bytes(brick));
    total += brick_usage.useful_bytes;
  }
  EXPECT_EQ(total, NumElements(shape_) * element_size_);
}

TEST_P(RandomGeometryTest, RunsCoverBufferExactlyOnce) {
  Build();
  const std::uint64_t buffer_bytes = region_.num_elements() * element_size_;
  std::vector<int> coverage(buffer_bytes, 0);
  std::uint64_t expected_offset = 0;
  ASSERT_TRUE(map_.ForEachRun(region_, [&](const BrickRun& run) {
    EXPECT_EQ(run.buffer_offset, expected_offset);
    expected_offset += run.length;
    EXPECT_LT(run.brick, map_.num_bricks());
    EXPECT_LE(run.offset_in_brick + run.length, map_.brick_bytes());
    for (std::uint64_t i = 0; i < run.length; ++i) {
      coverage.at(run.buffer_offset + i) += 1;
    }
  }).ok());
  EXPECT_EQ(expected_offset, buffer_bytes);
  for (std::uint64_t i = 0; i < buffer_bytes; ++i) {
    ASSERT_EQ(coverage[i], 1) << "byte " << i;
  }
}

TEST_P(RandomGeometryTest, SummaryAgreesWithRunEnumeration) {
  Build();
  const auto usage = map_.SummarizeRegion(region_).value();
  std::map<BrickId, std::uint64_t> bytes_by_brick;
  std::map<BrickId, std::uint64_t> runs_by_brick;
  ASSERT_TRUE(map_.ForEachRun(region_, [&](const BrickRun& run) {
    bytes_by_brick[run.brick] += run.length;
    runs_by_brick[run.brick] += 1;
  }).ok());
  ASSERT_EQ(usage.size(), bytes_by_brick.size());
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.useful_bytes, bytes_by_brick.at(brick));
    EXPECT_EQ(brick_usage.num_runs, runs_by_brick.at(brick));
    EXPECT_GE(brick_usage.fragments, 1u);
    EXPECT_LE(brick_usage.fragments, brick_usage.num_runs);
  }
}

TEST_P(RandomGeometryTest, FragmentCountMatchesCoalescedRuns) {
  // The analytic fragment count must equal what actually coalescing the
  // enumerated runs produces.
  Build();
  const auto usage = map_.SummarizeRegion(region_).value();
  std::map<BrickId, std::uint64_t> coalesced;
  std::map<BrickId, std::uint64_t> last_end;
  ASSERT_TRUE(map_.ForEachRun(region_, [&](const BrickRun& run) {
    const auto it = last_end.find(run.brick);
    if (it == last_end.end() || it->second != run.offset_in_brick) {
      coalesced[run.brick] += 1;
    }
    last_end[run.brick] = run.offset_in_brick + run.length;
  }).ok());
  for (const auto& [brick, brick_usage] : usage) {
    EXPECT_EQ(brick_usage.fragments, coalesced.at(brick))
        << "brick " << brick;
  }
}

TEST_P(RandomGeometryTest, RunsStayInsideTheFetchedBrickImage) {
  // Whole-brick reads fetch brick_fetch_bytes; every scatter run must land
  // inside that image (edge tiles keep full-tile offsets, so valid_bytes is
  // NOT the right bound — this property caught that bug).
  Build();
  ASSERT_TRUE(map_.ForEachRun(region_, [&](const BrickRun& run) {
    EXPECT_LE(run.offset_in_brick + run.length,
              map_.brick_fetch_bytes(run.brick))
        << "brick " << run.brick;
  }).ok());
}

TEST_P(RandomGeometryTest, PlanConservesBytesAcrossOptions) {
  Build();
  SplitMix64 rng(std::get<1>(GetParam()) * 31 + 5);
  std::vector<std::uint32_t> perf(1 + rng.NextBelow(6));
  for (std::uint32_t& p : perf) {
    p = 1 + static_cast<std::uint32_t>(rng.NextBelow(4));
  }
  const BrickDistribution dist =
      BrickDistribution::Greedy(map_.num_bricks(), perf).value();
  PlanOptions general;
  general.combine = false;
  PlanOptions combined;
  combined.combine = true;
  const ClientPlan plan_g =
      PlanRegionAccess(map_, dist, 0, region_, general).value();
  const ClientPlan plan_c =
      PlanRegionAccess(map_, dist, 0, region_, combined).value();
  EXPECT_EQ(plan_g.useful_bytes(), plan_c.useful_bytes());
  EXPECT_EQ(plan_g.useful_bytes(),
            region_.num_elements() * element_size_);
  EXPECT_LE(plan_c.num_requests(), plan_g.num_requests());
  EXPECT_LE(plan_c.num_requests(), perf.size());
  // Each request targets the server that actually owns its bricks.
  for (const ClientPlan* plan : {&plan_g, &plan_c}) {
    for (const ServerRequest& request : plan->requests) {
      for (const BrickRequest& brick : request.bricks) {
        EXPECT_EQ(dist.server_for(brick.brick), request.server);
      }
    }
  }
}

TEST_P(RandomGeometryTest, RotationIsAPermutationOfRequests) {
  Build();
  const BrickDistribution dist =
      BrickDistribution::RoundRobin(map_.num_bricks(), 4).value();
  PlanOptions rotated;
  rotated.combine = true;
  rotated.rotate_start = true;
  PlanOptions unrotated;
  unrotated.combine = true;
  unrotated.rotate_start = false;
  for (std::uint32_t client = 0; client < 5; ++client) {
    const ClientPlan a =
        PlanRegionAccess(map_, dist, client, region_, rotated).value();
    const ClientPlan b =
        PlanRegionAccess(map_, dist, client, region_, unrotated).value();
    ASSERT_EQ(a.num_requests(), b.num_requests());
    std::multiset<ServerId> servers_a;
    std::multiset<ServerId> servers_b;
    for (const ServerRequest& request : a.requests) {
      servers_a.insert(request.server);
    }
    for (const ServerRequest& request : b.requests) {
      servers_b.insert(request.server);
    }
    EXPECT_EQ(servers_a, servers_b);
  }
}

std::string GeometryCaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& param_info) {
  static constexpr const char* kLevels[] = {"LinearArray", "Multidim",
                                            "Array"};
  return std::string(kLevels[std::get<0>(param_info.param)]) + "Seed" +
         std::to_string(std::get<1>(param_info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGeometryTest,
    ::testing::Combine(::testing::Values(0, 1, 2),   // level
                       ::testing::Range(0, 20)),     // seed
    GeometryCaseName);

class GreedyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyPropertyTest, FasterServersNeverGetFewerBricks) {
  SplitMix64 rng(GetParam() * 97 + 13);
  std::vector<std::uint32_t> perf(2 + rng.NextBelow(6));
  for (std::uint32_t& p : perf) {
    p = 1 + static_cast<std::uint32_t>(rng.NextBelow(5));
  }
  const std::uint64_t bricks = 50 + rng.NextBelow(500);
  const BrickDistribution dist =
      BrickDistribution::Greedy(bricks, perf).value();
  for (std::size_t a = 0; a < perf.size(); ++a) {
    for (std::size_t b = 0; b < perf.size(); ++b) {
      if (perf[a] < perf[b]) {
        EXPECT_GE(dist.bricks_on(static_cast<ServerId>(a)).size() + 1,
                  dist.bricks_on(static_cast<ServerId>(b)).size())
            << "perf " << perf[a] << " vs " << perf[b];
      }
    }
  }
}

TEST_P(GreedyPropertyTest, LoadIsBalancedInWeightedTerms) {
  // After placement, A[k] = count_k * P_k should be near-equal: the greedy
  // rule keeps max(A) - min(A) <= max(P).
  SplitMix64 rng(GetParam() * 131 + 7);
  std::vector<std::uint32_t> perf(2 + rng.NextBelow(5));
  std::uint32_t max_perf = 1;
  for (std::uint32_t& p : perf) {
    p = 1 + static_cast<std::uint32_t>(rng.NextBelow(6));
    max_perf = std::max(max_perf, p);
  }
  const std::uint64_t bricks = 200 + rng.NextBelow(800);
  const BrickDistribution dist =
      BrickDistribution::Greedy(bricks, perf).value();
  std::uint64_t min_load = ~0ull;
  std::uint64_t max_load = 0;
  for (std::size_t k = 0; k < perf.size(); ++k) {
    const std::uint64_t load =
        dist.bricks_on(static_cast<ServerId>(k)).size() * perf[k];
    min_load = std::min(min_load, load);
    max_load = std::max(max_load, load);
  }
  EXPECT_LE(max_load - min_load, max_perf);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyPropertyTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace dpfs::layout
