// Unit tests for the metrics registry (common/metrics.h): instrument
// semantics, the text exposition format, and multi-threaded updates (the
// latter doubles as the TSan witness for the lock-free hot paths).
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dpfs::metrics {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.Set(10);
  gauge.Add(5);
  gauge.Sub(20);
  EXPECT_EQ(gauge.value(), -5);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  const Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p50, 0u);
  EXPECT_EQ(snap.p99, 0u);
}

TEST(HistogramTest, CountSumMaxAreExact) {
  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(100);
  histogram.Observe(7);
  const Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 107u);
  EXPECT_EQ(snap.max, 100u);
}

TEST(HistogramTest, QuantilesBracketedByBuckets) {
  // 100 observations of value 1000 (bucket upper bound 1023): every
  // quantile must come back in [1000, 1023] — within one power-of-two
  // bucket of the true value, clamped by max.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Observe(1000);
  const Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.p50, 1000u);  // clamped to max
  EXPECT_EQ(snap.p95, 1000u);
  EXPECT_EQ(snap.p99, 1000u);
  EXPECT_EQ(snap.max, 1000u);
}

TEST(HistogramTest, QuantileOrderingAcrossSpread) {
  // 90 fast (value 8) + 10 slow (value 4096): p50 must report fast, p99
  // must land in the slow bucket (upper bound 8191, clamped to max 4096).
  Histogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Observe(8);
  for (int i = 0; i < 10; ++i) histogram.Observe(4096);
  const Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_LE(snap.p50, 15u);  // fast bucket's upper bound
  EXPECT_GE(snap.p99, 4096u);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram histogram;
  histogram.Observe(~std::uint64_t{0});
  const Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, ~std::uint64_t{0});
}

TEST(RegistryTest, GetInternsByName) {
  Registry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct names are distinct instruments.
  EXPECT_NE(&registry.GetCounter("y.count"), &a);
}

TEST(RegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
  Counter& via_free = GetCounter("metrics_test.global_probe");
  Counter& via_method = Registry::Global().GetCounter(
      "metrics_test.global_probe");
  EXPECT_EQ(&via_free, &via_method);
}

TEST(RegistryTest, TextSnapshotFormatAndSorting) {
  Registry registry;
  registry.GetCounter("b.counter").Add(7);
  registry.GetGauge("c.gauge").Set(-3);
  registry.GetHistogram("a.hist").Observe(5);
  const std::string snapshot = registry.TextSnapshot();
  // One line per instrument, sorted by metric name regardless of kind.
  EXPECT_EQ(snapshot,
            "histogram a.hist count=1 sum=5 p50=5 p95=5 p99=5 max=5\n"
            "counter b.counter 7\n"
            "gauge c.gauge -3\n");
}

TEST(RegistryTest, EmptySnapshotIsEmpty) {
  Registry registry;
  EXPECT_EQ(registry.TextSnapshot(), "");
}

TEST(RegistryTest, ServerEngineInstrumentsExposeWithCatalogKinds) {
  // The event-engine instruments (docs/OBSERVABILITY.md) render with the
  // kinds the catalog declares; the dump file and `metrics` opcode both
  // carry exactly these lines.
  Registry registry;
  registry.GetGauge("io_server.inflight_sessions").Add(2);
  registry.GetHistogram("io_server.batch_size").Observe(4);
  registry.GetCounter("io_server.epoll_wake").Add(9);
  registry.GetCounter("io_server.coalesced_fragments").Add(3);
  EXPECT_EQ(registry.TextSnapshot(),
            "histogram io_server.batch_size count=1 sum=4 p50=4 p95=4 "
            "p99=4 max=4\n"
            "counter io_server.coalesced_fragments 3\n"
            "counter io_server.epoll_wake 9\n"
            "gauge io_server.inflight_sessions 2\n");
}

TEST(RegistryTest, MetadataInstrumentsExposeWithCatalogKinds) {
  // The sharded-metadb and client-cache instruments (docs/OBSERVABILITY.md):
  // per-shard statement counts carry a {shard=N} label baked into the
  // metric name, and the FileSystem metadata cache exposes hit/miss
  // counters alongside its per-instance stats.
  Registry registry;
  registry.GetCounter("client.metadata_cache.hits").Add(5);
  registry.GetCounter("client.metadata_cache.misses").Add(2);
  registry.GetHistogram("metadb.execute_us{shard=1}").Observe(8);
  registry.GetCounter("metadb.statements{shard=1}").Add(4);
  EXPECT_EQ(registry.TextSnapshot(),
            "counter client.metadata_cache.hits 5\n"
            "counter client.metadata_cache.misses 2\n"
            "histogram metadb.execute_us{shard=1} count=1 sum=8 p50=8 p95=8 "
            "p99=8 max=8\n"
            "counter metadb.statements{shard=1} 4\n");
}

TEST(ScopedTimerTest, ObservesOnDestruction) {
  Histogram histogram;
  { ScopedTimer timer(histogram); }
  const Histogram::Snapshot snap = histogram.GetSnapshot();
  EXPECT_EQ(snap.count, 1u);
}

// The TSan witness: concurrent Add/Observe against shared instruments plus
// concurrent interning and snapshotting. Counts must come out exact (relaxed
// atomics still guarantee no lost updates on fetch_add).
TEST(RegistryTest, ConcurrentUpdatesAreExactAndRaceFree) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter& counter = registry.GetCounter("mt.counter");
      Gauge& gauge = registry.GetGauge("mt.gauge");
      Histogram& histogram = registry.GetHistogram("mt.hist");
      for (int i = 0; i < kIterations; ++i) {
        counter.Add();
        gauge.Add(1);
        gauge.Sub(1);
        histogram.Observe(static_cast<std::uint64_t>(i));
        if (i % 1000 == 0) {
          // Interning and rendering race with the updates by design.
          registry.GetCounter("mt.counter." + std::to_string(t));
          (void)registry.TextSnapshot();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("mt.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetGauge("mt.gauge").value(), 0);
  const Histogram::Snapshot snap =
      registry.GetHistogram("mt.hist").GetSnapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(snap.max, static_cast<std::uint64_t>(kIterations) - 1);
}

}  // namespace
}  // namespace dpfs::metrics
