#include "common/rng.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

TEST(SplitMix64Test, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(SplitMix64Test, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64Test, NextInRangeInclusive) {
  SplitMix64 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(SplitMix64Test, RoughlyUniform) {
  SplitMix64 rng(123);
  int buckets[10] = {0};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    buckets[rng.NextBelow(10)]++;
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

}  // namespace
}  // namespace dpfs
