#include "common/status.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = NotFoundError("missing brick");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing brick");
  EXPECT_EQ(status.ToString(), "not_found: missing brick");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  const Status status = IoError("disk full").WithContext("server 3");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "server 3: disk full");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  const Status status = Status::Ok().WithContext("ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(ProtocolError("x").code(), StatusCode::kProtocolError);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "data_loss");
  EXPECT_EQ(StatusCodeName(StatusCode::kProtocolError), "protocol_error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string(1000, 'x'));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 1000u);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return InvalidArgumentError("odd");
  return v / 2;
}

Result<int> QuarterViaMacro(int v) {
  DPFS_ASSIGN_OR_RETURN(const int half, Half(v));
  DPFS_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 3 is odd at the second step
  EXPECT_FALSE(QuarterViaMacro(5).ok());
}

Status FailIfNegative(int v) {
  if (v < 0) return OutOfRangeError("negative");
  return Status::Ok();
}

Status CheckBoth(int a, int b) {
  DPFS_RETURN_IF_ERROR(FailIfNegative(a));
  DPFS_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckBoth(1, -2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dpfs
