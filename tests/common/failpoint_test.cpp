#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace dpfs::failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedCheckReturnsNothing) {
  EXPECT_FALSE(Check("test.never_armed").has_value());
  EXPECT_EQ(HitCount("test.never_armed"), 0u);
}

TEST_F(FailpointTest, ArmedCheckFiresWithStatusAndArg) {
  Spec spec;
  spec.action = Action::kShortIo;
  spec.arg = 7;
  Arm("test.point", spec);

  const auto hit = Check("test.point");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, Action::kShortIo);
  EXPECT_EQ(hit->arg, 7u);
  EXPECT_EQ(hit->status.code(), StatusCode::kIoError);  // kShortIo default
  EXPECT_EQ(hit->status.message(), "failpoint 'test.point'");
  EXPECT_EQ(HitCount("test.point"), 1u);
}

TEST_F(FailpointTest, ArmingOnePointDoesNotFireOthers) {
  Spec spec;
  spec.action = Action::kReturnError;
  Arm("test.a", spec);
  EXPECT_FALSE(Check("test.b").has_value());
  EXPECT_TRUE(Check("test.a").has_value());
}

TEST_F(FailpointTest, CustomCodeAndMessageAreCarried) {
  Spec spec;
  spec.action = Action::kReturnError;
  spec.code = StatusCode::kDataLoss;
  spec.message = "simulated corruption";
  Arm("test.point", spec);

  const auto hit = Check("test.point");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(hit->status.message(), "simulated corruption");
}

TEST_F(FailpointTest, SkipLetsEarlyEvaluationsPass) {
  Spec spec;
  spec.action = Action::kReturnError;
  spec.skip = 2;
  Arm("test.point", spec);

  EXPECT_FALSE(Check("test.point").has_value());
  EXPECT_FALSE(Check("test.point").has_value());
  EXPECT_TRUE(Check("test.point").has_value());
  EXPECT_EQ(HitCount("test.point"), 1u);  // skipped evaluations don't count
}

TEST_F(FailpointTest, CountAutoDisarmsAfterNFires) {
  Spec spec;
  spec.action = Action::kReturnError;
  spec.count = 2;
  Arm("test.point", spec);

  EXPECT_TRUE(Check("test.point").has_value());
  EXPECT_TRUE(Check("test.point").has_value());
  EXPECT_FALSE(Check("test.point").has_value());  // exhausted
  EXPECT_EQ(HitCount("test.point"), 2u);
}

TEST_F(FailpointTest, DisarmStopsFiringButKeepsCounter) {
  Spec spec;
  spec.action = Action::kReturnError;
  Arm("test.point", spec);
  EXPECT_TRUE(Check("test.point").has_value());

  Disarm("test.point");
  EXPECT_FALSE(Check("test.point").has_value());
  EXPECT_EQ(HitCount("test.point"), 1u);
}

TEST_F(FailpointTest, RearmResetsTriggers) {
  Spec spec;
  spec.action = Action::kReturnError;
  spec.count = 1;
  Arm("test.point", spec);
  EXPECT_TRUE(Check("test.point").has_value());
  EXPECT_FALSE(Check("test.point").has_value());

  Arm("test.point", spec);  // fresh count
  EXPECT_TRUE(Check("test.point").has_value());
}

TEST_F(FailpointTest, DelayCompletesInsideCheckAndReturnsNothing) {
  Spec spec;
  spec.action = Action::kDelay;
  spec.arg = 20;  // ms
  Arm("test.point", spec);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Check("test.point").has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
  EXPECT_EQ(HitCount("test.point"), 1u);  // delays count as fires
}

TEST_F(FailpointTest, ArmFromStringSingleClause) {
  ASSERT_TRUE(ArmFromString("test.point=error:unavailable").ok());
  const auto hit = Check("test.point");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, Action::kReturnError);
  EXPECT_EQ(hit->status.code(), StatusCode::kUnavailable);
}

TEST_F(FailpointTest, ArmFromStringMultipleClausesWithModifiers) {
  ASSERT_TRUE(
      ArmFromString("test.a=short:3,skip=1,count=2; test.b=busy").ok());

  EXPECT_FALSE(Check("test.a").has_value());  // skip=1
  auto hit = Check("test.a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, Action::kShortIo);
  EXPECT_EQ(hit->arg, 3u);
  EXPECT_TRUE(Check("test.a").has_value());
  EXPECT_FALSE(Check("test.a").has_value());  // count=2 exhausted

  hit = Check("test.b");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, Action::kBusy);
  EXPECT_EQ(hit->status.code(), StatusCode::kResourceExhausted);
}

TEST_F(FailpointTest, ArmFromStringBusyAliasForErrorParam) {
  ASSERT_TRUE(ArmFromString("test.point=error:busy").ok());
  const auto hit = Check("test.point");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status.code(), StatusCode::kResourceExhausted);
}

TEST_F(FailpointTest, ArmFromStringOffDisarms) {
  ASSERT_TRUE(ArmFromString("test.point=error").ok());
  EXPECT_TRUE(Check("test.point").has_value());
  ASSERT_TRUE(ArmFromString("test.point=off").ok());
  EXPECT_FALSE(Check("test.point").has_value());
}

TEST_F(FailpointTest, ArmFromStringRejectsMalformedConfigs) {
  EXPECT_EQ(ArmFromString("noequals").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFromString("=error").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFromString("p=frobnicate").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFromString("p=error:not_a_code").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFromString("p=short:abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFromString("p=error,skip=x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ArmFromString("p=error,unknown=1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, DisarmAllResetsCounters) {
  Spec spec;
  spec.action = Action::kReturnError;
  Arm("test.point", spec);
  EXPECT_TRUE(Check("test.point").has_value());
  DisarmAll();
  EXPECT_FALSE(Check("test.point").has_value());
  EXPECT_EQ(HitCount("test.point"), 0u);
}

TEST_F(FailpointTest, FailpointReturnMacroReturnsArmedStatus) {
  const auto site = []() -> Status {
    DPFS_FAILPOINT_RETURN("test.macro");
    return Status::Ok();
  };
  EXPECT_TRUE(site().ok());

  Spec spec;
  spec.action = Action::kReturnError;
  spec.code = StatusCode::kUnavailable;
  Arm("test.macro", spec);
  EXPECT_EQ(site().code(), StatusCode::kUnavailable);

  // Non-error actions are ignored by the macro.
  spec.action = Action::kShortIo;
  Arm("test.macro", spec);
  EXPECT_TRUE(site().ok());
}

TEST_F(FailpointTest, FailpointReturnMacroWorksForResult) {
  const auto site = []() -> Result<int> {
    DPFS_FAILPOINT_RETURN("test.macro");
    return 42;
  };
  ASSERT_TRUE(site().ok());

  Spec spec;
  spec.action = Action::kReturnError;
  Arm("test.macro", spec);
  EXPECT_EQ(site().status().code(), StatusCode::kIoError);
}

TEST_F(FailpointTest, ConcurrentChecksWithCountFireExactlyN) {
  Spec spec;
  spec.action = Action::kReturnError;
  spec.count = 100;
  Arm("test.point", spec);

  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < 50; ++i) {
        if (Check("test.point").has_value()) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 100);
  EXPECT_EQ(HitCount("test.point"), 100u);
}

}  // namespace
}  // namespace dpfs::failpoint
