#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace dpfs {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(pool, 64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(pool, 50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, NestedSubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace dpfs
