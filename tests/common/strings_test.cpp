#include "common/strings.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

TEST(SplitStringTest, Basic) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, PreservesEmptyFields) {
  const auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, NoSeparator) {
  const auto parts = SplitString("plain", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "plain");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  const auto parts = SplitWhitespace("  ls   -l\t/home/x  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "ls");
  EXPECT_EQ(parts[1], "-l");
  EXPECT_EQ(parts[2], "/home/x");
}

TEST(SplitWhitespaceTest, EmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(TrimWhitespaceTest, Basic) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("  "), "");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("BlOcK", "block"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(CaseTest, ToLower) { EXPECT_EQ(ToLower("DPFS-Server"), "dpfs-server"); }

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.dpfs", ".dpfs"));
  EXPECT_FALSE(EndsWith("dpfs", ".dpfs"));
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("  99  ").value(), 99);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2").value(), -2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(FormatByteSizeTest, Units) {
  EXPECT_EQ(FormatByteSize(512), "512 B");
  EXPECT_EQ(FormatByteSize(2048), "2.0 KB");
  EXPECT_EQ(FormatByteSize(5ull * 1024 * 1024), "5.0 MB");
  EXPECT_EQ(FormatByteSize(3ull * 1024 * 1024 * 1024), "3.0 GB");
}

TEST(NormalizePathTest, Basic) {
  EXPECT_EQ(NormalizePath("/a/b/c").value(), "/a/b/c");
  EXPECT_EQ(NormalizePath("a/b").value(), "/a/b");
  EXPECT_EQ(NormalizePath("/a//b/").value(), "/a/b");
  EXPECT_EQ(NormalizePath("/a/./b").value(), "/a/b");
  EXPECT_EQ(NormalizePath("/a/x/../b").value(), "/a/b");
  EXPECT_EQ(NormalizePath("/").value(), "/");
  EXPECT_EQ(NormalizePath("").value(), "/");
}

TEST(NormalizePathTest, EscapingRootFails) {
  EXPECT_FALSE(NormalizePath("/..").ok());
  EXPECT_FALSE(NormalizePath("/a/../../b").ok());
}

TEST(SplitPathTest, Basic) {
  const auto [parent1, name1] = SplitPath("/a/b/c");
  EXPECT_EQ(parent1, "/a/b");
  EXPECT_EQ(name1, "c");
  const auto [parent2, name2] = SplitPath("/top");
  EXPECT_EQ(parent2, "/");
  EXPECT_EQ(name2, "top");
  const auto [parent3, name3] = SplitPath("/");
  EXPECT_EQ(parent3, "/");
  EXPECT_EQ(name3, "");
}

}  // namespace
}  // namespace dpfs
