#include "common/options.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

Options ParseArgs(const std::vector<const char*>& argv) {
  return Options::Parse(static_cast<int>(argv.size()), argv.data()).value();
}

TEST(OptionsTest, EqualsForm) {
  const Options opts = ParseArgs({"prog", "--count=5", "--name=test"});
  EXPECT_EQ(opts.GetInt("count", 0), 5);
  EXPECT_EQ(opts.GetString("name", ""), "test");
}

TEST(OptionsTest, SpaceForm) {
  const Options opts = ParseArgs({"prog", "--count", "7"});
  EXPECT_EQ(opts.GetInt("count", 0), 7);
}

TEST(OptionsTest, BooleanFlag) {
  const Options opts = ParseArgs({"prog", "--verbose", "--combine=false"});
  EXPECT_TRUE(opts.GetBool("verbose", false));
  EXPECT_FALSE(opts.GetBool("combine", true));
  EXPECT_TRUE(opts.GetBool("missing", true));
}

TEST(OptionsTest, Positional) {
  const Options opts = ParseArgs({"prog", "input.txt", "--flag", "output.txt"});
  // "--flag output.txt" consumes output.txt as the flag value.
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "input.txt");
  EXPECT_EQ(opts.GetString("flag", ""), "output.txt");
}

TEST(OptionsTest, DoubleDashTerminator) {
  const Options opts = ParseArgs({"prog", "--a=1", "--", "--b=2", "c"});
  EXPECT_TRUE(opts.Has("a"));
  EXPECT_FALSE(opts.Has("b"));
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "--b=2");
}

TEST(OptionsTest, DoubleFlag) {
  const Options opts = ParseArgs({"prog", "--ratio=2.5"});
  EXPECT_DOUBLE_EQ(opts.GetDouble("ratio", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(opts.GetDouble("other", 1.25), 1.25);
}

TEST(OptionsTest, MalformedNumberFallsBack) {
  const Options opts = ParseArgs({"prog", "--count=abc"});
  EXPECT_EQ(opts.GetInt("count", 42), 42);
}

}  // namespace
}  // namespace dpfs
