#include "common/crc32.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c({}), 0u); }

TEST(Crc32cTest, KnownVector) {
  // RFC 3720 test vector: CRC-32C of "123456789" is 0xE3069283.
  EXPECT_EQ(Crc32c(AsBytes("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, AllZeros32Bytes) {
  // Another RFC 3720 vector: 32 bytes of zeros → 0x8A9136AA.
  const Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t one_shot = Crc32c(AsBytes(data));
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t len = std::min<std::size_t>(7, data.size() - i);
    crc = Crc32cExtend(crc, AsBytes(data.data() + i, len));
  }
  EXPECT_EQ(crc, one_shot);
}

TEST(Crc32cTest, SingleBitFlipChangesCrc) {
  Bytes data(100, 0x5A);
  const std::uint32_t before = Crc32c(data);
  data[50] ^= 0x01;
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32cTest, DifferentLengthsDiffer) {
  const Bytes a(10, 0);
  const Bytes b(11, 0);
  EXPECT_NE(Crc32c(a), Crc32c(b));
}

}  // namespace
}  // namespace dpfs
