#include "common/temp_dir.h"

#include <gtest/gtest.h>

#include <fstream>

namespace dpfs {
namespace {

TEST(TempDirTest, CreatesAndRemoves) {
  std::filesystem::path path;
  {
    const Result<TempDir> dir = TempDir::Create("dpfs-test");
    ASSERT_TRUE(dir.ok());
    path = dir.value().path();
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_NE(path.string().find("dpfs-test"), std::string::npos);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDirTest, RemovesContentsRecursively) {
  std::filesystem::path path;
  {
    TempDir dir = TempDir::Create().value();
    path = dir.path();
    std::filesystem::create_directories(dir.Sub("a/b/c"));
    std::ofstream(dir.Sub("a/b/file.txt")) << "data";
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDirTest, TwoDirsAreDistinct) {
  const TempDir a = TempDir::Create().value();
  const TempDir b = TempDir::Create().value();
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDirTest, MoveTransfersOwnership) {
  TempDir a = TempDir::Create().value();
  const std::filesystem::path path = a.path();
  TempDir b = std::move(a);
  EXPECT_EQ(b.path(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(TempDirTest, SubJoinsPath) {
  const TempDir dir = TempDir::Create().value();
  EXPECT_EQ(dir.Sub("x.db"), dir.path() / "x.db");
}

}  // namespace
}  // namespace dpfs
