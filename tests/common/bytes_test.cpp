#include "common/bytes.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

TEST(BinaryWriterTest, WritesLittleEndian) {
  BinaryWriter writer;
  writer.WriteU32(0x01020304);
  const Bytes& buffer = writer.buffer();
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0], 0x04);
  EXPECT_EQ(buffer[1], 0x03);
  EXPECT_EQ(buffer[2], 0x02);
  EXPECT_EQ(buffer[3], 0x01);
}

TEST(BinaryRoundTripTest, AllScalarTypes) {
  BinaryWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU16(0xBEEF);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-12345);
  writer.WriteI64(-9876543210);
  writer.WriteF64(3.14159);
  writer.WriteBool(true);
  writer.WriteBool(false);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI32().value(), -12345);
  EXPECT_EQ(reader.ReadI64().value(), -9876543210);
  EXPECT_DOUBLE_EQ(reader.ReadF64().value(), 3.14159);
  EXPECT_TRUE(reader.ReadBool().value());
  EXPECT_FALSE(reader.ReadBool().value());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryRoundTripTest, Strings) {
  BinaryWriter writer;
  writer.WriteString("hello dpfs");
  writer.WriteString("");
  writer.WriteString(std::string("\0binary\xff", 8));

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadString().value(), "hello dpfs");
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_EQ(reader.ReadString().value(), std::string("\0binary\xff", 8));
}

TEST(BinaryReaderTest, TruncatedInputIsProtocolError) {
  BinaryWriter writer;
  writer.WriteU16(7);
  BinaryReader reader(writer.buffer());
  const Result<std::uint32_t> v = reader.ReadU32();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kProtocolError);
}

TEST(BinaryReaderTest, TruncatedStringIsProtocolError) {
  BinaryWriter writer;
  writer.WriteU32(100);  // claims 100 bytes but provides none
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(reader.ReadBytes().ok());
}

TEST(BinaryReaderTest, BoolOutOfRangeRejected) {
  Bytes raw = {2};
  BinaryReader reader(raw);
  EXPECT_FALSE(reader.ReadBool().ok());
}

TEST(BinaryReaderTest, RemainingAndPosition) {
  BinaryWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_EQ(reader.position(), 4u);
}

TEST(BinaryReaderTest, ReadRawReturnsView) {
  BinaryWriter writer;
  writer.WriteRaw(AsBytes("abcdef"));
  BinaryReader reader(writer.buffer());
  const ByteSpan view = reader.ReadRaw(3).value();
  EXPECT_EQ(AsStringView(view), "abc");
  EXPECT_EQ(AsStringView(reader.ReadRaw(3).value()), "def");
  EXPECT_FALSE(reader.ReadRaw(1).ok());
}

TEST(BinaryWriterTest, PatchU32) {
  BinaryWriter writer;
  writer.WriteU32(0);  // placeholder
  writer.WriteString("payload");
  writer.PatchU32(0, 0xCAFEBABE);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU32().value(), 0xCAFEBABEu);
}

TEST(BinaryRoundTripTest, NegativeDoubleAndSpecials) {
  BinaryWriter writer;
  writer.WriteF64(-0.0);
  writer.WriteF64(1e300);
  writer.WriteF64(-1e-300);
  BinaryReader reader(writer.buffer());
  EXPECT_DOUBLE_EQ(reader.ReadF64().value(), -0.0);
  EXPECT_DOUBLE_EQ(reader.ReadF64().value(), 1e300);
  EXPECT_DOUBLE_EQ(reader.ReadF64().value(), -1e-300);
}

TEST(ByteSpanTest, AsBytesAndBack) {
  const std::string text = "round trip";
  const ByteSpan span = AsBytes(text);
  EXPECT_EQ(span.size(), text.size());
  EXPECT_EQ(AsStringView(span), text);
}

}  // namespace
}  // namespace dpfs
