#include "common/log.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelFiltering) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(internal::LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(internal::LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(internal::LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(internal::LogEnabled(LogLevel::kError));
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(internal::LogEnabled(LogLevel::kError));
}

TEST(LogTest, DebugEnablesEverything) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(internal::LogEnabled(LogLevel::kDebug));
  EXPECT_TRUE(internal::LogEnabled(LogLevel::kError));
}

TEST(LogTest, MacroShortCircuitsWhenDisabled) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DPFS_LOG_DEBUG << count();
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  DPFS_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, GetSetRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace dpfs
