// Real loopback TCP: sockets, framing, CRC detection.
#include <gtest/gtest.h>

#include <thread>

#include "net/connection.h"
#include "net/frame.h"
#include "net/socket.h"

namespace dpfs::net {
namespace {

TEST(SocketTest, ConnectToListener) {
  TcpListener listener = TcpListener::Bind(0).value();
  EXPECT_GT(listener.port(), 0u);

  std::thread server([&listener] {
    const Result<TcpSocket> accepted = listener.Accept();
    EXPECT_TRUE(accepted.ok());
  });
  const Result<TcpSocket> client =
      TcpSocket::Connect("127.0.0.1", listener.port());
  EXPECT_TRUE(client.ok());
  server.join();
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  std::uint16_t port = 0;
  {
    TcpListener listener = TcpListener::Bind(0).value();
    port = listener.port();
  }
  const Result<TcpSocket> client = TcpSocket::Connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

TEST(SocketTest, SendAllRecvExactRoundTrip) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    Bytes buf(1 << 20);
    ASSERT_TRUE(conn.RecvExact({buf.data(), buf.size()}).ok());
    // Echo back.
    ASSERT_TRUE(conn.SendAll(buf).ok());
  });

  TcpSocket client = TcpSocket::Connect("localhost", listener.port()).value();
  Bytes data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(client.SendAll(data).ok());
  Bytes echoed(data.size());
  ASSERT_TRUE(client.RecvExact({echoed.data(), echoed.size()}).ok());
  EXPECT_EQ(echoed, data);
  server.join();
}

TEST(SocketTest, CleanPeerCloseIsUnavailable) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    conn.Close();
  });
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  Bytes buf(16);
  const Status received = client.RecvExact({buf.data(), buf.size()});
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), StatusCode::kUnavailable);
  server.join();
}

TEST(FrameTest, RoundTripSmallAndLarge) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    for (int i = 0; i < 3; ++i) {
      Bytes payload;
      ASSERT_TRUE(RecvFrame(conn, payload).ok());
      ASSERT_TRUE(SendFrame(conn, payload).ok());  // echo
    }
  });

  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  for (const std::size_t size : {std::size_t{0}, std::size_t{17},
                                 std::size_t{3 << 20}}) {
    Bytes payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i);
    }
    ASSERT_TRUE(SendFrame(client, payload).ok());
    Bytes echoed;
    ASSERT_TRUE(RecvFrame(client, echoed).ok());
    EXPECT_EQ(echoed, payload);
  }
  server.join();
}

TEST(FrameTest, CorruptedPayloadDetected) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    // Hand-craft a frame with a wrong CRC.
    BinaryWriter writer;
    writer.WriteU32(4);
    writer.WriteU32(0xBAD0BAD0);  // wrong checksum
    writer.WriteRaw(AsBytes("abcd"));
    ASSERT_TRUE(conn.SendAll(writer.buffer()).ok());
  });
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  Bytes payload;
  const Status received = RecvFrame(client, payload);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), StatusCode::kDataLoss);
  server.join();
}

TEST(FrameTest, OversizeFrameRejectedOnSendAndRecv) {
  // Send side refuses without touching the socket.
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    // Claim an absurd length; the receiver must bail before allocating.
    BinaryWriter writer;
    writer.WriteU32(0xFFFFFFFF);
    writer.WriteU32(0);
    ASSERT_TRUE(conn.SendAll(writer.buffer()).ok());
  });
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  Bytes payload;
  const Status received = RecvFrame(client, payload);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), StatusCode::kProtocolError);
  server.join();
}

TEST(ListenerTest, CloseUnblocksAccept) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread acceptor([&listener] {
    const Result<TcpSocket> accepted = listener.Accept();
    EXPECT_FALSE(accepted.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.Close();
  acceptor.join();
}

TEST(EndpointTest, ToStringFormat) {
  const Endpoint endpoint{"127.0.0.1", 9090};
  EXPECT_EQ(endpoint.ToString(), "127.0.0.1:9090");
}

}  // namespace
}  // namespace dpfs::net
