// Real loopback TCP: sockets, framing, CRC detection.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "net/connection.h"
#include "net/frame.h"
#include "net/socket.h"

namespace dpfs::net {
namespace {

TEST(SocketTest, ConnectToListener) {
  TcpListener listener = TcpListener::Bind(0).value();
  EXPECT_GT(listener.port(), 0u);

  std::thread server([&listener] {
    const Result<TcpSocket> accepted = listener.Accept();
    EXPECT_TRUE(accepted.ok());
  });
  const Result<TcpSocket> client =
      TcpSocket::Connect("127.0.0.1", listener.port());
  EXPECT_TRUE(client.ok());
  server.join();
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  std::uint16_t port = 0;
  {
    TcpListener listener = TcpListener::Bind(0).value();
    port = listener.port();
  }
  const Result<TcpSocket> client = TcpSocket::Connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

TEST(SocketTest, SendAllRecvExactRoundTrip) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    Bytes buf(1 << 20);
    ASSERT_TRUE(conn.RecvExact({buf.data(), buf.size()}).ok());
    // Echo back.
    ASSERT_TRUE(conn.SendAll(buf).ok());
  });

  TcpSocket client = TcpSocket::Connect("localhost", listener.port()).value();
  Bytes data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(client.SendAll(data).ok());
  Bytes echoed(data.size());
  ASSERT_TRUE(client.RecvExact({echoed.data(), echoed.size()}).ok());
  EXPECT_EQ(echoed, data);
  server.join();
}

TEST(SocketTest, CleanPeerCloseIsUnavailable) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    conn.Close();
  });
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  Bytes buf(16);
  const Status received = client.RecvExact({buf.data(), buf.size()});
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), StatusCode::kUnavailable);
  server.join();
}

TEST(FrameTest, RoundTripSmallAndLarge) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    for (int i = 0; i < 3; ++i) {
      Bytes payload;
      ASSERT_TRUE(RecvFrame(conn, payload).ok());
      ASSERT_TRUE(SendFrame(conn, payload).ok());  // echo
    }
  });

  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  for (const std::size_t size : {std::size_t{0}, std::size_t{17},
                                 std::size_t{3 << 20}}) {
    Bytes payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i);
    }
    ASSERT_TRUE(SendFrame(client, payload).ok());
    Bytes echoed;
    ASSERT_TRUE(RecvFrame(client, echoed).ok());
    EXPECT_EQ(echoed, payload);
  }
  server.join();
}

TEST(FrameTest, CorruptedPayloadDetected) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    // Hand-craft a frame with a wrong CRC.
    BinaryWriter writer;
    writer.WriteU32(4);
    writer.WriteU32(0xBAD0BAD0);  // wrong checksum
    writer.WriteRaw(AsBytes("abcd"));
    ASSERT_TRUE(conn.SendAll(writer.buffer()).ok());
  });
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  Bytes payload;
  const Status received = RecvFrame(client, payload);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), StatusCode::kDataLoss);
  server.join();
}

TEST(FrameTest, OversizeFrameRejectedOnSendAndRecv) {
  // Send side refuses without touching the socket.
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread server([&listener] {
    TcpSocket conn = listener.Accept().value();
    // Claim an absurd length; the receiver must bail before allocating.
    BinaryWriter writer;
    writer.WriteU32(0xFFFFFFFF);
    writer.WriteU32(0);
    ASSERT_TRUE(conn.SendAll(writer.buffer()).ok());
  });
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  Bytes payload;
  const Status received = RecvFrame(client, payload);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.code(), StatusCode::kProtocolError);
  server.join();
}

TEST(ListenerTest, CloseUnblocksAccept) {
  TcpListener listener = TcpListener::Bind(0).value();
  std::thread acceptor([&listener] {
    const Result<TcpSocket> accepted = listener.Accept();
    EXPECT_FALSE(accepted.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.Close();
  acceptor.join();
}

TEST(EndpointTest, ToStringFormat) {
  const Endpoint endpoint{"127.0.0.1", 9090};
  EXPECT_EQ(endpoint.ToString(), "127.0.0.1:9090");
}

// ---------------------------------------------------------------------------
// Incremental decoding (FrameDecoder) — must match RecvFrame byte for byte
// no matter how the stream is sliced.

Bytes TestFrame(std::size_t size, std::uint8_t seed) {
  Bytes payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>(seed + i);
  }
  return EncodeFrame(payload).value();
}

TEST(FrameDecoderTest, ByteAtATimeProducesIdenticalPayloads) {
  const Bytes payload = {1, 2, 3, 4, 5};
  const Bytes frame = EncodeFrame(payload).value();
  FrameDecoder decoder;
  Bytes out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Append({&frame[i], 1});
    EXPECT_FALSE(decoder.Next(out).value());
    EXPECT_TRUE(decoder.mid_frame());
  }
  decoder.Append({&frame.back(), 1});
  ASSERT_TRUE(decoder.Next(out).value());
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, SeveralFramesInOneAppend) {
  Bytes wire = TestFrame(10, 1);
  const Bytes second = TestFrame(0, 0);
  const Bytes third = TestFrame(100, 7);
  wire.insert(wire.end(), second.begin(), second.end());
  wire.insert(wire.end(), third.begin(), third.end());

  FrameDecoder decoder;
  decoder.Append(wire);
  Bytes out;
  ASSERT_TRUE(decoder.Next(out).value());
  EXPECT_EQ(out.size(), 10u);
  ASSERT_TRUE(decoder.Next(out).value());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(decoder.Next(out).value());
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(out[0], 7);
  EXPECT_FALSE(decoder.Next(out).value());
}

TEST(FrameDecoderTest, ChecksumMismatchIsDataLoss) {
  Bytes frame = TestFrame(16, 3);
  frame.back() ^= 0xFF;  // corrupt the payload, keep the length
  FrameDecoder decoder;
  decoder.Append(frame);
  Bytes out;
  const Result<bool> next = decoder.Next(out);
  EXPECT_EQ(next.status().code(), StatusCode::kDataLoss);
}

TEST(FrameDecoderTest, OversizeLengthIsProtocolError) {
  BinaryWriter writer;
  writer.WriteU32(0xFFFFFFFF);
  writer.WriteU32(0);
  FrameDecoder decoder;
  decoder.Append(writer.buffer());
  Bytes out;
  const Result<bool> next = decoder.Next(out);
  EXPECT_EQ(next.status().code(), StatusCode::kProtocolError);
}

TEST(FrameDecoderTest, SteadyStateCompactionKeepsDecoding) {
  // Enough traffic to trigger the consumed-prefix compaction repeatedly.
  FrameDecoder decoder;
  Bytes out;
  for (int i = 0; i < 200; ++i) {
    const Bytes frame = TestFrame(1024, static_cast<std::uint8_t>(i));
    decoder.Append(frame);
    ASSERT_TRUE(decoder.Next(out).value());
    ASSERT_EQ(out.size(), 1024u);
    ASSERT_EQ(out[0], static_cast<std::uint8_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Nonblocking socket primitives (RecvSome / SendSome) and their failpoints.

TEST(NonBlockingSocketTest, RecvSomeWouldBlockThenDelivers) {
  TcpListener listener = TcpListener::Bind(0).value();
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  TcpSocket served = listener.Accept().value();
  ASSERT_TRUE(served.SetNonBlocking(true).ok());

  std::uint8_t buf[64];
  // Nothing sent yet: would-block, not an error, not a close.
  Result<TcpSocket::SomeIo> got = served.RecvSome({buf, sizeof(buf)});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().bytes, 0u);
  EXPECT_FALSE(got.value().closed);

  ASSERT_TRUE(client.SendAll(Bytes{1, 2, 3}).ok());
  for (int i = 0; i < 200; ++i) {
    got = served.RecvSome({buf, sizeof(buf)});
    ASSERT_TRUE(got.ok());
    if (got.value().bytes > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(got.value().bytes, 3u);
  EXPECT_EQ(buf[0], 1);

  client.Close();
  for (int i = 0; i < 200; ++i) {
    got = served.RecvSome({buf, sizeof(buf)});
    ASSERT_TRUE(got.ok());
    if (got.value().closed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(got.value().closed);
}

TEST(NonBlockingSocketTest, SendSomeEventuallyWouldBlocks) {
  TcpListener listener = TcpListener::Bind(0).value();
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  TcpSocket served = listener.Accept().value();
  ASSERT_TRUE(served.SetNonBlocking(true).ok());

  // The peer never reads: with bounded socket buffers, a nonblocking sender
  // must hit the 0-byte would-block result instead of hanging.
  const Bytes chunk(64 << 10, 0xCD);
  bool would_block = false;
  for (int i = 0; i < 1000 && !would_block; ++i) {
    const Result<std::size_t> sent = served.SendSome(chunk);
    ASSERT_TRUE(sent.ok());
    would_block = sent.value() == 0;
  }
  EXPECT_TRUE(would_block);
  (void)client;
}

class NonBlockingFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(NonBlockingFailpointTest, RecvSomeShortIoClampsTransfer) {
  TcpListener listener = TcpListener::Bind(0).value();
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  TcpSocket served = listener.Accept().value();
  ASSERT_TRUE(client.SendAll(Bytes(32, 0xEE)).ok());

  failpoint::Spec spec;
  spec.action = failpoint::Action::kShortIo;
  spec.arg = 5;
  failpoint::Arm("net.recv_some", spec);
  std::uint8_t buf[32];
  const Result<TcpSocket::SomeIo> got = served.RecvSome({buf, sizeof(buf)});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().bytes, 5u);  // kernel has 32 queued; site honors arg
  EXPECT_GE(failpoint::HitCount("net.recv_some"), 1u);
}

TEST_F(NonBlockingFailpointTest, RecvSomeSpuriousWakeupAndError) {
  TcpListener listener = TcpListener::Bind(0).value();
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  TcpSocket served = listener.Accept().value();
  ASSERT_TRUE(client.SendAll(Bytes(8, 1)).ok());

  failpoint::Spec spurious;
  spurious.action = failpoint::Action::kShortIo;
  spurious.arg = 0;  // arg=0: report would-block despite queued bytes
  spurious.count = 1;
  failpoint::Arm("net.recv_some", spurious);
  std::uint8_t buf[8];
  Result<TcpSocket::SomeIo> got = served.RecvSome({buf, sizeof(buf)});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().bytes, 0u);
  EXPECT_FALSE(got.value().closed);

  failpoint::Spec error;
  error.action = failpoint::Action::kReturnError;
  error.code = StatusCode::kIoError;
  failpoint::Arm("net.recv_some", error);
  got = served.RecvSome({buf, sizeof(buf)});
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
}

TEST_F(NonBlockingFailpointTest, SendSomeShortIoAndDisconnect) {
  TcpListener listener = TcpListener::Bind(0).value();
  TcpSocket client = TcpSocket::Connect("127.0.0.1", listener.port()).value();
  TcpSocket served = listener.Accept().value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kShortIo;
  spec.arg = 4;
  spec.count = 1;
  failpoint::Arm("net.send_some", spec);
  Result<std::size_t> sent = served.SendSome(Bytes(100, 2));
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value(), 4u);

  failpoint::Spec cut;
  cut.action = failpoint::Action::kDisconnect;
  cut.arg = 2;  // flush 2 bytes, then sever
  failpoint::Arm("net.send_some", cut);
  sent = served.SendSome(Bytes(100, 3));
  EXPECT_EQ(sent.status().code(), StatusCode::kUnavailable);

  // The peer observes 4 + 2 bytes then EOF.
  Bytes received(6);
  EXPECT_TRUE(client.RecvExact({received.data(), received.size()}).ok());
  EXPECT_EQ(received, (Bytes{2, 2, 2, 2, 3, 3}));
  std::uint8_t extra = 0;
  EXPECT_FALSE(client.RecvExact({&extra, 1}).ok());
}

}  // namespace
}  // namespace dpfs::net
