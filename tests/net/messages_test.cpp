#include "net/messages.h"

#include <gtest/gtest.h>

namespace dpfs::net {
namespace {

TEST(ReadRequestTest, EncodeDecodeRoundTrip) {
  ReadRequest request;
  request.subfile = "/home/x/data.dpfs";
  request.fragments = {{0, 1024}, {4096, 512}, {1 << 20, 64}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ReadRequest decoded = ReadRequest::Decode(reader).value();
  EXPECT_EQ(decoded.subfile, request.subfile);
  EXPECT_EQ(decoded.fragments, request.fragments);
  EXPECT_EQ(decoded.total_bytes(), 1600u);
}

TEST(ReadRequestTest, EmptyFragments) {
  ReadRequest request;
  request.subfile = "f";
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ReadRequest decoded = ReadRequest::Decode(reader).value();
  EXPECT_TRUE(decoded.fragments.empty());
  EXPECT_EQ(decoded.total_bytes(), 0u);
}

TEST(WriteRequestTest, EncodeDecodeRoundTrip) {
  WriteRequest request;
  request.subfile = "/a/b";
  request.sync = true;
  request.fragments.push_back({128, Bytes{1, 2, 3, 4}});
  request.fragments.push_back({0, Bytes{9}});
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const WriteRequest decoded = WriteRequest::Decode(reader).value();
  EXPECT_EQ(decoded.subfile, "/a/b");
  EXPECT_TRUE(decoded.sync);
  ASSERT_EQ(decoded.fragments.size(), 2u);
  EXPECT_EQ(decoded.fragments[0].offset, 128u);
  EXPECT_EQ(decoded.fragments[0].data, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(decoded.total_bytes(), 5u);
}

TEST(EnvelopeTest, RequestRoundTrip) {
  const Bytes body = {10, 20, 30};
  const Bytes frame = EncodeRequest(MessageType::kRead, body);
  const DecodedRequest decoded = DecodeRequest(frame).value();
  EXPECT_EQ(decoded.type, MessageType::kRead);
  EXPECT_EQ(Bytes(decoded.body.begin(), decoded.body.end()), body);
}

TEST(EnvelopeTest, BadTypeRejected) {
  Bytes frame = {0x7F};
  EXPECT_FALSE(DecodeRequest(frame).ok());
  Bytes empty;
  EXPECT_FALSE(DecodeRequest(empty).ok());
}

TEST(EnvelopeTest, FirstTypePastTheRangeRejected) {
  // One past kMaxMessageType (currently kListWrite): keeps the
  // DecodeRequest range check honest when a new opcode is added (bump the
  // check, then extend this test).
  Bytes frame = {static_cast<std::uint8_t>(kMaxMessageType + 1)};
  EXPECT_FALSE(DecodeRequest(frame).ok());
  Bytes zero = {0};
  EXPECT_FALSE(DecodeRequest(zero).ok());
  // Every type up to the max decodes (the body is opaque at this layer).
  for (std::uint8_t type = 1; type <= kMaxMessageType; ++type) {
    Bytes in_range = {type};
    EXPECT_TRUE(DecodeRequest(in_range).ok()) << static_cast<int>(type);
  }
}

TEST(EnvelopeTest, OkReplyRoundTrip) {
  const Bytes body = {1, 2};
  const Bytes frame = EncodeReply(Status::Ok(), body);
  const DecodedReply decoded = DecodeReply(frame).value();
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(Bytes(decoded.body.begin(), decoded.body.end()), body);
}

TEST(EnvelopeTest, ErrorReplyCarriesCodeAndMessage) {
  const Bytes frame = EncodeReply(NotFoundError("no subfile"), {});
  const DecodedReply decoded = DecodeReply(frame).value();
  EXPECT_EQ(decoded.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.status.message(), "no subfile");
}

TEST(EnvelopeTest, AllMessageTypesDecodable) {
  for (const MessageType type :
       {MessageType::kPing, MessageType::kRead, MessageType::kWrite,
        MessageType::kStat, MessageType::kDelete, MessageType::kTruncate,
        MessageType::kShutdown, MessageType::kStats, MessageType::kRename,
        MessageType::kList, MessageType::kMetrics, MessageType::kListRead,
        MessageType::kListWrite}) {
    const Bytes frame = EncodeRequest(type, {});
    EXPECT_EQ(DecodeRequest(frame).value().type, type);
    EXPECT_NE(MessageTypeName(type), "unknown");
  }
}

// --- list I/O (docs/WIRE_PROTOCOL.md "List I/O") ---------------------------

TEST(ListReadRequestTest, EncodeDecodeRoundTrip) {
  ListReadRequest request;
  request.subfile = "/home/x/data.dpfs";
  request.extents = {{0, 16}, {64, 8}, {4096, 128}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ListReadRequest decoded = ListReadRequest::Decode(reader).value();
  EXPECT_EQ(decoded.subfile, request.subfile);
  EXPECT_EQ(decoded.extents, request.extents);
  EXPECT_EQ(decoded.total_bytes(), 152u);
}

TEST(ListReadRequestTest, AdjacentExtentsAccepted) {
  // Adjacent (touching) extents are legal — only overlap is rejected.
  ListReadRequest request;
  request.subfile = "f";
  request.extents = {{0, 8}, {8, 8}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(ListReadRequest::Decode(reader).ok());
}

TEST(ListReadRequestTest, RejectsEmptyExtentList) {
  ListReadRequest request;
  request.subfile = "f";
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(ListReadRequest::Decode(reader).status().code(),
            StatusCode::kProtocolError);
}

TEST(ListReadRequestTest, RejectsZeroLengthExtent) {
  ListReadRequest request;
  request.subfile = "f";
  request.extents = {{0, 8}, {32, 0}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListReadRequest::Decode(reader).ok());
}

TEST(ListReadRequestTest, RejectsOverlappingExtents) {
  ListReadRequest request;
  request.subfile = "f";
  request.extents = {{0, 16}, {8, 16}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListReadRequest::Decode(reader).ok());
}

TEST(ListReadRequestTest, RejectsDescendingExtents) {
  ListReadRequest request;
  request.subfile = "f";
  request.extents = {{64, 8}, {0, 8}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListReadRequest::Decode(reader).ok());
}

TEST(ListReadRequestTest, RejectsExtentOverflowingOffsetSpace) {
  ListReadRequest request;
  request.subfile = "f";
  request.extents = {{~std::uint64_t{0} - 4, 8}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListReadRequest::Decode(reader).ok());
}

TEST(ListReadRequestTest, RejectsLyingCountBeforeAllocating) {
  // A count claiming far more extents than the body holds must fail the
  // remaining-bytes check, not attempt a giant reserve.
  BinaryWriter writer;
  writer.WriteString("f");
  writer.WriteU32(0xFFFFFFFFu);
  writer.WriteU64(0);  // one extent's worth of bytes, not 4 billion
  writer.WriteU64(8);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListReadRequest::Decode(reader).ok());
}

TEST(ListReadRequestTest, RejectsTruncatedExtentList) {
  ListReadRequest request;
  request.subfile = "f";
  request.extents = {{0, 8}, {16, 8}};
  BinaryWriter writer;
  request.Encode(writer);
  const ByteSpan whole(writer.buffer());
  BinaryReader reader(whole.subspan(0, whole.size() - 5));
  EXPECT_FALSE(ListReadRequest::Decode(reader).ok());
}

TEST(ListWriteRequestTest, EncodeDecodeRoundTrip) {
  ListWriteRequest request;
  request.subfile = "/a/b";
  request.sync = true;
  request.extents = {{128, 4}, {256, 2}};
  request.data = {1, 2, 3, 4, 9, 8};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ListWriteRequest decoded = ListWriteRequest::Decode(reader).value();
  EXPECT_EQ(decoded.subfile, "/a/b");
  EXPECT_TRUE(decoded.sync);
  EXPECT_EQ(decoded.extents, request.extents);
  EXPECT_EQ(decoded.data, request.data);
  EXPECT_EQ(decoded.total_bytes(), 6u);
}

TEST(ListWriteRequestTest, RejectsPayloadShorterThanExtentSum) {
  ListWriteRequest request;
  request.subfile = "f";
  request.extents = {{0, 8}};
  request.data = {1, 2, 3};  // 3 bytes for 8 bytes of extents
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(ListWriteRequest::Decode(reader).status().code(),
            StatusCode::kProtocolError);
}

TEST(ListWriteRequestTest, RejectsPayloadLongerThanExtentSum) {
  ListWriteRequest request;
  request.subfile = "f";
  request.extents = {{0, 2}};
  request.data = {1, 2, 3};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListWriteRequest::Decode(reader).ok());
}

TEST(ListWriteRequestTest, RejectsOverlappingExtents) {
  ListWriteRequest request;
  request.subfile = "f";
  request.extents = {{0, 4}, {2, 4}};
  request.data = {1, 2, 3, 4, 5, 6, 7, 8};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(ListWriteRequest::Decode(reader).ok());
}

}  // namespace
}  // namespace dpfs::net
