// Failure injection: dead servers, poisoned connections, metadata
// consistency after partial failures.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;

TEST(FailureTest, IoAgainstStoppedServerReturnsUnavailable) {
  core::ClusterOptions options;
  options.num_servers = 2;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  const auto fs = cluster->fs();

  CreateOptions create;
  create.total_bytes = 1024;
  create.brick_bytes = 128;
  FileHandle handle = fs->Create("/doomed.bin", create).value();
  const Bytes data(1024, 7);
  ASSERT_TRUE(fs->WriteBytes(handle, 0, data).ok());

  // Kill both servers; connections are pooled, so also drop them.
  cluster->server(0).Stop();
  cluster->server(1).Stop();
  fs->connections().Clear();

  Bytes read(1024);
  const Status status = fs->ReadBytes(handle, 0, read);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(FailureTest, PooledConnectionToDeadServerIsNotReused) {
  core::ClusterOptions options;
  options.num_servers = 1;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  const auto fs = cluster->fs();

  CreateOptions create;
  create.total_bytes = 256;
  create.brick_bytes = 64;
  FileHandle handle = fs->Create("/f", create).value();
  ASSERT_TRUE(fs->WriteBytes(handle, 0, Bytes(256, 1)).ok());
  EXPECT_GE(fs->connections().idle_count(), 1u);

  cluster->server(0).Stop();
  // The pooled connection is now dead; the next op fails and the poisoned
  // connection must not be returned to the pool.
  Bytes read(256);
  EXPECT_FALSE(fs->ReadBytes(handle, 0, read).ok());
  EXPECT_EQ(fs->connections().idle_count(), 0u);
}

TEST(FailureTest, FilesOnHealthySubsetSurviveOtherServersDeath) {
  core::ClusterOptions options;
  options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  const auto fs = cluster->fs();

  // File confined to the first two servers via the hint structure.
  CreateOptions create;
  create.total_bytes = 2048;
  create.brick_bytes = 256;
  create.suggested_io_nodes = 2;
  FileHandle handle = fs->Create("/narrow.bin", create).value();
  const Bytes data(2048, 9);
  ASSERT_TRUE(fs->WriteBytes(handle, 0, data).ok());

  // Servers 2 and 3 die; the file never touched them.
  cluster->server(2).Stop();
  cluster->server(3).Stop();
  fs->connections().Clear();

  Bytes read(2048);
  ASSERT_TRUE(fs->ReadBytes(handle, 0, read).ok());
  EXPECT_EQ(read, data);
}

TEST(FailureTest, MetadataSurvivesFailedCreateOnDeadCluster) {
  core::ClusterOptions options;
  options.num_servers = 2;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  const auto fs = cluster->fs();

  CreateOptions create;
  create.total_bytes = 512;
  FileHandle ok_handle = fs->Create("/ok.bin", create).value();
  (void)ok_handle;

  // Creation itself only touches metadata, so it succeeds even with dead
  // servers — data operations are what fail. Verify metadata stays sane.
  cluster->server(0).Stop();
  cluster->server(1).Stop();
  fs->connections().Clear();
  ASSERT_TRUE(fs->Create("/late.bin", create).ok());
  EXPECT_TRUE(fs->metadata().FileExists("/late.bin").value());
  FileHandle late = fs->Open("/late.bin").value();
  EXPECT_FALSE(fs->WriteBytes(late, 0, Bytes(512, 1)).ok());
  // Remove of a file with unreachable servers fails on the data step...
  EXPECT_FALSE(fs->Remove("/late.bin").ok());
  // ...and leaves the metadata intact (no half-deleted state).
  EXPECT_TRUE(fs->metadata().FileExists("/late.bin").value());
}

TEST(FailureTest, CorruptedSubfileStillServesReadsByteForByte) {
  // DPFS stores raw bytes in subfiles; an out-of-band mutation of a subfile
  // (bit rot, operator error) shows up as wrong data, not a crash. This
  // documents the trust model: integrity is protected on the wire (frame
  // CRC), not at rest.
  core::ClusterOptions options;
  options.num_servers = 1;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  const auto fs = cluster->fs();

  CreateOptions create;
  create.total_bytes = 64;
  create.brick_bytes = 64;
  FileHandle handle = fs->Create("/rot.bin", create).value();
  ASSERT_TRUE(fs->WriteBytes(handle, 0, Bytes(64, 0xAA)).ok());

  // Flip a byte directly in the subfile behind the server's back.
  std::vector<net::WriteFragment> writes;
  writes.push_back({10, Bytes{0x55}});
  ASSERT_TRUE(
      cluster->server(0).store().WriteFragments("/rot.bin", writes, false)
          .ok());

  Bytes read(64);
  ASSERT_TRUE(fs->ReadBytes(handle, 0, read).ok());
  EXPECT_EQ(read[10], 0x55);
  EXPECT_EQ(read[9], 0xAA);
}

TEST(FailureTest, ServerRestartOnSameRootServesOldData) {
  const TempDir root = TempDir::Create("dpfs-restart").value();
  net::Endpoint endpoint;
  {
    server::ServerOptions options;
    options.root_dir = root.path();
    auto server = server::IoServer::Start(std::move(options)).value();
    endpoint = server->endpoint();
    auto conn = net::ServerConnection::Connect(endpoint).value();
    std::vector<net::WriteFragment> writes;
    writes.push_back({0, Bytes{1, 2, 3, 4}});
    ASSERT_TRUE(conn.Write("/persist", std::move(writes)).ok());
    server->Stop();
  }
  // New server process (same root, new port): data still there.
  server::ServerOptions options;
  options.root_dir = root.path();
  auto server = server::IoServer::Start(std::move(options)).value();
  auto conn = net::ServerConnection::Connect(server->endpoint()).value();
  EXPECT_EQ(conn.Read("/persist", {{0, 4}}).value(), (Bytes{1, 2, 3, 4}));
}

}  // namespace
}  // namespace dpfs
