// Chaos: every feature at once. Collective phases, independent cached
// readers, sieve readers, parallel-dispatch writers, renames, fsck, and
// metadata traffic all share one FileSystem against one live cluster.
// Nothing may deadlock, crash, or corrupt data.
#include <gtest/gtest.h>

#include <thread>

#include "client/collective.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CollectiveFile;
using client::CreateOptions;
using client::FileHandle;
using client::IoOptions;

TEST(ChaosTest, AllFeaturesConcurrently) {
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();
  fs->EnableBrickCache(2 << 20);
  fs->SetAccessLogging(true);

  ASSERT_TRUE(fs->metadata().MakeDirectory("/chaos").ok());

  // Shared collective file.
  constexpr std::uint32_t kRanks = 4;
  CreateOptions coll_create;
  coll_create.level = layout::FileLevel::kMultidim;
  coll_create.array_shape = {64, 64};
  coll_create.brick_shape = {16, 16};
  auto collective =
      CollectiveFile::Create(fs, "/chaos/coll.dpfs", coll_create, kRanks);
  ASSERT_TRUE(collective.ok()) << collective.status().ToString();
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  layout::ProcessGrid grid;
  grid.grid = {2, 2};
  ASSERT_TRUE(collective.value()->SetHpfViews(pattern, grid).ok());

  // A hot shared read-only file for the cached readers.
  CreateOptions hot_create;
  hot_create.total_bytes = 64 * 1024;
  hot_create.brick_bytes = 4 * 1024;
  FileHandle hot = fs->Create("/chaos/hot.bin", hot_create).value();
  SplitMix64 seed_rng(5);
  Bytes hot_data(64 * 1024);
  for (std::uint8_t& b : hot_data) {
    b = static_cast<std::uint8_t>(seed_rng.NextU64());
  }
  ASSERT_TRUE(fs->WriteBytes(hot, 0, hot_data).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  // 4 collective ranks doing write/read phases.
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      const layout::Region view = collective.value()->view(rank).value();
      for (int phase = 0; phase < 4; ++phase) {
        SplitMix64 rng(phase * 10 + rank);
        Bytes data(view.num_elements());
        for (std::uint8_t& b : data) {
          b = static_cast<std::uint8_t>(rng.NextU64());
        }
        if (!collective.value()->WriteAll(rank, data).ok()) {
          failures.fetch_add(1);
          return;
        }
        Bytes check(data.size());
        if (!collective.value()->ReadAll(rank, check).ok() || check != data) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // 3 cached readers hammering the hot file with mixed options.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(100 + t);
      FileHandle handle = fs->Open("/chaos/hot.bin").value();
      handle.client_id = 10 + t;
      Bytes buffer;
      for (int op = 0; op < 40; ++op) {
        const std::uint64_t offset = rng.NextBelow(60 * 1024);
        const std::uint64_t length = 1 + rng.NextBelow(4 * 1024);
        buffer.resize(length);
        IoOptions io;
        io.whole_brick_reads = rng.NextBelow(2) == 0;
        io.parallel_dispatch = rng.NextBelow(2) == 0;
        if (!fs->ReadBytes(handle, offset, buffer, io).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (!std::equal(buffer.begin(), buffer.end(),
                        hot_data.begin() + static_cast<std::ptrdiff_t>(offset))) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // One metadata churner: create/rename/delete private files + fsck.
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      CreateOptions create;
      create.total_bytes = 2048;
      create.brick_bytes = 512;
      const std::string path = "/chaos/tmp" + std::to_string(i);
      Result<FileHandle> handle = fs->Create(path, create);
      if (!handle.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!fs->WriteBytes(*handle, 0, Bytes(2048, static_cast<std::uint8_t>(i)))
               .ok() ||
          !fs->Rename(path, path + ".renamed").ok() ||
          !fs->Remove(path + ".renamed").ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!fs->Fsck().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // End state: clean fsck, hot file intact, collective file readable.
  EXPECT_TRUE(fs->Fsck().value().clean());
  Bytes final_hot(64 * 1024);
  FileHandle hot2 = fs->Open("/chaos/hot.bin").value();
  ASSERT_TRUE(fs->ReadBytes(hot2, 0, final_hot).ok());
  EXPECT_EQ(final_hot, hot_data);
  const auto advice = fs->AdviseLevel("/chaos/hot.bin");
  EXPECT_TRUE(advice.ok());
}

}  // namespace
}  // namespace dpfs
