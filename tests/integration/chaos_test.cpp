// Chaos: every feature at once, and fault-schedule scenarios. Collective
// phases, independent cached readers, sieve readers, parallel-dispatch
// writers, renames, fsck, and metadata traffic all share one FileSystem
// against one live cluster; then failpoint-driven schedules (busy storms,
// dropped connections, a server restarted mid-access) hit a mixed
// read/write workload. Nothing may deadlock, crash, or corrupt data.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "client/collective.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CollectiveFile;
using client::CreateOptions;
using client::FileHandle;
using client::IoOptions;
using client::IoReport;

TEST(ChaosTest, AllFeaturesConcurrently) {
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();
  fs->EnableBrickCache(2 << 20);
  fs->SetAccessLogging(true);

  ASSERT_TRUE(fs->metadata().MakeDirectory("/chaos").ok());

  // Shared collective file.
  constexpr std::uint32_t kRanks = 4;
  CreateOptions coll_create;
  coll_create.level = layout::FileLevel::kMultidim;
  coll_create.array_shape = {64, 64};
  coll_create.brick_shape = {16, 16};
  auto collective =
      CollectiveFile::Create(fs, "/chaos/coll.dpfs", coll_create, kRanks);
  ASSERT_TRUE(collective.ok()) << collective.status().ToString();
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  layout::ProcessGrid grid;
  grid.grid = {2, 2};
  ASSERT_TRUE(collective.value()->SetHpfViews(pattern, grid).ok());

  // A hot shared read-only file for the cached readers.
  CreateOptions hot_create;
  hot_create.total_bytes = 64 * 1024;
  hot_create.brick_bytes = 4 * 1024;
  FileHandle hot = fs->Create("/chaos/hot.bin", hot_create).value();
  SplitMix64 seed_rng(5);
  Bytes hot_data(64 * 1024);
  for (std::uint8_t& b : hot_data) {
    b = static_cast<std::uint8_t>(seed_rng.NextU64());
  }
  ASSERT_TRUE(fs->WriteBytes(hot, 0, hot_data).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  // 4 collective ranks doing write/read phases.
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      const layout::Region view = collective.value()->view(rank).value();
      for (int phase = 0; phase < 4; ++phase) {
        SplitMix64 rng(phase * 10 + rank);
        Bytes data(view.num_elements());
        for (std::uint8_t& b : data) {
          b = static_cast<std::uint8_t>(rng.NextU64());
        }
        if (!collective.value()->WriteAll(rank, data).ok()) {
          failures.fetch_add(1);
          return;
        }
        Bytes check(data.size());
        if (!collective.value()->ReadAll(rank, check).ok() || check != data) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // 3 cached readers hammering the hot file with mixed options.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(100 + t);
      FileHandle handle = fs->Open("/chaos/hot.bin").value();
      handle.client_id = 10 + t;
      Bytes buffer;
      for (int op = 0; op < 40; ++op) {
        const std::uint64_t offset = rng.NextBelow(60 * 1024);
        const std::uint64_t length = 1 + rng.NextBelow(4 * 1024);
        buffer.resize(length);
        IoOptions io;
        io.whole_brick_reads = rng.NextBelow(2) == 0;
        io.parallel_dispatch = rng.NextBelow(2) == 0;
        if (!fs->ReadBytes(handle, offset, buffer, io).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (!std::equal(buffer.begin(), buffer.end(),
                        hot_data.begin() + static_cast<std::ptrdiff_t>(offset))) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // One metadata churner: create/rename/delete private files + fsck.
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      CreateOptions create;
      create.total_bytes = 2048;
      create.brick_bytes = 512;
      const std::string path = "/chaos/tmp" + std::to_string(i);
      Result<FileHandle> handle = fs->Create(path, create);
      if (!handle.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!fs->WriteBytes(*handle, 0, Bytes(2048, static_cast<std::uint8_t>(i)))
               .ok() ||
          !fs->Rename(path, path + ".renamed").ok() ||
          !fs->Remove(path + ".renamed").ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!fs->Fsck().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // End state: clean fsck, hot file intact, collective file readable.
  EXPECT_TRUE(fs->Fsck().value().clean());
  Bytes final_hot(64 * 1024);
  FileHandle hot2 = fs->Open("/chaos/hot.bin").value();
  ASSERT_TRUE(fs->ReadBytes(hot2, 0, final_hot).ok());
  EXPECT_EQ(final_hot, hot_data);
  const auto advice = fs->AdviseLevel("/chaos/hot.bin");
  EXPECT_TRUE(advice.ok());
}

// ---------------------------------------------------------------------------
// Fault-schedule scenarios. Each worker owns a private file striped across
// every server, writes a seeded random block, reads it back, and verifies a
// CRC32C checksum — so any lost, duplicated, or torn bytes are caught, not
// just "the call returned ok".

class ChaosScheduleTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  struct WorkloadStats {
    std::atomic<int> failures{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> busy_retries{0};
  };

  /// `workers` threads × `rounds` write+read+CRC-verify rounds against
  /// private files under /storm. The fault schedule runs concurrently.
  static void RunWorkload(core::LocalCluster& cluster, int workers,
                          int rounds, int max_retries,
                          WorkloadStats& stats) {
    auto fs = cluster.fs();
    ASSERT_TRUE(fs->metadata().MakeDirectory("/storm").ok());
    // Creation is metadata-only and uses an explicit transaction; metadb is
    // single-writer for those, so create sequentially before the storm.
    std::vector<FileHandle> handles;
    for (int w = 0; w < workers; ++w) {
      CreateOptions create;
      create.total_bytes = 16 * 1024;
      create.brick_bytes = 2 * 1024;  // stripes across all servers
      Result<FileHandle> handle =
          fs->Create("/storm/w" + std::to_string(w), create);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      handle->client_id = static_cast<std::uint32_t>(w);
      handles.push_back(std::move(handle).value());
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        FileHandle* handle = &handles[w];
        IoOptions io;
        io.max_retries = max_retries;
        for (int round = 0; round < rounds; ++round) {
          SplitMix64 rng(static_cast<std::uint64_t>(w * 1000 + round));
          Bytes data(16 * 1024);
          for (std::uint8_t& b : data) {
            b = static_cast<std::uint8_t>(rng.NextU64());
          }
          const std::uint32_t crc = Crc32c(data);
          IoReport report;
          if (!fs->WriteBytes(*handle, 0, data, io, &report).ok()) {
            stats.failures.fetch_add(1);
            return;
          }
          Bytes read(data.size());
          if (!fs->ReadBytes(*handle, 0, read, io, &report).ok()) {
            stats.failures.fetch_add(1);
            return;
          }
          if (Crc32c(read) != crc) {
            stats.failures.fetch_add(1);
            return;
          }
          stats.retries.fetch_add(report.retries);
          stats.busy_retries.fetch_add(report.busy_retries);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  static std::uint64_t TotalRejectedBusy(core::LocalCluster& cluster) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
      total += cluster.server(i).stats().sessions_rejected_busy.load();
    }
    return total;
  }
};

TEST_F(ChaosScheduleTest, BusyStormRecovers) {
  // A window of "server busy" rejections (§4.2): the first few session
  // dials pass, then 6 in a row are rejected, then the storm ends. Clients
  // must absorb it entirely through retry + backoff.
  core::ClusterOptions options;
  options.num_servers = 3;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();

  failpoint::Spec busy;
  busy.action = failpoint::Action::kBusy;
  busy.skip = 4;
  busy.count = 6;
  failpoint::Arm("server.session", busy);

  WorkloadStats stats;
  RunWorkload(*cluster, 4, 3, /*max_retries=*/10, stats);
  EXPECT_EQ(stats.failures.load(), 0);
  // Connection reuse means not all 6 counts necessarily fire, but every
  // fire must be visible as a busy rejection in the server stats.
  EXPECT_GE(TotalRejectedBusy(*cluster), 1u);
  EXPECT_EQ(TotalRejectedBusy(*cluster),
            failpoint::HitCount("server.session"));
  EXPECT_GE(stats.retries.load(), 1u);
  EXPECT_GE(stats.busy_retries.load(), 1u);
  EXPECT_TRUE(cluster->fs()->Fsck().value().clean());
}

TEST_F(ChaosScheduleTest, DroppedRepliesMidSessionRecover) {
  // Servers drop sessions with replies unsent: the client cannot know the
  // request's fate and must retry (writes are idempotent fragment puts).
  core::ClusterOptions options;
  options.num_servers = 3;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();

  failpoint::Spec drop;
  drop.action = failpoint::Action::kDisconnect;
  drop.skip = 6;
  drop.count = 8;
  failpoint::Arm("server.before_reply", drop);

  WorkloadStats stats;
  RunWorkload(*cluster, 4, 3, /*max_retries=*/10, stats);
  EXPECT_EQ(stats.failures.load(), 0);
  EXPECT_EQ(failpoint::HitCount("server.before_reply"), 8u);
  EXPECT_GE(stats.retries.load(), 1u);
  std::uint64_t server_errors = 0;
  for (std::size_t i = 0; i < cluster->num_servers(); ++i) {
    server_errors += cluster->server(i).stats().errors.load();
  }
  EXPECT_GE(server_errors, 8u);
  EXPECT_TRUE(cluster->fs()->Fsck().value().clean());
}

TEST_F(ChaosScheduleTest, TornReplyFramesRecover) {
  // The reply is cut mid-frame on the wire (net.send_all fires inside the
  // in-process server too): the client sees a torn frame, maps it to
  // kUnavailable, and retries on a fresh connection.
  core::ClusterOptions options;
  options.num_servers = 3;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();

  failpoint::Spec torn;
  torn.action = failpoint::Action::kDisconnect;
  torn.arg = 5;  // a few header bytes escape, then the stream dies
  torn.skip = 8;
  torn.count = 4;
  failpoint::Arm("net.send_all", torn);

  WorkloadStats stats;
  RunWorkload(*cluster, 3, 3, /*max_retries=*/10, stats);
  EXPECT_EQ(stats.failures.load(), 0);
  EXPECT_EQ(failpoint::HitCount("net.send_all"), 4u);
  EXPECT_TRUE(cluster->fs()->Fsck().value().clean());
}

TEST_F(ChaosScheduleTest, ServerRestartMidAccessRecovers) {
  // One server is stopped and restarted (same port, same subfile root)
  // while the workload runs. In the gap, clients see refused connections
  // and frame-boundary closes — all retryable; linear backoff spans the
  // restart window. Earlier-written data must survive the restart.
  core::ClusterOptions options;
  options.num_servers = 3;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();

  WorkloadStats stats;
  std::thread restarter([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(cluster->RestartServer(1).ok());
  });
  // max_retries=25 → worst-case 650 ms of backoff per request, far wider
  // than the in-process restart gap.
  RunWorkload(*cluster, 4, 10, /*max_retries=*/25, stats);
  restarter.join();
  EXPECT_EQ(stats.failures.load(), 0);
  EXPECT_TRUE(cluster->fs()->Fsck().value().clean());

  // And the restarted server still serves bytes written before it died.
  auto fs = cluster->fs();
  FileHandle handle = fs->Open("/storm/w0").value();
  SplitMix64 rng(9);  // w=0, round=9: the last pattern worker 0 wrote
  Bytes expect(16 * 1024);
  for (std::uint8_t& b : expect) {
    b = static_cast<std::uint8_t>(rng.NextU64());
  }
  Bytes read(16 * 1024);
  IoOptions io;
  io.max_retries = 10;
  ASSERT_TRUE(fs->ReadBytes(handle, 0, read, io).ok());
  EXPECT_EQ(Crc32c(read), Crc32c(expect));
}

TEST_F(ChaosScheduleTest, MixedScheduleEverythingAtOnce) {
  // The full storm: busy rejections, dropped replies, and injected client
  // call failures overlapping on one cluster. The counters are not pinned
  // (schedules interleave nondeterministically); recovery and integrity
  // are.
  core::ClusterOptions options;
  options.num_servers = 3;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();

  ASSERT_TRUE(failpoint::ArmFromString("server.session=busy,skip=3,count=4;"
                                       "server.before_reply=disconnect,"
                                       "skip=10,count=4;"
                                       "client.call=error:unavailable,"
                                       "skip=6,count=3")
                  .ok());

  WorkloadStats stats;
  RunWorkload(*cluster, 4, 4, /*max_retries=*/12, stats);
  EXPECT_EQ(stats.failures.load(), 0);
  EXPECT_GE(stats.retries.load(), 1u);
  EXPECT_TRUE(cluster->fs()->Fsck().value().clean());
}

}  // namespace
}  // namespace dpfs
