// Multi-client conformance for the standalone metadata service: several
// FileSystem instances — each with its own RemoteMetadataManager and TTL
// cache — share one namespace through a single dpfs-metad. The suite pins
// the semantics a shared namespace must honor: cross-client visibility of
// every mutation, the bounded staleness window of the lookup cache,
// invalidate-on-own-write, and exactly-one-winner under concurrent
// same-path creates. Runs against both connection engines.
//
// The suite name contains "Metad" so the asan-faults/tsan-faults ctest
// presets pick it up.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;
using client::MetadataService;

class MetadConformanceTest
    : public ::testing::TestWithParam<server::ServerEngine> {
 protected:
  void SetUp() override {
    core::ClusterOptions options;
    options.num_servers = 3;
    options.engine = GetParam();
    options.start_metadata_service = true;
    options.metadata_cache_ttl = kTtl;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_a_ = cluster_->fs();
    fs_b_ = SecondClient(kTtl);
  }

  /// Another client of the same metad — the "separate process" of the
  /// multi-client story, minus the fork (tests/integration/
  /// metad_conformance_test.sh covers true process isolation).
  std::shared_ptr<client::FileSystem> SecondClient(
      std::chrono::milliseconds ttl) {
    client::RemoteMetadataOptions options;
    options.cache_ttl = ttl;
    return client::FileSystem::ConnectRemote(cluster_->metad()->endpoint(),
                                             options)
        .value();
  }

  static CreateOptions LinearFile(std::uint64_t total_bytes = 256) {
    CreateOptions create;
    create.total_bytes = total_bytes;
    create.brick_bytes = 64;
    return create;
  }

  static bool Listed(MetadataService& metadata, const std::string& dir,
                     const std::string& name) {
    const MetadataService::Listing listing =
        metadata.ListDirectory(dir).value();
    return std::find(listing.files.begin(), listing.files.end(), name) !=
           listing.files.end();
  }

  static constexpr std::chrono::milliseconds kTtl{60};

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<client::FileSystem> fs_a_;
  std::shared_ptr<client::FileSystem> fs_b_;
};

TEST_P(MetadConformanceTest, RemoteModeHasNoEmbeddedDatabase) {
  // The remote FileSystem must not hold the metadata database — that is the
  // whole point of the service. (The embedded default is pinned by every
  // other integration suite, which runs without start_metadata_service.)
  EXPECT_EQ(fs_a_->embedded_metadata(), nullptr);
  EXPECT_EQ(fs_b_->embedded_metadata(), nullptr);
  EXPECT_NE(cluster_->metad(), nullptr);
}

TEST_P(MetadConformanceTest, CreateIsVisibleToOtherClientsWithData) {
  FileHandle wh = fs_a_->Create("/shared.bin", LinearFile()).value();
  Bytes data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(fs_a_->WriteBytes(wh, 0, data).ok());

  // Client B never heard of the file; its first lookup goes to the wire.
  FileHandle rh = fs_b_->Open("/shared.bin").value();
  Bytes read(256);
  ASSERT_TRUE(fs_b_->ReadBytes(rh, 0, read).ok());
  EXPECT_EQ(read, data);
}

TEST_P(MetadConformanceTest, DirectoryOperationsAreShared) {
  ASSERT_TRUE(fs_a_->metadata().MakeDirectory("/proj").ok());
  EXPECT_TRUE(fs_b_->metadata().DirectoryExists("/proj").value());

  (void)fs_a_->Create("/proj/a.dat", LinearFile()).value();
  (void)fs_b_->Create("/proj/b.dat", LinearFile()).value();

  const MetadataService::Listing listing =
      fs_a_->metadata().ListDirectory("/proj").value();
  EXPECT_EQ(listing.files, (std::vector<std::string>{"a.dat", "b.dat"}));
}

TEST_P(MetadConformanceTest, RemovalIsVisibleToOtherClients) {
  (void)fs_a_->Create("/doomed.bin", LinearFile()).value();
  ASSERT_TRUE(fs_b_->metadata().FileExists("/doomed.bin").value());
  ASSERT_TRUE(fs_b_->Remove("/doomed.bin").ok());
  // B deleted it, so B's cache self-invalidated; A never cached it.
  EXPECT_FALSE(fs_a_->metadata().FileExists("/doomed.bin").value());
  EXPECT_FALSE(fs_a_->Open("/doomed.bin").ok());
}

TEST_P(MetadConformanceTest, StaleCacheServesUntilInvalidated) {
  // A generous TTL makes the staleness deterministic: B's cached record
  // must survive A's mutation until B explicitly invalidates.
  const auto fs_c = SecondClient(std::chrono::milliseconds(60'000));
  (void)fs_a_->Create("/perm.bin", LinearFile()).value();

  EXPECT_EQ(fs_c->metadata().LookupFile("/perm.bin").value().meta.permission,
            0644u);
  ASSERT_TRUE(fs_a_->metadata().SetPermission("/perm.bin", 0600).ok());

  // Stale serve: the cached record still says 0644.
  EXPECT_EQ(fs_c->metadata().LookupFile("/perm.bin").value().meta.permission,
            0644u);
  const client::FileSystem::CacheStats stats = fs_c->metadata_cache_stats();
  EXPECT_GE(stats.hits, 1u);

  fs_c->InvalidateMetadataCache("/perm.bin");
  EXPECT_EQ(fs_c->metadata().LookupFile("/perm.bin").value().meta.permission,
            0600u);
}

TEST_P(MetadConformanceTest, TtlExpiryPublishesOtherClientsWrites) {
  (void)fs_a_->Create("/ttl.bin", LinearFile()).value();
  EXPECT_EQ(fs_b_->metadata().LookupFile("/ttl.bin").value().meta.permission,
            0644u);
  ASSERT_TRUE(fs_a_->metadata().SetPermission("/ttl.bin", 0400).ok());

  // After the TTL the next lookup must re-fetch — the staleness bound the
  // extension promises. (Only the fresh-after-expiry direction is asserted
  // here; the stale-before-expiry direction needs the long-TTL client
  // above, where scheduling delays cannot turn it flaky.)
  std::this_thread::sleep_for(kTtl * 3);
  EXPECT_EQ(fs_b_->metadata().LookupFile("/ttl.bin").value().meta.permission,
            0400u);
}

TEST_P(MetadConformanceTest, OwnWritesInvalidateImmediately) {
  const auto fs_c = SecondClient(std::chrono::milliseconds(60'000));
  (void)fs_c->Create("/own.bin", LinearFile()).value();
  EXPECT_EQ(fs_c->metadata().LookupFile("/own.bin").value().meta.permission,
            0644u);
  // The mutating client sees its own write at once, TTL notwithstanding.
  ASSERT_TRUE(fs_c->metadata().SetPermission("/own.bin", 0751).ok());
  EXPECT_EQ(fs_c->metadata().LookupFile("/own.bin").value().meta.permission,
            0751u);
}

TEST_P(MetadConformanceTest, RenameIsVisibleEverywhere) {
  (void)fs_a_->Create("/before.bin", LinearFile()).value();
  (void)fs_b_->metadata().LookupFile("/before.bin").value();  // warm B cache
  ASSERT_TRUE(fs_a_->Rename("/before.bin", "/after.bin").ok());

  std::this_thread::sleep_for(kTtl * 3);  // let B's cached record expire
  EXPECT_FALSE(fs_b_->metadata().FileExists("/before.bin").value());
  FileHandle handle = fs_b_->Open("/after.bin").value();
  EXPECT_EQ(handle.meta().path, "/after.bin");
}

TEST_P(MetadConformanceTest, CacheCountersMove) {
  const auto fs_c = SecondClient(std::chrono::milliseconds(60'000));
  (void)fs_a_->Create("/counted.bin", LinearFile()).value();
  const client::FileSystem::CacheStats before = fs_c->metadata_cache_stats();
  (void)fs_c->metadata().LookupFile("/counted.bin").value();  // miss + fetch
  (void)fs_c->metadata().LookupFile("/counted.bin").value();  // hit
  const client::FileSystem::CacheStats after = fs_c->metadata_cache_stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST_P(MetadConformanceTest, ConcurrentWritersShareTheNamespace) {
  // N clients, each its own connection, hammer the namespace concurrently:
  // disjoint creates must all land, and every surviving path must be fully
  // resolvable from a late-joining client.
  constexpr int kWriters = 4;
  constexpr int kFilesPerWriter = 6;
  ASSERT_TRUE(fs_a_->metadata().MakeDirectory("/stress").ok());

  std::vector<std::shared_ptr<client::FileSystem>> clients;
  for (int w = 0; w < kWriters; ++w) {
    clients.push_back(SecondClient(kTtl));
  }
  std::vector<std::thread> threads;
  std::vector<Status> failures(kWriters, Status::Ok());
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([this, w, &clients, &failures] {
      for (int f = 0; f < kFilesPerWriter; ++f) {
        const std::string path = "/stress/w" + std::to_string(w) + "_f" +
                                 std::to_string(f) + ".bin";
        Result<FileHandle> handle = clients[w]->Create(path, LinearFile());
        if (!handle.ok()) {
          failures[w] = handle.status();
          return;
        }
        Bytes data(256, static_cast<std::uint8_t>(w * 16 + f));
        const Status written = clients[w]->WriteBytes(handle.value(), 0, data);
        if (!written.ok()) {
          failures[w] = written;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(failures[w].ok()) << "writer " << w << ": "
                                  << failures[w].ToString();
  }

  // A fresh client sees every file, and each one resolves with its data.
  const auto fs_late = SecondClient(kTtl);
  const MetadataService::Listing listing =
      fs_late->metadata().ListDirectory("/stress").value();
  EXPECT_EQ(listing.files.size(),
            static_cast<std::size_t>(kWriters * kFilesPerWriter));
  for (const std::string& name : listing.files) {
    FileHandle handle = fs_late->Open("/stress/" + name).value();
    Bytes read(256);
    ASSERT_TRUE(fs_late->ReadBytes(handle, 0, read).ok()) << name;
    EXPECT_EQ(read, Bytes(256, read[0])) << name;  // one uniform fill value
  }
}

TEST_P(MetadConformanceTest, SamePathCreateRaceHasExactlyOneWinner) {
  constexpr int kRacers = 4;
  std::vector<std::shared_ptr<client::FileSystem>> clients;
  for (int r = 0; r < kRacers; ++r) {
    clients.push_back(SecondClient(kTtl));
  }
  std::vector<std::thread> threads;
  std::vector<Status> outcomes(kRacers, Status::Ok());
  for (int r = 0; r < kRacers; ++r) {
    threads.emplace_back([r, &clients, &outcomes] {
      outcomes[r] =
          clients[r]->Create("/contested.bin", LinearFile()).status();
    });
  }
  for (std::thread& thread : threads) thread.join();

  const int winners = static_cast<int>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const Status& status) { return status.ok(); }));
  EXPECT_EQ(winners, 1);
  for (const Status& status : outcomes) {
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kAlreadyExists)
          << status.ToString();
    }
  }
  // Whatever the interleaving, the namespace is coherent afterwards.
  EXPECT_TRUE(fs_a_->metadata().FileExists("/contested.bin").value());
  EXPECT_TRUE(Listed(fs_a_->metadata(), "/", "contested.bin"));
  EXPECT_TRUE(fs_a_->Open("/contested.bin").ok());
}

TEST_P(MetadConformanceTest, MetadMetricsCountNamespaceTraffic) {
  (void)fs_a_->Create("/metered.bin", LinearFile()).value();
  (void)fs_b_->Open("/metered.bin").value();

  const std::unique_ptr<client::RemoteMetadataManager> remote =
      client::RemoteMetadataManager::Connect(cluster_->metad()->endpoint())
          .value();
  const std::string snapshot = remote->FetchMetrics().value();
  EXPECT_NE(snapshot.find("counter metad.requests.meta_create_file "),
            std::string::npos);
  EXPECT_NE(snapshot.find("counter metad.requests.meta_lookup_file "),
            std::string::npos);
  EXPECT_NE(
      snapshot.find("histogram metad.service_time_us.meta_lookup_file "),
      std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MetadConformanceTest,
    ::testing::Values(server::ServerEngine::kThreadPerConnection,
                      server::ServerEngine::kEventLoop),
    [](const ::testing::TestParamInfo<server::ServerEngine>& param_info) {
      return param_info.param == server::ServerEngine::kEventLoop
                 ? "EventLoop"
                 : "ThreadPerConnection";
    });

}  // namespace
}  // namespace dpfs
