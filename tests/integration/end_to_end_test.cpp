// Full-stack scenarios: many compute-node threads doing collective I/O over
// real TCP against a heterogeneous cluster, with metadata in the database —
// the whole paper pipeline minus the machine room.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "core/cluster.h"
#include "layout/hpf.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;
using client::FileSystem;
using core::ClusterOptions;
using core::LocalCluster;

Bytes PatternBytes(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.NextU64());
  }
  return data;
}

TEST(EndToEndTest, ParallelStarBlockWriteThenRead) {
  // 8 compute threads, 4 I/O nodes, (*,BLOCK) on a 128x128 multidim file —
  // the Fig 11 workload shape at test scale, with real data.
  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  const auto cluster = LocalCluster::Start(std::move(cluster_options)).value();
  const std::shared_ptr<FileSystem> fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kMultidim;
  create.array_shape = {128, 128};
  create.brick_shape = {16, 16};
  ASSERT_TRUE(fs->Create("/sim.dat", create).ok());

  const Bytes truth = PatternBytes(128 * 128, 42);
  constexpr std::uint32_t kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::uint32_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const Result<FileHandle> handle = fs->Open("/sim.dat");
      if (!handle.ok()) {
        failures.fetch_add(1);
        return;
      }
      FileHandle h = handle.value();
      h.client_id = c;
      // (*,BLOCK): client c owns columns [c*16, (c+1)*16).
      const layout::Region mine{{0, c * 16}, {128, 16}};
      Bytes chunk(mine.num_elements());
      for (std::uint64_t r = 0; r < 128; ++r) {
        for (std::uint64_t col = 0; col < 16; ++col) {
          chunk[r * 16 + col] = truth[r * 128 + c * 16 + col];
        }
      }
      if (!fs->WriteRegion(h, mine, chunk).ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // One reader checks the whole array.
  FileHandle reader = fs->Open("/sim.dat").value();
  Bytes all(128 * 128);
  ASSERT_TRUE(fs->ReadRegion(reader, {{0, 0}, {128, 128}}, all).ok());
  EXPECT_EQ(all, truth);
}

TEST(EndToEndTest, CheckpointRestartWithArrayLevel) {
  // §3.3's motivating scenario: periodic checkpoint dump + restart read,
  // each processor's chunk stored as one array brick.
  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  const auto cluster = LocalCluster::Start(std::move(cluster_options)).value();
  const std::shared_ptr<FileSystem> fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kArray;
  create.array_shape = {64, 64};
  create.element_size = 8;  // doubles
  create.pattern = layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  create.num_chunks = 4;
  ASSERT_TRUE(fs->Create("/ckpt0", create).ok());

  layout::ProcessGrid grid;
  grid.grid = {2, 2};
  const auto pattern = layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();

  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    writers.emplace_back([&, rank] {
      FileHandle h = fs->Open("/ckpt0").value();
      h.client_id = static_cast<std::uint32_t>(rank);
      const layout::Region chunk =
          layout::ChunkForProcess({64, 64}, pattern, grid, rank).value();
      const Bytes data = PatternBytes(chunk.num_elements() * 8, 900 + rank);
      client::IoReport report;
      if (!fs->WriteRegion(h, chunk, data, {}, &report).ok() ||
          report.requests != 1) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Restart: every rank reads its chunk back in one request.
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    FileHandle h = fs->Open("/ckpt0").value();
    h.client_id = static_cast<std::uint32_t>(rank);
    const layout::Region chunk =
        layout::ChunkForProcess({64, 64}, pattern, grid, rank).value();
    Bytes restored(chunk.num_elements() * 8);
    client::IoReport report;
    ASSERT_TRUE(fs->ReadRegion(h, chunk, restored, {}, &report).ok());
    EXPECT_EQ(report.requests, 1u);
    EXPECT_EQ(restored, PatternBytes(chunk.num_elements() * 8, 900 + rank));
  }
}

TEST(EndToEndTest, HeterogeneousGreedyPlacementStoresMoreOnFastServers) {
  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  cluster_options.performance = {1, 1, 3, 3};  // half class1, half class3
  const auto cluster = LocalCluster::Start(std::move(cluster_options)).value();
  const std::shared_ptr<FileSystem> fs = cluster->fs();

  CreateOptions create;
  create.total_bytes = 256 * 1024;
  create.brick_bytes = 1024;  // 256 bricks
  create.placement = layout::PlacementPolicy::kGreedy;
  const FileHandle handle = fs->Create("/hetero.bin", create).value();

  const auto& dist = handle.record.distribution;
  const std::size_t fast = dist.bricks_on(0).size() + dist.bricks_on(1).size();
  const std::size_t slow = dist.bricks_on(2).size() + dist.bricks_on(3).size();
  EXPECT_NEAR(static_cast<double>(fast) / static_cast<double>(slow), 3.0,
              0.1);

  // Data still round-trips correctly through the skewed layout.
  FileHandle h = fs->Open("/hetero.bin").value();
  const Bytes data = PatternBytes(256 * 1024, 7);
  ASSERT_TRUE(fs->WriteBytes(h, 0, data).ok());
  Bytes read(256 * 1024);
  ASSERT_TRUE(fs->ReadBytes(h, 0, read).ok());
  EXPECT_EQ(read, data);

  // And the bytes on disk are actually skewed toward the fast servers.
  const std::uint64_t fast_bytes =
      cluster->server(0).store().TotalBytesStored().value() +
      cluster->server(1).store().TotalBytesStored().value();
  const std::uint64_t slow_bytes =
      cluster->server(2).store().TotalBytesStored().value() +
      cluster->server(3).store().TotalBytesStored().value();
  EXPECT_GT(fast_bytes, 2 * slow_bytes);
}

TEST(EndToEndTest, ManyFilesAcrossDirectories) {
  ClusterOptions cluster_options;
  cluster_options.num_servers = 2;
  const auto cluster = LocalCluster::Start(std::move(cluster_options)).value();
  const std::shared_ptr<FileSystem> fs = cluster->fs();

  ASSERT_TRUE(fs->metadata().MakeDirectory("/runs").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        fs->metadata().MakeDirectory("/runs/run" + std::to_string(i)).ok());
    CreateOptions create;
    create.total_bytes = 512;
    create.brick_bytes = 128;
    FileHandle handle =
        fs->Create("/runs/run" + std::to_string(i) + "/out.bin", create)
            .value();
    ASSERT_TRUE(
        fs->WriteBytes(handle, 0,
                       Bytes(512, static_cast<std::uint8_t>(i)))
            .ok());
  }
  const auto listing = fs->metadata().ListDirectory("/runs").value();
  EXPECT_EQ(listing.directories.size(), 10u);

  // Spot-check one file's contents.
  FileHandle h = fs->Open("/runs/run7/out.bin").value();
  Bytes read(512);
  ASSERT_TRUE(fs->ReadBytes(h, 0, read).ok());
  EXPECT_EQ(read, Bytes(512, 7));

  // Recursive removal tears everything down — metadata, the client's
  // record cache, and the subfiles on every server.
  ASSERT_TRUE(fs->RemoveDirectory("/runs", true).ok());
  EXPECT_FALSE(fs->Open("/runs/run7/out.bin").ok());
  for (std::size_t s = 0; s < cluster->num_servers(); ++s) {
    EXPECT_FALSE(cluster->server(s)
                     .store()
                     .Stat("/runs/run7/out.bin")
                     .value()
                     .exists);
  }
}

TEST(EndToEndTest, LinearArrayColumnAccessMatchesTruth) {
  // The Fig 5 pathology, executed with real bytes: a 64x64 array stored
  // linear; column reads are correct (if slow), which is the point.
  ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  const auto cluster = LocalCluster::Start(std::move(cluster_options)).value();
  const std::shared_ptr<FileSystem> fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kLinear;
  create.array_shape = {64, 64};
  create.brick_bytes = 256;  // 4 rows per brick
  FileHandle handle = fs->Create("/linear2d", create).value();

  const Bytes truth = PatternBytes(64 * 64, 11);
  ASSERT_TRUE(fs->WriteRegion(handle, {{0, 0}, {64, 64}}, truth).ok());

  client::IoReport report;
  Bytes column(64);
  ASSERT_TRUE(
      fs->ReadRegion(handle, {{0, 9}, {64, 1}}, column, {}, &report).ok());
  for (std::uint64_t r = 0; r < 64; ++r) {
    EXPECT_EQ(column[r], truth[r * 64 + 9]);
  }
  // Whole-brick read amplification is visible in the report.
  EXPECT_GT(report.transfer_bytes, report.useful_bytes * 50);
}

}  // namespace
}  // namespace dpfs
