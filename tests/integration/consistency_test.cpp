// Shadow-model consistency: random sequences of region writes and reads
// against a live cluster must always agree with an in-memory golden array —
// across all three file levels, including non-divisible (padded-edge-brick)
// geometries, and regardless of combination options.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;
using client::IoOptions;

class ShadowConsistencyTest : public ::testing::TestWithParam<int> {
 protected:
  ShadowConsistencyTest() {
    core::ClusterOptions options;
    options.num_servers = 3;  // odd count exercises uneven round-robin
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<client::FileSystem> fs_;
};

TEST_P(ShadowConsistencyTest, RandomRegionOpsMatchShadow) {
  SplitMix64 rng(GetParam() * 7919 + 1);

  // Random geometry — deliberately awkward (non-divisible) sizes.
  const layout::Shape shape = {17 + rng.NextBelow(40),
                               23 + rng.NextBelow(40)};
  const std::uint64_t element_size = 1 + rng.NextBelow(4);

  CreateOptions create;
  create.element_size = element_size;
  create.array_shape = shape;
  switch (GetParam() % 3) {
    case 0:
      create.level = layout::FileLevel::kLinear;
      create.brick_bytes = 13 + rng.NextBelow(100);
      break;
    case 1:
      create.level = layout::FileLevel::kMultidim;
      create.brick_shape = {1 + rng.NextBelow(shape[0]),
                            1 + rng.NextBelow(shape[1])};
      break;
    case 2: {
      create.level = layout::FileLevel::kArray;
      create.pattern = layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
      // Force divisibility for the array level by rounding the shape.
      layout::Shape rounded = shape;
      rounded[0] = ((rounded[0] + 1) / 2) * 2;
      rounded[1] = ((rounded[1] + 2) / 3) * 3;
      create.array_shape = rounded;
      create.chunk_grid = {2, 3};
      break;
    }
  }
  FileHandle handle = fs_->Create("/shadow.dpfs", create).value();
  const layout::Shape& actual_shape = handle.meta().array_shape;
  const std::uint64_t total_bytes =
      layout::NumElements(actual_shape) * element_size;

  Bytes shadow(total_bytes, 0);
  const auto shadow_index = [&](std::uint64_t r, std::uint64_t c,
                                std::uint64_t byte) {
    return (r * actual_shape[1] + c) * element_size + byte;
  };

  for (int op = 0; op < 30; ++op) {
    layout::Region region;
    region.lower = {rng.NextBelow(actual_shape[0]),
                    rng.NextBelow(actual_shape[1])};
    region.extent = {
        1 + rng.NextBelow(actual_shape[0] - region.lower[0]),
        1 + rng.NextBelow(actual_shape[1] - region.lower[1])};
    const std::uint64_t region_bytes =
        region.num_elements() * element_size;
    IoOptions options;
    options.combine = rng.NextBelow(2) == 0;
    options.rotate_start = rng.NextBelow(2) == 0;

    if (rng.NextBelow(2) == 0) {
      // Write random data to the region; update the shadow.
      Bytes data(region_bytes);
      for (std::uint8_t& b : data) {
        b = static_cast<std::uint8_t>(rng.NextU64());
      }
      ASSERT_TRUE(fs_->WriteRegion(handle, region, data, options).ok())
          << "op " << op;
      std::uint64_t cursor = 0;
      for (std::uint64_t r = 0; r < region.extent[0]; ++r) {
        for (std::uint64_t c = 0; c < region.extent[1]; ++c) {
          for (std::uint64_t byte = 0; byte < element_size; ++byte) {
            shadow[shadow_index(region.lower[0] + r, region.lower[1] + c,
                                byte)] = data[cursor++];
          }
        }
      }
    } else {
      // Read the region and compare with the shadow.
      Bytes read(region_bytes);
      ASSERT_TRUE(fs_->ReadRegion(handle, region, read, options).ok())
          << "op " << op;
      std::uint64_t cursor = 0;
      for (std::uint64_t r = 0; r < region.extent[0]; ++r) {
        for (std::uint64_t c = 0; c < region.extent[1]; ++c) {
          for (std::uint64_t byte = 0; byte < element_size; ++byte) {
            ASSERT_EQ(read[cursor],
                      shadow[shadow_index(region.lower[0] + r,
                                          region.lower[1] + c, byte)])
                << "op " << op << " at (" << region.lower[0] + r << ","
                << region.lower[1] + c << ") byte " << byte;
            ++cursor;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShadowConsistencyTest,
                         ::testing::Range(0, 12));

TEST(ShadowRankTest, FourDimensionalMultidimRoundTrip) {
  // Rank-4 arrays exercise the odometer paths well beyond the paper's 2-D
  // examples.
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 3;
  const auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  const auto fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kMultidim;
  create.array_shape = {6, 5, 7, 9};
  create.brick_shape = {2, 3, 4, 4};  // non-divisible: padded edge bricks
  create.element_size = 2;
  FileHandle handle = fs->Create("/tesseract.dpfs", create).value();

  SplitMix64 rng(4444);
  const std::uint64_t total = 6 * 5 * 7 * 9 * 2;
  Bytes truth(total);
  for (std::uint8_t& b : truth) b = static_cast<std::uint8_t>(rng.NextU64());
  ASSERT_TRUE(
      fs->WriteRegion(handle, {{0, 0, 0, 0}, {6, 5, 7, 9}}, truth).ok());

  // Interior hyper-rectangle read.
  const layout::Region window{{1, 1, 2, 3}, {4, 3, 4, 5}};
  Bytes read(window.num_elements() * 2);
  ASSERT_TRUE(fs->ReadRegion(handle, window, read).ok());
  std::uint64_t cursor = 0;
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      for (std::uint64_t c = 0; c < 4; ++c) {
        for (std::uint64_t d = 0; d < 5; ++d) {
          const std::uint64_t element =
              (((a + 1) * 5 + (b + 1)) * 7 + (c + 2)) * 9 + (d + 3);
          for (int byte = 0; byte < 2; ++byte) {
            ASSERT_EQ(read[cursor++], truth[element * 2 + byte])
                << a << "," << b << "," << c << "," << d;
          }
        }
      }
    }
  }
}

TEST(ShadowByteTest, RandomByteOpsMatchShadowOnLinearFile) {
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  const auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  const auto fs = cluster->fs();

  SplitMix64 rng(99);
  CreateOptions create;
  create.total_bytes = 10000;
  create.brick_bytes = 37;  // deliberately odd: 271 bricks, partial tail
  FileHandle handle = fs->Create("/bytes.bin", create).value();

  Bytes shadow(10000, 0);
  for (int op = 0; op < 60; ++op) {
    const std::uint64_t offset = rng.NextBelow(10000);
    const std::uint64_t length = 1 + rng.NextBelow(10000 - offset);
    if (rng.NextBelow(2) == 0) {
      Bytes data(length);
      for (std::uint8_t& b : data) {
        b = static_cast<std::uint8_t>(rng.NextU64());
      }
      ASSERT_TRUE(fs->WriteBytes(handle, offset, data).ok());
      std::copy(data.begin(), data.end(), shadow.begin() + offset);
    } else {
      Bytes read(length);
      ASSERT_TRUE(fs->ReadBytes(handle, offset, read).ok());
      ASSERT_TRUE(std::equal(read.begin(), read.end(),
                             shadow.begin() + offset))
          << "op " << op << " offset " << offset << " length " << length;
    }
  }
}

}  // namespace
}  // namespace dpfs
