#!/usr/bin/env bash
# Multi-process deployment smoke test: two dpfsd daemons register into a
# shared metadata directory; the dpfs CLI imports, inspects, moves, and
# exports a file through them. Usage: deployment_test.sh <dpfsd> <dpfs>
set -u

DPFSD="$1"
DPFS="$2"
WORK="$(mktemp -d)"
PIDS=""

fail() {
  echo "FAIL: $1" >&2
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

"$DPFSD" --root "$WORK/s0" --name node0 --metadb "$WORK/meta" \
         --performance 1 > "$WORK/d0.log" 2>&1 &
PIDS="$!"
"$DPFSD" --root "$WORK/s1" --name node1 --metadb "$WORK/meta" \
         --performance 3 > "$WORK/d1.log" 2>&1 &
PIDS="$PIDS $!"

# Wait for both registrations to become visible through the client path,
# not just the daemons' logs: a slow build (ASan) can log "registered"
# before the metadb lock is released to other processes. `df` only lists a
# node once its row is readable, so this is the real readiness signal.
ready=""
for i in $(seq 1 100); do
  if DF="$("$DPFS" --metadb "$WORK/meta" --c "df" 2>/dev/null)" \
     && echo "$DF" | grep -q node0 && echo "$DF" | grep -q node1; then
    ready=1
    break
  fi
  sleep 0.1
done
if [ -z "$ready" ]; then
  cat "$WORK"/d*.log >&2
  fail "nodes never registered"
fi

head -c 300000 /dev/urandom > "$WORK/input.bin"

"$DPFS" --metadb "$WORK/meta" --c "mkdir /data" || fail "mkdir"
"$DPFS" --metadb "$WORK/meta" --c "import $WORK/input.bin /data/blob" \
  || fail "import"
"$DPFS" --metadb "$WORK/meta" --c "stat /data/blob" | grep -q "size:       300000" \
  || fail "stat size"
"$DPFS" --metadb "$WORK/meta" --c "mv /data/blob /data/renamed" || fail "mv"
"$DPFS" --metadb "$WORK/meta" --c "export /data/renamed $WORK/output.bin" \
  || fail "export"
cmp -s "$WORK/input.bin" "$WORK/output.bin" || fail "round-trip mismatch"

# Both servers actually stored bricks (round-robin striping).
"$DPFS" --metadb "$WORK/meta" --c "df" | grep -q node0 || fail "df node0"
[ -n "$(find "$WORK/s0" -type f 2>/dev/null)" ] || fail "node0 stored nothing"
[ -n "$(find "$WORK/s1" -type f 2>/dev/null)" ] || fail "node1 stored nothing"

"$DPFS" --metadb "$WORK/meta" --c "rm /data/renamed" || fail "rm"

kill $PIDS 2>/dev/null
wait $PIDS 2>/dev/null
rm -rf "$WORK"
echo "deployment smoke test passed"
exit 0
