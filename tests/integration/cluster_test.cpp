#include "core/cluster.h"

#include <gtest/gtest.h>

namespace dpfs::core {
namespace {

TEST(LocalClusterTest, StartsAndRegistersServers) {
  ClusterOptions options;
  options.num_servers = 3;
  const auto cluster = LocalCluster::Start(std::move(options)).value();
  EXPECT_EQ(cluster->num_servers(), 3u);
  const auto servers = cluster->fs()->metadata().ListServers().value();
  ASSERT_EQ(servers.size(), 3u);
  // Names are zero-padded so sorted order matches server indices.
  EXPECT_EQ(servers[0].name, "ionode000.dpfs.local");
  EXPECT_EQ(servers[0].endpoint.port, cluster->server(0).endpoint().port);
}

TEST(LocalClusterTest, PerformanceNumbersPropagate) {
  ClusterOptions options;
  options.num_servers = 2;
  options.performance = {1, 3};
  const auto cluster = LocalCluster::Start(std::move(options)).value();
  const auto servers = cluster->fs()->metadata().ListServers().value();
  EXPECT_EQ(servers[0].performance, 1u);
  EXPECT_EQ(servers[1].performance, 3u);
}

TEST(LocalClusterTest, MismatchedPerformanceVectorRejected) {
  ClusterOptions options;
  options.num_servers = 2;
  options.performance = {1, 2, 3};
  EXPECT_FALSE(LocalCluster::Start(std::move(options)).ok());
}

TEST(LocalClusterTest, ZeroServersRejected) {
  ClusterOptions options;
  options.num_servers = 0;
  EXPECT_FALSE(LocalCluster::Start(std::move(options)).ok());
}

TEST(LocalClusterTest, StopIsIdempotent) {
  ClusterOptions options;
  options.num_servers = 2;
  auto cluster = LocalCluster::Start(std::move(options)).value();
  cluster->Stop();
  cluster->Stop();
}

TEST(LocalClusterTest, DurableMetadataSurvivesClusterRestart) {
  const TempDir root = TempDir::Create("dpfs-durable").value();
  {
    ClusterOptions options;
    options.num_servers = 2;
    options.root_dir = root.path();
    options.durable_metadata = true;
    auto cluster = LocalCluster::Start(std::move(options)).value();
    client::CreateOptions create;
    create.total_bytes = 1000;
    create.brick_bytes = 100;
    auto handle = cluster->fs()->Create("/persist.bin", create).value();
    const Bytes data(1000, 0x5A);
    ASSERT_TRUE(cluster->fs()->WriteBytes(handle, 0, data).ok());
  }
  // Restart on the same root: servers re-register under the same names
  // (fresh ports) and the file metadata survives.
  {
    ClusterOptions options;
    options.num_servers = 2;
    options.root_dir = root.path();
    options.durable_metadata = true;
    const auto cluster = LocalCluster::Start(std::move(options)).value();
    const auto attr = cluster->db()
                          ->Execute(
                              "SELECT size FROM DPFS_FILE_ATTR WHERE "
                              "filename = '/persist.bin'")
                          .value();
    ASSERT_EQ(attr.size(), 1u);
    EXPECT_EQ(attr.GetInt(0, "size").value(), 1000);
    // No duplicated server rows.
    const auto servers = cluster->fs()->metadata().ListServers().value();
    EXPECT_EQ(servers.size(), 2u);
  }
}

TEST(LocalClusterTest, ServersShareNothing) {
  ClusterOptions options;
  options.num_servers = 2;
  const auto cluster = LocalCluster::Start(std::move(options)).value();
  // Write through server 0's store directly and confirm server 1 can't see
  // it — each I/O node owns its own subfile root.
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes{1, 2, 3}});
  ASSERT_TRUE(
      cluster->server(0).store().WriteFragments("/x", writes, false).ok());
  EXPECT_TRUE(cluster->server(0).store().Stat("/x").value().exists);
  EXPECT_FALSE(cluster->server(1).store().Stat("/x").value().exists);
}

}  // namespace
}  // namespace dpfs::core
