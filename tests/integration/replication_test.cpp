// End-to-end coverage of the replication extension (docs/REPLICATION.md)
// against a live cluster: replicated creates fan writes to every rank,
// reads fail over when a server dies, partial write failures are surfaced
// but tolerated while any copy of each brick survives, and a server killed
// mid-collective-write loses no data.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "client/collective.h"
#include "client/datatype.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CollectiveFile;
using client::CreateOptions;
using client::Datatype;
using client::FileHandle;
using client::IoOptions;
using client::IoReport;

Bytes SeededBytes(std::size_t size, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes data(size);
  for (std::uint8_t& b : data) {
    b = static_cast<std::uint8_t>(rng.NextU64());
  }
  return data;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void StartCluster(std::uint32_t num_servers) {
    core::ClusterOptions options;
    options.num_servers = num_servers;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
  }

  void TearDown() override { failpoint::DisarmAll(); }

  FileHandle CreateReplicated(const std::string& path, std::uint32_t factor,
                              std::uint64_t total_bytes = 64 * 1024,
                              std::uint64_t brick_bytes = 4 * 1024) {
    CreateOptions create;
    create.total_bytes = total_bytes;
    create.brick_bytes = brick_bytes;
    create.replication = factor;
    return fs_->Create(path, create).value();
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<client::FileSystem> fs_;
};

TEST_F(ReplicationTest, ReplicatedWriteReadRoundTrip) {
  StartCluster(3);
  FileHandle handle = CreateReplicated("/r2.bin", 2);
  EXPECT_EQ(handle.record.replication(), 2u);

  const Bytes data = SeededBytes(64 * 1024, 1);
  IoReport write_report;
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data, {}, &write_report).ok());
  EXPECT_EQ(write_report.replica_write_failures, 0u);
  // Every byte crossed the wire twice — once per rank.
  EXPECT_EQ(write_report.transfer_bytes, 2u * 64 * 1024);

  Bytes read(64 * 1024);
  IoReport read_report;
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, read, {}, &read_report).ok());
  EXPECT_EQ(read, data);
  EXPECT_EQ(read_report.failover_reads, 0u);  // healthy cluster: all primary
  EXPECT_TRUE(fs_->Fsck().value().clean());
}

TEST_F(ReplicationTest, DefaultCreateStaysUnreplicated) {
  // R = 1 is the paper's semantics and the default; no replica rows, no
  // replica traffic, nothing to fail over to.
  StartCluster(3);
  CreateOptions create;
  create.total_bytes = 16 * 1024;
  create.brick_bytes = 4 * 1024;
  FileHandle handle = fs_->Create("/plain.bin", create).value();
  EXPECT_EQ(handle.record.replication(), 1u);
  EXPECT_TRUE(handle.record.replicas.empty());

  const Bytes data = SeededBytes(16 * 1024, 2);
  IoReport report;
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data, {}, &report).ok());
  EXPECT_EQ(report.transfer_bytes, 16u * 1024);  // once, not R times
  EXPECT_EQ(report.replica_write_failures, 0u);
}

TEST_F(ReplicationTest, ReplicationNeedsEnoughServers) {
  StartCluster(2);
  CreateOptions create;
  create.total_bytes = 8 * 1024;
  create.brick_bytes = 4 * 1024;
  create.replication = 3;  // 3 copies over 2 servers cannot be disjoint
  EXPECT_EQ(fs_->Create("/toowide.bin", create).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ReplicationTest, ReadFailsOverWhenAServerDies) {
  StartCluster(3);
  FileHandle handle = CreateReplicated("/failover.bin", 2);
  const Bytes data = SeededBytes(64 * 1024, 3);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data).ok());

  metrics::Counter& failovers = metrics::GetCounter("client.failover_reads");
  const std::uint64_t failovers_before = failovers.value();

  cluster_->server(0).Stop();
  Bytes read(64 * 1024);
  IoOptions io;
  io.max_retries = 0;  // fail over immediately rather than waiting out 0
  IoReport report;
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, read, io, &report).ok());
  EXPECT_EQ(read, data);
  EXPECT_GE(report.failover_reads, 1u);
  EXPECT_GE(failovers.value() - failovers_before, 1u);

  // The dead server is now suspect: a second read goes straight to the
  // surviving replicas without burning a dial on it.
  Bytes again(64 * 1024);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, again, io).ok());
  EXPECT_EQ(again, data);
}

TEST_F(ReplicationTest, DegradedWriteSurvivesAndSurfacesFailures) {
  // Two servers, R=2: every brick has one copy on each. With server 1 down
  // a write keeps exactly one live copy per brick — it must succeed, report
  // the failed replica requests, and reads (failing over) must see the new
  // bytes.
  StartCluster(2);
  FileHandle handle = CreateReplicated("/degraded.bin", 2, 32 * 1024);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, SeededBytes(32 * 1024, 4)).ok());

  metrics::Counter& failures =
      metrics::GetCounter("client.replica_write_failures");
  const std::uint64_t failures_before = failures.value();

  cluster_->server(1).Stop();
  const Bytes fresh = SeededBytes(32 * 1024, 5);
  IoOptions io;
  io.max_retries = 0;
  IoReport report;
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, fresh, io, &report).ok());
  EXPECT_GE(report.replica_write_failures, 1u);
  EXPECT_GE(failures.value() - failures_before, 1u);

  Bytes read(32 * 1024);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, read, io).ok());
  EXPECT_EQ(read, fresh);

  // Losing the last copy is a hard failure: with both servers down no
  // brick survives, and the write must report it.
  cluster_->server(0).Stop();
  EXPECT_FALSE(fs_->WriteBytes(handle, 0, fresh, io).ok());
}

TEST_F(ReplicationTest, InjectedReplicaFailuresAreTolerated) {
  // Same semantics driven by failpoints: a single-brick R=2 file issues
  // exactly two write requests (primary, then replica). Failing the first
  // must not fail the write — the brick's other copy survives and the
  // report says one copy was dropped. Failing both is data loss and must
  // surface as the write's error.
  StartCluster(3);
  FileHandle handle = CreateReplicated("/inject.bin", 2, 16 * 1024, 16 * 1024);

  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kUnavailable;
  spec.count = 1;
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 0;  // no retry: the injected failure sticks
  IoReport report;
  ASSERT_TRUE(
      fs_->WriteBytes(handle, 0, SeededBytes(16 * 1024, 6), io, &report).ok());
  EXPECT_EQ(report.replica_write_failures, 1u);

  failpoint::DisarmAll();
  spec.count = 2;  // both copies of the one brick fail
  failpoint::Arm("client.call", spec);
  EXPECT_EQ(fs_->WriteBytes(handle, 0, SeededBytes(16 * 1024, 6), io)
                .code(),
            StatusCode::kUnavailable);
}

TEST_F(ReplicationTest, ListIoFallsBackForReplicatedFiles) {
  // List I/O does not compose with replication; IoOptions::list_io on a
  // replicated file silently takes the per-extent path and must still
  // round-trip bytes through both ranks.
  StartCluster(3);
  FileHandle handle = CreateReplicated("/list.bin", 2, 4096, 64);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, SeededBytes(4096, 7)).ok());

  const Datatype pattern =
      Datatype::Vector(32, 10, 24, Datatype::Bytes(1)).value();
  IoOptions list;
  list.list_io = true;
  const Bytes payload = SeededBytes(pattern.size(), 8);
  ASSERT_TRUE(fs_->WriteType(handle, 5, pattern, payload, list).ok());
  Bytes back(pattern.size());
  ASSERT_TRUE(fs_->ReadType(handle, 5, pattern, back, list).ok());
  EXPECT_EQ(back, payload);

  // And the degraded read still works for the fallback path.
  cluster_->server(0).Stop();
  IoOptions degraded = list;
  degraded.max_retries = 0;
  Bytes survived(pattern.size());
  ASSERT_TRUE(fs_->ReadType(handle, 5, pattern, survived, degraded).ok());
  EXPECT_EQ(survived, payload);
}

TEST_F(ReplicationTest, RemoveAndRenameCoverReplicaSubfiles) {
  StartCluster(3);
  FileHandle handle = CreateReplicated("/old.bin", 2, 16 * 1024);
  const Bytes data = SeededBytes(16 * 1024, 9);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data).ok());

  ASSERT_TRUE(fs_->Rename("/old.bin", "/new.bin").ok());
  FileHandle renamed = fs_->Open("/new.bin").value();
  EXPECT_EQ(renamed.record.replication(), 2u);
  Bytes read(16 * 1024);
  ASSERT_TRUE(fs_->ReadBytes(renamed, 0, read).ok());
  EXPECT_EQ(read, data);
  EXPECT_TRUE(fs_->Fsck().value().clean());

  // Remove must delete the replica subfiles too, or fsck would flag
  // orphans.
  ASSERT_TRUE(fs_->Remove("/new.bin").ok());
  EXPECT_TRUE(fs_->Fsck().value().clean());
}

TEST_F(ReplicationTest, ChaosServerKilledMidCollectiveWriteLosesNoData) {
  // The acceptance scenario: an R=2 collective file, one server killed and
  // restarted mid-write. Retry + backoff spans the gap (writes only report
  // success once every rank's copy landed), so every phase's bytes must
  // read back intact afterwards — no data loss.
  StartCluster(3);
  constexpr std::uint32_t kRanks = 4;
  CreateOptions create;
  create.level = layout::FileLevel::kMultidim;
  create.array_shape = {64, 64};
  create.brick_shape = {16, 16};
  create.replication = 2;
  auto collective =
      CollectiveFile::Create(fs_, "/chaos-r2.dpfs", create, kRanks);
  ASSERT_TRUE(collective.ok()) << collective.status().ToString();
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  layout::ProcessGrid grid;
  grid.grid = {2, 2};
  ASSERT_TRUE(collective.value()->SetHpfViews(pattern, grid).ok());

  // Every rank keeps making the same sequence of collective calls even
  // after a failure — bailing out would strand the peers at the next
  // phase's barrier. Failures are tallied and asserted after the joins.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      const layout::Region view = collective.value()->view(rank).value();
      IoOptions io;
      io.max_retries = 25;  // backoff spans the in-process restart gap
      for (int phase = 0; phase < 4; ++phase) {
        const Bytes data =
            SeededBytes(view.num_elements(),
                        static_cast<std::uint64_t>(phase) * 10 + rank);
        if (!collective.value()->WriteAll(rank, data, io).ok()) {
          failures.fetch_add(1);
        }
        Bytes check(data.size());
        if (!collective.value()->ReadAll(rank, check, io).ok() ||
            check != data) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread restarter([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(cluster_->RestartServer(1).ok());
  });
  for (std::thread& t : threads) t.join();
  restarter.join();
  ASSERT_EQ(failures.load(), 0);

  // Final state: every rank's last phase reads back with a matching CRC.
  // ReadAll is collective, so the verification pass is one more 4-rank
  // phase; the CRCs are compared on this thread after the join.
  std::vector<Bytes> final_reads(kRanks);
  std::vector<std::thread> readers;
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    readers.emplace_back([&, rank] {
      const layout::Region view = collective.value()->view(rank).value();
      final_reads[rank].resize(view.num_elements());
      IoOptions io;
      io.max_retries = 10;
      if (!collective.value()->ReadAll(rank, final_reads[rank], io).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    const Bytes expect = SeededBytes(final_reads[rank].size(), 30 + rank);
    EXPECT_EQ(Crc32c(final_reads[rank]), Crc32c(expect)) << "rank " << rank;
  }
  EXPECT_TRUE(fs_->Fsck().value().clean());
}

}  // namespace
}  // namespace dpfs
