// Fsck: metadata vs server-side reality, with orphan repair.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;
using client::FileSystem;

class FsckTest : public ::testing::Test {
 protected:
  FsckTest() {
    core::ClusterOptions options;
    options.num_servers = 3;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
  }

  FileHandle MakeFile(const std::string& path, std::uint64_t bytes) {
    CreateOptions create;
    create.total_bytes = bytes;
    create.brick_bytes = 256;
    FileHandle handle = fs_->Create(path, create).value();
    EXPECT_TRUE(fs_->WriteBytes(handle, 0, Bytes(bytes, 0x11)).ok());
    return handle;
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<FileSystem> fs_;
};

TEST_F(FsckTest, CleanSystemReportsClean) {
  MakeFile("/a", 1024);
  MakeFile("/b", 2048);
  const FileSystem::FsckReport report = fs_->Fsck().value();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.files_checked, 2u);
  EXPECT_EQ(report.servers_checked, 3u);
  EXPECT_EQ(report.repaired, 0u);
}

TEST_F(FsckTest, NeverWrittenFileIsNotAnIssue) {
  CreateOptions create;
  create.total_bytes = 1024;
  ASSERT_TRUE(fs_->Create("/sparse", create).ok());  // no writes
  EXPECT_TRUE(fs_->Fsck().value().clean());
}

TEST_F(FsckTest, DetectsAndRepairsOrphans) {
  MakeFile("/kept", 1024);
  // Manufacture orphans: plant subfiles directly on two servers.
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(100, 0xAB)});
  ASSERT_TRUE(
      cluster_->server(0).store().WriteFragments("/ghost", writes, false).ok());
  ASSERT_TRUE(cluster_->server(2)
                  .store()
                  .WriteFragments("/dir/zombie", writes, false)
                  .ok());

  FileSystem::FsckReport report = fs_->Fsck().value();
  ASSERT_EQ(report.orphans.size(), 2u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.repaired, 0u);  // detection only

  // Repair pass removes them.
  report = fs_->Fsck(/*repair=*/true).value();
  EXPECT_EQ(report.orphans.size(), 2u);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_FALSE(cluster_->server(0).store().Stat("/ghost").value().exists);
  EXPECT_FALSE(
      cluster_->server(2).store().Stat("/dir/zombie").value().exists);

  // And the system is clean afterwards, with the real file untouched.
  EXPECT_TRUE(fs_->Fsck().value().clean());
  FileHandle kept = fs_->Open("/kept").value();
  Bytes read(1024);
  ASSERT_TRUE(fs_->ReadBytes(kept, 0, read).ok());
  EXPECT_EQ(read, Bytes(1024, 0x11));
}

TEST_F(FsckTest, ReportsUnreachableServers) {
  MakeFile("/x", 512);
  cluster_->server(1).Stop();
  fs_->connections().Clear();
  const FileSystem::FsckReport report = fs_->Fsck().value();
  ASSERT_EQ(report.unreachable_servers.size(), 1u);
  EXPECT_EQ(report.unreachable_servers[0], "ionode001.dpfs.local");
  EXPECT_EQ(report.servers_checked, 2u);
}

TEST_F(FsckTest, InterruptedDeleteLeavesOrphanThatFsckFinds) {
  // Simulate the real failure mode: metadata rows removed but one server's
  // subfile delete was lost (here: recreate it behind DPFS's back).
  FileHandle handle = MakeFile("/doomed", 1024);
  (void)handle;
  ASSERT_TRUE(fs_->Remove("/doomed").ok());
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(64, 1)});
  ASSERT_TRUE(
      cluster_->server(1).store().WriteFragments("/doomed", writes, false).ok());

  const FileSystem::FsckReport report = fs_->Fsck(true).value();
  ASSERT_EQ(report.orphans.size(), 1u);
  EXPECT_EQ(report.orphans[0].subfile, "/doomed");
  EXPECT_EQ(report.repaired, 1u);
}

}  // namespace
}  // namespace dpfs
