// Chaos coverage for the standalone metadata service: dropped and faulted
// replies (`metad.reply`), a deterministic mid-request crash
// (`metad.crash`), and — the critical sequence — killing the metad between
// the shard commits of a cross-shard mutation, restarting it on the same
// database, and verifying the intent-record repair holds the "file listed
// iff its rows exist" invariant for clients that only ever saw the wire.
//
// The suite name contains both "Metad" and "Chaos" so the asan-faults /
// tsan-faults ctest presets pick it up.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::MetadataService;

constexpr std::size_t kShards = 4;

class MetadChaosTest : public ::testing::TestWithParam<server::ServerEngine> {
 protected:
  void SetUp() override {
    core::ClusterOptions options;
    options.num_servers = 2;
    options.engine = GetParam();
    options.start_metadata_service = true;
    options.metadb_shards = kShards;  // cross-shard mutations exist
    // Cache off: every lookup goes to the wire, so each assertion below
    // observes the service, not this client's cache.
    options.metadata_cache_ttl = std::chrono::milliseconds(0);
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
  }

  void TearDown() override { failpoint::DisarmAll(); }

  static CreateOptions LinearFile() {
    CreateOptions create;
    create.total_bytes = 128;
    create.brick_bytes = 64;
    return create;
  }

  /// First "/<stem><i>" whose home shard differs from "/"'s shard, forcing
  /// its creation through the cross-shard intent protocol.
  std::string CrossShardChild(const std::string& stem) {
    const std::size_t root_shard =
        cluster_->sharded_db()->ShardForPath("/");
    for (int i = 0;; ++i) {
      const std::string path = "/" + stem + std::to_string(i);
      if (cluster_->sharded_db()->ShardForPath(path) != root_shard) {
        return path;
      }
    }
  }

  bool Listed(const std::string& name) {
    const MetadataService::Listing listing =
        fs_->metadata().ListDirectory("/").value();
    return std::find(listing.files.begin(), listing.files.end(), name) !=
           listing.files.end();
  }

  /// "File listed iff rows exist", checked entirely over the wire: every
  /// listed file resolves, every probed path agrees between FileExists and
  /// the directory listing, and no shard still holds an intent record.
  void ExpectConsistentOverTheWire(const std::vector<std::string>& probes) {
    const MetadataService::Listing root =
        fs_->metadata().ListDirectory("/").value();
    for (const std::string& name : root.files) {
      EXPECT_TRUE(fs_->metadata().LookupFile("/" + name).ok())
          << "/" << name << " is listed but has no metadata rows";
    }
    for (const std::string& path : probes) {
      const bool exists = fs_->metadata().FileExists(path).value();
      EXPECT_EQ(exists, Listed(path.substr(1))) << path;
      EXPECT_EQ(exists, fs_->metadata().LookupFile(path).ok()) << path;
    }
    for (std::size_t i = 0; i < cluster_->sharded_db()->num_shards(); ++i) {
      const metadb::ResultSet intents =
          cluster_->sharded_db()
              ->shard(i)
              .Execute("SELECT src FROM DPFS_INTENT")
              .value();
      EXPECT_TRUE(intents.empty())
          << "shard " << i << " still holds " << intents.size() << " intents";
    }
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<client::FileSystem> fs_;
};

TEST_P(MetadChaosTest, DroppedReplySurfacesUnavailableThenRecovers) {
  // metad.reply kDisconnect: the request is handled but the reply never
  // leaves. The client sees the retryable "fate unknown" outcome and its
  // next operation transparently redials.
  (void)fs_->Create("/drop.bin", LinearFile()).value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kDisconnect;
  spec.count = 1;
  failpoint::Arm("metad.reply", spec);

  const Result<bool> dropped = fs_->metadata().FileExists("/drop.bin");
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(failpoint::HitCount("metad.reply"), 1u);

  EXPECT_TRUE(fs_->metadata().FileExists("/drop.bin").value());
}

TEST_P(MetadChaosTest, FaultedReplyKeepsSessionUsable) {
  // metad.reply kReturnError swaps the real reply for an error envelope;
  // unlike the disconnect, the connection survives and the next request on
  // it succeeds.
  (void)fs_->Create("/fault.bin", LinearFile()).value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kIoError;
  spec.message = "injected metad fault";
  spec.count = 1;
  failpoint::Arm("metad.reply", spec);

  const Result<bool> faulted = fs_->metadata().FileExists("/fault.bin");
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);
  EXPECT_EQ(faulted.status().message(), "injected metad fault");

  EXPECT_TRUE(fs_->metadata().FileExists("/fault.bin").value());
}

TEST_P(MetadChaosTest, CrashFailpointStopsServiceAndRestartRevives) {
  (void)fs_->Create("/crash.bin", LinearFile()).value();

  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;  // action is ignored: any
  spec.count = 1;                                 // hit crashes the service
  failpoint::Arm("metad.crash", spec);

  const Result<bool> during = fs_->metadata().FileExists("/crash.bin");
  ASSERT_FALSE(during.ok());
  EXPECT_EQ(during.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(failpoint::HitCount("metad.crash"), 1u);

  // The service is down: operations fail until somebody restarts it.
  EXPECT_FALSE(fs_->metadata().FileExists("/crash.bin").ok());

  ASSERT_TRUE(cluster_->RestartMetad().ok());
  EXPECT_TRUE(fs_->metadata().FileExists("/crash.bin").value());
}

TEST_P(MetadChaosTest, CrashBetweenShardCommitsRepairsOnRestart) {
  // The tentpole sequence: a cross-shard create half-commits inside the
  // metad (home shard has rows + intent, the directory's shard does not),
  // the metad is killed, a successor attaches to the same database and
  // rolls the intent forward. Clients that only ever saw the wire must
  // then see a coherent namespace — the file fully exists.
  const std::string victim = CrossShardChild("half");

  failpoint::Spec commit_fault;
  commit_fault.action = failpoint::Action::kReturnError;
  commit_fault.code = StatusCode::kUnavailable;
  commit_fault.message = "injected crash between shard commits";
  commit_fault.count = 1;
  failpoint::Arm("metadb.shard_commit", commit_fault);

  const Result<client::FileHandle> torn = fs_->Create(victim, LinearFile());
  EXPECT_FALSE(torn.ok());
  EXPECT_GE(failpoint::HitCount("metadb.shard_commit"), 1u);
  failpoint::DisarmAll();

  // The tear, observed over the wire: the attribute rows committed on the
  // home shard, the directory link did not — a file that "exists" but is
  // invisible in its directory. This is exactly the state repair removes.
  EXPECT_TRUE(fs_->metadata().FileExists(victim).value());
  EXPECT_FALSE(Listed(victim.substr(1)));

  // Kill the metad mid-protocol and bring up a successor on the same
  // database and port; Start's Attach runs the repair pass.
  ASSERT_TRUE(cluster_->RestartMetad().ok());

  // Repair rolled the intent forward: rows committed on the home shard win,
  // so the file exists everywhere — listed, resolvable, openable.
  EXPECT_TRUE(fs_->metadata().FileExists(victim).value());
  EXPECT_TRUE(Listed(victim.substr(1)));
  EXPECT_TRUE(fs_->metadata().LookupFile(victim).ok());
  EXPECT_TRUE(fs_->Open(victim).ok());
  ExpectConsistentOverTheWire({victim});
}

TEST_P(MetadChaosTest, DeleteTornByCrashRepairsOnRestart) {
  const std::string victim = CrossShardChild("gone");
  (void)fs_->Create(victim, LinearFile()).value();

  failpoint::Spec commit_fault;
  commit_fault.action = failpoint::Action::kReturnError;
  commit_fault.code = StatusCode::kUnavailable;
  commit_fault.message = "injected crash between shard commits";
  commit_fault.count = 1;
  failpoint::Arm("metadb.shard_commit", commit_fault);

  // The delete half-commits: attr + distribution rows are gone from the
  // home shard (with the intent), the directory link survives on its own
  // shard. Without repair, clients would list a file nobody can open.
  EXPECT_FALSE(fs_->metadata().DeleteFile(victim).ok());
  EXPECT_GE(failpoint::HitCount("metadb.shard_commit"), 1u);
  failpoint::DisarmAll();

  EXPECT_FALSE(fs_->metadata().FileExists(victim).value());
  EXPECT_TRUE(Listed(victim.substr(1)));  // the torn state repair removes

  ASSERT_TRUE(cluster_->RestartMetad().ok());

  EXPECT_FALSE(fs_->metadata().FileExists(victim).value());
  EXPECT_FALSE(Listed(victim.substr(1)));
  ExpectConsistentOverTheWire({victim});
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MetadChaosTest,
    ::testing::Values(server::ServerEngine::kThreadPerConnection,
                      server::ServerEngine::kEventLoop),
    [](const ::testing::TestParamInfo<server::ServerEngine>& param_info) {
      return param_info.param == server::ServerEngine::kEventLoop
                 ? "EventLoop"
                 : "ThreadPerConnection";
    });

}  // namespace
}  // namespace dpfs
