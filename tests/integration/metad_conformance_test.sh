#!/usr/bin/env bash
# True multi-process conformance for the standalone metadata service: one
# dpfs-metad owns the metadata database, two dpfsd daemons register through
# it with --metad (no process but the metad ever opens the database), and
# two independent dpfs CLI processes mutate and observe one shared
# namespace over the wire. A second concurrent CLI would deadlock on the
# database flock in the embedded model — this test is the proof that the
# service removes that limit.
# Usage: metad_conformance_test.sh <dpfs-metad> <dpfsd> <dpfs>
set -u

METAD="$1"
DPFSD="$2"
DPFS="$3"
WORK="$(mktemp -d)"
PIDS=""
PORT=$(( 20000 + (RANDOM % 20000) ))

fail() {
  echo "FAIL: $1" >&2
  cat "$WORK"/*.log >&2 2>/dev/null
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null
  rm -rf "$WORK"
  exit 1
}

"$METAD" --metadb "$WORK/meta" --port "$PORT" > "$WORK/metad.log" 2>&1 &
PIDS="$!"

# The metad must be serving before anything can register through it.
ready=""
for i in $(seq 1 100); do
  if grep -q "dpfs-metad: serving" "$WORK/metad.log" 2>/dev/null; then
    ready=1
    break
  fi
  sleep 0.1
done
[ -n "$ready" ] || fail "metad never came up"

# The metad holds the database flock; daemons and CLIs go over the wire.
"$DPFSD" --root "$WORK/s0" --name node0 --metad "127.0.0.1:$PORT" \
         --performance 1 > "$WORK/d0.log" 2>&1 &
PIDS="$PIDS $!"
"$DPFSD" --root "$WORK/s1" --name node1 --metad "127.0.0.1:$PORT" \
         --performance 3 > "$WORK/d1.log" 2>&1 &
PIDS="$PIDS $!"

ready=""
for i in $(seq 1 100); do
  if DF="$("$DPFS" --metad "127.0.0.1:$PORT" --c "df" 2>/dev/null)" \
     && echo "$DF" | grep -q node0 && echo "$DF" | grep -q node1; then
    ready=1
    break
  fi
  sleep 0.1
done
[ -n "$ready" ] || fail "nodes never registered through the metad"

head -c 300000 /dev/urandom > "$WORK/input.bin"

# Client 1 builds the namespace; client 2 (a different process with its own
# connection and cache) must see every bit of it.
"$DPFS" --metad "127.0.0.1:$PORT" --c "mkdir /data" || fail "mkdir"
"$DPFS" --metad "127.0.0.1:$PORT" --c "import $WORK/input.bin /data/blob" \
  || fail "import"
"$DPFS" --metad "127.0.0.1:$PORT" --c "stat /data/blob" \
  | grep -q "size:       300000" || fail "stat size from second client"
"$DPFS" --metad "127.0.0.1:$PORT" --c "ls /data" | grep -q blob \
  || fail "ls from second client"

# Two CLIs alive at the same time — impossible with the embedded flock.
( "$DPFS" --metad "127.0.0.1:$PORT" --c "mkdir /c1" ) &
C1=$!
( "$DPFS" --metad "127.0.0.1:$PORT" --c "mkdir /c2" ) &
C2=$!
wait $C1 || fail "concurrent client 1"
wait $C2 || fail "concurrent client 2"
LS="$("$DPFS" --metad "127.0.0.1:$PORT" --c "ls /")" || fail "ls after race"
echo "$LS" | grep -q c1 || fail "concurrent mkdir /c1 lost"
echo "$LS" | grep -q c2 || fail "concurrent mkdir /c2 lost"

# Mutations by one client visible to the next: rename, export, remove.
"$DPFS" --metad "127.0.0.1:$PORT" --c "mv /data/blob /data/renamed" \
  || fail "mv"
"$DPFS" --metad "127.0.0.1:$PORT" --c "export /data/renamed $WORK/output.bin" \
  || fail "export"
cmp -s "$WORK/input.bin" "$WORK/output.bin" || fail "round-trip mismatch"
[ -n "$(find "$WORK/s0" -type f 2>/dev/null)" ] || fail "node0 stored nothing"
[ -n "$(find "$WORK/s1" -type f 2>/dev/null)" ] || fail "node1 stored nothing"
"$DPFS" --metad "127.0.0.1:$PORT" --c "rm /data/renamed" || fail "rm"
"$DPFS" --metad "127.0.0.1:$PORT" --c "ls /data" | grep -q renamed \
  && fail "removed file still listed"

# The sql escape hatch needs the database and must say so over the wire.
SQL_ERR="$("$DPFS" --metad "127.0.0.1:$PORT" --c "sql SELECT 1" 2>&1)"
echo "$SQL_ERR" | grep -qi "embedded" || fail "sql should ask for embedded"

kill $PIDS 2>/dev/null
wait $PIDS 2>/dev/null
rm -rf "$WORK"
echo "metad conformance test passed"
exit 0
