// Full-stack durability: a durable cluster is stopped and restarted on the
// same roots (servers come back on fresh ports, re-registering like dpfsd
// does); file data and metadata must survive the round trip.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;

Bytes PatternBytes(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.NextU64());
  }
  return data;
}

core::ClusterOptions DurableOptions(const std::filesystem::path& root) {
  core::ClusterOptions options;
  options.num_servers = 3;
  options.root_dir = root;
  options.durable_metadata = true;
  return options;
}

TEST(DurabilityTest, FullClusterRestartPreservesFiles) {
  const TempDir root = TempDir::Create("dpfs-durability").value();
  const Bytes linear_data = PatternBytes(8000, 1);
  const Bytes grid_data = PatternBytes(48 * 48, 2);

  {
    auto cluster = core::LocalCluster::Start(DurableOptions(root.path())).value();
    auto fs = cluster->fs();
    ASSERT_TRUE(fs->metadata().MakeDirectory("/data").ok());

    CreateOptions linear;
    linear.total_bytes = 8000;
    linear.brick_bytes = 512;
    FileHandle lin = fs->Create("/data/linear.bin", linear).value();
    ASSERT_TRUE(fs->WriteBytes(lin, 0, linear_data).ok());

    CreateOptions grid;
    grid.level = layout::FileLevel::kMultidim;
    grid.array_shape = {48, 48};
    grid.brick_shape = {16, 16};
    FileHandle g = fs->Create("/data/grid.dpfs", grid).value();
    ASSERT_TRUE(fs->WriteRegion(g, {{0, 0}, {48, 48}}, grid_data).ok());
  }  // cluster torn down: servers stopped, database closed

  {
    auto cluster = core::LocalCluster::Start(DurableOptions(root.path())).value();
    auto fs = cluster->fs();

    // Directory tree and attributes recovered through WAL/snapshot replay.
    const auto listing = fs->metadata().ListDirectory("/data").value();
    ASSERT_EQ(listing.files.size(), 2u);

    FileHandle lin = fs->Open("/data/linear.bin").value();
    EXPECT_EQ(lin.meta().size_bytes, 8000u);
    Bytes restored(8000);
    ASSERT_TRUE(fs->ReadBytes(lin, 0, restored).ok());
    EXPECT_EQ(restored, linear_data);

    FileHandle g = fs->Open("/data/grid.dpfs").value();
    Bytes grid_restored(48 * 48);
    ASSERT_TRUE(fs->ReadRegion(g, {{0, 0}, {48, 48}}, grid_restored).ok());
    EXPECT_EQ(grid_restored, grid_data);

    // And the restarted cluster is fully writable.
    Bytes update(100, 0xCC);
    ASSERT_TRUE(fs->WriteBytes(lin, 4000, update).ok());
    Bytes check(100);
    ASSERT_TRUE(fs->ReadBytes(lin, 4000, check).ok());
    EXPECT_EQ(check, update);
  }
}

TEST(DurabilityTest, RestartedClusterReflectsNewPorts) {
  const TempDir root = TempDir::Create("dpfs-reregister").value();
  std::uint16_t old_port = 0;
  {
    auto cluster = core::LocalCluster::Start(DurableOptions(root.path())).value();
    old_port = cluster->server(0).endpoint().port;
  }
  auto cluster = core::LocalCluster::Start(DurableOptions(root.path())).value();
  const auto servers = cluster->fs()->metadata().ListServers().value();
  ASSERT_EQ(servers.size(), 3u);
  // Registration was replaced, not duplicated; port matches the live server.
  EXPECT_EQ(servers[0].endpoint.port, cluster->server(0).endpoint().port);
  (void)old_port;  // ports may even collide; liveness is what matters:
  auto conn = cluster->fs()->connections().Acquire(servers[0].endpoint);
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(conn.value()->Ping().ok());
}

TEST(DurabilityTest, GreedyBricklistsSurviveRestart) {
  const TempDir root = TempDir::Create("dpfs-greedy-durable").value();
  core::ClusterOptions options = DurableOptions(root.path());
  options.performance = {1, 3, 3};
  std::vector<std::vector<layout::BrickId>> original(3);
  {
    auto cluster = core::LocalCluster::Start(std::move(options)).value();
    client::CreateOptions create;
    create.total_bytes = 64 * 1024;
    create.brick_bytes = 1024;
    create.placement = layout::PlacementPolicy::kGreedy;
    const FileHandle handle =
        cluster->fs()->Create("/skewed.bin", create).value();
    for (layout::ServerId s = 0; s < 3; ++s) {
      original[s] = handle.record.distribution.bricks_on(s);
    }
  }
  core::ClusterOptions reopened = DurableOptions(root.path());
  reopened.performance = {1, 3, 3};
  auto cluster = core::LocalCluster::Start(std::move(reopened)).value();
  const FileHandle handle = cluster->fs()->Open("/skewed.bin").value();
  for (layout::ServerId s = 0; s < 3; ++s) {
    EXPECT_EQ(handle.record.distribution.bricks_on(s), original[s]);
  }
}

}  // namespace
}  // namespace dpfs
