// The umbrella header must expose the full public API and version info.
#include "core/dpfs.h"

#include <gtest/gtest.h>

namespace dpfs {
namespace {

TEST(UmbrellaTest, VersionConstants) {
  EXPECT_EQ(kVersionMajor, 1);
  EXPECT_GE(kVersionMinor, 0);
  EXPECT_GE(kVersionPatch, 0);
}

TEST(UmbrellaTest, PublicTypesAreReachable) {
  // Compile-time reachability of each subsystem through the one header.
  [[maybe_unused]] client::CreateOptions create;
  [[maybe_unused]] client::IoOptions io;
  [[maybe_unused]] layout::Region region;
  [[maybe_unused]] layout::PlanOptions plan;
  [[maybe_unused]] simnet::ReplayOptions replay;
  [[maybe_unused]] core::ClusterOptions cluster;
  [[maybe_unused]] server::ServerOptions server;
  EXPECT_EQ(static_cast<int>(layout::FileLevel::kLinear), 0);
  EXPECT_EQ(static_cast<int>(layout::FileLevel::kArray), 2);
}

TEST(UmbrellaTest, DefaultsMatchPaperSemantics) {
  // The out-of-the-box behaviour is the paper's: combination on, rotation
  // on, whole-brick reads, sequential dispatch, round-robin placement.
  const client::IoOptions io;
  EXPECT_TRUE(io.combine);
  EXPECT_TRUE(io.rotate_start);
  EXPECT_TRUE(io.whole_brick_reads);
  EXPECT_FALSE(io.parallel_dispatch);
  const client::CreateOptions create;
  EXPECT_EQ(create.placement, layout::PlacementPolicy::kRoundRobin);
  EXPECT_EQ(create.brick_bytes, 64u * 1024);  // the paper's brick size
}

}  // namespace
}  // namespace dpfs
