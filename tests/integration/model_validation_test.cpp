// Cross-validation of the performance model against reality: for effects
// large enough to be timing-robust on loopback TCP, the real execution and
// the simulator must agree on who wins. This is the test that keeps the
// figure-reproduction honest.
#include <gtest/gtest.h>

#include <algorithm>

#include "client/datatype.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/cluster.h"
#include "layout/plan.h"
#include "simnet/replay.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;
using client::IoOptions;

TEST(ModelValidationTest, LinearColumnPathologyAgreesWithSimulator) {
  // Column access through a linear file vs a multidim file: the transfer
  // amplification (here 64x) dominates any timing noise.
  constexpr std::uint64_t kDim = 512;

  // --- Real execution ------------------------------------------------------
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();

  CreateOptions linear_create;
  linear_create.level = layout::FileLevel::kLinear;
  linear_create.array_shape = {kDim, kDim};
  linear_create.brick_bytes = kDim;  // one row per brick
  FileHandle linear = fs->Create("/lin", linear_create).value();

  CreateOptions md_create;
  md_create.level = layout::FileLevel::kMultidim;
  md_create.array_shape = {kDim, kDim};
  md_create.brick_shape = {64, 64};
  FileHandle multidim = fs->Create("/md", md_create).value();

  const Bytes data(kDim * kDim, 0x3C);
  ASSERT_TRUE(fs->WriteRegion(linear, {{0, 0}, {kDim, kDim}}, data).ok());
  ASSERT_TRUE(fs->WriteRegion(multidim, {{0, 0}, {kDim, kDim}}, data).ok());

  const layout::Region columns{{0, 100}, {kDim, 8}};
  Bytes out(columns.num_elements());

  // Warm both paths once, then time several repetitions.
  ASSERT_TRUE(fs->ReadRegion(linear, columns, out).ok());
  ASSERT_TRUE(fs->ReadRegion(multidim, columns, out).ok());
  constexpr int kReps = 5;
  WallTimer linear_timer;
  for (int i = 0; i < kReps; ++i) {
    ASSERT_TRUE(fs->ReadRegion(linear, columns, out).ok());
  }
  const double real_linear = linear_timer.ElapsedSeconds();
  WallTimer md_timer;
  for (int i = 0; i < kReps; ++i) {
    ASSERT_TRUE(fs->ReadRegion(multidim, columns, out).ok());
  }
  const double real_multidim = md_timer.ElapsedSeconds();

  // --- Simulated execution of the same plans ------------------------------
  const auto simulate = [&](const FileHandle& handle) {
    layout::PlanOptions options;
    options.combine = true;
    layout::IoPlan plan;
    plan.clients.push_back(
        layout::PlanRegionAccess(handle.map, handle.record.distribution, 0,
                                 columns, options)
            .value());
    return simnet::Replay(plan, std::vector<simnet::StorageClassModel>(
                                    4, simnet::Class1()))
        .value()
        .makespan_s;
  };
  const double sim_linear = simulate(linear);
  const double sim_multidim = simulate(multidim);

  // Both worlds must agree: multidim wins, by a wide margin.
  EXPECT_GT(real_linear, real_multidim * 2)
      << "real: " << real_linear << "s vs " << real_multidim << "s";
  EXPECT_GT(sim_linear, sim_multidim * 2)
      << "sim: " << sim_linear << "s vs " << sim_multidim << "s";
}

TEST(ModelValidationTest, RequestCountEffectAgreesWithSimulator) {
  // Sieve vs whole-brick on a sparse column read: wire bytes shrink ~64x.
  // Compare *transferred bytes* (deterministic) in both worlds rather than
  // wall time, which loopback makes noisy.
  constexpr std::uint64_t kDim = 256;
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 2;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kLinear;
  create.array_shape = {kDim, kDim};
  create.brick_bytes = kDim;
  FileHandle handle = fs->Create("/f", create).value();
  const Bytes data(kDim * kDim, 1);
  ASSERT_TRUE(fs->WriteRegion(handle, {{0, 0}, {kDim, kDim}}, data).ok());

  const layout::Region column{{0, 9}, {kDim, 4}};
  const auto measure_real = [&](bool whole) {
    const std::uint64_t before =
        cluster->server(0).stats().bytes_read.load() +
        cluster->server(1).stats().bytes_read.load();
    IoOptions io;
    io.whole_brick_reads = whole;
    Bytes out(column.num_elements());
    EXPECT_TRUE(fs->ReadRegion(handle, column, out, io).ok());
    return cluster->server(0).stats().bytes_read.load() +
           cluster->server(1).stats().bytes_read.load() - before;
  };
  const std::uint64_t real_whole = measure_real(true);
  const std::uint64_t real_sieve = measure_real(false);

  const auto measure_sim = [&](bool whole) {
    layout::PlanOptions options;
    options.combine = true;
    options.whole_brick_reads = whole;
    return layout::PlanRegionAccess(handle.map, handle.record.distribution,
                                    0, column, options)
        .value()
        .transfer_bytes();
  };
  const std::uint64_t sim_whole = measure_sim(true);
  const std::uint64_t sim_sieve = measure_sim(false);

  // The simulator's transfer accounting must match the real wire exactly.
  EXPECT_EQ(real_whole, sim_whole);
  EXPECT_EQ(real_sieve, sim_sieve);
  EXPECT_GT(real_whole, real_sieve * 32);
}

TEST(ModelValidationTest, ListIoPlanAgreesWithSimulator) {
  // List I/O (docs/NONCONTIGUOUS_IO.md): the executor must move exactly the
  // bytes and wire extents the plan says, which is what the simulator
  // charges (simnet RequestFragments uses list_extents). Pin both: wire
  // bytes via ServerStats, extent count via io_server.list_extents.
  constexpr std::uint64_t kDim = 256;
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 2;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kLinear;
  create.array_shape = {kDim, kDim};
  create.brick_bytes = kDim;  // one row per brick
  FileHandle handle = fs->Create("/f", create).value();
  Bytes data(kDim * kDim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  ASSERT_TRUE(fs->WriteRegion(handle, {{0, 0}, {kDim, kDim}}, data).ok());

  // One 4-byte column of the row-major matrix: kDim blocks strided kDim.
  const client::Datatype column =
      client::Datatype::Vector(kDim, 4, kDim, client::Datatype::Bytes(1))
          .value();

  metrics::Counter& list_extents_metric =
      metrics::GetCounter("io_server.list_extents");
  const std::uint64_t bytes_before =
      cluster->server(0).stats().bytes_read.load() +
      cluster->server(1).stats().bytes_read.load();
  const std::uint64_t extents_before = list_extents_metric.value();

  IoOptions io;
  io.list_io = true;
  Bytes out(column.size());
  client::IoReport report;
  ASSERT_TRUE(fs->ReadType(handle, 9, column, out, io, &report).ok());

  const std::uint64_t real_bytes =
      cluster->server(0).stats().bytes_read.load() +
      cluster->server(1).stats().bytes_read.load() - bytes_before;
  const std::uint64_t real_extents =
      list_extents_metric.value() - extents_before;

  // The same plan the executor ran, built directly in layout.
  std::vector<layout::FileExtent> extents;
  for (const client::ByteExtent& extent : column.extents()) {
    extents.push_back({9 + extent.offset, extent.length});
  }
  const layout::ClientPlan plan =
      layout::PlanListAccess(handle.map, handle.record.distribution, 0,
                             extents, layout::PlanOptions{})
          .value();
  std::uint64_t plan_extents = 0;
  for (const layout::ServerRequest& request : plan.requests) {
    plan_extents += request.list_extents.size();
  }

  EXPECT_EQ(real_bytes, plan.transfer_bytes());
  EXPECT_EQ(real_extents, plan_extents);
  EXPECT_EQ(report.transfer_bytes, plan.transfer_bytes());
  EXPECT_EQ(report.requests, plan.num_requests());

  // Content correctness against the written pattern.
  for (std::uint64_t i = 0; i < kDim; ++i) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      EXPECT_EQ(out[i * 4 + b], data[9 + i * kDim + b]);
    }
  }

  // And the simulator accepts/charges the same plan shape.
  layout::IoPlan sim_plan;
  sim_plan.clients.push_back(plan);
  const auto sim = simnet::Replay(
      sim_plan, std::vector<simnet::StorageClassModel>(2, simnet::Class1()));
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim.value().transfer_bytes, plan.transfer_bytes());
}

TEST(ModelValidationTest, ListWriteRoundTripsThroughRealCluster) {
  // A strided list write followed by a contiguous read: the scattered
  // bytes must land at exactly the planned subfile offsets.
  constexpr std::uint64_t kTotal = 64 * 1024;
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 3;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();

  CreateOptions create;
  create.level = layout::FileLevel::kLinear;
  create.total_bytes = kTotal;
  create.brick_bytes = 1024;
  FileHandle handle = fs->Create("/w", create).value();
  Bytes base(kTotal, 0xEE);
  ASSERT_TRUE(fs->WriteBytes(handle, 0, base).ok());

  // 128 blocks of 16 bytes, stride 96 bytes.
  const client::Datatype pattern =
      client::Datatype::Vector(128, 16, 96, client::Datatype::Bytes(1))
          .value();
  Bytes payload(pattern.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ 0x5A);
  }
  IoOptions io;
  io.list_io = true;
  ASSERT_TRUE(fs->WriteType(handle, 17, pattern, payload, io).ok());

  Bytes all(kTotal);
  ASSERT_TRUE(fs->ReadBytes(handle, 0, all).ok());
  Bytes expected = base;
  std::uint64_t cursor = 0;
  for (const client::ByteExtent& extent : pattern.extents()) {
    std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(cursor),
                extent.length,
                expected.begin() + static_cast<std::ptrdiff_t>(17 + extent.offset));
    cursor += extent.length;
  }
  EXPECT_EQ(all, expected);
}

}  // namespace
}  // namespace dpfs
