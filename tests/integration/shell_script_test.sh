#!/usr/bin/env bash
# Scripted use of the interactive shell binary (stdin-driven batch mode).
set -u
SHELL_BIN="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

head -c 10000 /dev/urandom > "$WORK/in.dat"

OUT="$("$SHELL_BIN" --servers 2 <<SCRIPT
mkdir /proj
cd /proj
import $WORK/in.dat data.bin
ls -l
stat data.bin
du /
export data.bin $WORK/out.dat
rm data.bin
exit
SCRIPT
)" || { echo "shell exited nonzero"; exit 1; }

echo "$OUT" | grep -q "imported 9.8 KB" || { echo "FAIL: import"; echo "$OUT"; exit 1; }
echo "$OUT" | grep -q "data.bin" || { echo "FAIL: ls"; exit 1; }
echo "$OUT" | grep -q "size:       10000" || { echo "FAIL: stat"; exit 1; }
cmp -s "$WORK/in.dat" "$WORK/out.dat" || { echo "FAIL: round trip"; exit 1; }
echo "shell script test passed"
