#include "metadb/table.h"

#include <gtest/gtest.h>

namespace dpfs::metadb {
namespace {

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : table_("files", Schema::Create({{"name", ValueType::kText, true},
                                        {"size", ValueType::kInt, false}})
                            .value()) {}

  Table table_;
};

TEST_F(TableTest, InsertAndGet) {
  const RowId id = table_.Insert({Value("a"), Value(std::int64_t{10})}).value();
  const Row row = table_.Get(id).value();
  EXPECT_EQ(row[0].AsText(), "a");
  EXPECT_EQ(row[1].AsInt(), 10);
  EXPECT_EQ(table_.num_rows(), 1u);
}

TEST_F(TableTest, RowIdsAreMonotonic) {
  const RowId a = table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  const RowId b = table_.Insert({Value("b"), Value(std::int64_t{2})}).value();
  EXPECT_LT(a, b);
}

TEST_F(TableTest, PrimaryKeyUniqueness) {
  ASSERT_TRUE(table_.Insert({Value("a"), Value(std::int64_t{1})}).ok());
  const Result<RowId> dup =
      table_.Insert({Value("a"), Value(std::int64_t{2})});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(TableTest, PrimaryKeyCannotBeNull) {
  EXPECT_FALSE(table_.Insert({Value::Null(), Value(std::int64_t{1})}).ok());
}

TEST_F(TableTest, LookupByPrimaryKey) {
  const RowId id = table_.Insert({Value("x"), Value(std::int64_t{5})}).value();
  EXPECT_EQ(table_.LookupByPrimaryKey(Value("x")).value(), id);
  EXPECT_FALSE(table_.LookupByPrimaryKey(Value("y")).ok());
}

TEST_F(TableTest, UpdateRowMaintainsIndex) {
  const RowId id = table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  ASSERT_TRUE(table_.UpdateRow(id, {Value("b"), Value(std::int64_t{2})}).ok());
  EXPECT_FALSE(table_.LookupByPrimaryKey(Value("a")).ok());
  EXPECT_EQ(table_.LookupByPrimaryKey(Value("b")).value(), id);
  // Freed key can be reused.
  EXPECT_TRUE(table_.Insert({Value("a"), Value(std::int64_t{3})}).ok());
}

TEST_F(TableTest, UpdateToConflictingKeyFails) {
  const RowId id = table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  ASSERT_TRUE(table_.Insert({Value("b"), Value(std::int64_t{2})}).ok());
  EXPECT_FALSE(table_.UpdateRow(id, {Value("b"), Value(std::int64_t{9})}).ok());
  // Self-update keeping the key is fine.
  EXPECT_TRUE(table_.UpdateRow(id, {Value("a"), Value(std::int64_t{9})}).ok());
}

TEST_F(TableTest, EraseRemovesRowAndIndex) {
  const RowId id = table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  ASSERT_TRUE(table_.Erase(id).ok());
  EXPECT_EQ(table_.num_rows(), 0u);
  EXPECT_FALSE(table_.Get(id).ok());
  EXPECT_FALSE(table_.LookupByPrimaryKey(Value("a")).ok());
  EXPECT_FALSE(table_.Erase(id).ok());
}

TEST_F(TableTest, InsertWithIdForReplay) {
  ASSERT_TRUE(
      table_.InsertWithId(7, {Value("a"), Value(std::int64_t{1})}).ok());
  EXPECT_FALSE(
      table_.InsertWithId(7, {Value("b"), Value(std::int64_t{2})}).ok());
  // next_row_id advances past explicit ids.
  const RowId next =
      table_.Insert({Value("c"), Value(std::int64_t{3})}).value();
  EXPECT_GT(next, 7u);
}

TEST_F(TableTest, ScanAllInRowIdOrder) {
  (void)table_.Insert({Value("b"), Value(std::int64_t{2})}).value();
  (void)table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  const auto rows = table_.Scan(nullptr).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].second[0].AsText(), "b");  // insertion order
  EXPECT_EQ(rows[1].second[0].AsText(), "a");
}

TEST_F(TableTest, ScanWithFilter) {
  (void)table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  (void)table_.Insert({Value("b"), Value(std::int64_t{20})}).value();
  (void)table_.Insert({Value("c"), Value(std::int64_t{30})}).value();
  const ExprPtr filter = MakeCompare(CompareOp::kGt, MakeColumn("size"),
                                     MakeLiteral(Value(std::int64_t{10})));
  const auto rows = table_.Scan(filter.get()).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].second[0].AsText(), "b");
  EXPECT_EQ(rows[1].second[0].AsText(), "c");
}

TEST_F(TableTest, ScanUsesPrimaryKeyFastPath) {
  for (int i = 0; i < 100; ++i) {
    (void)table_
        .Insert({Value("k" + std::to_string(i)), Value(std::int64_t{i})})
        .value();
  }
  const ExprPtr filter = MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                     MakeLiteral(Value("k42")));
  const auto rows = table_.Scan(filter.get()).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second[1].AsInt(), 42);
}

TEST_F(TableTest, ScanPkFastPathRespectsResidualFilter) {
  (void)table_.Insert({Value("a"), Value(std::int64_t{1})}).value();
  // name='a' AND size>5 → fast path probes 'a' but the residual filter
  // rejects it.
  const ExprPtr filter = MakeAnd(
      MakeCompare(CompareOp::kEq, MakeColumn("name"),
                  MakeLiteral(Value("a"))),
      MakeCompare(CompareOp::kGt, MakeColumn("size"),
                  MakeLiteral(Value(std::int64_t{5}))));
  EXPECT_TRUE(table_.Scan(filter.get()).value().empty());
}

TEST_F(TableTest, SecondaryIndexLookup) {
  Table table("dist", Schema::Create({{"filename", ValueType::kText, false},
                                      {"server", ValueType::kText, false}})
                          .value());
  ASSERT_TRUE(table.CreateIndex("filename").ok());
  const RowId a = table.Insert({Value("/f1"), Value("s0")}).value();
  const RowId b = table.Insert({Value("/f1"), Value("s1")}).value();
  (void)table.Insert({Value("/f2"), Value("s0")}).value();

  EXPECT_EQ(table.LookupByIndex(0, Value("/f1")).value(),
            (std::vector<RowId>{a, b}));
  EXPECT_TRUE(table.LookupByIndex(0, Value("/nope")).value().empty());
  EXPECT_FALSE(table.LookupByIndex(1, Value("s0")).ok());  // not indexed
}

TEST_F(TableTest, SecondaryIndexMaintainedByMutations) {
  Table table("t", Schema::Create({{"k", ValueType::kText, false},
                                   {"v", ValueType::kInt, false}})
                       .value());
  ASSERT_TRUE(table.CreateIndex("k").ok());
  const RowId id = table.Insert({Value("x"), Value(std::int64_t{1})}).value();
  // Update moves the row to a new key.
  ASSERT_TRUE(table.UpdateRow(id, {Value("y"), Value(std::int64_t{2})}).ok());
  EXPECT_TRUE(table.LookupByIndex(0, Value("x")).value().empty());
  EXPECT_EQ(table.LookupByIndex(0, Value("y")).value(),
            (std::vector<RowId>{id}));
  // Erase removes the entry.
  ASSERT_TRUE(table.Erase(id).ok());
  EXPECT_TRUE(table.LookupByIndex(0, Value("y")).value().empty());
}

TEST_F(TableTest, CreateIndexOnPopulatedTableAndIdempotence) {
  Table table("t", Schema::Create({{"k", ValueType::kInt, false}}).value());
  for (int i = 0; i < 10; ++i) {
    (void)table.Insert({Value(std::int64_t{i % 3})}).value();
  }
  ASSERT_TRUE(table.CreateIndex("k").ok());
  ASSERT_TRUE(table.CreateIndex("k").ok());  // idempotent
  EXPECT_EQ(table.LookupByIndex(0, Value(std::int64_t{0})).value().size(), 4u);
  EXPECT_EQ(table.LookupByIndex(0, Value(std::int64_t{2})).value().size(), 3u);
  EXPECT_FALSE(table.CreateIndex("missing").ok());
}

TEST_F(TableTest, ScanUsesSecondaryIndexWithResidualFilter) {
  Table table("t", Schema::Create({{"k", ValueType::kText, false},
                                   {"v", ValueType::kInt, false}})
                       .value());
  ASSERT_TRUE(table.CreateIndex("k").ok());
  (void)table.Insert({Value("a"), Value(std::int64_t{1})}).value();
  (void)table.Insert({Value("a"), Value(std::int64_t{2})}).value();
  (void)table.Insert({Value("b"), Value(std::int64_t{3})}).value();
  const ExprPtr filter = MakeAnd(
      MakeCompare(CompareOp::kEq, MakeColumn("k"), MakeLiteral(Value("a"))),
      MakeCompare(CompareOp::kGt, MakeColumn("v"),
                  MakeLiteral(Value(std::int64_t{1}))));
  const auto rows = table.Scan(filter.get()).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second[1].AsInt(), 2);
}

TEST_F(TableTest, InsertCoercesIntToDoubleColumn) {
  Table table("t", Schema::Create({{"v", ValueType::kDouble, false}}).value());
  const RowId id = table.Insert({Value(std::int64_t{4})}).value();
  EXPECT_EQ(table.Get(id).value()[0].type(), ValueType::kDouble);
}

TEST_F(TableTest, NoPrimaryKeyTableAllowsDuplicates) {
  Table table("t", Schema::Create({{"v", ValueType::kInt, false}}).value());
  EXPECT_TRUE(table.Insert({Value(std::int64_t{1})}).ok());
  EXPECT_TRUE(table.Insert({Value(std::int64_t{1})}).ok());
  EXPECT_FALSE(table.LookupByPrimaryKey(Value(std::int64_t{1})).ok());
}

}  // namespace
}  // namespace dpfs::metadb
