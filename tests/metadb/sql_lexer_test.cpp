#include "metadb/sql_lexer.h"

#include <gtest/gtest.h>

namespace dpfs::metadb {
namespace {

std::vector<Token> Lex(std::string_view sql) {
  return Tokenize(sql).value();
}

TEST(SqlLexerTest, EmptyInputYieldsEnd) {
  const auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, IdentifiersAndKeywords) {
  const auto tokens = Lex("SELECT name FROM files");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].text, "files");
}

TEST(SqlLexerTest, Integers) {
  const auto tokens = Lex("42 -17 0");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -17);
  EXPECT_EQ(tokens[2].int_value, 0);
}

TEST(SqlLexerTest, Floats) {
  const auto tokens = Lex("3.5 -0.25");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, -0.25);
}

TEST(SqlLexerTest, MalformedNumberRejected) {
  EXPECT_FALSE(Tokenize("1.2.3").ok());
}

TEST(SqlLexerTest, StringLiterals) {
  const auto tokens = Lex("'hello' '' 'it''s'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "");
  EXPECT_EQ(tokens[2].text, "it's");
}

TEST(SqlLexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(SqlLexerTest, Symbols) {
  const auto tokens = Lex("( ) , ; * = != <> < <= > >=");
  const std::vector<std::string> expected = {"(", ")", ",", ";", "*", "=",
                                             "!=", "!=", "<", "<=", ">", ">="};
  ASSERT_EQ(tokens.size(), expected.size() + 1);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(tokens[i].IsSymbol(expected[i]))
        << i << ": got '" << tokens[i].text << "'";
  }
}

TEST(SqlLexerTest, DpfsStyleIdentifiers) {
  // Table names like DPFS_SERVER and host names with dots/dashes.
  const auto tokens = Lex("DPFS_SERVER ccn40.mcs.anl.gov round-robin");
  EXPECT_EQ(tokens[0].text, "DPFS_SERVER");
  EXPECT_EQ(tokens[1].text, "ccn40.mcs.anl.gov");
  EXPECT_EQ(tokens[2].text, "round-robin");
}

TEST(SqlLexerTest, LineComments) {
  const auto tokens = Lex("SELECT -- comment here\n name");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].text, "name");
}

TEST(SqlLexerTest, UnexpectedCharacterRejected) {
  EXPECT_FALSE(Tokenize("SELECT @ FROM t").ok());
}

TEST(SqlLexerTest, OffsetsReported) {
  const auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

}  // namespace
}  // namespace dpfs::metadb
