#include "metadb/sql_parser.h"

#include <gtest/gtest.h>

namespace dpfs::metadb {
namespace {

Statement Parse(std::string_view sql) {
  const Result<Statement> result = ParseStatement(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for: " << sql;
  return result.value();
}

TEST(SqlParserTest, CreateTable) {
  const auto stmt = std::get<CreateTableStmt>(Parse(
      "CREATE TABLE DPFS_SERVER (server_name TEXT PRIMARY KEY, "
      "capacity INT, performance INT)"));
  EXPECT_EQ(stmt.table, "DPFS_SERVER");
  ASSERT_EQ(stmt.columns.size(), 3u);
  EXPECT_EQ(stmt.columns[0].name, "server_name");
  EXPECT_EQ(stmt.columns[0].type, ValueType::kText);
  EXPECT_TRUE(stmt.columns[0].primary_key);
  EXPECT_EQ(stmt.columns[1].type, ValueType::kInt);
  EXPECT_FALSE(stmt.if_not_exists);
}

TEST(SqlParserTest, CreateTableIfNotExists) {
  const auto stmt = std::get<CreateTableStmt>(
      Parse("CREATE TABLE IF NOT EXISTS t (a INT)"));
  EXPECT_TRUE(stmt.if_not_exists);
}

TEST(SqlParserTest, ColumnTypeAliases) {
  const auto stmt = std::get<CreateTableStmt>(Parse(
      "CREATE TABLE t (a INTEGER, b BIGINT, c REAL, d FLOAT, e VARCHAR, "
      "f STRING, g DOUBLE)"));
  EXPECT_EQ(stmt.columns[0].type, ValueType::kInt);
  EXPECT_EQ(stmt.columns[1].type, ValueType::kInt);
  EXPECT_EQ(stmt.columns[2].type, ValueType::kDouble);
  EXPECT_EQ(stmt.columns[3].type, ValueType::kDouble);
  EXPECT_EQ(stmt.columns[4].type, ValueType::kText);
  EXPECT_EQ(stmt.columns[5].type, ValueType::kText);
  EXPECT_EQ(stmt.columns[6].type, ValueType::kDouble);
}

TEST(SqlParserTest, UnknownTypeRejected) {
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a BLOB)").ok());
}

TEST(SqlParserTest, DropTable) {
  EXPECT_EQ(std::get<DropTableStmt>(Parse("DROP TABLE t")).table, "t");
  EXPECT_TRUE(std::get<DropTableStmt>(Parse("DROP TABLE IF EXISTS t"))
                  .if_exists);
}

TEST(SqlParserTest, InsertValues) {
  const auto stmt = std::get<InsertStmt>(
      Parse("INSERT INTO t VALUES (1, 'two', 3.5, NULL)"));
  EXPECT_EQ(stmt.table, "t");
  EXPECT_TRUE(stmt.columns.empty());
  ASSERT_EQ(stmt.rows.size(), 1u);
  ASSERT_EQ(stmt.rows[0].size(), 4u);
  EXPECT_EQ(stmt.rows[0][0].AsInt(), 1);
  EXPECT_EQ(stmt.rows[0][1].AsText(), "two");
  EXPECT_DOUBLE_EQ(stmt.rows[0][2].AsDouble(), 3.5);
  EXPECT_TRUE(stmt.rows[0][3].is_null());
}

TEST(SqlParserTest, InsertWithColumnsAndMultipleRows) {
  const auto stmt = std::get<InsertStmt>(
      Parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)"));
  ASSERT_EQ(stmt.columns.size(), 2u);
  EXPECT_EQ(stmt.columns[1], "b");
  ASSERT_EQ(stmt.rows.size(), 2u);
  EXPECT_EQ(stmt.rows[1][0].AsInt(), 3);
}

TEST(SqlParserTest, SelectStar) {
  const auto stmt = std::get<SelectStmt>(Parse("SELECT * FROM t"));
  EXPECT_TRUE(stmt.columns.empty());
  EXPECT_EQ(stmt.table, "t");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(SqlParserTest, SelectColumnsWhere) {
  const auto stmt = std::get<SelectStmt>(
      Parse("SELECT a, b FROM t WHERE a = 1 AND b != 'x'"));
  ASSERT_EQ(stmt.columns.size(), 2u);
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->ToString(), "((a = 1) AND (b != 'x'))");
}

TEST(SqlParserTest, WherePrecedenceOrLowerThanAnd) {
  const auto stmt = std::get<SelectStmt>(
      Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  EXPECT_EQ(stmt.where->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(SqlParserTest, WhereParentheses) {
  const auto stmt = std::get<SelectStmt>(
      Parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3"));
  EXPECT_EQ(stmt.where->ToString(), "(((a = 1) OR (b = 2)) AND (c = 3))");
}

TEST(SqlParserTest, WhereNotAndIsNull) {
  const auto stmt = std::get<SelectStmt>(
      Parse("SELECT * FROM t WHERE NOT a IS NULL AND b IS NOT NULL"));
  EXPECT_EQ(stmt.where->ToString(),
            "((NOT (a IS NULL)) AND (b IS NOT NULL))");
}

TEST(SqlParserTest, OrderByAndLimit) {
  const auto stmt = std::get<SelectStmt>(
      Parse("SELECT * FROM t ORDER BY size DESC LIMIT 10"));
  ASSERT_TRUE(stmt.order_by.has_value());
  EXPECT_EQ(stmt.order_by->column, "size");
  EXPECT_TRUE(stmt.order_by->descending);
  EXPECT_EQ(stmt.limit.value(), 10u);
}

TEST(SqlParserTest, OrderByAscDefault) {
  const auto stmt =
      std::get<SelectStmt>(Parse("SELECT * FROM t ORDER BY name ASC"));
  EXPECT_FALSE(stmt.order_by->descending);
}

TEST(SqlParserTest, NegativeLimitRejected) {
  EXPECT_FALSE(ParseStatement("SELECT * FROM t LIMIT -1").ok());
}

TEST(SqlParserTest, Update) {
  const auto stmt = std::get<UpdateStmt>(
      Parse("UPDATE t SET size = 100, owner = 'me' WHERE name = 'f'"));
  EXPECT_EQ(stmt.table, "t");
  ASSERT_EQ(stmt.assignments.size(), 2u);
  EXPECT_EQ(stmt.assignments[0].first, "size");
  EXPECT_EQ(stmt.assignments[0].second.AsInt(), 100);
  EXPECT_EQ(stmt.assignments[1].second.AsText(), "me");
  ASSERT_NE(stmt.where, nullptr);
}

TEST(SqlParserTest, UpdateWithoutWhere) {
  const auto stmt = std::get<UpdateStmt>(Parse("UPDATE t SET a = 1"));
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(SqlParserTest, Delete) {
  const auto stmt =
      std::get<DeleteStmt>(Parse("DELETE FROM t WHERE size > 10"));
  EXPECT_EQ(stmt.table, "t");
  EXPECT_EQ(stmt.where->ToString(), "(size > 10)");
}

TEST(SqlParserTest, TransactionStatements) {
  EXPECT_TRUE(std::holds_alternative<BeginStmt>(Parse("BEGIN")));
  EXPECT_TRUE(std::holds_alternative<CommitStmt>(Parse("COMMIT;")));
  EXPECT_TRUE(std::holds_alternative<RollbackStmt>(Parse("rollback")));
}

TEST(SqlParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseStatement("SELECT * FROM t;").ok());
}

TEST(SqlParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT * FROM t garbage").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t; SELECT * FROM u").ok());
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseStatement("select * from T where A = 1 order by A").ok());
}

TEST(SqlParserTest, ComparisonBetweenTwoColumns) {
  const auto stmt =
      std::get<SelectStmt>(Parse("SELECT * FROM t WHERE a < b"));
  EXPECT_EQ(stmt.where->ToString(), "(a < b)");
}

TEST(SqlParserTest, MalformedStatementsRejected) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("SELEC * FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t ()").ok());
  EXPECT_FALSE(ParseStatement("UPDATE t WHERE a = 1").ok());
  EXPECT_FALSE(ParseStatement("DELETE t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE a =").ok());
}

}  // namespace
}  // namespace dpfs::metadb
