// Robustness: pseudo-random inputs must never crash the SQL front end or
// the engine, and a shadow-model check keeps randomized INSERT/DELETE
// sequences honest.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/rng.h"
#include "metadb/database.h"
#include "metadb/sql_parser.h"

namespace dpfs::metadb {
namespace {

class SqlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlFuzzTest, RandomTokenSoupNeverCrashesParser) {
  SplitMix64 rng(GetParam() * 104729 + 17);
  static constexpr const char* kTokens[] = {
      "SELECT", "FROM",  "WHERE", "INSERT", "INTO",   "VALUES", "UPDATE",
      "SET",    "DELETE", "CREATE", "TABLE", "DROP",  "BEGIN",  "COMMIT",
      "ROLLBACK", "AND", "OR",    "NOT",    "IS",     "NULL",   "ORDER",
      "BY",     "LIMIT", "(",     ")",      ",",      "*",      "=",
      "!=",     "<",     "<=",    ">",      ">=",     ";",      "t",
      "a",      "b",     "42",    "-7",     "3.5",    "'str'",  "''",
      "PRIMARY", "KEY",  "INT",   "TEXT",   "DOUBLE", "IF",     "EXISTS"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string sql;
    const std::uint64_t length = 1 + rng.NextBelow(15);
    for (std::uint64_t i = 0; i < length; ++i) {
      sql += kTokens[rng.NextBelow(std::size(kTokens))];
      sql += ' ';
    }
    // Must return ok-or-error, never crash or hang.
    (void)ParseStatement(sql);
  }
}

TEST_P(SqlFuzzTest, RandomBytesNeverCrashLexer) {
  SplitMix64 rng(GetParam() * 2741 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string sql;
    const std::uint64_t length = rng.NextBelow(64);
    for (std::uint64_t i = 0; i < length; ++i) {
      sql += static_cast<char>(rng.NextBelow(128));
    }
    (void)ParseStatement(sql);
  }
}

TEST_P(SqlFuzzTest, RandomStatementsAgainstEngineNeverCrash) {
  SplitMix64 rng(GetParam() * 15485863 + 11);
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, v DOUBLE)");
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t id = rng.NextBelow(40);
    std::string sql;
    switch (rng.NextBelow(6)) {
      case 0:
        sql = "INSERT INTO t VALUES (" + std::to_string(id) + ", 'n" +
              std::to_string(id) + "', " + std::to_string(id) + ".5)";
        break;
      case 1:
        sql = "DELETE FROM t WHERE id = " + std::to_string(id);
        break;
      case 2:
        sql = "UPDATE t SET v = " + std::to_string(id) + " WHERE id >= " +
              std::to_string(id);
        break;
      case 3:
        sql = "SELECT * FROM t WHERE name = 'n" + std::to_string(id) +
              "' OR v < " + std::to_string(id);
        break;
      case 4:
        sql = rng.NextBelow(2) == 0 ? "BEGIN" : "ROLLBACK";
        break;
      case 5:
        sql = rng.NextBelow(2) == 0 ? "COMMIT"
                                    : "SELECT id FROM t ORDER BY id DESC "
                                      "LIMIT 5";
        break;
    }
    (void)db->Execute(sql);  // errors fine, crashes not
  }
  // Engine still sane afterwards.
  if (db->in_transaction()) (void)db->Execute("ROLLBACK");
  EXPECT_TRUE(db->Execute("SELECT * FROM t").ok());
}

TEST_P(SqlFuzzTest, InsertDeleteShadowModel) {
  SplitMix64 rng(GetParam() * 6700417 + 29);
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)");
  std::map<std::int64_t, std::int64_t> shadow;

  for (int op = 0; op < 200; ++op) {
    const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(30));
    const std::int64_t value = static_cast<std::int64_t>(rng.NextBelow(1000));
    switch (rng.NextBelow(3)) {
      case 0: {
        const bool ok = db->Execute("INSERT INTO kv VALUES (" +
                                    std::to_string(key) + ", " +
                                    std::to_string(value) + ")")
                            .ok();
        EXPECT_EQ(ok, !shadow.contains(key)) << "op " << op;
        if (ok) shadow[key] = value;
        break;
      }
      case 1: {
        const auto result = db->Execute("DELETE FROM kv WHERE k = " +
                                        std::to_string(key));
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().affected_rows, shadow.erase(key));
        break;
      }
      case 2: {
        const auto result = db->Execute("UPDATE kv SET v = " +
                                        std::to_string(value) +
                                        " WHERE k = " + std::to_string(key));
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().affected_rows,
                  shadow.contains(key) ? 1u : 0u);
        if (shadow.contains(key)) shadow[key] = value;
        break;
      }
    }
  }

  // Final state must match the shadow exactly.
  const auto all = db->Execute("SELECT k, v FROM kv ORDER BY k").value();
  ASSERT_EQ(all.size(), shadow.size());
  std::size_t row = 0;
  for (const auto& [key, value] : shadow) {
    EXPECT_EQ(all.GetInt(row, "k").value(), key);
    EXPECT_EQ(all.GetInt(row, "v").value(), value);
    ++row;
  }
}

TEST_P(SqlFuzzTest, TransactionalShadowModel) {
  // Random transactions that either commit or roll back; the shadow applies
  // a transaction's effects only on COMMIT. Exercises the undo log hard.
  SplitMix64 rng(GetParam() * 7907 + 41);
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)");
  std::map<std::int64_t, std::int64_t> shadow;

  for (int txn = 0; txn < 40; ++txn) {
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    std::map<std::int64_t, std::optional<std::int64_t>> pending;  // nullopt=del
    const auto effective = [&](std::int64_t key) -> std::optional<std::int64_t> {
      const auto it = pending.find(key);
      if (it != pending.end()) return it->second;
      const auto base = shadow.find(key);
      if (base != shadow.end()) return base->second;
      return std::nullopt;
    };
    const int ops = 1 + static_cast<int>(rng.NextBelow(8));
    for (int op = 0; op < ops; ++op) {
      const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(20));
      const std::int64_t value =
          static_cast<std::int64_t>(rng.NextBelow(1000));
      switch (rng.NextBelow(3)) {
        case 0: {
          const bool ok =
              db->Execute("INSERT INTO kv VALUES (" + std::to_string(key) +
                          ", " + std::to_string(value) + ")")
                  .ok();
          ASSERT_EQ(ok, !effective(key).has_value()) << "txn " << txn;
          if (ok) pending[key] = value;
          break;
        }
        case 1: {
          const auto result = db->Execute("DELETE FROM kv WHERE k = " +
                                          std::to_string(key));
          ASSERT_TRUE(result.ok());
          ASSERT_EQ(result.value().affected_rows,
                    effective(key).has_value() ? 1u : 0u);
          pending[key] = std::nullopt;
          break;
        }
        case 2: {
          const auto result =
              db->Execute("UPDATE kv SET v = " + std::to_string(value) +
                          " WHERE k = " + std::to_string(key));
          ASSERT_TRUE(result.ok());
          if (effective(key).has_value()) pending[key] = value;
          break;
        }
      }
    }
    if (rng.NextBelow(2) == 0) {
      ASSERT_TRUE(db->Execute("COMMIT").ok());
      for (const auto& [key, value] : pending) {
        if (value.has_value()) {
          shadow[key] = *value;
        } else {
          shadow.erase(key);
        }
      }
    } else {
      ASSERT_TRUE(db->Execute("ROLLBACK").ok());
    }

    // After every transaction boundary the table must equal the shadow.
    const auto all = db->Execute("SELECT k, v FROM kv ORDER BY k").value();
    ASSERT_EQ(all.size(), shadow.size()) << "txn " << txn;
    std::size_t row = 0;
    for (const auto& [key, value] : shadow) {
      ASSERT_EQ(all.GetInt(row, "k").value(), key);
      ASSERT_EQ(all.GetInt(row, "v").value(), value);
      ++row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace dpfs::metadb
