#include "metadb/schema.h"

#include <gtest/gtest.h>

namespace dpfs::metadb {
namespace {

Schema MakeServerSchema() {
  return Schema::Create({{"name", ValueType::kText, true},
                         {"capacity", ValueType::kInt, false},
                         {"performance", ValueType::kInt, false}})
      .value();
}

TEST(SchemaTest, CreateValid) {
  const Schema schema = MakeServerSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.primary_key_index().value(), 0u);
}

TEST(SchemaTest, RejectsEmpty) { EXPECT_FALSE(Schema::Create({}).ok()); }

TEST(SchemaTest, RejectsDuplicateNamesCaseInsensitive) {
  EXPECT_FALSE(Schema::Create({{"Name", ValueType::kText, false},
                               {"name", ValueType::kInt, false}})
                   .ok());
}

TEST(SchemaTest, RejectsMultiplePrimaryKeys) {
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kText, true},
                               {"b", ValueType::kInt, true}})
                   .ok());
}

TEST(SchemaTest, RejectsNullColumnType) {
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kNull, false}}).ok());
}

TEST(SchemaTest, RejectsEmptyColumnName) {
  EXPECT_FALSE(Schema::Create({{"", ValueType::kText, false}}).ok());
}

TEST(SchemaTest, ColumnIndexIsCaseInsensitive) {
  const Schema schema = MakeServerSchema();
  EXPECT_EQ(schema.ColumnIndex("CAPACITY").value(), 1u);
  EXPECT_EQ(schema.ColumnIndex("performance").value(), 2u);
  EXPECT_FALSE(schema.ColumnIndex("missing").ok());
}

TEST(SchemaTest, ValidateRowArity) {
  const Schema schema = MakeServerSchema();
  EXPECT_FALSE(schema.ValidateRow({Value("x")}).ok());
  EXPECT_TRUE(schema
                  .ValidateRow({Value("x"), Value(std::int64_t{1}),
                                Value(std::int64_t{2})})
                  .ok());
}

TEST(SchemaTest, ValidateRowTypes) {
  const Schema schema = MakeServerSchema();
  // Text into int column: rejected.
  EXPECT_FALSE(
      schema.ValidateRow({Value("x"), Value("not-int"), Value(std::int64_t{2})})
          .ok());
  // NULL anywhere: allowed by ValidateRow (PK nullability enforced at the
  // table layer).
  EXPECT_TRUE(schema
                  .ValidateRow({Value::Null(), Value::Null(), Value::Null()})
                  .ok());
}

TEST(SchemaTest, IntCoercesIntoDoubleColumn) {
  const Schema schema =
      Schema::Create({{"ratio", ValueType::kDouble, false}}).value();
  EXPECT_TRUE(schema.ValidateRow({Value(std::int64_t{3})}).ok());
  const Value coerced =
      CoerceValue(Value(std::int64_t{3}), ValueType::kDouble).value();
  EXPECT_EQ(coerced.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(coerced.AsDouble(), 3.0);
}

TEST(SchemaTest, DoubleDoesNotCoerceIntoInt) {
  EXPECT_FALSE(CoerceValue(Value(2.5), ValueType::kInt).ok());
}

TEST(SchemaTest, SerializeRoundTrip) {
  const Schema schema = MakeServerSchema();
  BinaryWriter writer;
  schema.Serialize(writer);
  BinaryReader reader(writer.buffer());
  const Schema restored = Schema::Deserialize(reader).value();
  EXPECT_EQ(restored.num_columns(), 3u);
  EXPECT_EQ(restored.columns(), schema.columns());
  EXPECT_EQ(restored.primary_key_index(), schema.primary_key_index());
}

}  // namespace
}  // namespace dpfs::metadb
