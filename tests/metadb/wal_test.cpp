// Unit tests of the write-ahead log layer itself (the recovery_test file
// covers the Database-level behaviour).
#include "metadb/wal.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace dpfs::metadb {
namespace {

WalRecord InsertRecord(const std::string& table, RowId id, Row row) {
  WalRecord record;
  record.kind = WalRecordKind::kInsert;
  record.table = table;
  record.row_id = id;
  record.row = std::move(row);
  return record;
}

TEST(WalRecordTest, EncodeDecodeAllKinds) {
  WalRecord create;
  create.kind = WalRecordKind::kCreateTable;
  create.txn_id = 3;
  create.table = "t";
  create.schema = Schema::Create({{"a", ValueType::kInt, true},
                                  {"b", ValueType::kText, false}})
                      .value();
  const WalRecord decoded_create =
      WalRecord::Decode(create.Encode()).value();
  EXPECT_EQ(decoded_create.kind, WalRecordKind::kCreateTable);
  EXPECT_EQ(decoded_create.txn_id, 3u);
  EXPECT_EQ(decoded_create.schema.columns(), create.schema.columns());

  const WalRecord insert =
      InsertRecord("t", 9, {Value(std::int64_t{1}), Value("x")});
  const WalRecord decoded_insert =
      WalRecord::Decode(insert.Encode()).value();
  EXPECT_EQ(decoded_insert.kind, WalRecordKind::kInsert);
  EXPECT_EQ(decoded_insert.row_id, 9u);
  ASSERT_EQ(decoded_insert.row.size(), 2u);
  EXPECT_EQ(decoded_insert.row[1].AsText(), "x");

  WalRecord erase;
  erase.kind = WalRecordKind::kDelete;
  erase.table = "t";
  erase.row_id = 4;
  EXPECT_EQ(WalRecord::Decode(erase.Encode()).value().row_id, 4u);

  WalRecord drop;
  drop.kind = WalRecordKind::kDropTable;
  drop.table = "gone";
  EXPECT_EQ(WalRecord::Decode(drop.Encode()).value().table, "gone");
}

TEST(WalRecordTest, DecodeRejectsGarbage) {
  Bytes garbage = {99, 0, 0, 0};
  EXPECT_FALSE(WalRecord::Decode(garbage).ok());
  Bytes empty;
  EXPECT_FALSE(WalRecord::Decode(empty).ok());
  // Trailing bytes after a valid record are an error.
  WalRecord begin;
  begin.kind = WalRecordKind::kBegin;
  Bytes padded = begin.Encode();
  padded.push_back(0xFF);
  EXPECT_FALSE(WalRecord::Decode(padded).ok());
}

class WalFileTest : public ::testing::Test {
 protected:
  WalFileTest() : dir_(TempDir::Create("dpfs-wal").value()) {}

  std::filesystem::path LogPath() { return dir_.path() / "wal.log"; }

  /// Opens the WAL collecting the replayed operation records.
  Result<WriteAheadLog> OpenCollecting(std::vector<WalRecord>* out,
                                       std::uint64_t* max_txn = nullptr) {
    std::uint64_t ignored = 0;
    return WriteAheadLog::Open(
        LogPath(),
        [out](const WalRecord& record) {
          out->push_back(record);
          return Status::Ok();
        },
        max_txn != nullptr ? max_txn : &ignored);
  }

  TempDir dir_;
};

TEST_F(WalFileTest, FreshLogReplaysNothing) {
  std::vector<WalRecord> replayed;
  WriteAheadLog wal = OpenCollecting(&replayed).value();
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(wal.size_bytes(), 0u);
}

TEST_F(WalFileTest, AppendThenReplayRoundTrip) {
  {
    std::vector<WalRecord> replayed;
    WriteAheadLog wal = OpenCollecting(&replayed).value();
    ASSERT_TRUE(
        wal.AppendTransaction(
               1, {InsertRecord("t", 1, {Value(std::int64_t{10})}),
                   InsertRecord("t", 2, {Value(std::int64_t{20})})})
            .ok());
    ASSERT_TRUE(
        wal.AppendTransaction(2, {InsertRecord("t", 3,
                                               {Value(std::int64_t{30})})})
            .ok());
    EXPECT_GT(wal.size_bytes(), 0u);
  }
  std::vector<WalRecord> replayed;
  std::uint64_t max_txn = 0;
  WriteAheadLog wal = OpenCollecting(&replayed, &max_txn).value();
  ASSERT_EQ(replayed.size(), 3u);  // only ops, never BEGIN/COMMIT
  EXPECT_EQ(replayed[0].row_id, 1u);
  EXPECT_EQ(replayed[2].row[0].AsInt(), 30);
  EXPECT_EQ(max_txn, 2u);
}

TEST_F(WalFileTest, EmptyTransactionIsReplayableNoise) {
  {
    std::vector<WalRecord> replayed;
    WriteAheadLog wal = OpenCollecting(&replayed).value();
    ASSERT_TRUE(wal.AppendTransaction(1, {}).ok());
  }
  std::vector<WalRecord> replayed;
  WriteAheadLog wal = OpenCollecting(&replayed).value();
  EXPECT_TRUE(replayed.empty());
}

TEST_F(WalFileTest, ResetTruncates) {
  std::vector<WalRecord> replayed;
  WriteAheadLog wal = OpenCollecting(&replayed).value();
  ASSERT_TRUE(
      wal.AppendTransaction(1, {InsertRecord("t", 1, {Value("v")})}).ok());
  ASSERT_GT(wal.size_bytes(), 0u);
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.size_bytes(), 0u);
  EXPECT_EQ(std::filesystem::file_size(LogPath()), 0u);
  // Appending still works after the reset.
  EXPECT_TRUE(
      wal.AppendTransaction(2, {InsertRecord("t", 2, {Value("w")})}).ok());
}

TEST_F(WalFileTest, ReplayErrorPropagates) {
  {
    std::vector<WalRecord> replayed;
    WriteAheadLog wal = OpenCollecting(&replayed).value();
    ASSERT_TRUE(
        wal.AppendTransaction(1, {InsertRecord("t", 1, {Value("v")})}).ok());
  }
  std::uint64_t max_txn = 0;
  const Result<WriteAheadLog> reopened = WriteAheadLog::Open(
      LogPath(),
      [](const WalRecord&) { return InternalError("apply failed"); },
      &max_txn);
  EXPECT_FALSE(reopened.ok());
}

}  // namespace
}  // namespace dpfs::metadb
