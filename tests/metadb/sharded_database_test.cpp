#include "metadb/sharded_database.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "client/metadata.h"
#include "common/temp_dir.h"

namespace dpfs::metadb {
namespace {

namespace fs = std::filesystem;

std::string ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ShardedDatabaseTest, HashPathIsDeterministicFnv1a) {
  // FNV-1a offset basis: the hash of the empty string, by construction.
  EXPECT_EQ(ShardedDatabase::HashPath(""), 14695981039346656037ull);
  EXPECT_EQ(ShardedDatabase::HashPath("/a/b"), ShardedDatabase::HashPath("/a/b"));
  EXPECT_NE(ShardedDatabase::HashPath("/a"), ShardedDatabase::HashPath("/b"));
}

TEST(ShardedDatabaseTest, ShardCountBounds) {
  EXPECT_FALSE(ShardedDatabase::OpenInMemory(0).ok());
  EXPECT_FALSE(ShardedDatabase::OpenInMemory(ShardedDatabase::kMaxShards + 1).ok());
  EXPECT_TRUE(ShardedDatabase::OpenInMemory(ShardedDatabase::kMaxShards).ok());

  TempDir temp = TempDir::Create("metadb-shard-bounds").value();
  EXPECT_FALSE(ShardedDatabase::Open(temp.Sub("db"), 0).ok());
  EXPECT_FALSE(
      ShardedDatabase::Open(temp.Sub("db"), ShardedDatabase::kMaxShards + 1)
          .ok());
}

TEST(ShardedDatabaseTest, SingleShardUsesPlainLayout) {
  TempDir temp = TempDir::Create("metadb-shard-single").value();
  const fs::path dir = temp.Sub("db");
  {
    auto db = ShardedDatabase::Open(dir, 1).value();
    ASSERT_TRUE(db->shard(0).Execute("CREATE TABLE T (a INT)").ok());
    ASSERT_TRUE(db->shard(0).Execute("INSERT INTO T VALUES (1)").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  EXPECT_TRUE(fs::exists(dir / "snapshot.db"));
  EXPECT_FALSE(fs::exists(dir / "shards"));
  EXPECT_FALSE(fs::exists(dir / "shard-00"));
}

TEST(ShardedDatabaseTest, ManifestRoundTripAndMismatch) {
  TempDir temp = TempDir::Create("metadb-shard-manifest").value();
  const fs::path dir = temp.Sub("db");
  {
    auto db = ShardedDatabase::Open(dir, 4).value();
    EXPECT_EQ(db->num_shards(), 4u);
  }
  EXPECT_EQ(ReadFileBytes(dir / "shards"), "shards=4\n");
  for (const char* shard : {"shard-00", "shard-01", "shard-02", "shard-03"}) {
    EXPECT_TRUE(fs::is_directory(dir / shard)) << shard;
  }
  // Matching count reopens; any other count is an explicit migration, not a
  // guess.
  EXPECT_TRUE(ShardedDatabase::Open(dir, 4).ok());
  EXPECT_FALSE(ShardedDatabase::Open(dir, 2).ok());
  EXPECT_FALSE(ShardedDatabase::Open(dir, 1).ok());
}

TEST(ShardedDatabaseTest, RefusesShardingAnUnshardedDirectory) {
  TempDir temp = TempDir::Create("metadb-shard-refuse").value();
  const fs::path dir = temp.Sub("db");
  {
    auto db = Database::Open(dir).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE T (a INT)").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  const Status status = ShardedDatabase::Open(dir, 4).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ShardedDatabaseTest, RoutingIsBoundedAndSpreads) {
  auto db = ShardedDatabase::OpenInMemory(4).value();
  std::set<std::size_t> seen;
  for (int i = 0; i < 256; ++i) {
    const std::string path = "/dir/file" + std::to_string(i);
    const std::size_t shard = db->ShardForPath(path);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, db->ShardForPath(path));  // stable
    seen.insert(shard);
  }
  // FNV-1a over 256 distinct paths must not collapse onto one shard.
  EXPECT_GT(seen.size(), 1u);
}

TEST(ShardedDatabaseTest, AdoptWrapsAnExistingDatabase) {
  std::shared_ptr<Database> plain = Database::OpenInMemory();
  auto db = ShardedDatabase::Adopt(plain);
  EXPECT_EQ(db->num_shards(), 1u);
  EXPECT_EQ(&db->shard(0), plain.get());
  EXPECT_EQ(db->ShardForPath("/anything"), 0u);
}

TEST(ShardedDatabaseTest, CheckpointFansOutToEveryShard) {
  TempDir temp = TempDir::Create("metadb-shard-ckpt").value();
  const fs::path dir = temp.Sub("db");
  auto db = ShardedDatabase::Open(dir, 2).value();
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(db->shard(i).Execute("CREATE TABLE T (a INT)").ok());
    ASSERT_TRUE(db->shard(i).Execute("INSERT INTO T VALUES (7)").ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_TRUE(fs::exists(dir / "shard-00" / "snapshot.db"));
  EXPECT_TRUE(fs::exists(dir / "shard-01" / "snapshot.db"));
  EXPECT_EQ(db->shard(0).wal_size_bytes(), 0u);
  EXPECT_EQ(db->shard(1).wal_size_bytes(), 0u);
}

// The acceptance bar for metadb_shards=1: running the metadata workload
// through the facade must leave snapshot.db and wal.log byte-identical to
// the plain unsharded engine.
TEST(ShardedDatabaseTest, SingleShardLayoutIsByteIdenticalToPlainDatabase) {
  TempDir temp = TempDir::Create("metadb-shard-bytes").value();
  const fs::path plain_dir = temp.Sub("plain");
  const fs::path facade_dir = temp.Sub("facade");

  const auto run_workload = [](client::MetadataManager& meta) {
    client::ServerInfo server;
    server.name = "s0";
    server.endpoint = {"127.0.0.1", 9000};
    server.capacity_bytes = 500'000'000;
    server.performance = 1;
    ASSERT_TRUE(meta.RegisterServer(server).ok());
    server.name = "s1";
    ASSERT_TRUE(meta.RegisterServer(server).ok());
    ASSERT_TRUE(meta.MakeDirectory("/home").ok());

    client::FileMeta file;
    file.path = "/home/data.bin";
    file.owner = "xhshen";
    file.permission = 0744;
    file.level = layout::FileLevel::kLinear;
    file.size_bytes = 128;
    file.brick_bytes = 64;
    const auto dist = layout::BrickDistribution::RoundRobin(2, 2).value();
    ASSERT_TRUE(meta.CreateFile(file, {"s0", "s1"}, dist).ok());
    ASSERT_TRUE(meta.UpdateFileSize("/home/data.bin", 96).ok());
    ASSERT_TRUE(meta.RenameFile("/home/data.bin", "/home/data2.bin").ok());
    ASSERT_TRUE(meta.LogAccess("/home/data2.bin", false, 4, 4096, 4096).ok());

    file.path = "/home/doomed.bin";
    ASSERT_TRUE(meta.CreateFile(file, {"s0", "s1"}, dist).ok());
    ASSERT_TRUE(meta.DeleteFile("/home/doomed.bin").ok());
    ASSERT_TRUE(meta.MakeDirectory("/tmp").ok());
    ASSERT_TRUE(meta.RemoveDirectory("/tmp", false).ok());
  };

  {
    std::shared_ptr<Database> db = Database::Open(plain_dir).value();
    auto meta = client::MetadataManager::Attach(db).value();
    run_workload(*meta);
  }
  {
    std::shared_ptr<ShardedDatabase> db =
        ShardedDatabase::Open(facade_dir, 1).value();
    auto meta = client::MetadataManager::Attach(db).value();
    run_workload(*meta);
  }

  EXPECT_EQ(ReadFileBytes(plain_dir / "wal.log"),
            ReadFileBytes(facade_dir / "wal.log"));
  // Neither side checkpointed, so the snapshot is absent (or identical) in
  // both layouts.
  EXPECT_EQ(fs::exists(plain_dir / "snapshot.db"),
            fs::exists(facade_dir / "snapshot.db"));
}

}  // namespace
}  // namespace dpfs::metadb
