// Crash-consistency tests driven by the wal.append / wal.sync / metadb.commit
// failpoints: the WAL is cut at every byte position of a transaction's frame
// (every record boundary and every mid-record offset), the database is
// reopened, and recovery must land exactly on the last committed transaction.
#include <gtest/gtest.h>

#include <string>

#include "common/failpoint.h"
#include "common/temp_dir.h"
#include "core/cluster.h"
#include "metadb/database.h"

namespace dpfs::metadb {
namespace {

class WalCrashRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  static std::unique_ptr<Database> Open(const std::filesystem::path& dir) {
    Result<std::unique_ptr<Database>> db = Database::Open(dir);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  static void Exec(Database& db, std::string_view sql) {
    const Result<ResultSet> result = db.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " for: " << sql;
  }

  static std::size_t Count(Database& db, const std::string& table) {
    return db.Execute("SELECT * FROM " + table).value().size();
  }
};

TEST_F(WalCrashRecoveryTest, TornAppendAtEveryByteRecoversToLastCommit) {
  // Measure the exact WAL frame size of the victim transaction (the frame
  // layout is deterministic for identical SQL), then replay the scenario
  // with the append torn at every byte offset of that frame: after BEGIN,
  // mid-record, between records, just short of COMMIT's last byte.
  std::uint64_t frame_size = 0;
  {
    const TempDir dir = TempDir::Create("dpfs-walcut").value();
    auto db = Open(dir.path());
    Exec(*db, "CREATE TABLE t (a INT, b TEXT)");
    Exec(*db, "INSERT INTO t VALUES (1, 'base')");
    const std::uint64_t before = db->wal_size_bytes();
    Exec(*db, "INSERT INTO t VALUES (2, 'victim')");
    frame_size = db->wal_size_bytes() - before;
  }
  ASSERT_GT(frame_size, 0u);

  for (std::uint64_t cut = 0; cut < frame_size; ++cut) {
    const TempDir dir = TempDir::Create("dpfs-walcut").value();
    {
      auto db = Open(dir.path());
      Exec(*db, "CREATE TABLE t (a INT, b TEXT)");
      Exec(*db, "INSERT INTO t VALUES (1, 'base')");

      failpoint::Spec spec;
      spec.action = failpoint::Action::kTornWrite;
      spec.arg = cut;
      spec.count = 1;
      failpoint::Arm("wal.append", spec);
      const Result<ResultSet> torn =
          db->Execute("INSERT INTO t VALUES (2, 'victim')");
      ASSERT_FALSE(torn.ok()) << "cut=" << cut;
      EXPECT_EQ(torn.status().code(), StatusCode::kIoError);
      // A torn append leaves the WAL object unusable — close and recover,
      // exactly as a crashed process would.
    }
    auto db = Open(dir.path());
    const ResultSet rows = db->Execute("SELECT * FROM t ORDER BY a").value();
    ASSERT_EQ(rows.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(rows.GetText(0, "b").value(), "base") << "cut=" << cut;
    // And the recovered database accepts new commits on the truncated log.
    Exec(*db, "INSERT INTO t VALUES (3, 'after')");
    EXPECT_EQ(Count(*db, "t"), 2u) << "cut=" << cut;
  }
}

TEST_F(WalCrashRecoveryTest, TornAppendRollsBackInMemoryStateImmediately) {
  const TempDir dir = TempDir::Create("dpfs-walcut").value();
  auto db = Open(dir.path());
  Exec(*db, "CREATE TABLE t (a INT)");
  Exec(*db, "INSERT INTO t VALUES (1)");

  failpoint::Spec spec;
  spec.action = failpoint::Action::kTornWrite;
  spec.arg = 5;  // mid-BEGIN-record
  spec.count = 1;
  failpoint::Arm("wal.append", spec);
  ASSERT_FALSE(db->Execute("INSERT INTO t VALUES (2)").ok());
  // The failed commit must not be visible in memory either.
  EXPECT_EQ(Count(*db, "t"), 1u);
}

TEST_F(WalCrashRecoveryTest, CrashBeforeSyncLeavesFlushedCommitAmbiguous) {
  // wal.sync models a crash after fwrite+fflush but before fdatasync: the
  // commit is reported failed, yet the frame reached the OS. Without a real
  // power cut the bytes survive, so reopen legitimately replays the txn —
  // the classic durability ambiguity a failed-sync commit must tolerate.
  const TempDir dir = TempDir::Create("dpfs-walsync").value();
  {
    auto db = Open(dir.path());
    db->SetSyncCommits(true);
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "INSERT INTO t VALUES (1)");

    failpoint::Spec spec;
    spec.action = failpoint::Action::kReturnError;
    spec.count = 1;
    failpoint::Arm("wal.sync", spec);
    const Result<ResultSet> failed = db->Execute("INSERT INTO t VALUES (2)");
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(Count(*db, "t"), 1u);  // rolled back in memory
  }
  auto db = Open(dir.path());
  EXPECT_EQ(Count(*db, "t"), 2u);  // ...but the flushed frame replayed
}

TEST_F(WalCrashRecoveryTest, CommitFailpointRollsBackAndDatabaseKeepsWorking) {
  const TempDir dir = TempDir::Create("dpfs-commit").value();
  auto db = Open(dir.path());
  Exec(*db, "CREATE TABLE t (a INT)");

  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kIoError;
  spec.count = 1;
  failpoint::Arm("metadb.commit", spec);
  EXPECT_FALSE(db->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(Count(*db, "t"), 0u);

  // metadb.commit fires before the WAL is touched, so unlike a torn append
  // the same handle stays usable.
  Exec(*db, "INSERT INTO t VALUES (2)");
  EXPECT_EQ(Count(*db, "t"), 1u);
}

TEST_F(WalCrashRecoveryTest, ExplicitMultiOpTransactionTornMidFrame) {
  // A BEGIN..COMMIT batch is one WAL frame; tearing it mid-way must lose
  // the whole batch, never a prefix of its operations.
  std::uint64_t frame_size = 0;
  {
    const TempDir dir = TempDir::Create("dpfs-walbatch").value();
    auto db = Open(dir.path());
    Exec(*db, "CREATE TABLE t (a INT)");
    const std::uint64_t before = db->wal_size_bytes();
    Exec(*db, "BEGIN");
    Exec(*db, "INSERT INTO t VALUES (1)");
    Exec(*db, "INSERT INTO t VALUES (2)");
    Exec(*db, "INSERT INTO t VALUES (3)");
    Exec(*db, "COMMIT");
    frame_size = db->wal_size_bytes() - before;
  }
  ASSERT_GT(frame_size, 0u);

  // Cut at the quartile offsets (the per-byte sweep above covers the dense
  // single-op case; here the point is multi-op atomicity).
  for (const std::uint64_t cut :
       {std::uint64_t{0}, frame_size / 4, frame_size / 2,
        3 * frame_size / 4, frame_size - 1}) {
    const TempDir dir = TempDir::Create("dpfs-walbatch").value();
    {
      auto db = Open(dir.path());
      Exec(*db, "CREATE TABLE t (a INT)");
      Exec(*db, "BEGIN");
      Exec(*db, "INSERT INTO t VALUES (1)");
      Exec(*db, "INSERT INTO t VALUES (2)");
      Exec(*db, "INSERT INTO t VALUES (3)");

      failpoint::Spec spec;
      spec.action = failpoint::Action::kTornWrite;
      spec.arg = cut;
      spec.count = 1;
      failpoint::Arm("wal.append", spec);
      ASSERT_FALSE(db->Execute("COMMIT").ok()) << "cut=" << cut;
    }
    auto db = Open(dir.path());
    EXPECT_EQ(Count(*db, "t"), 0u) << "cut=" << cut;  // all or nothing
  }
}

TEST_F(WalCrashRecoveryTest, FourMetadataTablesRecoverToLastCommittedTxn) {
  // End to end through the real metadata schema: a durable cluster creates
  // a file (one committed txn across DPFS_FILE_ATTR, DPFS_FILE_DISTRIBUTION
  // and DPFS_DIRECTORY), then a second create dies on a torn WAL append.
  // After "reboot", all four tables hold exactly the committed state.
  const TempDir root = TempDir::Create("dpfs-metacrash").value();
  {
    core::ClusterOptions options;
    options.num_servers = 2;
    options.durable_metadata = true;
    options.root_dir = root.path();
    auto cluster = core::LocalCluster::Start(std::move(options)).value();

    client::CreateOptions create;
    create.total_bytes = 1024;
    create.brick_bytes = 256;
    ASSERT_TRUE(cluster->fs()->Create("/survivor.bin", create).ok());

    failpoint::Spec spec;
    spec.action = failpoint::Action::kTornWrite;
    spec.arg = 10;
    spec.count = 1;
    failpoint::Arm("wal.append", spec);
    EXPECT_FALSE(cluster->fs()->Create("/victim.bin", create).ok());
    // Crash: tear the cluster down with the WAL torn.
  }
  auto db = Open(root.path() / "metadb");
  EXPECT_EQ(Count(*db, "DPFS_SERVER"), 2u);
  EXPECT_EQ(Count(*db, "DPFS_FILE_ATTR"), 1u);
  EXPECT_EQ(Count(*db, "DPFS_FILE_DISTRIBUTION"), 2u);  // one row per server
  const ResultSet attr =
      db->Execute("SELECT * FROM DPFS_FILE_ATTR").value();
  EXPECT_EQ(attr.GetText(0, "filename").value(), "/survivor.bin");
  // Root directory lists only the committed file.
  const ResultSet dir =
      db->Execute("SELECT * FROM DPFS_DIRECTORY").value();
  ASSERT_EQ(dir.size(), 1u);
  const std::string files = dir.GetText(0, "files").value();
  EXPECT_NE(files.find("survivor.bin"), std::string::npos);
  EXPECT_EQ(files.find("victim.bin"), std::string::npos);
}

}  // namespace
}  // namespace dpfs::metadb
