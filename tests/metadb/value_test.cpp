#include "metadb/value.h"

#include <gtest/gtest.h>

namespace dpfs::metadb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(std::int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("text").AsText(), "text");
  EXPECT_EQ(Value(std::string("s")).type(), ValueType::kText);
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).ToDouble().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value(1.5).ToDouble().value(), 1.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, CompareSameTypes) {
  EXPECT_EQ(Value(std::int64_t{1}).Compare(Value(std::int64_t{2})).value(), -1);
  EXPECT_EQ(Value(std::int64_t{2}).Compare(Value(std::int64_t{2})).value(), 0);
  EXPECT_EQ(Value(std::int64_t{3}).Compare(Value(std::int64_t{2})).value(), 1);
  EXPECT_EQ(Value("a").Compare(Value("b")).value(), -1);
  EXPECT_EQ(Value("b").Compare(Value("b")).value(), 0);
  EXPECT_EQ(Value(1.5).Compare(Value(1.0)).value(), 1);
}

TEST(ValueTest, CompareNumericPromotion) {
  EXPECT_EQ(Value(std::int64_t{2}).Compare(Value(2.0)).value(), 0);
  EXPECT_EQ(Value(std::int64_t{2}).Compare(Value(2.5)).value(), -1);
  EXPECT_EQ(Value(2.5).Compare(Value(std::int64_t{2})).value(), 1);
}

TEST(ValueTest, CompareTextWithNumberIsError) {
  EXPECT_FALSE(Value("1").Compare(Value(std::int64_t{1})).ok());
  EXPECT_FALSE(Value(std::int64_t{1}).Compare(Value("1")).ok());
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()).value(), 0);
  EXPECT_EQ(Value::Null().Compare(Value(std::int64_t{0})).value(), -1);
  EXPECT_EQ(Value(std::int64_t{0}).Compare(Value::Null()).value(), 1);
}

TEST(ValueTest, EqualityOperator) {
  EXPECT_EQ(Value(std::int64_t{5}), Value(std::int64_t{5}));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_FALSE(Value("x") == Value("y"));
  EXPECT_FALSE(Value("x") == Value(std::int64_t{5}));  // error → not equal
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(std::int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("abc").ToString(), "'abc'");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, SerializeRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(), Value(std::int64_t{-12345}), Value(3.25),
      Value("hello 'world'"), Value(std::string())};
  BinaryWriter writer;
  for (const Value& v : values) v.Serialize(writer);
  BinaryReader reader(writer.buffer());
  for (const Value& expected : values) {
    const Value got = Value::Deserialize(reader).value();
    EXPECT_EQ(got.type(), expected.type());
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ValueTest, DeserializeBadTagFails) {
  Bytes raw = {99};
  BinaryReader reader(raw);
  EXPECT_FALSE(Value::Deserialize(reader).ok());
}

}  // namespace
}  // namespace dpfs::metadb
