#include "metadb/predicate.h"

#include <gtest/gtest.h>

#include <regex>

#include "common/rng.h"

namespace dpfs::metadb {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest()
      : schema_(Schema::Create({{"name", ValueType::kText, true},
                                {"size", ValueType::kInt, false},
                                {"ratio", ValueType::kDouble, false}})
                    .value()),
        row_{Value("alpha"), Value(std::int64_t{100}), Value(2.5)} {}

  bool Eval(const ExprPtr& expr) {
    return EvaluateFilter(*expr, schema_, row_).value();
  }

  Schema schema_;
  Row row_;
};

TEST_F(PredicateTest, ColumnEqualsLiteral) {
  EXPECT_TRUE(Eval(MakeCompare(CompareOp::kEq, MakeColumn("name"),
                               MakeLiteral(Value("alpha")))));
  EXPECT_FALSE(Eval(MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                MakeLiteral(Value("beta")))));
}

TEST_F(PredicateTest, NumericComparisons) {
  const auto size = [] { return MakeColumn("size"); };
  EXPECT_TRUE(Eval(MakeCompare(CompareOp::kLt, size(),
                               MakeLiteral(Value(std::int64_t{200})))));
  EXPECT_TRUE(Eval(MakeCompare(CompareOp::kLe, size(),
                               MakeLiteral(Value(std::int64_t{100})))));
  EXPECT_FALSE(Eval(MakeCompare(CompareOp::kGt, size(),
                                MakeLiteral(Value(std::int64_t{100})))));
  EXPECT_TRUE(Eval(MakeCompare(CompareOp::kGe, size(),
                               MakeLiteral(Value(std::int64_t{100})))));
  EXPECT_TRUE(Eval(MakeCompare(CompareOp::kNe, size(),
                               MakeLiteral(Value(std::int64_t{99})))));
}

TEST_F(PredicateTest, MixedIntDoubleComparison) {
  EXPECT_TRUE(Eval(MakeCompare(CompareOp::kGt, MakeColumn("ratio"),
                               MakeLiteral(Value(std::int64_t{2})))));
}

TEST_F(PredicateTest, AndOrNot) {
  const ExprPtr true_expr = MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                        MakeLiteral(Value("alpha")));
  const ExprPtr false_expr = MakeCompare(CompareOp::kGt, MakeColumn("size"),
                                         MakeLiteral(Value(std::int64_t{500})));
  EXPECT_TRUE(Eval(MakeAnd(true_expr, true_expr)));
  EXPECT_FALSE(Eval(MakeAnd(true_expr, false_expr)));
  EXPECT_TRUE(Eval(MakeOr(false_expr, true_expr)));
  EXPECT_FALSE(Eval(MakeOr(false_expr, false_expr)));
  EXPECT_TRUE(Eval(MakeNot(false_expr)));
  EXPECT_FALSE(Eval(MakeNot(true_expr)));
}

TEST_F(PredicateTest, ComparisonWithNullIsFalse) {
  // SQL: NULL = NULL evaluates to NULL, filtered as false.
  EXPECT_FALSE(Eval(MakeCompare(CompareOp::kEq, MakeLiteral(Value::Null()),
                                MakeLiteral(Value::Null()))));
}

TEST_F(PredicateTest, IsNull) {
  EXPECT_TRUE(Eval(MakeIsNull(MakeLiteral(Value::Null()), false)));
  EXPECT_FALSE(Eval(MakeIsNull(MakeColumn("name"), false)));
  EXPECT_TRUE(Eval(MakeIsNull(MakeColumn("name"), true)));  // IS NOT NULL
}

TEST_F(PredicateTest, UnknownColumnErrors) {
  const ExprPtr expr = MakeCompare(CompareOp::kEq, MakeColumn("nope"),
                                   MakeLiteral(Value(std::int64_t{1})));
  EXPECT_FALSE(EvaluateFilter(*expr, schema_, row_).ok());
}

TEST_F(PredicateTest, TypeMismatchErrors) {
  const ExprPtr expr = MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                   MakeLiteral(Value(std::int64_t{1})));
  EXPECT_FALSE(EvaluateFilter(*expr, schema_, row_).ok());
}

TEST_F(PredicateTest, ToStringRendering) {
  const ExprPtr expr = MakeAnd(
      MakeCompare(CompareOp::kEq, MakeColumn("name"),
                  MakeLiteral(Value("a"))),
      MakeNot(MakeCompare(CompareOp::kLt, MakeColumn("size"),
                          MakeLiteral(Value(std::int64_t{5})))));
  EXPECT_EQ(expr->ToString(), "((name = 'a') AND (NOT (size < 5)))");
}

TEST_F(PredicateTest, ExtractEqualityConstraintDirect) {
  const ExprPtr expr = MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                   MakeLiteral(Value("alpha")));
  const auto key = ExtractEqualityConstraint(*expr, schema_, 0);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->AsText(), "alpha");
}

TEST_F(PredicateTest, ExtractEqualityConstraintReversedOperands) {
  const ExprPtr expr = MakeCompare(CompareOp::kEq, MakeLiteral(Value("alpha")),
                                   MakeColumn("name"));
  EXPECT_TRUE(ExtractEqualityConstraint(*expr, schema_, 0).has_value());
}

TEST_F(PredicateTest, ExtractEqualityConstraintUnderAnd) {
  const ExprPtr expr = MakeAnd(
      MakeCompare(CompareOp::kGt, MakeColumn("size"),
                  MakeLiteral(Value(std::int64_t{0}))),
      MakeCompare(CompareOp::kEq, MakeColumn("name"),
                  MakeLiteral(Value("alpha"))));
  EXPECT_TRUE(ExtractEqualityConstraint(*expr, schema_, 0).has_value());
}

TEST_F(PredicateTest, ExtractEqualityConstraintAbsent) {
  // Wrong column.
  const ExprPtr expr1 = MakeCompare(CompareOp::kEq, MakeColumn("size"),
                                    MakeLiteral(Value(std::int64_t{1})));
  EXPECT_FALSE(ExtractEqualityConstraint(*expr1, schema_, 0).has_value());
  // Wrong operator.
  const ExprPtr expr2 = MakeCompare(CompareOp::kLt, MakeColumn("name"),
                                    MakeLiteral(Value("z")));
  EXPECT_FALSE(ExtractEqualityConstraint(*expr2, schema_, 0).has_value());
  // OR does not guarantee the constraint.
  const ExprPtr expr3 = MakeOr(
      MakeCompare(CompareOp::kEq, MakeColumn("name"),
                  MakeLiteral(Value("a"))),
      MakeCompare(CompareOp::kEq, MakeColumn("name"),
                  MakeLiteral(Value("b"))));
  EXPECT_FALSE(ExtractEqualityConstraint(*expr3, schema_, 0).has_value());
}

TEST(LikeMatchTest, Literals) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_FALSE(LikeMatch("ab", "abc"));
  EXPECT_TRUE(LikeMatch("", ""));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("/home/x/file", "/home/%"));
  EXPECT_TRUE(LikeMatch("/home/x/file", "%file"));
  EXPECT_TRUE(LikeMatch("/home/x/file", "%/x/%"));
  EXPECT_FALSE(LikeMatch("/tmp/file", "/home/%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(LikeMatch("abc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("acb", "a%b%c"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("cart", "c_t"));
  EXPECT_TRUE(LikeMatch("cart", "c__t"));
  EXPECT_TRUE(LikeMatch("run7", "run_"));
}

TEST(LikeMatchTest, BacktrackingCases) {
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_TRUE(LikeMatch("aaa", "%a"));
  EXPECT_FALSE(LikeMatch("aaa", "a%b"));
}

TEST(LikeMatchTest, AgreesWithRegexOracle) {
  // Property: LikeMatch must agree with the equivalent regex on random
  // inputs over a tiny alphabet (small alphabet maximizes wildcard
  // collisions and backtracking).
  SplitMix64 rng(20260707);
  const char alphabet[] = {'a', 'b', '%', '_'};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    std::string pattern;
    const std::uint64_t text_len = rng.NextBelow(8);
    const std::uint64_t pattern_len = rng.NextBelow(6);
    for (std::uint64_t i = 0; i < text_len; ++i) {
      text += (rng.NextBelow(2) == 0) ? 'a' : 'b';
    }
    std::string regex;
    for (std::uint64_t i = 0; i < pattern_len; ++i) {
      const char c = alphabet[rng.NextBelow(4)];
      pattern += c;
      if (c == '%') {
        regex += ".*";
      } else if (c == '_') {
        regex += '.';
      } else {
        regex += c;
      }
    }
    const bool expected =
        std::regex_match(text, std::regex(regex));
    EXPECT_EQ(LikeMatch(text, pattern), expected)
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

TEST_F(PredicateTest, LikeExpression) {
  EXPECT_TRUE(Eval(MakeLike(MakeColumn("name"), "al%", false)));
  EXPECT_FALSE(Eval(MakeLike(MakeColumn("name"), "be%", false)));
  EXPECT_TRUE(Eval(MakeLike(MakeColumn("name"), "be%", true)));  // NOT LIKE
  EXPECT_EQ(MakeLike(MakeColumn("name"), "a%", false)->ToString(),
            "(name LIKE 'a%')");
}

TEST_F(PredicateTest, LikeOnNumberErrors) {
  const ExprPtr expr = MakeLike(MakeColumn("size"), "1%", false);
  EXPECT_FALSE(EvaluateFilter(*expr, schema_, row_).ok());
}

TEST_F(PredicateTest, ShortCircuitAvoidsErrorOnRhs) {
  // FALSE AND <type-error> short-circuits to false instead of erroring.
  const ExprPtr false_expr = MakeCompare(
      CompareOp::kGt, MakeColumn("size"), MakeLiteral(Value(std::int64_t{500})));
  const ExprPtr bad = MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                  MakeLiteral(Value(std::int64_t{1})));
  EXPECT_FALSE(Eval(MakeAnd(false_expr, bad)));
}

}  // namespace
}  // namespace dpfs::metadb
