#include "metadb/database.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/temp_dir.h"

namespace dpfs::metadb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(Database::OpenInMemory()) {}

  ResultSet Exec(std::string_view sql) {
    Result<ResultSet> result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for: " << sql;
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateInsertSelect) {
  Exec("CREATE TABLE servers (name TEXT PRIMARY KEY, perf INT)");
  Exec("INSERT INTO servers VALUES ('fast', 1), ('slow', 3)");
  const ResultSet result = Exec("SELECT * FROM servers ORDER BY name");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.GetText(0, "name").value(), "fast");
  EXPECT_EQ(result.GetInt(1, "perf").value(), 3);
}

TEST_F(DatabaseTest, CreateDuplicateTableFails) {
  Exec("CREATE TABLE t (a INT)");
  EXPECT_FALSE(db_->Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_TRUE(db_->Execute("CREATE TABLE IF NOT EXISTS t (a INT)").ok());
}

TEST_F(DatabaseTest, TableNamesAreCaseInsensitive) {
  Exec("CREATE TABLE MyTable (a INT)");
  Exec("INSERT INTO mytable VALUES (1)");
  EXPECT_EQ(Exec("SELECT * FROM MYTABLE").size(), 1u);
}

TEST_F(DatabaseTest, DropTable) {
  Exec("CREATE TABLE t (a INT)");
  Exec("DROP TABLE t");
  EXPECT_FALSE(db_->Execute("SELECT * FROM t").ok());
  EXPECT_FALSE(db_->Execute("DROP TABLE t").ok());
  EXPECT_TRUE(db_->Execute("DROP TABLE IF EXISTS t").ok());
}

TEST_F(DatabaseTest, InsertWithExplicitColumns) {
  Exec("CREATE TABLE t (a INT, b TEXT, c DOUBLE)");
  Exec("INSERT INTO t (c, a) VALUES (1.5, 7)");
  const ResultSet result = Exec("SELECT * FROM t");
  EXPECT_EQ(result.GetInt(0, "a").value(), 7);
  EXPECT_TRUE(result.GetValue(0, "b").value().is_null());
  EXPECT_DOUBLE_EQ(result.GetDouble(0, "c").value(), 1.5);
}

TEST_F(DatabaseTest, InsertArityMismatchFails) {
  Exec("CREATE TABLE t (a INT, b INT)");
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_->Execute("INSERT INTO t (a) VALUES (1, 2)").ok());
}

TEST_F(DatabaseTest, MultiRowInsertIsAtomic) {
  Exec("CREATE TABLE t (a INT PRIMARY KEY)");
  Exec("INSERT INTO t VALUES (1)");
  // Second row conflicts; the whole statement must be rolled back.
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES (2), (1), (3)").ok());
  EXPECT_EQ(Exec("SELECT * FROM t").size(), 1u);
}

TEST_F(DatabaseTest, SelectProjectionAndLimit) {
  Exec("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 10; ++i) {
    Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
         std::to_string(i * i) + ")");
  }
  const ResultSet result = Exec("SELECT b FROM t ORDER BY b DESC LIMIT 3");
  ASSERT_EQ(result.size(), 3u);
  ASSERT_EQ(result.columns.size(), 1u);
  EXPECT_EQ(result.GetInt(0, "b").value(), 81);
  EXPECT_EQ(result.GetInt(2, "b").value(), 49);
}

TEST_F(DatabaseTest, SelectWhereOnTextAndInt) {
  Exec("CREATE TABLE files (name TEXT, size INT)");
  Exec("INSERT INTO files VALUES ('a', 10), ('b', 20), ('c', 30)");
  EXPECT_EQ(Exec("SELECT * FROM files WHERE size >= 20").size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM files WHERE name = 'b'").size(), 1u);
  EXPECT_EQ(Exec("SELECT * FROM files WHERE name != 'b' AND size < 25").size(),
            1u);
}

TEST_F(DatabaseTest, UpdateRows) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)");
  const ResultSet result = Exec("UPDATE t SET b = 9 WHERE a >= 2");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(Exec("SELECT * FROM t WHERE b = 9").size(), 2u);
}

TEST_F(DatabaseTest, UpdateAllWithoutWhere) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Exec("UPDATE t SET a = 0").affected_rows, 2u);
  EXPECT_EQ(Exec("SELECT * FROM t WHERE a = 0").size(), 2u);
}

TEST_F(DatabaseTest, DeleteRows) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Exec("DELETE FROM t WHERE a = 2").affected_rows, 1u);
  EXPECT_EQ(Exec("SELECT * FROM t").size(), 2u);
  EXPECT_EQ(Exec("DELETE FROM t").affected_rows, 2u);
  EXPECT_EQ(Exec("SELECT * FROM t").size(), 0u);
}

TEST_F(DatabaseTest, TransactionCommit) {
  Exec("CREATE TABLE t (a INT)");
  Exec("BEGIN");
  EXPECT_TRUE(db_->in_transaction());
  Exec("INSERT INTO t VALUES (1)");
  Exec("INSERT INTO t VALUES (2)");
  Exec("COMMIT");
  EXPECT_FALSE(db_->in_transaction());
  EXPECT_EQ(Exec("SELECT * FROM t").size(), 2u);
}

TEST_F(DatabaseTest, TransactionRollbackRestoresInserts) {
  Exec("CREATE TABLE t (a INT)");
  Exec("INSERT INTO t VALUES (1)");
  Exec("BEGIN");
  Exec("INSERT INTO t VALUES (2)");
  Exec("ROLLBACK");
  const ResultSet result = Exec("SELECT * FROM t");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.GetInt(0, "a").value(), 1);
}

TEST_F(DatabaseTest, TransactionRollbackRestoresUpdatesAndDeletes) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("INSERT INTO t VALUES (1, 'one'), (2, 'two')");
  Exec("BEGIN");
  Exec("UPDATE t SET b = 'changed' WHERE a = 1");
  Exec("DELETE FROM t WHERE a = 2");
  EXPECT_EQ(Exec("SELECT * FROM t").size(), 1u);
  Exec("ROLLBACK");
  const ResultSet result = Exec("SELECT * FROM t ORDER BY a");
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.GetText(0, "b").value(), "one");
  EXPECT_EQ(result.GetText(1, "b").value(), "two");
}

TEST_F(DatabaseTest, TransactionRollbackRestoresDdl) {
  Exec("CREATE TABLE keep (a INT)");
  Exec("INSERT INTO keep VALUES (42)");
  Exec("BEGIN");
  Exec("CREATE TABLE fresh (b INT)");
  Exec("DROP TABLE keep");
  Exec("ROLLBACK");
  EXPECT_FALSE(db_->HasTable("fresh"));
  ASSERT_TRUE(db_->HasTable("keep"));
  EXPECT_EQ(Exec("SELECT * FROM keep").GetInt(0, "a").value(), 42);
}

TEST_F(DatabaseTest, NestedBeginFails) {
  Exec("BEGIN");
  EXPECT_FALSE(db_->Execute("BEGIN").ok());
  Exec("ROLLBACK");
}

TEST_F(DatabaseTest, CommitOutsideTransactionFails) {
  EXPECT_FALSE(db_->Execute("COMMIT").ok());
  EXPECT_FALSE(db_->Execute("ROLLBACK").ok());
}

TEST_F(DatabaseTest, FailedAutoCommitStatementLeavesNoTrace) {
  Exec("CREATE TABLE t (a INT PRIMARY KEY)");
  Exec("INSERT INTO t VALUES (1)");
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_->in_transaction());
  EXPECT_EQ(Exec("SELECT * FROM t").size(), 1u);
}

TEST_F(DatabaseTest, SelectIsNull) {
  Exec("CREATE TABLE t (a INT, b TEXT)");
  Exec("INSERT INTO t (a) VALUES (1)");
  Exec("INSERT INTO t VALUES (2, 'x')");
  EXPECT_EQ(Exec("SELECT * FROM t WHERE b IS NULL").size(), 1u);
  EXPECT_EQ(Exec("SELECT * FROM t WHERE b IS NOT NULL").size(), 1u);
}

TEST_F(DatabaseTest, ResultSetToStringContainsHeaderAndValues) {
  Exec("CREATE TABLE t (name TEXT, size INT)");
  Exec("INSERT INTO t VALUES ('file1', 100)");
  const std::string rendered = Exec("SELECT * FROM t").ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("file1"), std::string::npos);
  EXPECT_NE(rendered.find("100"), std::string::npos);
}

TEST_F(DatabaseTest, TableNamesIntrospection) {
  Exec("CREATE TABLE b_table (a INT)");
  Exec("CREATE TABLE a_table (a INT)");
  const std::vector<std::string> names = db_->TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a_table");  // sorted by key
  EXPECT_EQ(names[1], "b_table");
}

TEST_F(DatabaseTest, SelectWithInList) {
  Exec("CREATE TABLE t (a INT, name TEXT)");
  Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (4, 'w')");
  EXPECT_EQ(Exec("SELECT * FROM t WHERE a IN (1, 3)").size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM t WHERE a NOT IN (1, 3)").size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM t WHERE name IN ('y')").size(), 1u);
  EXPECT_EQ(
      Exec("SELECT * FROM t WHERE a IN (1, 2) AND name IN ('y', 'z')").size(),
      1u);
  EXPECT_FALSE(db_->Execute("SELECT * FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(db_->Execute("SELECT * FROM t WHERE a IN (1,").ok());
}

TEST_F(DatabaseTest, SelectWithLike) {
  Exec("CREATE TABLE files (name TEXT)");
  Exec("INSERT INTO files VALUES ('/home/a/x.dat'), ('/home/b/y.dat'), "
       "('/tmp/z.dat')");
  EXPECT_EQ(Exec("SELECT * FROM files WHERE name LIKE '/home/%'").size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM files WHERE name NOT LIKE '/home/%'").size(),
            1u);
  EXPECT_EQ(Exec("SELECT * FROM files WHERE name LIKE '%_.dat'").size(), 3u);
  EXPECT_FALSE(db_->Execute("SELECT * FROM files WHERE name LIKE 7").ok());
}

TEST_F(DatabaseTest, CountStar) {
  Exec("CREATE TABLE t (a INT)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").GetInt(0, "count").value(), 0);
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").GetInt(0, "count").value(), 3);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE a >= 2")
                .GetInt(0, "count")
                .value(),
            2);
}

TEST_F(DatabaseTest, CountStarMalformedRejected) {
  Exec("CREATE TABLE t (a INT)");
  EXPECT_FALSE(db_->Execute("SELECT COUNT(a) FROM t").ok());
  EXPECT_FALSE(db_->Execute("SELECT COUNT(* FROM t").ok());
}

TEST_F(DatabaseTest, DumpSqlReproducesState) {
  Exec("CREATE TABLE servers (name TEXT PRIMARY KEY, perf INT, load DOUBLE)");
  Exec("INSERT INTO servers VALUES ('a''quoted', 1, 2.5)");
  Exec("INSERT INTO servers (name, perf) VALUES ('partial', 3)");
  Exec("CREATE TABLE empty_table (x INT)");

  auto restored = Database::OpenInMemory();
  for (const std::string& sql : db_->DumpSql()) {
    ASSERT_TRUE(restored->Execute(sql).ok()) << sql;
  }
  const ResultSet original =
      Exec("SELECT * FROM servers ORDER BY name");
  const ResultSet copy =
      restored->Execute("SELECT * FROM servers ORDER BY name").value();
  ASSERT_EQ(copy.size(), original.size());
  for (std::size_t row = 0; row < original.size(); ++row) {
    EXPECT_EQ(copy.GetText(row, "name").value(),
              original.GetText(row, "name").value());
    EXPECT_EQ(copy.GetInt(row, "perf").value(),
              original.GetInt(row, "perf").value());
    EXPECT_EQ(copy.GetValue(row, "load").value().is_null(),
              original.GetValue(row, "load").value().is_null());
  }
  EXPECT_TRUE(restored->HasTable("empty_table"));
  // Primary key constraint restored too.
  EXPECT_FALSE(
      restored->Execute("INSERT INTO servers VALUES ('partial', 9, 0.0)")
          .ok());
}

TEST_F(DatabaseTest, DumpSqlPreservesDoubles) {
  Exec("CREATE TABLE t (v DOUBLE)");
  Exec("INSERT INTO t VALUES (0.1)");
  Exec("INSERT INTO t VALUES (3.0)");
  auto restored = Database::OpenInMemory();
  for (const std::string& sql : db_->DumpSql()) {
    ASSERT_TRUE(restored->Execute(sql).ok()) << sql;
  }
  const ResultSet copy = restored->Execute("SELECT * FROM t").value();
  EXPECT_DOUBLE_EQ(copy.GetDouble(0, "v").value(), 0.1);
  EXPECT_DOUBLE_EQ(copy.GetDouble(1, "v").value(), 3.0);
  EXPECT_EQ(copy.GetValue(1, "v").value().type(), ValueType::kDouble);
}

TEST_F(DatabaseTest, ConcurrentAutoCommitStatementsAreSerialized) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, who INT)");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        if (!db_->Execute("INSERT INTO t VALUES (" + std::to_string(id) +
                          ", " + std::to_string(t) + ")")
                 .ok()) {
          failures.fetch_add(1);
        }
        // Reads interleave freely with the writers.
        if (!db_->Execute("SELECT COUNT(*) FROM t WHERE who = " +
                          std::to_string(t))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").GetInt(0, "count").value(),
            kThreads * kPerThread);
}

TEST_F(DatabaseTest, PaperMetadataTablesWorkEndToEnd) {
  // Exercise the exact table shapes from Fig 10 of the paper.
  Exec("CREATE TABLE DPFS_SERVER (server_name TEXT PRIMARY KEY, "
       "capacity INT, performance INT)");
  Exec("INSERT INTO DPFS_SERVER VALUES ('ccn40.mcs.anl.gov', 500000000, 1)");
  Exec("INSERT INTO DPFS_SERVER VALUES ('aruba.ece.nwu.edu', 300000000, 3)");
  Exec("CREATE TABLE DPFS_FILE_DISTRIBUTION (server TEXT, filename TEXT, "
       "bricklist TEXT)");
  Exec("INSERT INTO DPFS_FILE_DISTRIBUTION VALUES ('ccn40.mcs.anl.gov', "
       "'/home/xhshen/dpfs.test', '0,2,6,8,12,14,18,20,24,26,30')");
  Exec("CREATE TABLE DPFS_FILE_ATTR (filename TEXT PRIMARY KEY, owner TEXT, "
       "permission INT, size INT, filelevel TEXT, dims INT, dimsize TEXT)");
  Exec("INSERT INTO DPFS_FILE_ATTR VALUES ('/home/xhshen/dpfs.test', "
       "'xhshen', 744, 2097152, 'multidims', 2, '256,256')");

  const ResultSet join_probe = Exec(
      "SELECT bricklist FROM DPFS_FILE_DISTRIBUTION WHERE filename = "
      "'/home/xhshen/dpfs.test' AND server = 'ccn40.mcs.anl.gov'");
  ASSERT_EQ(join_probe.size(), 1u);
  EXPECT_EQ(join_probe.GetText(0, "bricklist").value(),
            "0,2,6,8,12,14,18,20,24,26,30");

  const ResultSet fastest =
      Exec("SELECT server_name FROM DPFS_SERVER WHERE performance = 1");
  ASSERT_EQ(fastest.size(), 1u);
  EXPECT_EQ(fastest.GetText(0, "server_name").value(), "ccn40.mcs.anl.gov");
}

TEST(DatabaseLockTest, TimedOutOpenNamesTheHolderPid) {
  // flock is per open-file-description, so a second Open in the same
  // process (fresh fd on the same lock file) contends exactly like another
  // process would. The timeout diagnostic must name the holder from the
  // lock file's "pid=<pid> since=<t>" record — a bare "locked" message made
  // the ASan-widened deployment startup race needlessly hard to debug.
  const TempDir temp = TempDir::Create("metadb-lock").value();
  const std::unique_ptr<Database> holder =
      Database::Open(temp.path()).value();

  const Result<std::unique_ptr<Database>> contender =
      Database::Open(temp.path(), std::chrono::milliseconds(50));
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable);
  const std::string message = contender.status().message();
  EXPECT_NE(message.find("locked by another process"), std::string::npos)
      << message;
  EXPECT_NE(message.find("pid=" + std::to_string(::getpid())),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("since="), std::string::npos) << message;
}

TEST(DatabaseLockTest, LockIsReleasedOnDestruction) {
  const TempDir temp = TempDir::Create("metadb-lock-release").value();
  { const auto first = Database::Open(temp.path()).value(); }
  // No waiting needed: the destructor unlocked, so a zero-ish wait works.
  EXPECT_TRUE(Database::Open(temp.path(), std::chrono::milliseconds(50)).ok());
}

}  // namespace
}  // namespace dpfs::metadb
