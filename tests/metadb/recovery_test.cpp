// Durability tests: WAL replay, snapshot + checkpoint, torn-tail recovery.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "common/temp_dir.h"
#include "metadb/database.h"

namespace dpfs::metadb {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : dir_(TempDir::Create("dpfs-recovery").value()) {}

  std::unique_ptr<Database> Open() {
    Result<std::unique_ptr<Database>> db = Database::Open(dir_.path());
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  static void Exec(Database& db, std::string_view sql) {
    const Result<ResultSet> result = db.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " for: " << sql;
  }

  TempDir dir_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesReopen) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT, b TEXT)");
    Exec(*db, "INSERT INTO t VALUES (1, 'one'), (2, 'two')");
  }
  auto db = Open();
  const ResultSet result = db->Execute("SELECT * FROM t ORDER BY a").value();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.GetText(1, "b").value(), "two");
}

TEST_F(RecoveryTest, UpdatesAndDeletesSurviveReopen) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT, b TEXT)");
    Exec(*db, "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')");
    Exec(*db, "UPDATE t SET b = 'ONE' WHERE a = 1");
    Exec(*db, "DELETE FROM t WHERE a = 2");
  }
  auto db = Open();
  const ResultSet result = db->Execute("SELECT * FROM t ORDER BY a").value();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.GetText(0, "b").value(), "ONE");
  EXPECT_EQ(result.GetInt(1, "a").value(), 3);
}

TEST_F(RecoveryTest, ExplicitTransactionSurvivesReopen) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "BEGIN");
    Exec(*db, "INSERT INTO t VALUES (1)");
    Exec(*db, "INSERT INTO t VALUES (2)");
    Exec(*db, "COMMIT");
  }
  auto db = Open();
  EXPECT_EQ(db->Execute("SELECT * FROM t").value().size(), 2u);
}

TEST_F(RecoveryTest, RolledBackTransactionLeavesNoTrace) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "BEGIN");
    Exec(*db, "INSERT INTO t VALUES (1)");
    Exec(*db, "ROLLBACK");
  }
  auto db = Open();
  EXPECT_EQ(db->Execute("SELECT * FROM t").value().size(), 0u);
}

TEST_F(RecoveryTest, UncommittedTransactionAtCrashIsDiscarded) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "BEGIN");
    Exec(*db, "INSERT INTO t VALUES (99)");
    // "Crash": destroy without COMMIT. Nothing of this txn hit the WAL.
  }
  auto db = Open();
  EXPECT_TRUE(db->HasTable("t"));
  EXPECT_EQ(db->Execute("SELECT * FROM t").value().size(), 0u);
}

TEST_F(RecoveryTest, CheckpointTruncatesWalAndPreservesData) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    for (int i = 0; i < 50; ++i) {
      Exec(*db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    EXPECT_GT(db->wal_size_bytes(), 0u);
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->wal_size_bytes(), 0u);
    // Post-checkpoint mutations land in the fresh WAL.
    Exec(*db, "INSERT INTO t VALUES (50)");
  }
  auto db = Open();
  EXPECT_EQ(db->Execute("SELECT * FROM t").value().size(), 51u);
}

TEST_F(RecoveryTest, TornWalTailIsDiscarded) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "INSERT INTO t VALUES (1)");
  }
  // Append garbage to simulate a torn write at crash.
  {
    std::ofstream wal(dir_.path() / "wal.log",
                      std::ios::binary | std::ios::app);
    const char garbage[] = "\x20\x00\x00\x00 torn";
    wal.write(garbage, sizeof(garbage));
  }
  auto db = Open();
  const ResultSet result = db->Execute("SELECT * FROM t").value();
  ASSERT_EQ(result.size(), 1u);
  // And the database keeps working after recovery.
  Exec(*db, "INSERT INTO t VALUES (2)");
  EXPECT_EQ(db->Execute("SELECT * FROM t").value().size(), 2u);
}

TEST_F(RecoveryTest, CorruptedWalRecordStopsReplayAtBoundary) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "INSERT INTO t VALUES (1)");
    Exec(*db, "INSERT INTO t VALUES (2)");
  }
  // Flip one byte near the end of the WAL (inside the last transaction).
  {
    std::fstream wal(dir_.path() / "wal.log",
                     std::ios::binary | std::ios::in | std::ios::out);
    wal.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(wal.tellg());
    ASSERT_GT(size, 4);
    wal.seekp(size - 3);
    wal.put('\xFF');
  }
  auto db = Open();
  // The last transaction is lost, the earlier ones survive.
  const ResultSet result = db->Execute("SELECT * FROM t").value();
  EXPECT_EQ(result.size(), 1u);
}

TEST_F(RecoveryTest, CheckpointThenMoreWritesThenReopen) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT PRIMARY KEY, b TEXT)");
    Exec(*db, "INSERT INTO t VALUES (1, 'snap')");
    ASSERT_TRUE(db->Checkpoint().ok());
    Exec(*db, "INSERT INTO t VALUES (2, 'wal')");
    Exec(*db, "UPDATE t SET b = 'snap2' WHERE a = 1");
  }
  auto db = Open();
  const ResultSet result = db->Execute("SELECT * FROM t ORDER BY a").value();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.GetText(0, "b").value(), "snap2");
  EXPECT_EQ(result.GetText(1, "b").value(), "wal");
  // Primary key survives the snapshot: duplicate insert still fails.
  EXPECT_FALSE(db->Execute("INSERT INTO t VALUES (1, 'dup')").ok());
}

TEST_F(RecoveryTest, CheckpointInsideTransactionRejected) {
  auto db = Open();
  Exec(*db, "CREATE TABLE t (a INT)");
  Exec(*db, "BEGIN");
  EXPECT_FALSE(db->Checkpoint().ok());
  Exec(*db, "ROLLBACK");
  EXPECT_TRUE(db->Checkpoint().ok());
}

TEST_F(RecoveryTest, SyncCommitsStillRecover) {
  {
    auto db = Open();
    db->SetSyncCommits(true);
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "INSERT INTO t VALUES (1), (2)");
    Exec(*db, "BEGIN");
    Exec(*db, "INSERT INTO t VALUES (3)");
    Exec(*db, "COMMIT");
  }
  auto db = Open();
  EXPECT_EQ(db->Execute("SELECT COUNT(*) FROM t")
                .value()
                .GetInt(0, "count")
                .value(),
            3);
}

TEST_F(RecoveryTest, AutoCheckpointBoundsWalGrowth) {
  {
    auto db = Open();
    db->SetAutoCheckpoint(2048);
    Exec(*db, "CREATE TABLE t (a INT)");
    for (int i = 0; i < 200; ++i) {
      Exec(*db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
    // The WAL was truncated along the way instead of growing unboundedly.
    EXPECT_LT(db->wal_size_bytes(), 4096u);
  }
  auto db = Open();
  EXPECT_EQ(db->Execute("SELECT COUNT(*) FROM t")
                .value()
                .GetInt(0, "count")
                .value(),
            200);
}

TEST_F(RecoveryTest, AutoCheckpointDefersInsideTransactions) {
  auto db = Open();
  db->SetAutoCheckpoint(64);
  Exec(*db, "CREATE TABLE t (a INT)");
  Exec(*db, "BEGIN");
  for (int i = 0; i < 50; ++i) {
    Exec(*db, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  // Statements inside the txn never trigger a checkpoint...
  Exec(*db, "COMMIT");
  // ...but the COMMIT boundary does.
  EXPECT_LT(db->wal_size_bytes(), 64u);
  EXPECT_EQ(db->Execute("SELECT COUNT(*) FROM t")
                .value()
                .GetInt(0, "count")
                .value(),
            50);
}

TEST_F(RecoveryTest, SecondOpenBlocksUntilFirstCloses) {
  auto first = Open();
  Exec(*first, "CREATE TABLE t (a INT)");
  // While the first handle lives, a second opener times out...
  const Result<std::unique_ptr<Database>> contender =
      Database::Open(dir_.path(), std::chrono::milliseconds(100));
  ASSERT_FALSE(contender.ok());
  EXPECT_EQ(contender.status().code(), StatusCode::kUnavailable);
  // ...and succeeds once it is released.
  first.reset();
  auto second = Database::Open(dir_.path());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value()->HasTable("t"));
}

TEST_F(RecoveryTest, LockWaiterProceedsWhenHolderReleases) {
  auto holder = Open();
  std::thread releaser([&holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    holder.reset();
  });
  // Generous window: the waiter should get the lock shortly after release.
  const Result<std::unique_ptr<Database>> waiter =
      Database::Open(dir_.path(), std::chrono::milliseconds(3000));
  releaser.join();
  EXPECT_TRUE(waiter.ok()) << waiter.status().ToString();
}

TEST_F(RecoveryTest, CorruptSnapshotFailsOpenCleanly) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "INSERT INTO t VALUES (1)");
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Flip a byte inside the snapshot body.
  {
    std::fstream snap(dir_.path() / "snapshot.db",
                      std::ios::binary | std::ios::in | std::ios::out);
    snap.seekp(20);
    snap.put('\xEE');
  }
  const Result<std::unique_ptr<Database>> reopened =
      Database::Open(dir_.path());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(RecoveryTest, DroppedTableStaysDroppedAfterReopen) {
  {
    auto db = Open();
    Exec(*db, "CREATE TABLE t (a INT)");
    Exec(*db, "DROP TABLE t");
  }
  auto db = Open();
  EXPECT_FALSE(db->HasTable("t"));
}

}  // namespace
}  // namespace dpfs::metadb
