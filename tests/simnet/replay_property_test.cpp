// Sanity properties of the discrete-event replay engine: physical lower
// bounds, monotonicity in offered load, and insensitivity to request
// combination for total bytes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "layout/plan.h"
#include "simnet/replay.h"

namespace dpfs::simnet {
namespace {

using layout::BrickDistribution;
using layout::BrickMap;
using layout::IoDirection;
using layout::IoPlan;
using layout::PlanByteAccess;
using layout::PlanOptions;

IoPlan RandomPlan(std::uint64_t seed, std::uint32_t num_clients,
                  std::uint32_t num_servers, bool combine) {
  SplitMix64 rng(seed);
  const std::uint64_t brick = (8 + rng.NextBelow(120)) * 1024;
  const std::uint64_t per_client = (1 + rng.NextBelow(8)) << 20;
  const BrickMap map =
      BrickMap::Linear(per_client * num_clients, brick).value();
  const BrickDistribution dist =
      BrickDistribution::RoundRobin(map.num_bricks(), num_servers).value();
  PlanOptions options;
  options.combine = combine;
  options.direction =
      rng.NextBelow(2) == 0 ? IoDirection::kRead : IoDirection::kWrite;
  IoPlan plan;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    plan.clients.push_back(PlanByteAccess(map, dist, c, c * per_client,
                                          per_client, options)
                               .value());
  }
  return plan;
}

class ReplayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplayPropertyTest, MakespanRespectsPhysicalLowerBounds) {
  const IoPlan plan = RandomPlan(GetParam() * 37 + 1, 4, 4, true);
  const std::vector<StorageClassModel> servers(4, Class1());
  const ReplayResult result = Replay(plan, servers).value();

  // No server can move its assigned bytes faster than its link.
  std::vector<double> bytes_per_server(4, 0);
  for (const auto& client : plan.clients) {
    for (const auto& request : client.requests) {
      bytes_per_server[request.server] +=
          static_cast<double>(request.transfer_bytes());
    }
  }
  for (std::size_t s = 0; s < 4; ++s) {
    const double link_bound =
        bytes_per_server[s] / servers[s].link_bytes_per_s;
    EXPECT_GE(result.makespan_s * (1 + 1e-9), link_bound) << "server " << s;
    const double disk_bound =
        bytes_per_server[s] / servers[s].disk_bytes_per_s;
    EXPECT_GE(result.makespan_s * (1 + 1e-9), disk_bound) << "server " << s;
  }
}

TEST_P(ReplayPropertyTest, AddingAClientNeverShrinksMakespan) {
  const int seed = GetParam() * 53 + 7;
  const IoPlan small = RandomPlan(seed, 3, 4, true);
  IoPlan big = RandomPlan(seed, 3, 4, true);
  // Clone client 0 as an extra client (same requests, more load).
  big.clients.push_back(big.clients.front());
  big.clients.back().client = 3;
  const std::vector<StorageClassModel> servers(4, Class3());
  const double t_small = Replay(small, servers).value().makespan_s;
  const double t_big = Replay(big, servers).value().makespan_s;
  EXPECT_GE(t_big, t_small);
}

TEST_P(ReplayPropertyTest, CombinationPreservesBytesAndNeverHurtsMuch) {
  const int seed = GetParam() * 71 + 3;
  const IoPlan combined = RandomPlan(seed, 4, 4, true);
  const IoPlan general = RandomPlan(seed, 4, 4, false);
  const std::vector<StorageClassModel> servers(4, Class1());
  const ReplayResult result_c = Replay(combined, servers).value();
  const ReplayResult result_g = Replay(general, servers).value();
  EXPECT_EQ(result_c.useful_bytes, result_g.useful_bytes);
  EXPECT_EQ(result_c.transfer_bytes, result_g.transfer_bytes);
  // Combination eliminates per-request overheads; with identical bytes it
  // must not be slower (allow a sliver of scheduling noise).
  EXPECT_LE(result_c.makespan_s, result_g.makespan_s * 1.01);
}

TEST_P(ReplayPropertyTest, SlowingEveryLinkScalesLinkBoundWorkloads) {
  const int seed = GetParam() * 89 + 5;
  const IoPlan plan = RandomPlan(seed, 4, 2, true);
  std::vector<StorageClassModel> fast(2, Class1());
  std::vector<StorageClassModel> slow(2, Class1());
  for (StorageClassModel& model : slow) model.link_bytes_per_s /= 4;
  const double t_fast = Replay(plan, fast).value().makespan_s;
  const double t_slow = Replay(plan, slow).value().makespan_s;
  EXPECT_GT(t_slow, t_fast);
}

TEST_P(ReplayPropertyTest, ParallelDispatchNeverSlowerThanSequential) {
  const int seed = GetParam() * 101 + 9;
  IoPlan sequential = RandomPlan(seed, 4, 4, true);
  IoPlan parallel = sequential;
  for (auto& client : parallel.clients) client.parallel_dispatch = true;
  const std::vector<StorageClassModel> servers(4, Class1());
  const double t_seq = Replay(sequential, servers).value().makespan_s;
  const double t_par = Replay(parallel, servers).value().makespan_s;
  EXPECT_LE(t_par, t_seq * 1.0001);
}

TEST_P(ReplayPropertyTest, SharedUplinkBoundsAggregateBandwidth) {
  const int seed = GetParam() * 113 + 11;
  const IoPlan plan = RandomPlan(seed, 4, 4, true);
  const std::vector<StorageClassModel> servers(4, Class1());
  ReplayOptions capped;
  capped.client_uplink_bytes_per_s = 2.0 * 1024 * 1024;
  const ReplayResult unbounded = Replay(plan, servers).value();
  const ReplayResult bounded = Replay(plan, servers, capped).value();
  // The uplink serializes all transfer bytes.
  const double uplink_floor = static_cast<double>(plan.total_transfer_bytes()) /
                              capped.client_uplink_bytes_per_s;
  EXPECT_GE(bounded.makespan_s * (1 + 1e-9), uplink_floor);
  EXPECT_GE(bounded.makespan_s, unbounded.makespan_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace dpfs::simnet
