#include "simnet/replay.h"

#include <gtest/gtest.h>

#include "layout/plan.h"

namespace dpfs::simnet {
namespace {

using layout::BrickDistribution;
using layout::BrickMap;
using layout::ClientPlan;
using layout::IoDirection;
using layout::IoPlan;
using layout::PlanByteAccess;
using layout::PlanOptions;

/// num_clients clients each reading a disjoint range of a linear file
/// striped over num_servers servers.
IoPlan MakePlan(std::uint32_t num_clients, std::uint32_t num_servers,
                std::uint64_t bytes_per_client, std::uint64_t brick_bytes,
                bool combine, IoDirection direction = IoDirection::kRead) {
  const std::uint64_t total = bytes_per_client * num_clients;
  const BrickMap map = BrickMap::Linear(total, brick_bytes).value();
  const BrickDistribution dist =
      BrickDistribution::RoundRobin(map.num_bricks(), num_servers).value();
  PlanOptions options;
  options.combine = combine;
  options.direction = direction;
  IoPlan plan;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    plan.clients.push_back(
        PlanByteAccess(map, dist, c, c * bytes_per_client, bytes_per_client,
                       options)
            .value());
  }
  return plan;
}

TEST(ReplayTest, EmptyPlanFinishesAtZero) {
  const IoPlan plan;
  const ReplayResult result = Replay(plan, {Class1()}).value();
  EXPECT_EQ(result.makespan_s, 0.0);
  EXPECT_EQ(result.total_requests, 0u);
}

TEST(ReplayTest, SingleRequestTimeMatchesAnalyticModel) {
  const IoPlan plan = MakePlan(1, 1, 64 * 1024, 64 * 1024, false);
  ASSERT_EQ(plan.total_requests(), 1u);
  const StorageClassModel model = Class1();
  ReplayOptions options;
  const ReplayResult result = Replay(plan, {model}, options).value();
  const double bytes = 64.0 * 1024;
  const double expected = options.client_overhead_s + model.link_latency_s +
                          model.disk_overhead_s + bytes / model.disk_bytes_per_s +
                          bytes / model.link_bytes_per_s +
                          model.link_latency_s;
  EXPECT_NEAR(result.makespan_s, expected, 1e-9);
}

TEST(ReplayTest, SequentialRequestsAccumulate) {
  const IoPlan one = MakePlan(1, 1, 64 * 1024, 64 * 1024, false);
  const IoPlan four = MakePlan(1, 1, 4 * 64 * 1024, 64 * 1024, false);
  const double t1 = Replay(one, {Class1()}).value().makespan_s;
  const double t4 = Replay(four, {Class1()}).value().makespan_s;
  EXPECT_NEAR(t4, 4 * t1, 1e-6);
}

TEST(ReplayTest, ParallelServersBeatOneServer) {
  // Same total data, 4 clients: striping over 4 servers must be much faster
  // than striping over 1.
  const IoPlan wide = MakePlan(4, 4, 1 << 20, 64 * 1024, true);
  const IoPlan narrow = MakePlan(4, 1, 1 << 20, 64 * 1024, true);
  const double t_wide = Replay(wide, {Class1(), Class1(), Class1(), Class1()})
                            .value()
                            .makespan_s;
  const double t_narrow = Replay(narrow, {Class1()}).value().makespan_s;
  EXPECT_LT(t_wide * 2.5, t_narrow);
}

TEST(ReplayTest, CombinationReducesMakespan) {
  const IoPlan combined = MakePlan(4, 4, 1 << 20, 16 * 1024, true);
  const IoPlan general = MakePlan(4, 4, 1 << 20, 16 * 1024, false);
  const std::vector<StorageClassModel> servers(4, Class1());
  const double t_combined = Replay(combined, servers).value().makespan_s;
  const double t_general = Replay(general, servers).value().makespan_s;
  EXPECT_LT(t_combined, t_general);
}

TEST(ReplayTest, SlowerClassYieldsLowerBandwidth) {
  const IoPlan plan = MakePlan(4, 4, 1 << 20, 64 * 1024, true);
  const double bw1 =
      Replay(plan, std::vector<StorageClassModel>(4, Class1()))
          .value()
          .aggregate_bandwidth_MBps();
  const double bw2 =
      Replay(plan, std::vector<StorageClassModel>(4, Class2()))
          .value()
          .aggregate_bandwidth_MBps();
  const double bw3 =
      Replay(plan, std::vector<StorageClassModel>(4, Class3()))
          .value()
          .aggregate_bandwidth_MBps();
  EXPECT_GT(bw1, bw3);
  EXPECT_GT(bw3, bw2);
}

TEST(ReplayTest, WritesAndReadsBothComplete) {
  const IoPlan writes =
      MakePlan(2, 2, 1 << 20, 64 * 1024, true, IoDirection::kWrite);
  const IoPlan reads =
      MakePlan(2, 2, 1 << 20, 64 * 1024, true, IoDirection::kRead);
  const std::vector<StorageClassModel> servers(2, Class1());
  const ReplayResult write_result = Replay(writes, servers).value();
  const ReplayResult read_result = Replay(reads, servers).value();
  EXPECT_GT(write_result.makespan_s, 0.0);
  EXPECT_GT(read_result.makespan_s, 0.0);
  EXPECT_EQ(write_result.useful_bytes, read_result.useful_bytes);
}

TEST(ReplayTest, EfficiencyReflectsWholeBrickReads) {
  // Reading 1 byte from each 64KB brick: efficiency = 1/65536.
  const BrickMap map = BrickMap::Linear(10 * 64 * 1024, 64 * 1024).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(10, 2).value();
  PlanOptions options;
  options.direction = IoDirection::kRead;
  IoPlan plan;
  ClientPlan client;
  for (std::uint64_t b = 0; b < 10; ++b) {
    // 1 useful byte at the start of each brick.
    const ClientPlan partial =
        PlanByteAccess(map, dist, 0, b * 64 * 1024, 1, options).value();
    for (const auto& request : partial.requests) {
      client.requests.push_back(request);
    }
  }
  client.direction = IoDirection::kRead;
  plan.clients.push_back(std::move(client));
  const ReplayResult result =
      Replay(plan, {Class1(), Class1()}).value();
  EXPECT_NEAR(result.efficiency(), 1.0 / 65536.0, 1e-9);
}

TEST(ReplayTest, UnknownServerRejected) {
  const IoPlan plan = MakePlan(1, 4, 1 << 20, 64 * 1024, true);
  EXPECT_FALSE(Replay(plan, {Class1()}).ok());  // only 1 server modeled
}

TEST(ReplayTest, PerClientFinishTimesReported) {
  const IoPlan plan = MakePlan(3, 3, 1 << 20, 64 * 1024, true);
  const ReplayResult result =
      Replay(plan, std::vector<StorageClassModel>(3, Class1())).value();
  ASSERT_EQ(result.client_finish_s.size(), 3u);
  for (const double finish : result.client_finish_s) {
    EXPECT_GT(finish, 0.0);
    EXPECT_LE(finish, result.makespan_s);
  }
}

TEST(ReplayTest, DeterministicAcrossRuns) {
  const IoPlan plan = MakePlan(8, 4, 1 << 20, 16 * 1024, false);
  const std::vector<StorageClassModel> servers(4, Class3());
  const double t1 = Replay(plan, servers).value().makespan_s;
  const double t2 = Replay(plan, servers).value().makespan_s;
  EXPECT_EQ(t1, t2);
}

TEST(ReplayTest, ManySmallRequestsSlowerThanFewLarge) {
  // Same bytes, 16x more requests → strictly slower (per-request overheads).
  const IoPlan small_bricks = MakePlan(4, 4, 1 << 20, 4 * 1024, false);
  const IoPlan large_bricks = MakePlan(4, 4, 1 << 20, 64 * 1024, false);
  const std::vector<StorageClassModel> servers(4, Class1());
  EXPECT_GT(Replay(small_bricks, servers).value().makespan_s,
            Replay(large_bricks, servers).value().makespan_s);
}

TEST(ReplayTest, RotatedScheduleBeatsStampede) {
  // With combination, rotated start servers avoid all clients queueing on
  // server 0 at t=0 (§4.2's scheduling claim).
  const std::uint64_t bytes_per_client = 1 << 20;
  const BrickMap map =
      BrickMap::Linear(4 * bytes_per_client, 64 * 1024).value();
  const BrickDistribution dist =
      BrickDistribution::RoundRobin(map.num_bricks(), 4).value();
  const auto build = [&](bool rotate) {
    PlanOptions options;
    options.combine = true;
    options.rotate_start = rotate;
    IoPlan plan;
    for (std::uint32_t c = 0; c < 4; ++c) {
      plan.clients.push_back(PlanByteAccess(map, dist, c,
                                            c * bytes_per_client,
                                            bytes_per_client, options)
                                 .value());
    }
    return plan;
  };
  const std::vector<StorageClassModel> servers(4, Class1());
  const double rotated = Replay(build(true), servers).value().makespan_s;
  const double stampede = Replay(build(false), servers).value().makespan_s;
  EXPECT_LE(rotated, stampede);
}

}  // namespace
}  // namespace dpfs::simnet
