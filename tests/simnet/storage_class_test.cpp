#include "simnet/storage_class.h"

#include <gtest/gtest.h>

namespace dpfs::simnet {
namespace {

TEST(StorageClassTest, PresetsByName) {
  EXPECT_EQ(StorageClassByName("class1").value().name, "class1");
  EXPECT_EQ(StorageClassByName("CLASS2").value().name, "class2");
  EXPECT_EQ(StorageClassByName("class3").value().name, "class3");
  EXPECT_EQ(StorageClassByName("wan").value().name, "remote-wan");
  EXPECT_FALSE(StorageClassByName("class9").ok());
}

TEST(StorageClassTest, SoloBrickTimePositiveAndMonotonicInSize) {
  for (const auto& model : {Class1(), Class2(), Class3(), RemoteWan()}) {
    const double t64k = model.SoloBrickTime(64 * 1024);
    const double t256k = model.SoloBrickTime(256 * 1024);
    EXPECT_GT(t64k, 0.0) << model.name;
    EXPECT_GT(t256k, t64k) << model.name;
  }
}

TEST(StorageClassTest, Class1IsAboutThreeTimesFasterThanClass3) {
  // §8.2: "Accessing a brick from class 1 is about 3 times faster than from
  // class 3" — the ratio the greedy algorithm keys on.
  const double ratio = Class3().SoloBrickTime(64 * 1024) /
                       Class1().SoloBrickTime(64 * 1024);
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(StorageClassTest, Class2IsSlowestLanClass) {
  // 10 Mbit shared Ethernet is the slowest of the three classes.
  const std::uint64_t brick = 64 * 1024;
  EXPECT_GT(Class2().SoloBrickTime(brick), Class1().SoloBrickTime(brick));
  EXPECT_GT(Class2().SoloBrickTime(brick), Class3().SoloBrickTime(brick));
}

TEST(StorageClassTest, WanIsSlowestOverall) {
  const std::uint64_t brick = 64 * 1024;
  for (const auto& model : {Class1(), Class2(), Class3()}) {
    EXPECT_GT(RemoteWan().SoloBrickTime(brick), model.SoloBrickTime(brick));
  }
}

TEST(NormalizedPerformanceTest, FastestGetsOne) {
  const auto perf = NormalizedPerformance({Class1(), Class3()}, 64 * 1024);
  ASSERT_EQ(perf.size(), 2u);
  EXPECT_EQ(perf[0], 1u);
  EXPECT_EQ(perf[1], 3u);
}

TEST(NormalizedPerformanceTest, HomogeneousAllOnes) {
  const auto perf =
      NormalizedPerformance({Class1(), Class1(), Class1()}, 64 * 1024);
  for (const std::uint32_t p : perf) EXPECT_EQ(p, 1u);
}

TEST(NormalizedPerformanceTest, MixedClassesOrdered) {
  const auto perf = NormalizedPerformance(
      {Class1(), Class2(), Class3(), RemoteWan()}, 64 * 1024);
  EXPECT_EQ(perf[0], 1u);
  EXPECT_GT(perf[1], perf[2]);   // class2 slower than class3
  EXPECT_GT(perf[3], perf[1]);   // WAN slowest
}

TEST(NormalizedPerformanceTest, EmptyInput) {
  EXPECT_TRUE(NormalizedPerformance({}, 1).empty());
}

}  // namespace
}  // namespace dpfs::simnet
