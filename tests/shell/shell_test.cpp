#include "shell/shell.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/temp_dir.h"
#include "core/cluster.h"

namespace dpfs::shell {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  ShellTest() {
    core::ClusterOptions options;
    options.num_servers = 2;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    shell_ = std::make_unique<Shell>(cluster_->fs());
  }

  /// Runs a command, expecting success; returns its output.
  std::string Run(const std::string& line) {
    std::ostringstream out;
    const Status status = shell_->Execute(line, out);
    EXPECT_TRUE(status.ok()) << line << ": " << status.ToString();
    return out.str();
  }

  Status RunStatus(const std::string& line) {
    std::ostringstream out;
    return shell_->Execute(line, out);
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::unique_ptr<Shell> shell_;
};

TEST_F(ShellTest, PwdStartsAtRoot) { EXPECT_EQ(Run("pwd"), "/\n"); }

TEST_F(ShellTest, EmptyLineIsOk) { EXPECT_EQ(Run(""), ""); }

TEST_F(ShellTest, UnknownCommandFails) {
  EXPECT_FALSE(RunStatus("frobnicate").ok());
}

TEST_F(ShellTest, HelpListsCommands) {
  const std::string out = Run("help");
  EXPECT_NE(out.find("mkdir"), std::string::npos);
  EXPECT_NE(out.find("import"), std::string::npos);
}

TEST_F(ShellTest, MkdirCdPwd) {
  Run("mkdir /home");
  Run("mkdir /home/user");
  Run("cd /home/user");
  EXPECT_EQ(Run("pwd"), "/home/user\n");
  Run("cd ..");
  EXPECT_EQ(Run("pwd"), "/home\n");
  EXPECT_FALSE(RunStatus("cd /nonexistent").ok());
}

TEST_F(ShellTest, RelativeMkdirAndLs) {
  Run("mkdir proj");
  Run("cd proj");
  Run("mkdir data");
  const std::string listing = Run("ls");
  EXPECT_EQ(listing, "data/\n");
  const std::string root_listing = Run("ls /");
  EXPECT_EQ(root_listing, "proj/\n");
}

TEST_F(ShellTest, RmdirRequiresEmptyUnlessRecursive) {
  Run("mkdir /a");
  Run("mkdir /a/b");
  EXPECT_FALSE(RunStatus("rmdir /a").ok());
  Run("rmdir -r /a");
  EXPECT_FALSE(RunStatus("cd /a").ok());
}

TEST_F(ShellTest, ImportExportRoundTrip) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "input.bin").string();
  const std::string dst = (local.path() / "output.bin").string();
  std::string payload;
  for (int i = 0; i < 10000; ++i) payload += static_cast<char>(i * 7);
  std::ofstream(src, std::ios::binary) << payload;

  Run("import " + src + " /data.bin");
  const std::string listing = Run("ls /");
  EXPECT_NE(listing.find("data.bin"), std::string::npos);

  Run("export /data.bin " + dst);
  std::ifstream restored(dst, std::ios::binary);
  std::stringstream buffer;
  buffer << restored.rdbuf();
  EXPECT_EQ(buffer.str(), payload);
}

TEST_F(ShellTest, CatPrintsContents) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "note.txt").string();
  std::ofstream(src) << "hello dpfs";
  Run("import " + src + " /note.txt");
  EXPECT_EQ(Run("cat /note.txt"), "hello dpfs");
}

TEST_F(ShellTest, StatShowsFileLevelAndServers) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << std::string(1000, 'x');
  Run("import " + src + " /f");
  const std::string out = Run("stat /f");
  EXPECT_NE(out.find("linear"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("servers:    2"), std::string::npos);
}

TEST_F(ShellTest, CpCopiesWithinDpfs) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::string payload(5000, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  std::ofstream(src, std::ios::binary) << payload;
  Run("import " + src + " /orig");
  Run("cp /orig /copy");

  const std::string dst = (local.path() / "out").string();
  Run("export /copy " + dst);
  std::ifstream restored(dst, std::ios::binary);
  std::stringstream buffer;
  buffer << restored.rdbuf();
  EXPECT_EQ(buffer.str(), payload);
}

TEST_F(ShellTest, RmRemovesFile) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << "x";
  Run("import " + src + " /f");
  Run("rm /f");
  EXPECT_FALSE(RunStatus("stat /f").ok());
  EXPECT_FALSE(RunStatus("rm /f").ok());
}

TEST_F(ShellTest, LsLongFormatShowsAttributes) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << std::string(2048, 'y');
  Run("import " + src + " /f");
  const std::string out = Run("ls -l /");
  EXPECT_NE(out.find("f  "), std::string::npos);
  EXPECT_NE(out.find("2.0 KB"), std::string::npos);
  EXPECT_NE(out.find("linear"), std::string::npos);
}

TEST_F(ShellTest, DfAndServersListRegisteredNodes) {
  const std::string df = Run("df");
  EXPECT_NE(df.find("ionode000.dpfs.local"), std::string::npos);
  EXPECT_NE(df.find("ionode001.dpfs.local"), std::string::npos);
  const std::string servers = Run("servers");
  EXPECT_NE(servers.find("127.0.0.1:"), std::string::npos);
}

TEST_F(ShellTest, MvRenamesFile) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << "move me";
  Run("import " + src + " /old-name");
  Run("mv /old-name /new-name");
  EXPECT_FALSE(RunStatus("stat /old-name").ok());
  EXPECT_EQ(Run("cat /new-name"), "move me");
}

TEST_F(ShellTest, DuSumsSubtree) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << std::string(1000, 'x');
  Run("mkdir /proj");
  Run("mkdir /proj/sub");
  Run("import " + src + " /proj/a");
  Run("import " + src + " /proj/sub/b");
  const std::string out = Run("du /proj");
  EXPECT_NE(out.find("2.0 KB"), std::string::npos) << out;
  const std::string sub = Run("du /proj/sub");
  EXPECT_NE(sub.find("1000 B"), std::string::npos) << sub;
}

TEST_F(ShellTest, SqlCommandQueriesMetadata) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << "x";
  Run("import " + src + " /solo.bin");
  const std::string out =
      Run("sql SELECT filename, size FROM DPFS_FILE_ATTR");
  EXPECT_NE(out.find("/solo.bin"), std::string::npos);
  const std::string count = Run("sql SELECT COUNT(*) FROM DPFS_SERVER");
  EXPECT_NE(count.find("2"), std::string::npos);  // two cluster servers
  EXPECT_FALSE(RunStatus("sql DELETE FROM missing_table").ok());
  EXPECT_FALSE(RunStatus("sql").ok());
}

TEST_F(ShellTest, FsckDetectsPlantedOrphan) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << "real file";
  Run("import " + src + " /real");
  EXPECT_NE(Run("fsck").find("clean"), std::string::npos);

  // Plant an orphan behind DPFS's back.
  std::vector<net::WriteFragment> writes;
  writes.push_back({0, Bytes(10, 1)});
  ASSERT_TRUE(
      cluster_->server(0).store().WriteFragments("/orphan", writes, false)
          .ok());
  const std::string found = Run("fsck");
  EXPECT_NE(found.find("orphan subfile /orphan"), std::string::npos) << found;
  EXPECT_NE(found.find("issues found"), std::string::npos);

  const std::string repaired = Run("fsck -repair");
  EXPECT_NE(repaired.find("repaired"), std::string::npos);
  EXPECT_NE(Run("fsck").find("clean"), std::string::npos);
  EXPECT_EQ(Run("cat /real"), "real file");  // the real file is untouched
}

TEST_F(ShellTest, AdviseCommand) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << std::string(4096, 'z');
  Run("import " + src + " /observed");
  const std::string advice = Run("advise /observed");
  EXPECT_NE(advice.find("no access observations"), std::string::npos)
      << advice;
  EXPECT_FALSE(RunStatus("advise /missing").ok());
}

TEST_F(ShellTest, ChmodChownUpdateAttributes) {
  const TempDir local = TempDir::Create("dpfs-shell").value();
  const std::string src = (local.path() / "f").string();
  std::ofstream(src) << "x";
  Run("import " + src + " /f");
  Run("chmod 600 /f");
  Run("chown xhshen /f");
  const std::string out = Run("stat /f");
  EXPECT_NE(out.find("owner:      xhshen"), std::string::npos) << out;
  EXPECT_NE(out.find("permission: 600"), std::string::npos) << out;
  EXPECT_FALSE(RunStatus("chmod 999 /f").ok());   // not octal
  EXPECT_FALSE(RunStatus("chmod abc /f").ok());
  EXPECT_FALSE(RunStatus("chmod 600 /missing").ok());
  EXPECT_FALSE(RunStatus("chown nobody /missing").ok());
}

TEST_F(ShellTest, UsageErrorsForMissingArgs) {
  EXPECT_FALSE(RunStatus("mkdir").ok());
  EXPECT_FALSE(RunStatus("cp /only-one").ok());
  EXPECT_FALSE(RunStatus("import just-one").ok());
}

}  // namespace
}  // namespace dpfs::shell
