// Multi-threaded metadata stress: concurrent Create/Lookup/Rename/Delete
// against one MetadataManager, parameterized over 1 shard (the paper's
// single database) and 4 shards (the `metadb_shards` extension). Threads
// mutate disjoint file names but share the directory tree and the read
// paths, so this exercises the per-shard transaction mutexes, the
// reader-shared SELECT path, and the cross-shard link protocol under real
// contention. Runs under the tsan/asan presets like the rest of the suite.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/metadata.h"
#include "metadb/sharded_database.h"

namespace dpfs::client {
namespace {

class MetadataStressTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  MetadataStressTest() {
    std::unique_ptr<metadb::ShardedDatabase> db =
        metadb::ShardedDatabase::OpenInMemory(GetParam()).value();
    db_ = std::move(db);
    manager_ = MetadataManager::Attach(db_).value();
    ServerInfo server;
    server.name = "s0";
    server.endpoint = {"127.0.0.1", 9000};
    server.capacity_bytes = 500'000'000;
    server.performance = 1;
    EXPECT_TRUE(manager_->RegisterServer(server).ok());
    server.name = "s1";
    EXPECT_TRUE(manager_->RegisterServer(server).ok());
  }

  FileMeta MakeLinearMeta(const std::string& path) {
    FileMeta meta;
    meta.path = path;
    meta.owner = "xhshen";
    meta.permission = 0744;
    meta.level = layout::FileLevel::kLinear;
    meta.size_bytes = 128;
    meta.brick_bytes = 64;
    return meta;
  }

  Status CreateTestFile(const std::string& path) {
    const auto dist = layout::BrickDistribution::RoundRobin(2, 2).value();
    return manager_->CreateFile(MakeLinearMeta(path), {"s0", "s1"}, dist);
  }

  std::shared_ptr<metadb::ShardedDatabase> db_;
  std::unique_ptr<MetadataManager> manager_;
};

TEST_P(MetadataStressTest, ConcurrentCreateLookupRenameDelete) {
  constexpr int kThreads = 4;
  constexpr int kFilesPerThread = 16;
  ASSERT_TRUE(manager_->MakeDirectory("/stress").ok());

  std::atomic<int> errors{0};
  std::vector<std::vector<std::string>> kept(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFilesPerThread; ++i) {
        const std::string base =
            "/stress/t" + std::to_string(t) + "_" + std::to_string(i);
        if (!CreateTestFile(base).ok()) {
          ++errors;
          continue;
        }
        if (!manager_->LookupFile(base).ok()) ++errors;

        // Shared-read churn against other threads' namespace: any boolean
        // answer is fine, an error is not.
        const std::string peer = "/stress/t" +
                                 std::to_string((t + 1) % kThreads) + "_" +
                                 std::to_string(i);
        if (!manager_->FileExists(peer).ok()) ++errors;
        if (!manager_->ListDirectory("/stress").ok()) ++errors;

        std::string path = base;
        if (i % 3 == 0) {
          const std::string renamed = base + ".r";
          if (manager_->RenameFile(base, renamed).ok()) {
            path = renamed;
          } else {
            ++errors;
          }
        }
        if (i % 2 == 0) {
          if (!manager_->DeleteFile(path).ok()) ++errors;
        } else {
          kept[t].push_back(path.substr(std::string("/stress/").size()));
        }

        // Per-thread directory churn alongside the file ops.
        const std::string dir = base + ".d";
        if (!manager_->MakeDirectory(dir).ok() ||
            !manager_->RemoveDirectory(dir, false).ok()) {
          ++errors;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);

  // Final state: exactly the files each thread kept, all resolvable.
  std::vector<std::string> expected;
  for (const std::vector<std::string>& names : kept) {
    expected.insert(expected.end(), names.begin(), names.end());
  }
  std::sort(expected.begin(), expected.end());

  MetadataManager::Listing listing = manager_->ListDirectory("/stress").value();
  std::sort(listing.files.begin(), listing.files.end());
  EXPECT_EQ(listing.files, expected);
  EXPECT_TRUE(listing.directories.empty());
  for (const std::string& name : listing.files) {
    EXPECT_TRUE(manager_->LookupFile("/stress/" + name).ok()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, MetadataStressTest,
                         ::testing::Values(std::size_t{1}, std::size_t{4}),
                         [](const ::testing::TestParamInfo<std::size_t>& p) {
                           return "Shards" + std::to_string(p.param);
                         });

}  // namespace
}  // namespace dpfs::client
