// Collective I/O (MPI-IO-style) over a live cluster.
#include "client/collective.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs::client {
namespace {

Bytes PatternBytes(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.NextU64());
  }
  return data;
}

class CollectiveTest : public ::testing::Test {
 protected:
  CollectiveTest() {
    core::ClusterOptions options;
    options.num_servers = 4;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
  }

  std::unique_ptr<CollectiveFile> MakeFile(std::uint32_t ranks,
                                           std::uint64_t dim = 64) {
    CreateOptions create;
    create.level = layout::FileLevel::kMultidim;
    create.array_shape = {dim, dim};
    create.brick_shape = {dim / 4, dim / 4};
    return CollectiveFile::Create(fs_, "/coll.dpfs", create, ranks).value();
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<FileSystem> fs_;
};

TEST_F(CollectiveTest, ZeroRanksRejected) {
  CreateOptions create;
  create.total_bytes = 64;
  ASSERT_TRUE(fs_->Create("/f", create).ok());
  EXPECT_FALSE(CollectiveFile::Open(fs_, "/f", 0).ok());
}

TEST_F(CollectiveTest, ViewValidation) {
  auto file = MakeFile(2);
  EXPECT_FALSE(file->SetView(5, {{0, 0}, {1, 1}}).ok());  // bad rank
  EXPECT_FALSE(file->SetView(0, {{0, 0}, {65, 64}}).ok());  // out of bounds
  EXPECT_TRUE(file->SetView(0, {{0, 0}, {64, 32}}).ok());
  EXPECT_EQ(file->view(0).value().extent, (layout::Shape{64, 32}));
  EXPECT_FALSE(file->view(1).has_value());
}

TEST_F(CollectiveTest, WriteAllThenReadAllRoundTrip) {
  constexpr std::uint32_t kRanks = 4;
  auto file = MakeFile(kRanks);
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  layout::ProcessGrid grid;
  grid.grid = {2, 2};
  ASSERT_TRUE(file->SetHpfViews(pattern, grid).ok());

  std::vector<Bytes> written(kRanks);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      const layout::Region view = file->view(rank).value();
      written[rank] = PatternBytes(view.num_elements(), 500 + rank);
      if (!file->WriteAll(rank, written[rank]).ok()) failures.fetch_add(1);
      Bytes restored(written[rank].size());
      if (!file->ReadAll(rank, restored).ok() || restored != written[rank]) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Aggregate stats: 2 phases x 4 ranks x 16x16-byte chunks.
  const IoReport report = file->report();
  EXPECT_EQ(report.useful_bytes, 2u * 64 * 64);
  EXPECT_GT(report.requests, 0u);
}

TEST_F(CollectiveTest, MissingViewFailsAllRanks) {
  constexpr std::uint32_t kRanks = 2;
  auto file = MakeFile(kRanks);
  ASSERT_TRUE(file->SetView(0, {{0, 0}, {32, 64}}).ok());
  // Rank 1 never sets a view: rank 1 gets kInvalidArgument, rank 0 gets
  // kAborted (peer failure) — but both return, nobody deadlocks.
  Status status0;
  Status status1;
  Bytes data0(32 * 64, 1);
  Bytes data1(32 * 64, 2);
  std::thread t0([&] { status0 = file->WriteAll(0, data0); });
  std::thread t1([&] { status1 = file->WriteAll(1, data1); });
  t0.join();
  t1.join();
  EXPECT_EQ(status0.code(), StatusCode::kAborted);
  EXPECT_EQ(status1.code(), StatusCode::kInvalidArgument);

  // The collective recovers: set the view and the next phase succeeds.
  ASSERT_TRUE(file->SetView(1, {{32, 0}, {32, 64}}).ok());
  std::thread t2([&] { status0 = file->WriteAll(0, data0); });
  std::thread t3([&] { status1 = file->WriteAll(1, data1); });
  t2.join();
  t3.join();
  EXPECT_TRUE(status0.ok()) << status0.ToString();
  EXPECT_TRUE(status1.ok()) << status1.ToString();
}

TEST_F(CollectiveTest, ServerFailureAbortsAllRanksWithoutDeadlock) {
  constexpr std::uint32_t kRanks = 3;
  auto file = MakeFile(kRanks);
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(*,BLOCK)").value();
  layout::ProcessGrid grid;
  grid.grid = {kRanks};
  // 64 is not divisible by 3 — use a divisible view instead.
  ASSERT_TRUE(file->SetView(0, {{0, 0}, {64, 22}}).ok());
  ASSERT_TRUE(file->SetView(1, {{0, 22}, {64, 21}}).ok());
  ASSERT_TRUE(file->SetView(2, {{0, 43}, {64, 21}}).ok());

  // Kill every server: all ranks must return an error, none may hang.
  for (std::size_t s = 0; s < cluster_->num_servers(); ++s) {
    cluster_->server(s).Stop();
  }
  fs_->connections().Clear();

  std::vector<Status> statuses(kRanks);
  std::vector<std::thread> threads;
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      const layout::Region view = file->view(rank).value();
      const Bytes data(view.num_elements(), 1);
      statuses[rank] = file->WriteAll(rank, data);
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    EXPECT_FALSE(statuses[rank].ok()) << "rank " << rank;
  }
}

TEST_F(CollectiveTest, SequentialPhasesKeepConsistentData) {
  constexpr std::uint32_t kRanks = 4;
  constexpr int kPhases = 5;
  auto file = MakeFile(kRanks);
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(*,BLOCK)").value();
  layout::ProcessGrid grid;
  grid.grid = {kRanks};
  ASSERT_TRUE(file->SetHpfViews(pattern, grid).ok());

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::uint32_t rank = 0; rank < kRanks; ++rank) {
    threads.emplace_back([&, rank] {
      const layout::Region view = file->view(rank).value();
      for (int phase = 0; phase < kPhases; ++phase) {
        const Bytes data = PatternBytes(view.num_elements(),
                                        phase * 100 + rank);
        if (!file->WriteAll(rank, data).ok()) {
          failures.fetch_add(1);
          return;
        }
        Bytes check(view.num_elements());
        if (!file->ReadAll(rank, check).ok() || check != data) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(CollectiveTest, HpfViewsMatchChunkMath) {
  auto file = MakeFile(4);
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,*)").value();
  layout::ProcessGrid grid;
  grid.grid = {4};
  ASSERT_TRUE(file->SetHpfViews(pattern, grid).ok());
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    const layout::Region expected =
        layout::ChunkForProcess({64, 64}, pattern, grid, rank).value();
    EXPECT_EQ(file->view(rank).value(), expected);
  }
}

TEST_F(CollectiveTest, GridMismatchRejected) {
  auto file = MakeFile(4);
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,*)").value();
  layout::ProcessGrid grid;
  grid.grid = {2};  // 2 processes but 4 ranks
  EXPECT_FALSE(file->SetHpfViews(pattern, grid).ok());
}

}  // namespace
}  // namespace dpfs::client
