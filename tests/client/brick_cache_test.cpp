#include "client/brick_cache.h"

#include <gtest/gtest.h>

#include "core/cluster.h"

namespace dpfs::client {
namespace {

// --- Unit tests on the cache itself ----------------------------------------

TEST(BrickCacheTest, PutGetRoundTrip) {
  BrickCache cache(1024);
  cache.Put("/f", 3, Bytes{1, 2, 3});
  const std::optional<Bytes> hit = cache.Get("/f", 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Bytes{1, 2, 3}));
  EXPECT_FALSE(cache.Get("/f", 4).has_value());
  EXPECT_FALSE(cache.Get("/g", 3).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(BrickCacheTest, EvictsLruByByteBudget) {
  BrickCache cache(10);
  cache.Put("/f", 0, Bytes(4, 0));
  cache.Put("/f", 1, Bytes(4, 1));
  ASSERT_TRUE(cache.Get("/f", 0).has_value());  // touch 0
  cache.Put("/f", 2, Bytes(4, 2));              // evicts 1 (LRU)
  EXPECT_TRUE(cache.Get("/f", 0).has_value());
  EXPECT_FALSE(cache.Get("/f", 1).has_value());
  EXPECT_TRUE(cache.Get("/f", 2).has_value());
  EXPECT_LE(cache.size_bytes(), 10u);
}

TEST(BrickCacheTest, OversizeImageNotCached) {
  BrickCache cache(8);
  cache.Put("/f", 0, Bytes(9, 0));
  EXPECT_FALSE(cache.Get("/f", 0).has_value());
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(BrickCacheTest, ReplaceUpdatesBytes) {
  BrickCache cache(100);
  cache.Put("/f", 0, Bytes(10, 0));
  cache.Put("/f", 0, Bytes(20, 1));
  EXPECT_EQ(cache.size_bytes(), 20u);
  EXPECT_EQ(cache.Get("/f", 0)->size(), 20u);
}

TEST(BrickCacheTest, InvalidateFileDropsOnlyThatFile) {
  BrickCache cache(1024);
  cache.Put("/a", 0, Bytes(4, 0));
  cache.Put("/a", 1, Bytes(4, 0));
  cache.Put("/b", 0, Bytes(4, 0));
  cache.InvalidateFile("/a");
  EXPECT_FALSE(cache.Get("/a", 0).has_value());
  EXPECT_FALSE(cache.Get("/a", 1).has_value());
  EXPECT_TRUE(cache.Get("/b", 0).has_value());
  EXPECT_EQ(cache.size_bytes(), 4u);
}

TEST(BrickCacheTest, InvalidateSingleBrickAndClear) {
  BrickCache cache(1024);
  cache.Put("/a", 0, Bytes(4, 0));
  cache.Put("/a", 1, Bytes(4, 0));
  cache.Invalidate("/a", 0);
  EXPECT_FALSE(cache.Get("/a", 0).has_value());
  EXPECT_TRUE(cache.Get("/a", 1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size_bytes(), 0u);
}

// --- Integration with the FileSystem read/write paths -----------------------

class CachedFileSystemTest : public ::testing::Test {
 protected:
  CachedFileSystemTest() {
    core::ClusterOptions options;
    options.num_servers = 2;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
    fs_->EnableBrickCache(1 << 20);
  }

  std::uint64_t ServerBytesRead() {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < cluster_->num_servers(); ++s) {
      total += cluster_->server(s).stats().bytes_read.load();
    }
    return total;
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<FileSystem> fs_;
};

TEST_F(CachedFileSystemTest, RepeatReadsSkipTheNetwork) {
  CreateOptions create;
  create.total_bytes = 4096;
  create.brick_bytes = 512;
  FileHandle handle = fs_->Create("/hot.bin", create).value();
  Bytes data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13);
  }
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data).ok());

  Bytes first(4096);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, first).ok());
  EXPECT_EQ(first, data);
  const std::uint64_t wire_after_first = ServerBytesRead();

  Bytes second(4096);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, second).ok());
  EXPECT_EQ(second, data);
  EXPECT_EQ(ServerBytesRead(), wire_after_first);  // zero wire bytes
  EXPECT_GE(fs_->brick_cache()->hits(), 8u);
}

TEST_F(CachedFileSystemTest, WritesInvalidateAffectedBricksOnly) {
  CreateOptions create;
  create.total_bytes = 2048;
  create.brick_bytes = 512;  // 4 bricks
  FileHandle handle = fs_->Create("/inv.bin", create).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(2048, 1)).ok());
  Bytes warm(2048);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, warm).ok());  // warms 4 bricks

  // Overwrite brick 1 only.
  ASSERT_TRUE(fs_->WriteBytes(handle, 512, Bytes(512, 9)).ok());
  Bytes after(2048);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, after).ok());
  EXPECT_EQ(after[0], 1);
  EXPECT_EQ(after[600], 9);   // new data visible — no stale cache
  EXPECT_EQ(after[1500], 1);
}

TEST_F(CachedFileSystemTest, RemoveDropsCachedBricks) {
  CreateOptions create;
  create.total_bytes = 1024;
  create.brick_bytes = 512;
  FileHandle handle = fs_->Create("/bye.bin", create).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(1024, 7)).ok());
  Bytes warm(1024);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, warm).ok());
  ASSERT_GT(fs_->brick_cache()->size_bytes(), 0u);
  ASSERT_TRUE(fs_->Remove("/bye.bin").ok());
  EXPECT_EQ(fs_->brick_cache()->size_bytes(), 0u);
}

TEST_F(CachedFileSystemTest, RenameInvalidatesCache) {
  CreateOptions create;
  create.total_bytes = 1024;
  create.brick_bytes = 512;
  FileHandle handle = fs_->Create("/from.bin", create).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(1024, 3)).ok());
  Bytes warm(1024);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, warm).ok());
  ASSERT_TRUE(fs_->Rename("/from.bin", "/to.bin").ok());
  // Reading under the new name returns the right bytes (no stale images
  // keyed by the old name can leak).
  FileHandle moved = fs_->Open("/to.bin").value();
  Bytes read(1024);
  ASSERT_TRUE(fs_->ReadBytes(moved, 0, read).ok());
  EXPECT_EQ(read, Bytes(1024, 3));
}

TEST_F(CachedFileSystemTest, MultidimRegionReadsHitCache) {
  CreateOptions create;
  create.level = layout::FileLevel::kMultidim;
  create.array_shape = {32, 32};
  create.brick_shape = {8, 8};
  FileHandle handle = fs_->Create("/grid.dpfs", create).value();
  Bytes data(32 * 32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {32, 32}}, data).ok());

  Bytes column(32);
  ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 5}, {32, 1}}, column).ok());
  const std::uint64_t wire = ServerBytesRead();
  // An overlapping column comes from the same brick column: all hits.
  Bytes column2(32);
  ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 6}, {32, 1}}, column2).ok());
  EXPECT_EQ(ServerBytesRead(), wire);
  for (std::uint64_t r = 0; r < 32; ++r) {
    EXPECT_EQ(column2[r], data[r * 32 + 6]);
  }
}

}  // namespace
}  // namespace dpfs::client
