#include "client/datatype.h"

#include <gtest/gtest.h>

namespace dpfs::client {
namespace {

TEST(DatatypeTest, Bytes) {
  const Datatype type = Datatype::Bytes(16);
  EXPECT_EQ(type.size(), 16u);
  EXPECT_EQ(type.extent(), 16u);
  ASSERT_EQ(type.num_extents(), 1u);
  EXPECT_EQ(type.extents()[0], (ByteExtent{0, 16}));
}

TEST(DatatypeTest, ZeroBytes) {
  const Datatype type = Datatype::Bytes(0);
  EXPECT_EQ(type.size(), 0u);
  EXPECT_EQ(type.num_extents(), 0u);
}

TEST(DatatypeTest, ContiguousCoalescesToOneExtent) {
  const Datatype type = Datatype::Contiguous(4, Datatype::Bytes(8)).value();
  EXPECT_EQ(type.size(), 32u);
  EXPECT_EQ(type.extent(), 32u);
  EXPECT_EQ(type.num_extents(), 1u);
}

TEST(DatatypeTest, VectorBasics) {
  // 3 blocks of 2 elements, stride 4, element = 8 bytes:
  // extents at 0, 32, 64; each 16 bytes.
  const Datatype type =
      Datatype::Vector(3, 2, 4, Datatype::Bytes(8)).value();
  EXPECT_EQ(type.size(), 48u);
  ASSERT_EQ(type.num_extents(), 3u);
  EXPECT_EQ(type.extents()[0], (ByteExtent{0, 16}));
  EXPECT_EQ(type.extents()[1], (ByteExtent{32, 16}));
  EXPECT_EQ(type.extents()[2], (ByteExtent{64, 16}));
  EXPECT_EQ(type.extent(), 80u);  // (2*4 + 2) * 8
}

TEST(DatatypeTest, VectorStrideEqualBlocklengthIsContiguous) {
  const Datatype type =
      Datatype::Vector(5, 3, 3, Datatype::Bytes(4)).value();
  EXPECT_EQ(type.num_extents(), 1u);
  EXPECT_EQ(type.size(), 60u);
}

TEST(DatatypeTest, VectorOverlapRejected) {
  EXPECT_FALSE(Datatype::Vector(2, 4, 3, Datatype::Bytes(1)).ok());
}

TEST(DatatypeTest, ColumnOfMatrixAsVector) {
  // One column of an 8x8 byte matrix: 8 single-byte blocks with stride 8.
  const Datatype column =
      Datatype::Vector(8, 1, 8, Datatype::Bytes(1)).value();
  EXPECT_EQ(column.size(), 8u);
  EXPECT_EQ(column.num_extents(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(column.extents()[i].offset, i * 8);
    EXPECT_EQ(column.extents()[i].length, 1u);
  }
}

TEST(DatatypeTest, Indexed) {
  const Datatype type =
      Datatype::Indexed({{0, 2}, {5, 1}, {10, 3}}, Datatype::Bytes(4)).value();
  EXPECT_EQ(type.size(), 24u);
  ASSERT_EQ(type.num_extents(), 3u);
  EXPECT_EQ(type.extents()[0], (ByteExtent{0, 8}));
  EXPECT_EQ(type.extents()[1], (ByteExtent{20, 4}));
  EXPECT_EQ(type.extents()[2], (ByteExtent{40, 12}));
  EXPECT_EQ(type.extent(), 52u);
}

TEST(DatatypeTest, IndexedAdjacentBlocksCoalesce) {
  const Datatype type =
      Datatype::Indexed({{0, 2}, {2, 3}}, Datatype::Bytes(1)).value();
  EXPECT_EQ(type.num_extents(), 1u);
  EXPECT_EQ(type.size(), 5u);
}

TEST(DatatypeTest, IndexedZeroLengthBlocksContributeNoExtents) {
  const Datatype type =
      Datatype::Indexed({{0, 2}, {5, 0}, {10, 1}}, Datatype::Bytes(4)).value();
  EXPECT_EQ(type.size(), 12u);
  ASSERT_EQ(type.num_extents(), 2u);
  EXPECT_EQ(type.extents()[0], (ByteExtent{0, 8}));
  EXPECT_EQ(type.extents()[1], (ByteExtent{40, 4}));
  EXPECT_EQ(type.extent(), 44u);
}

TEST(DatatypeTest, IndexedOutOfOrderBlocksFlattenSorted) {
  // Flattening sorts by file offset, so planner input (and the wire's
  // strictly-ascending extent lists) never see out-of-order extents.
  const Datatype type =
      Datatype::Indexed({{10, 1}, {0, 1}}, Datatype::Bytes(4)).value();
  EXPECT_EQ(type.size(), 8u);
  ASSERT_EQ(type.num_extents(), 2u);
  EXPECT_EQ(type.extents()[0], (ByteExtent{0, 4}));
  EXPECT_EQ(type.extents()[1], (ByteExtent{40, 4}));
}

TEST(DatatypeTest, NestedComposition) {
  // Vector of vectors: a 2-d tile access pattern.
  const Datatype row = Datatype::Bytes(4);
  const Datatype tile_rows = Datatype::Vector(3, 1, 2, row).value();
  const Datatype type = Datatype::Contiguous(2, tile_rows).value();
  EXPECT_EQ(type.size(), 24u);
  // tile_rows extent: (2*2+1)*4 = 20; the second copy starts at 20, which is
  // adjacent to the first copy's last extent [16,20) — they coalesce, so the
  // six raw pieces merge into five.
  EXPECT_EQ(type.num_extents(), 5u);
}

TEST(DatatypeTest, FragmentationGuard) {
  const Datatype tiny = Datatype::Bytes(1);
  const Datatype v = Datatype::Vector(1 << 20, 1, 2, tiny).value();
  EXPECT_FALSE(Datatype::Contiguous(1 << 12, v).ok());
}

TEST(DatatypeTest, SubarrayBasics) {
  // 3x4 interior region of an 8x10 array of 4-byte elements.
  const Datatype type =
      Datatype::Subarray({8, 10}, {2, 3}, {3, 4}, 4).value();
  EXPECT_EQ(type.size(), 3u * 4 * 4);
  EXPECT_EQ(type.extent(), 8u * 10 * 4);  // spans the whole array
  ASSERT_EQ(type.num_extents(), 3u);      // one per region row
  EXPECT_EQ(type.extents()[0], (ByteExtent{(2 * 10 + 3) * 4, 16}));
  EXPECT_EQ(type.extents()[1], (ByteExtent{(3 * 10 + 3) * 4, 16}));
  EXPECT_EQ(type.extents()[2], (ByteExtent{(4 * 10 + 3) * 4, 16}));
}

TEST(DatatypeTest, SubarrayFullRowsCoalesce) {
  // Full-width rows are contiguous in the flattened array.
  const Datatype type = Datatype::Subarray({8, 10}, {2, 0}, {3, 10}, 1).value();
  EXPECT_EQ(type.num_extents(), 1u);
  EXPECT_EQ(type.size(), 30u);
}

TEST(DatatypeTest, SubarrayThreeDimensional) {
  const Datatype type =
      Datatype::Subarray({4, 4, 4}, {1, 1, 1}, {2, 2, 2}, 1).value();
  EXPECT_EQ(type.size(), 8u);
  EXPECT_EQ(type.num_extents(), 4u);  // 2x2 leading rows
  EXPECT_EQ(type.extents()[0].offset, (1 * 16 + 1 * 4 + 1) * 1u);
}

TEST(DatatypeTest, SubarrayValidation) {
  EXPECT_FALSE(Datatype::Subarray({8}, {0, 0}, {1, 1}, 1).ok());   // rank
  EXPECT_FALSE(Datatype::Subarray({8, 8}, {0, 0}, {9, 1}, 1).ok());  // bounds
  EXPECT_FALSE(Datatype::Subarray({8, 8}, {4, 4}, {5, 1}, 1).ok());  // bounds
  EXPECT_FALSE(Datatype::Subarray({8, 8}, {0, 0}, {0, 1}, 1).ok());  // empty
  EXPECT_FALSE(Datatype::Subarray({8, 8}, {0, 0}, {1, 1}, 0).ok());  // elem
}

TEST(CoalesceExtentsTest, SortsAndMerges) {
  const std::vector<ByteExtent> merged = CoalesceExtents({
      {10, 5},
      {0, 4},
      {4, 6},   // adjacent to {0,4}, overlaps {10,5}? touches at 10
      {30, 2},
  });
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (ByteExtent{0, 15}));
  EXPECT_EQ(merged[1], (ByteExtent{30, 2}));
}

TEST(CoalesceExtentsTest, DropsEmptyExtents) {
  const std::vector<ByteExtent> merged =
      CoalesceExtents({{5, 0}, {1, 2}, {9, 0}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (ByteExtent{1, 2}));
}

TEST(CoalesceExtentsTest, OverlappingExtentsMergeToUnion) {
  const std::vector<ByteExtent> merged = CoalesceExtents({{0, 10}, {5, 10}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (ByteExtent{0, 15}));
}

}  // namespace
}  // namespace dpfs::client
