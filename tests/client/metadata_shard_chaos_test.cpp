// Crash-atomicity of the cross-shard intent protocol (docs/METADATA_SCHEMA.md
// "Sharding"): the `metadb.shard_commit` failpoint aborts a mutation between
// shard commits, the database is torn down mid-protocol (the crash), and the
// repair pass in MetadataManager::Attach must roll the intent forward so no
// file is ever visible in a directory without its attribute + distribution
// rows, or vice versa.
//
// The suite name contains "Chaos" so the asan-faults/tsan-faults ctest
// presets pick it up.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "client/metadata.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "common/temp_dir.h"
#include "metadb/sharded_database.h"

namespace dpfs::client {
namespace {

constexpr std::size_t kShards = 4;
constexpr char kShardCommit[] = "metadb.shard_commit";

class MetadataShardChaosTest : public ::testing::Test {
 protected:
  MetadataShardChaosTest()
      : temp_(TempDir::Create("metadb-shard-chaos").value()) {
    Open();
    ServerInfo server;
    server.name = "s0";
    server.endpoint = {"127.0.0.1", 9000};
    server.capacity_bytes = 500'000'000;
    server.performance = 1;
    EXPECT_TRUE(manager_->RegisterServer(server).ok());
    server.name = "s1";
    EXPECT_TRUE(manager_->RegisterServer(server).ok());
  }

  void TearDown() override { failpoint::DisarmAll(); }

  /// Simulated crash: drop the manager and every shard (all in-memory state,
  /// including any open transaction, is lost; committed WAL records are
  /// not), then reopen. Attach replays the WALs and rolls pending intents
  /// forward.
  void CrashAndRecover() {
    failpoint::DisarmAll();
    Open();
  }

  void ArmShardCommitCrash(int skip = 0) {
    failpoint::Spec spec;
    spec.action = failpoint::Action::kReturnError;
    spec.code = StatusCode::kUnavailable;
    spec.message = "injected crash between shard commits";
    spec.skip = skip;
    failpoint::Arm(kShardCommit, spec);
  }

  /// First "<dir>/<stem><i>" whose home shard differs from `dir`'s shard —
  /// forcing the mutation through the cross-shard intent protocol.
  std::string CrossShardChild(const std::string& dir,
                              const std::string& stem) {
    const std::size_t dir_shard = db_->ShardForPath(dir);
    for (int i = 0;; ++i) {
      const std::string path =
          (dir == "/" ? "/" : dir + "/") + stem + std::to_string(i);
      if (db_->ShardForPath(path) != dir_shard) return path;
    }
  }

  /// First "/<stem><i>" on a shard different from both `avoid` paths.
  std::string PathAvoidingShardsOf(const std::string& avoid_a,
                                   const std::string& avoid_b,
                                   const std::string& stem) {
    for (int i = 0;; ++i) {
      const std::string path = "/" + stem + std::to_string(i);
      if (db_->ShardForPath(path) != db_->ShardForPath(avoid_a) &&
          db_->ShardForPath(path) != db_->ShardForPath(avoid_b)) {
        return path;
      }
    }
  }

  FileMeta MakeLinearMeta(const std::string& path) {
    FileMeta meta;
    meta.path = path;
    meta.owner = "xhshen";
    meta.permission = 0744;
    meta.level = layout::FileLevel::kLinear;
    meta.size_bytes = 128;
    meta.brick_bytes = 64;
    return meta;
  }

  Status CreateTestFile(const std::string& path) {
    const auto dist = layout::BrickDistribution::RoundRobin(2, 2).value();
    return manager_->CreateFile(MakeLinearMeta(path), {"s0", "s1"}, dist);
  }

  bool Listed(const std::string& dir, const std::string& name, bool file) {
    const MetadataManager::Listing listing =
        manager_->ListDirectory(dir).value();
    const std::vector<std::string>& names =
        file ? listing.files : listing.directories;
    return std::find(names.begin(), names.end(), name) != names.end();
  }

  /// The PR's atomicity invariant, checked globally: every listed file
  /// resolves (attr + distribution rows present), every attribute row is
  /// linked into its parent directory, and no intent records survive repair.
  void ExpectConsistent() {
    for (std::size_t i = 0; i < db_->num_shards(); ++i) {
      const metadb::ResultSet attrs =
          db_->shard(i).Execute("SELECT filename FROM DPFS_FILE_ATTR").value();
      for (std::size_t r = 0; r < attrs.size(); ++r) {
        const std::string path = attrs.GetText(r, "filename").value();
        const auto [parent, name] = SplitPath(path);
        EXPECT_TRUE(Listed(parent, name, /*file=*/true))
            << path << " has attr rows but is not in its directory";
        EXPECT_TRUE(manager_->LookupFile(path).ok()) << path;
      }
      const metadb::ResultSet intents =
          db_->shard(i).Execute("SELECT src FROM DPFS_INTENT").value();
      EXPECT_TRUE(intents.empty())
          << "shard " << i << " still holds " << intents.size() << " intents";
    }
    const MetadataManager::Listing root = manager_->ListDirectory("/").value();
    for (const std::string& name : root.files) {
      EXPECT_TRUE(manager_->LookupFile("/" + name).ok())
          << "/" << name << " is listed but has no metadata rows";
    }
  }

  void Open() {
    manager_.reset();
    db_.reset();
    std::unique_ptr<metadb::ShardedDatabase> db =
        metadb::ShardedDatabase::Open(temp_.Sub("meta"), kShards).value();
    db_ = std::move(db);
    manager_ = MetadataManager::Attach(db_).value();
  }

  TempDir temp_;
  std::shared_ptr<metadb::ShardedDatabase> db_;
  std::unique_ptr<MetadataManager> manager_;
};

TEST_F(MetadataShardChaosTest, CreateRollsForwardAfterCrash) {
  const std::string file = CrossShardChild("/", "f");
  ArmShardCommitCrash();
  EXPECT_FALSE(CreateTestFile(file).ok());
  EXPECT_GE(failpoint::HitCount(kShardCommit), 1u);

  CrashAndRecover();
  EXPECT_TRUE(manager_->FileExists(file).value());
  EXPECT_TRUE(Listed("/", file.substr(1), /*file=*/true));
  EXPECT_TRUE(manager_->LookupFile(file).ok());
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, DeleteRollsForwardAfterCrash) {
  const std::string file = CrossShardChild("/", "f");
  ASSERT_TRUE(CreateTestFile(file).ok());

  ArmShardCommitCrash();
  EXPECT_FALSE(manager_->DeleteFile(file).ok());
  EXPECT_GE(failpoint::HitCount(kShardCommit), 1u);

  CrashAndRecover();
  // The home-shard commit (attr + distribution deletes + intent) decides the
  // outcome; repair finishes the directory unlink.
  EXPECT_FALSE(manager_->FileExists(file).value());
  EXPECT_FALSE(Listed("/", file.substr(1), /*file=*/true));
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, RenameRollsForwardAcrossHomeShards) {
  const std::string src = CrossShardChild("/", "src");
  const std::string dst = PathAvoidingShardsOf(src, "/", "dst");
  ASSERT_TRUE(CreateTestFile(src).ok());

  ArmShardCommitCrash();
  EXPECT_FALSE(manager_->RenameFile(src, dst).ok());
  EXPECT_GE(failpoint::HitCount(kShardCommit), 1u);

  CrashAndRecover();
  const FileRecord record = manager_->LookupFile(dst).value();
  EXPECT_EQ(record.meta.owner, "xhshen");
  EXPECT_EQ(record.servers.size(), 2u);
  EXPECT_FALSE(manager_->FileExists(src).value());
  EXPECT_TRUE(Listed("/", dst.substr(1), /*file=*/true));
  EXPECT_FALSE(Listed("/", src.substr(1), /*file=*/true));
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, RenameCrashBetweenFollowerCommits) {
  // skip=1 lets the first follower commit land, then kills the protocol —
  // the nastiest interleaving: destination rows applied, directory links
  // not, intent still pending.
  const std::string src = CrossShardChild("/", "src");
  const std::string dst = PathAvoidingShardsOf(src, "/", "dst");
  ASSERT_TRUE(CreateTestFile(src).ok());

  ArmShardCommitCrash(/*skip=*/1);
  EXPECT_FALSE(manager_->RenameFile(src, dst).ok());
  EXPECT_GE(failpoint::HitCount(kShardCommit), 1u);

  CrashAndRecover();
  EXPECT_TRUE(manager_->LookupFile(dst).ok());
  EXPECT_FALSE(manager_->FileExists(src).value());
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, MakeDirectoryRollsForwardAfterCrash) {
  const std::string dir = CrossShardChild("/", "d");
  ArmShardCommitCrash();
  EXPECT_FALSE(manager_->MakeDirectory(dir).ok());
  EXPECT_GE(failpoint::HitCount(kShardCommit), 1u);

  CrashAndRecover();
  EXPECT_TRUE(manager_->DirectoryExists(dir).value());
  EXPECT_TRUE(Listed("/", dir.substr(1), /*file=*/false));
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, RemoveDirectoryRollsForwardAfterCrash) {
  const std::string dir = CrossShardChild("/", "d");
  ASSERT_TRUE(manager_->MakeDirectory(dir).ok());

  ArmShardCommitCrash();
  EXPECT_FALSE(manager_->RemoveDirectory(dir, /*recursive=*/false).ok());
  EXPECT_GE(failpoint::HitCount(kShardCommit), 1u);

  CrashAndRecover();
  EXPECT_FALSE(manager_->DirectoryExists(dir).value());
  EXPECT_FALSE(Listed("/", dir.substr(1), /*file=*/false));
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, RepairIsIdempotentAcrossRepeatedCrashes) {
  const std::string file = CrossShardChild("/", "f");
  ArmShardCommitCrash();
  EXPECT_FALSE(CreateTestFile(file).ok());

  CrashAndRecover();
  CrashAndRecover();  // a second repair pass must be a no-op
  EXPECT_TRUE(manager_->FileExists(file).value());
  ExpectConsistent();
}

TEST_F(MetadataShardChaosTest, FailureWithoutCrashLeavesIntentForNextAttach) {
  // A mid-protocol error without a process crash surfaces the failure; the
  // intent waits on the home shard until the next Attach repairs it.
  const std::string file = CrossShardChild("/", "f");
  ArmShardCommitCrash();
  EXPECT_FALSE(CreateTestFile(file).ok());
  failpoint::DisarmAll();

  bool found_intent = false;
  for (std::size_t i = 0; i < db_->num_shards(); ++i) {
    const metadb::ResultSet intents =
        db_->shard(i).Execute("SELECT src FROM DPFS_INTENT").value();
    if (!intents.empty()) found_intent = true;
  }
  EXPECT_TRUE(found_intent);

  CrashAndRecover();
  EXPECT_TRUE(manager_->FileExists(file).value());
  ExpectConsistent();
}

}  // namespace
}  // namespace dpfs::client
