// Round-trip coverage for every metadata wire message: Decode(Encode(x))
// must reproduce x field-for-field, and truncated or corrupt bodies must
// fail with an error, never crash. The wire layout is documented in
// docs/WIRE_PROTOCOL.md ("Metadata protocol"); this suite is what keeps
// that document honest.
#include "client/meta_wire.h"

#include <gtest/gtest.h>

#include "client/metadata_service.h"
#include "common/bytes.h"
#include "layout/hpf.h"
#include "layout/placement.h"

namespace dpfs::client::meta_wire {
namespace {

ServerInfo MakeServer(const std::string& name, std::uint16_t port) {
  ServerInfo info;
  info.name = name;
  info.endpoint.host = "127.0.0.1";
  info.endpoint.port = port;
  info.capacity_bytes = 1ull << 33;
  info.performance = 2;
  return info;
}

FileMeta MakeArrayMeta() {
  FileMeta meta;
  meta.path = "/data/climate.dat";
  meta.owner = "xhshen";
  meta.permission = 0640;
  meta.size_bytes = 4096;
  meta.level = layout::FileLevel::kArray;
  meta.element_size = 8;
  meta.array_shape = {64, 64};
  meta.brick_shape = {16, 16};
  meta.pattern = layout::HpfPattern::Parse("(BLOCK,*)").value();
  meta.chunk_grid = {2, 2};
  return meta;
}

void ExpectServerInfoEq(const ServerInfo& a, const ServerInfo& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.endpoint.host, b.endpoint.host);
  EXPECT_EQ(a.endpoint.port, b.endpoint.port);
  EXPECT_EQ(a.capacity_bytes, b.capacity_bytes);
  EXPECT_EQ(a.performance, b.performance);
}

void ExpectFileMetaEq(const FileMeta& a, const FileMeta& b) {
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.permission, b.permission);
  EXPECT_EQ(a.size_bytes, b.size_bytes);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.element_size, b.element_size);
  EXPECT_EQ(a.array_shape, b.array_shape);
  EXPECT_EQ(a.brick_bytes, b.brick_bytes);
  EXPECT_EQ(a.brick_shape, b.brick_shape);
  EXPECT_EQ(a.pattern.has_value(), b.pattern.has_value());
  if (a.pattern.has_value() && b.pattern.has_value()) {
    EXPECT_EQ(*a.pattern, *b.pattern);
  }
  EXPECT_EQ(a.chunk_grid, b.chunk_grid);
}

TEST(MetaWireFieldCodecs, ServerInfoRoundTrip) {
  const ServerInfo info = MakeServer("ionode001.dpfs.local", 7070);
  BinaryWriter writer;
  EncodeServerInfo(info, writer);
  BinaryReader reader(writer.buffer());
  const ServerInfo decoded = DecodeServerInfo(reader).value();
  ExpectServerInfoEq(decoded, info);
}

TEST(MetaWireFieldCodecs, LinearFileMetaRoundTrip) {
  FileMeta meta;
  meta.path = "/a/b.dat";
  meta.owner = "alice";
  meta.size_bytes = 123456789;
  meta.brick_bytes = 65536;
  BinaryWriter writer;
  EncodeFileMeta(meta, writer);
  BinaryReader reader(writer.buffer());
  const FileMeta decoded = DecodeFileMeta(reader).value();
  ExpectFileMetaEq(decoded, meta);
  EXPECT_FALSE(decoded.pattern.has_value());
}

TEST(MetaWireFieldCodecs, ArrayFileMetaRoundTrip) {
  const FileMeta meta = MakeArrayMeta();
  BinaryWriter writer;
  EncodeFileMeta(meta, writer);
  BinaryReader reader(writer.buffer());
  const FileMeta decoded = DecodeFileMeta(reader).value();
  ExpectFileMetaEq(decoded, meta);
}

TEST(MetaWireFieldCodecs, FileMetaBadLevelRejected) {
  FileMeta meta;
  meta.path = "/x";
  BinaryWriter writer;
  EncodeFileMeta(meta, writer);
  Bytes body = writer.buffer();
  // The level byte follows path, owner, permission(u32), size(u64); easier
  // to corrupt by re-encoding than by offset arithmetic: scan for the known
  // level value is fragile, so re-encode with a raw writer instead.
  BinaryWriter corrupt;
  corrupt.WriteString(meta.path);
  corrupt.WriteString(meta.owner);
  corrupt.WriteU32(meta.permission);
  corrupt.WriteU64(meta.size_bytes);
  corrupt.WriteU8(0x7F);  // not a FileLevel
  BinaryReader reader(corrupt.buffer());
  EXPECT_FALSE(DecodeFileMeta(reader).ok());
}

TEST(MetaWireRequests, ServerRequestRoundTrip) {
  ServerRequest request;
  request.server = MakeServer("ionode002.dpfs.local", 9001);
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ServerRequest decoded = ServerRequest::Decode(reader).value();
  ExpectServerInfoEq(decoded.server, request.server);
}

TEST(MetaWireRequests, NameRequestRoundTrip) {
  NameRequest request;
  request.name = "ionode003.dpfs.local";
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(NameRequest::Decode(reader).value().name, request.name);
}

TEST(MetaWireRequests, PathRequestRoundTrip) {
  PathRequest request;
  request.path = "/home/xhshen/dpfs.test";
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(PathRequest::Decode(reader).value().path, request.path);
}

TEST(MetaWireRequests, CreateFileRequestRoundTrip) {
  CreateFileRequest request;
  request.meta = MakeArrayMeta();
  request.server_names = {"s0", "s1", "s2"};
  request.bricklists = {"0,3,6,9", "1,4,7,10", "2,5,8,11"};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const CreateFileRequest decoded = CreateFileRequest::Decode(reader).value();
  ExpectFileMetaEq(decoded.meta, request.meta);
  EXPECT_EQ(decoded.server_names, request.server_names);
  EXPECT_EQ(decoded.bricklists, request.bricklists);
}

TEST(MetaWireRequests, CreateFileRequestMismatchedListsRejected) {
  // server_names and bricklists must pair 1:1; a decoder that accepted a
  // mismatch would feed CreateFile rows with dangling server references.
  CreateFileRequest request;
  request.meta = MakeArrayMeta();
  request.server_names = {"s0", "s1"};
  request.bricklists = {"0,1,2"};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(CreateFileRequest::Decode(reader).ok());
}

TEST(MetaWireRequests, UpdateSizeRequestRoundTrip) {
  UpdateSizeRequest request;
  request.path = "/a";
  request.size_bytes = 0xDEADBEEFCAFEull;
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const UpdateSizeRequest decoded = UpdateSizeRequest::Decode(reader).value();
  EXPECT_EQ(decoded.path, request.path);
  EXPECT_EQ(decoded.size_bytes, request.size_bytes);
}

TEST(MetaWireRequests, SetPermissionRequestRoundTrip) {
  SetPermissionRequest request;
  request.path = "/a";
  request.permission = 0755;
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const SetPermissionRequest decoded =
      SetPermissionRequest::Decode(reader).value();
  EXPECT_EQ(decoded.path, request.path);
  EXPECT_EQ(decoded.permission, request.permission);
}

TEST(MetaWireRequests, SetOwnerRequestRoundTrip) {
  SetOwnerRequest request;
  request.path = "/a";
  request.owner = "bob";
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const SetOwnerRequest decoded = SetOwnerRequest::Decode(reader).value();
  EXPECT_EQ(decoded.path, request.path);
  EXPECT_EQ(decoded.owner, request.owner);
}

TEST(MetaWireRequests, RenameRequestRoundTrip) {
  RenameRequest request;
  request.from = "/old/name";
  request.to = "/new/name";
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const RenameRequest decoded = RenameRequest::Decode(reader).value();
  EXPECT_EQ(decoded.from, request.from);
  EXPECT_EQ(decoded.to, request.to);
}

TEST(MetaWireRequests, LogAccessRequestRoundTrip) {
  LogAccessRequest request;
  request.path = "/a";
  request.is_write = true;
  request.requests = 7;
  request.transfer_bytes = 4096;
  request.useful_bytes = 1024;
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const LogAccessRequest decoded = LogAccessRequest::Decode(reader).value();
  EXPECT_EQ(decoded.path, request.path);
  EXPECT_EQ(decoded.is_write, request.is_write);
  EXPECT_EQ(decoded.requests, request.requests);
  EXPECT_EQ(decoded.transfer_bytes, request.transfer_bytes);
  EXPECT_EQ(decoded.useful_bytes, request.useful_bytes);
}

TEST(MetaWireRequests, RemoveDirectoryRequestRoundTrip) {
  RemoveDirectoryRequest request;
  request.path = "/dir";
  request.recursive = true;
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const RemoveDirectoryRequest decoded =
      RemoveDirectoryRequest::Decode(reader).value();
  EXPECT_EQ(decoded.path, request.path);
  EXPECT_EQ(decoded.recursive, request.recursive);
}

TEST(MetaWireReplies, ServerListReplyRoundTrip) {
  ServerListReply reply;
  reply.servers.push_back(MakeServer("a", 1));
  reply.servers.push_back(MakeServer("b", 2));
  BinaryWriter writer;
  reply.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ServerListReply decoded = ServerListReply::Decode(reader).value();
  ASSERT_EQ(decoded.servers.size(), 2u);
  ExpectServerInfoEq(decoded.servers[0], reply.servers[0]);
  ExpectServerInfoEq(decoded.servers[1], reply.servers[1]);
}

TEST(MetaWireReplies, EmptyServerListReplyRoundTrip) {
  ServerListReply reply;
  BinaryWriter writer;
  reply.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(ServerListReply::Decode(reader).value().servers.empty());
}

TEST(MetaWireReplies, FileRecordReplyRoundTrip) {
  FileRecordReply reply;
  reply.record.meta = MakeArrayMeta();
  reply.record.servers = {MakeServer("s0", 10), MakeServer("s1", 11)};
  reply.record.distribution =
      layout::BrickDistribution::FromBrickLists(
          4, {{0, 2}, {1, 3}})
          .value();
  BinaryWriter writer;
  reply.Encode(writer);
  BinaryReader reader(writer.buffer());
  const FileRecordReply decoded = FileRecordReply::Decode(reader).value();
  ExpectFileMetaEq(decoded.record.meta, reply.record.meta);
  ASSERT_EQ(decoded.record.servers.size(), 2u);
  ExpectServerInfoEq(decoded.record.servers[0], reply.record.servers[0]);
  ExpectServerInfoEq(decoded.record.servers[1], reply.record.servers[1]);
  EXPECT_EQ(decoded.record.distribution.num_bricks(), 4u);
  EXPECT_EQ(decoded.record.distribution.num_servers(), 2u);
  EXPECT_EQ(decoded.record.distribution.bricks_on(0),
            (std::vector<layout::BrickId>{0, 2}));
  EXPECT_EQ(decoded.record.distribution.bricks_on(1),
            (std::vector<layout::BrickId>{1, 3}));
}

TEST(MetaWireReplies, BoolReplyRoundTrip) {
  for (const bool value : {false, true}) {
    BoolReply reply;
    reply.value = value;
    BinaryWriter writer;
    reply.Encode(writer);
    BinaryReader reader(writer.buffer());
    EXPECT_EQ(BoolReply::Decode(reader).value().value, value);
  }
}

TEST(MetaWireReplies, AccessSummaryReplyRoundTrip) {
  AccessSummaryReply reply;
  reply.summary.accesses = 3;
  reply.summary.requests = 12;
  reply.summary.transfer_bytes = 8192;
  reply.summary.useful_bytes = 2048;
  BinaryWriter writer;
  reply.Encode(writer);
  BinaryReader reader(writer.buffer());
  const AccessSummaryReply decoded = AccessSummaryReply::Decode(reader).value();
  EXPECT_EQ(decoded.summary.accesses, reply.summary.accesses);
  EXPECT_EQ(decoded.summary.requests, reply.summary.requests);
  EXPECT_EQ(decoded.summary.transfer_bytes, reply.summary.transfer_bytes);
  EXPECT_EQ(decoded.summary.useful_bytes, reply.summary.useful_bytes);
  EXPECT_DOUBLE_EQ(decoded.summary.efficiency(), 0.25);
}

TEST(MetaWireReplies, ListingReplyRoundTrip) {
  ListingReply reply;
  reply.listing.directories = {"sub1", "sub2"};
  reply.listing.files = {"a.dat", "b.dat", "c.dat"};
  BinaryWriter writer;
  reply.Encode(writer);
  BinaryReader reader(writer.buffer());
  const ListingReply decoded = ListingReply::Decode(reader).value();
  EXPECT_EQ(decoded.listing.directories, reply.listing.directories);
  EXPECT_EQ(decoded.listing.files, reply.listing.files);
}

TEST(MetaWireReplication, CreateFileRequestReplicaSectionRoundTrips) {
  CreateFileRequest request;
  request.meta = MakeArrayMeta();
  request.server_names = {"s0", "s1", "s2"};
  request.bricklists = {"0,3,6,9", "1,4,7,10", "2,5,8,11"};
  request.replica_bricklists = {{"1,4,7,10", "2,5,8,11", "0,3,6,9"}};
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  const CreateFileRequest decoded = CreateFileRequest::Decode(reader).value();
  EXPECT_EQ(decoded.replica_bricklists, request.replica_bricklists);
}

TEST(MetaWireReplication, UnreplicatedCreateFrameIsPreReplicationBytes) {
  // Backward compatibility pin: an R=1 request omits the trailing replica
  // section entirely, so old decoders read the frame unchanged — and old
  // frames (no trailing bytes) decode with no replicas.
  CreateFileRequest request;
  request.meta = MakeArrayMeta();
  request.server_names = {"s0", "s1"};
  request.bricklists = {"0,2", "1,3"};
  BinaryWriter with_field;
  request.Encode(with_field);
  BinaryReader reader(with_field.buffer());
  const CreateFileRequest decoded = CreateFileRequest::Decode(reader).value();
  EXPECT_TRUE(decoded.replica_bricklists.empty());
}

TEST(MetaWireReplication, CreateFileRequestMisSizedReplicaRankRejected) {
  // Every replica rank must carry one bricklist per server.
  CreateFileRequest request;
  request.meta = MakeArrayMeta();
  request.server_names = {"s0", "s1"};
  request.bricklists = {"0,2", "1,3"};
  request.replica_bricklists = {{"1,3"}};  // one list for two servers
  BinaryWriter writer;
  request.Encode(writer);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(CreateFileRequest::Decode(reader).ok());
}

TEST(MetaWireReplication, FileRecordReplyReplicasRoundTrip) {
  FileRecordReply reply;
  reply.record.meta = MakeArrayMeta();
  reply.record.servers = {MakeServer("s0", 10), MakeServer("s1", 11)};
  reply.record.distribution =
      layout::BrickDistribution::FromBrickLists(4, {{0, 2}, {1, 3}}).value();
  reply.record.replicas = {
      layout::BrickDistribution::FromBrickLists(4, {{1, 3}, {0, 2}}).value()};
  BinaryWriter writer;
  reply.Encode(writer);
  BinaryReader reader(writer.buffer());
  const FileRecordReply decoded = FileRecordReply::Decode(reader).value();
  EXPECT_EQ(decoded.record.replication(), 2u);
  ASSERT_EQ(decoded.record.replicas.size(), 1u);
  EXPECT_EQ(decoded.record.replicas[0].bricks_on(0),
            (std::vector<layout::BrickId>{1, 3}));
  EXPECT_EQ(decoded.record.replicas[0].bricks_on(1),
            (std::vector<layout::BrickId>{0, 2}));
}

TEST(MetaWireRobustness, TruncatedBodiesNeverCrash) {
  // Encode one of everything, then decode every strict prefix: each must
  // return an error (or, for a lucky prefix boundary, a valid value) and
  // never read past the buffer. ASan runs of this test are the real check.
  std::vector<Bytes> bodies;
  {
    BinaryWriter w;
    ServerRequest r;
    r.server = MakeServer("srv", 7);
    r.Encode(w);
    bodies.push_back(w.buffer());
  }
  {
    BinaryWriter w;
    CreateFileRequest r;
    r.meta = MakeArrayMeta();
    r.server_names = {"s0"};
    r.bricklists = {"0,1"};
    r.replica_bricklists = {{"0,1"}};
    r.Encode(w);
    bodies.push_back(w.buffer());
  }
  {
    BinaryWriter w;
    FileRecordReply r;
    r.record.meta = MakeArrayMeta();
    r.record.servers = {MakeServer("s0", 10)};
    r.record.distribution =
        layout::BrickDistribution::FromBrickLists(2, {{0, 1}}).value();
    r.record.replicas = {
        layout::BrickDistribution::FromBrickLists(2, {{0, 1}}).value()};
    r.Encode(w);
    bodies.push_back(w.buffer());
  }
  for (const Bytes& body : bodies) {
    for (std::size_t cut = 0; cut < body.size(); ++cut) {
      const Bytes prefix(body.begin(),
                         body.begin() + static_cast<std::ptrdiff_t>(cut));
      BinaryReader reader(prefix);
      // Try all three decoders; none may crash on any prefix.
      (void)ServerRequest::Decode(reader);
      BinaryReader reader2(prefix);
      (void)CreateFileRequest::Decode(reader2);
      BinaryReader reader3(prefix);
      (void)FileRecordReply::Decode(reader3);
    }
  }
}

}  // namespace
}  // namespace dpfs::client::meta_wire
