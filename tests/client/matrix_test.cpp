// The full options matrix: every file level × combination × read fetch
// granularity × dispatch mode, each doing a real write/read round trip over
// TCP. Catches interactions between independently-tested features.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs::client {
namespace {

// (level, combine, whole_brick_reads, parallel_dispatch)
using MatrixParam = std::tuple<int, bool, bool, bool>;

class OptionsMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static void SetUpTestSuite() {
    core::ClusterOptions options;
    options.num_servers = 3;
    cluster_ = core::LocalCluster::Start(std::move(options)).value().release();
    file_counter_ = 0;
  }
  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }

  static core::LocalCluster* cluster_;
  static int file_counter_;
};

core::LocalCluster* OptionsMatrixTest::cluster_ = nullptr;
int OptionsMatrixTest::file_counter_ = 0;

TEST_P(OptionsMatrixTest, RoundTripAndCrossCheck) {
  const auto [level, combine, whole_brick, parallel] = GetParam();
  auto fs = cluster_->fs();

  CreateOptions create;
  create.array_shape = {24, 36};
  create.element_size = 3;
  switch (level) {
    case 0:
      create.level = layout::FileLevel::kLinear;
      create.brick_bytes = 100;  // deliberately unaligned to elements
      break;
    case 1:
      create.level = layout::FileLevel::kMultidim;
      create.brick_shape = {7, 10};  // padded edge bricks
      break;
    case 2:
      create.level = layout::FileLevel::kArray;
      create.pattern = layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
      create.chunk_grid = {2, 3};
      break;
  }
  const std::string path = "/matrix" + std::to_string(file_counter_++);
  FileHandle handle = fs->Create(path, create).value();

  IoOptions io;
  io.combine = combine;
  io.whole_brick_reads = whole_brick;
  io.parallel_dispatch = parallel;

  SplitMix64 rng(level * 1000 + combine * 100 + whole_brick * 10 + parallel);
  const std::uint64_t total = 24 * 36 * 3;
  Bytes truth(total);
  for (std::uint8_t& b : truth) b = static_cast<std::uint8_t>(rng.NextU64());

  // Whole-array write, partial overwrite, then reads with the same options
  // and with the opposite options must agree.
  ASSERT_TRUE(fs->WriteRegion(handle, {{0, 0}, {24, 36}}, truth, io).ok());
  const layout::Region patch{{5, 11}, {9, 13}};
  Bytes patch_data(patch.num_elements() * 3);
  for (std::uint8_t& b : patch_data) {
    b = static_cast<std::uint8_t>(rng.NextU64());
  }
  ASSERT_TRUE(fs->WriteRegion(handle, patch, patch_data, io).ok());
  // Fold the patch into the truth.
  std::uint64_t cursor = 0;
  for (std::uint64_t r = 0; r < 9; ++r) {
    for (std::uint64_t c = 0; c < 13; ++c) {
      for (int byte = 0; byte < 3; ++byte) {
        truth[((r + 5) * 36 + (c + 11)) * 3 + byte] = patch_data[cursor++];
      }
    }
  }

  Bytes with_options(total);
  ASSERT_TRUE(
      fs->ReadRegion(handle, {{0, 0}, {24, 36}}, with_options, io).ok());
  EXPECT_EQ(with_options, truth);

  IoOptions opposite;
  opposite.combine = !combine;
  opposite.whole_brick_reads = !whole_brick;
  opposite.parallel_dispatch = !parallel;
  Bytes with_opposite(total);
  ASSERT_TRUE(
      fs->ReadRegion(handle, {{0, 0}, {24, 36}}, with_opposite, opposite)
          .ok());
  EXPECT_EQ(with_opposite, truth);
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  static constexpr const char* kLevels[] = {"Linear", "Multidim", "Array"};
  const auto [level, combine, whole_brick, parallel] = info.param;
  std::string name = kLevels[level];
  name += combine ? "Combined" : "PerBrick";
  name += whole_brick ? "Whole" : "Sieve";
  name += parallel ? "Par" : "Seq";
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllOptions, OptionsMatrixTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()),
                         MatrixName);

}  // namespace
}  // namespace dpfs::client
