// Replica ranks in DPFS-FILE-DISTRIBUTION (docs/METADATA_SCHEMA.md): rows
// carry a `replica` column, CreateFile/LookupFile round-trip per-rank
// distributions, and a pre-replication 4-column table is migrated in place
// on Attach with every existing row becoming rank 0.
#include <gtest/gtest.h>

#include "client/metadata.h"
#include "layout/replication.h"

namespace dpfs::client {
namespace {

class ReplicationMetadataTest : public ::testing::Test {
 protected:
  ReplicationMetadataTest() : db_(metadb::Database::OpenInMemory()) {
    manager_ = MetadataManager::Attach(db_).value();
    for (int s = 0; s < 3; ++s) {
      ServerInfo server;
      server.name = "s" + std::to_string(s);
      server.endpoint = {"127.0.0.1", static_cast<std::uint16_t>(9000 + s)};
      server.capacity_bytes = 1 << 30;
      server.performance = 1;
      EXPECT_TRUE(manager_->RegisterServer(server).ok());
    }
  }

  FileMeta MakeMeta(const std::string& path) {
    FileMeta meta;
    meta.path = path;
    meta.owner = "xhshen";
    meta.permission = 0644;
    meta.level = layout::FileLevel::kLinear;
    meta.size_bytes = 6 * 64;
    meta.brick_bytes = 64;
    return meta;
  }

  std::shared_ptr<metadb::Database> db_;
  std::unique_ptr<MetadataManager> manager_;
};

TEST_F(ReplicationMetadataTest, ReplicaRanksRoundTripThroughLookup) {
  layout::ReplicationSpec spec;
  spec.factor = 2;
  const layout::ReplicatedDistribution dist =
      layout::ReplicatedDistribution::Create(layout::PlacementPolicy::kGreedy,
                                             6, {1, 1, 1}, spec)
          .value();
  ASSERT_TRUE(manager_
                  ->CreateFile(MakeMeta("/r2"), {"s0", "s1", "s2"},
                               dist.primary(), {dist.rank(1)})
                  .ok());
  const FileRecord record = manager_->LookupFile("/r2").value();
  EXPECT_EQ(record.replication(), 2u);
  ASSERT_EQ(record.replicas.size(), 1u);
  for (layout::BrickId b = 0; b < 6; ++b) {
    EXPECT_EQ(record.distribution.server_for(b),
              dist.primary().server_for(b));
    EXPECT_EQ(record.replicas[0].server_for(b), dist.rank(1).server_for(b));
    EXPECT_EQ(record.rank_distribution(1).slot_for(b),
              dist.rank(1).slot_for(b));
  }
}

TEST_F(ReplicationMetadataTest, UnreplicatedFilesHaveNoReplicaRows) {
  const auto dist = layout::BrickDistribution::RoundRobin(6, 3).value();
  ASSERT_TRUE(
      manager_->CreateFile(MakeMeta("/r1"), {"s0", "s1", "s2"}, dist).ok());
  const FileRecord record = manager_->LookupFile("/r1").value();
  EXPECT_EQ(record.replication(), 1u);
  EXPECT_TRUE(record.replicas.empty());
  const auto rows =
      manager_->db()
          .Execute("SELECT replica FROM DPFS_FILE_DISTRIBUTION")
          .value();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows.GetInt(i, "replica").value(), 0);
  }
}

TEST_F(ReplicationMetadataTest, DeleteAndRenameCoverReplicaRows) {
  layout::ReplicationSpec spec;
  spec.factor = 3;
  const layout::ReplicatedDistribution dist =
      layout::ReplicatedDistribution::Create(
          layout::PlacementPolicy::kRoundRobin, 6, {1, 1, 1}, spec)
          .value();
  ASSERT_TRUE(manager_
                  ->CreateFile(MakeMeta("/f"), {"s0", "s1", "s2"},
                               dist.primary(), {dist.rank(1), dist.rank(2)})
                  .ok());
  ASSERT_TRUE(manager_->RenameFile("/f", "/g").ok());
  const FileRecord renamed = manager_->LookupFile("/g").value();
  EXPECT_EQ(renamed.replication(), 3u);
  ASSERT_TRUE(manager_->DeleteFile("/g").ok());
  const auto rows =
      manager_->db().Execute("SELECT * FROM DPFS_FILE_DISTRIBUTION").value();
  EXPECT_TRUE(rows.empty());
}

TEST_F(ReplicationMetadataTest, FourColumnTableIsMigratedOnAttach) {
  // Simulate a database written before the replica column existed: rebuild
  // DPFS_FILE_DISTRIBUTION with the old 4-column shape, keeping the rows.
  const auto dist = layout::BrickDistribution::RoundRobin(6, 3).value();
  ASSERT_TRUE(
      manager_->CreateFile(MakeMeta("/old"), {"s0", "s1", "s2"}, dist).ok());
  const auto saved =
      db_->Execute("SELECT filename, server, server_index, bricklist "
                   "FROM DPFS_FILE_DISTRIBUTION")
          .value();
  ASSERT_EQ(saved.size(), 3u);
  ASSERT_TRUE(db_->Execute("DROP TABLE DPFS_FILE_DISTRIBUTION").ok());
  ASSERT_TRUE(db_->Execute("CREATE TABLE DPFS_FILE_DISTRIBUTION ("
                           "  filename TEXT, server TEXT, server_index INT,"
                           "  bricklist TEXT)")
                  .ok());
  for (std::size_t i = 0; i < saved.size(); ++i) {
    ASSERT_TRUE(
        db_->Execute("INSERT INTO DPFS_FILE_DISTRIBUTION VALUES ('" +
                     saved.GetText(i, "filename").value() + "', '" +
                     saved.GetText(i, "server").value() + "', " +
                     std::to_string(saved.GetInt(i, "server_index").value()) +
                     ", '" + saved.GetText(i, "bricklist").value() + "')")
            .ok());
  }

  // Re-attach: EnsureTables must widen the table in place.
  manager_ = MetadataManager::Attach(db_).value();
  const auto widened =
      db_->Execute("SELECT replica FROM DPFS_FILE_DISTRIBUTION").value();
  ASSERT_EQ(widened.size(), 3u);
  for (std::size_t i = 0; i < widened.size(); ++i) {
    EXPECT_EQ(widened.GetInt(i, "replica").value(), 0);
  }
  const FileRecord record = manager_->LookupFile("/old").value();
  EXPECT_EQ(record.replication(), 1u);
  for (layout::BrickId b = 0; b < 6; ++b) {
    EXPECT_EQ(record.distribution.server_for(b), dist.server_for(b));
  }
}

}  // namespace
}  // namespace dpfs::client
