#include "client/conn_pool.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/temp_dir.h"
#include "server/io_server.h"

namespace dpfs::client {
namespace {

class ConnPoolTest : public ::testing::Test {
 protected:
  ConnPoolTest() : dir_(TempDir::Create("dpfs-pool").value()) {
    server::ServerOptions options;
    options.root_dir = dir_.path();
    server_ = server::IoServer::Start(std::move(options)).value();
  }

  TempDir dir_;
  std::unique_ptr<server::IoServer> server_;
  ConnectionPool pool_;
};

TEST_F(ConnPoolTest, AcquireDialsThenReuses) {
  {
    PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
    EXPECT_TRUE(conn->Ping().ok());
  }  // returned to pool
  EXPECT_EQ(pool_.idle_count(), 1u);
  {
    PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
    EXPECT_TRUE(conn->Ping().ok());
    EXPECT_EQ(pool_.idle_count(), 0u);  // checked out
  }
  EXPECT_EQ(pool_.idle_count(), 1u);
  // Only one session was ever dialed.
  EXPECT_EQ(server_->stats().sessions_accepted.load(), 1u);
}

TEST_F(ConnPoolTest, ConcurrentHoldersGetDistinctConnections) {
  {
    PooledConnection a = pool_.Acquire(server_->endpoint()).value();
    PooledConnection b = pool_.Acquire(server_->endpoint()).value();
    EXPECT_TRUE(a->Ping().ok());
    EXPECT_TRUE(b->Ping().ok());
  }
  EXPECT_EQ(pool_.idle_count(), 2u);
  EXPECT_EQ(server_->stats().sessions_accepted.load(), 2u);
}

TEST_F(ConnPoolTest, PoisonedConnectionIsDropped) {
  {
    PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
    conn.Poison();
  }
  EXPECT_EQ(pool_.idle_count(), 0u);
}

TEST_F(ConnPoolTest, ClearDropsIdleConnections) {
  { PooledConnection conn = pool_.Acquire(server_->endpoint()).value(); }
  EXPECT_EQ(pool_.idle_count(), 1u);
  pool_.Clear();
  EXPECT_EQ(pool_.idle_count(), 0u);
}

TEST_F(ConnPoolTest, AcquireFailsForDeadEndpoint) {
  const net::Endpoint endpoint = server_->endpoint();
  server_->Stop();
  const Result<PooledConnection> conn = pool_.Acquire(endpoint);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST_F(ConnPoolTest, ManyThreadsShareThePool) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Result<PooledConnection> conn = pool_.Acquire(server_->endpoint());
        if (!conn.ok() || !conn.value()->Ping().ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // The pool bounded the number of dialed sessions to the peak concurrency.
  EXPECT_LE(server_->stats().sessions_accepted.load(), 8u);
}

}  // namespace
}  // namespace dpfs::client
