// Pins the §4.2 "try again later" client semantics: which errors are
// retried, how many attempts max_retries buys, what the IoReport counters
// record, and that failed connections are never returned to the pool.
#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/cluster.h"

namespace dpfs {
namespace {

using client::CreateOptions;
using client::FileHandle;
using client::IoOptions;
using client::IoReport;

class RetryBackoffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions options;
    options.num_servers = 1;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();

    CreateOptions create;
    create.total_bytes = 256;
    create.brick_bytes = 256;  // one brick, one server: one wire request/op
    handle_ = fs_->Create("/retry.bin", create).value();
    data_ = Bytes(256, 0x5A);
    ASSERT_TRUE(fs_->WriteBytes(handle_, 0, data_).ok());
  }

  void TearDown() override { failpoint::DisarmAll(); }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<client::FileSystem> fs_;
  FileHandle handle_;
  Bytes data_;
};

TEST_F(RetryBackoffTest, TransientUnavailableIsRetriedAndRecovers) {
  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kUnavailable;
  spec.count = 2;  // first two attempts fail, third goes through
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 3;
  IoReport report;
  Bytes read(256);
  ASSERT_TRUE(fs_->ReadBytes(handle_, 0, read, io, &report).ok());
  EXPECT_EQ(read, data_);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.busy_retries, 0u);  // unavailable, not busy
  EXPECT_EQ(report.backoff_ms, 2u + 4u);  // linear: 2*1 + 2*2
  EXPECT_EQ(failpoint::HitCount("client.call"), 2u);
}

TEST_F(RetryBackoffTest, BusyRetriesAreCountedSeparately) {
  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kResourceExhausted;
  spec.count = 1;
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 2;
  IoReport report;
  Bytes read(256);
  ASSERT_TRUE(fs_->ReadBytes(handle_, 0, read, io, &report).ok());
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.busy_retries, 1u);
}

TEST_F(RetryBackoffTest, NonRetryableErrorFailsOnFirstAttempt) {
  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kIoError;
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 5;
  IoReport report;
  Bytes read(256);
  const Status status = fs_->ReadBytes(handle_, 0, read, io, &report);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(report.retries, 0u);  // kIoError is not transient
  EXPECT_EQ(failpoint::HitCount("client.call"), 1u);
}

TEST_F(RetryBackoffTest, RetryExhaustionIsVisibleInTheReport) {
  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kUnavailable;  // unlimited count: never recovers
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 2;
  IoReport report;
  Bytes read(256);
  const Status status = fs_->ReadBytes(handle_, 0, read, io, &report);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // All attempts failed, and the counters still made it into the report.
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.backoff_ms, 2u + 4u);
  EXPECT_EQ(failpoint::HitCount("client.call"), 3u);  // 1 + max_retries
}

TEST_F(RetryBackoffTest, MaxRetriesZeroMeansSingleAttempt) {
  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kUnavailable;
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 0;
  IoReport report;
  Bytes read(256);
  EXPECT_EQ(fs_->ReadBytes(handle_, 0, read, io, &report).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(failpoint::HitCount("client.call"), 1u);
}

TEST_F(RetryBackoffTest, BusyServerWithOneSessionSlotExhaustsThenRecovers) {
  // A real busy server, not a failpoint: max_sessions=1 and the one slot
  // held by a hog connection, so every client attempt is rejected busy
  // (§4.2) until the hog lets go.
  core::ClusterOptions options;
  options.num_servers = 1;
  options.max_sessions = 1;
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  const auto fs = cluster->fs();

  CreateOptions create;
  create.total_bytes = 128;
  create.brick_bytes = 128;
  FileHandle handle = fs->Create("/busy.bin", create).value();

  const net::Endpoint endpoint = cluster->server(0).endpoint();
  {
    client::PooledConnection hog =
        fs->connections().Acquire(endpoint).value();
    // Ping so the hog's session thread is provably up before the writer's
    // session is counted against max_sessions.
    ASSERT_TRUE(hog->Ping().ok());

    IoOptions io;
    io.max_retries = 2;
    IoReport report;
    const Status status = fs->WriteBytes(handle, 0, Bytes(128, 3), io,
                                         &report);
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(report.retries, 2u);
    EXPECT_EQ(report.busy_retries, 2u);
    // Busy-dropped connections were poisoned, never pooled.
    EXPECT_EQ(fs->connections().idle_count(), 0u);
    EXPECT_GE(cluster->server(0).stats().sessions_rejected_busy.load(), 3u);
  }
  // Drop the hog's pooled connection so its server session (the slot) ends.
  fs->connections().Clear();

  // Slot free again: the same write now succeeds and reads back intact.
  IoOptions io;
  io.max_retries = 4;
  IoReport report;
  ASSERT_TRUE(fs->WriteBytes(handle, 0, Bytes(128, 3), io, &report).ok());
  Bytes read(128);
  ASSERT_TRUE(fs->ReadBytes(handle, 0, read).ok());
  EXPECT_EQ(read, Bytes(128, 3));
}

TEST_F(RetryBackoffTest, FailedAttemptConnectionsAreNeverPooled) {
  // Each failed attempt poisons its connection; after exhaustion the pool
  // must hold nothing reusable.
  ASSERT_GE(fs_->connections().idle_count(), 1u);

  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kUnavailable;
  failpoint::Arm("client.call", spec);

  IoOptions io;
  io.max_retries = 3;
  Bytes read(256);
  ASSERT_FALSE(fs_->ReadBytes(handle_, 0, read, io).ok());
  EXPECT_EQ(fs_->connections().idle_count(), 0u);

  // And once the fault clears, the pool repopulates through normal use.
  failpoint::DisarmAll();
  ASSERT_TRUE(fs_->ReadBytes(handle_, 0, read).ok());
  EXPECT_EQ(read, data_);
  EXPECT_GE(fs_->connections().idle_count(), 1u);
}

TEST_F(RetryBackoffTest, RefusedConnectionIsRetriedAsUnavailable) {
  // "client.connect" simulates a connection refused at dial time — the
  // paper's dead-or-restarting workstation. Transient: retried.
  failpoint::Spec spec;
  spec.action = failpoint::Action::kReturnError;
  spec.code = StatusCode::kUnavailable;
  spec.count = 1;
  failpoint::Arm("client.connect", spec);

  IoOptions io;
  io.max_retries = 2;
  IoReport report;
  Bytes read(256);
  ASSERT_TRUE(fs_->ReadBytes(handle_, 0, read, io, &report).ok());
  EXPECT_EQ(read, data_);
  EXPECT_EQ(report.retries, 1u);
}

}  // namespace
}  // namespace dpfs
