#include "client/metadata.h"

#include <gtest/gtest.h>

namespace dpfs::client {
namespace {

class MetadataTest : public ::testing::Test {
 protected:
  MetadataTest() {
    std::shared_ptr<metadb::Database> db = metadb::Database::OpenInMemory();
    manager_ = MetadataManager::Attach(db).value();
  }

  ServerInfo MakeServer(const std::string& name, std::uint32_t performance) {
    ServerInfo server;
    server.name = name;
    server.endpoint = {"127.0.0.1", 9000};
    server.capacity_bytes = 500'000'000;
    server.performance = performance;
    return server;
  }

  /// A 2-brick linear file on the given servers.
  FileMeta MakeLinearMeta(const std::string& path) {
    FileMeta meta;
    meta.path = path;
    meta.owner = "xhshen";
    meta.permission = 0744;
    meta.level = layout::FileLevel::kLinear;
    meta.size_bytes = 128;
    meta.brick_bytes = 64;
    return meta;
  }

  std::unique_ptr<MetadataManager> manager_;
};

TEST_F(MetadataTest, TablesCreatedOnAttach) {
  EXPECT_TRUE(manager_->db().HasTable("DPFS_SERVER"));
  EXPECT_TRUE(manager_->db().HasTable("DPFS_FILE_DISTRIBUTION"));
  EXPECT_TRUE(manager_->db().HasTable("DPFS_DIRECTORY"));
  EXPECT_TRUE(manager_->db().HasTable("DPFS_FILE_ATTR"));
}

TEST_F(MetadataTest, AttachIsIdempotent) {
  // Re-attach to the same database must not fail on existing tables.
  std::shared_ptr<metadb::Database> db = metadb::Database::OpenInMemory();
  auto first = MetadataManager::Attach(db);
  ASSERT_TRUE(first.ok());
  auto second = MetadataManager::Attach(db);
  EXPECT_TRUE(second.ok());
}

TEST_F(MetadataTest, RegisterListLookupServers) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("beta.dpfs", 3)).ok());
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("alpha.dpfs", 1)).ok());
  const std::vector<ServerInfo> servers = manager_->ListServers().value();
  ASSERT_EQ(servers.size(), 2u);
  EXPECT_EQ(servers[0].name, "alpha.dpfs");  // sorted by name
  EXPECT_EQ(servers[1].performance, 3u);
  const ServerInfo looked_up = manager_->LookupServer("beta.dpfs").value();
  EXPECT_EQ(looked_up.capacity_bytes, 500'000'000u);
  EXPECT_FALSE(manager_->LookupServer("gamma.dpfs").ok());
}

TEST_F(MetadataTest, DuplicateServerRejected) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("a", 1)).ok());
  EXPECT_FALSE(manager_->RegisterServer(MakeServer("a", 2)).ok());
}

TEST_F(MetadataTest, UnregisterServer) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("a", 1)).ok());
  EXPECT_TRUE(manager_->UnregisterServer("a").ok());
  EXPECT_FALSE(manager_->UnregisterServer("a").ok());
}

TEST_F(MetadataTest, DirectoryTree) {
  EXPECT_TRUE(manager_->DirectoryExists("/").value());
  ASSERT_TRUE(manager_->MakeDirectory("/home").ok());
  ASSERT_TRUE(manager_->MakeDirectory("/home/xhshen").ok());
  EXPECT_TRUE(manager_->DirectoryExists("/home/xhshen").value());

  const auto root = manager_->ListDirectory("/").value();
  ASSERT_EQ(root.directories.size(), 1u);
  EXPECT_EQ(root.directories[0], "home");

  // Parent must exist.
  EXPECT_FALSE(manager_->MakeDirectory("/no/parent").ok());
  // Duplicates rejected.
  EXPECT_FALSE(manager_->MakeDirectory("/home").ok());
}

TEST_F(MetadataTest, RemoveDirectory) {
  ASSERT_TRUE(manager_->MakeDirectory("/a").ok());
  ASSERT_TRUE(manager_->MakeDirectory("/a/b").ok());
  // Non-empty without recursive fails.
  EXPECT_FALSE(manager_->RemoveDirectory("/a", false).ok());
  EXPECT_TRUE(manager_->RemoveDirectory("/a/b", false).ok());
  EXPECT_TRUE(manager_->RemoveDirectory("/a", false).ok());
  EXPECT_FALSE(manager_->DirectoryExists("/a").value());
  // Root cannot be removed.
  EXPECT_FALSE(manager_->RemoveDirectory("/", true).ok());
}

TEST_F(MetadataTest, CreateAndLookupFile) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s1", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 2).value();
  ASSERT_TRUE(
      manager_->CreateFile(MakeLinearMeta("/data.bin"), {"s0", "s1"}, dist)
          .ok());

  const FileRecord record = manager_->LookupFile("/data.bin").value();
  EXPECT_EQ(record.meta.owner, "xhshen");
  EXPECT_EQ(record.meta.level, layout::FileLevel::kLinear);
  EXPECT_EQ(record.meta.size_bytes, 128u);
  EXPECT_EQ(record.meta.brick_bytes, 64u);
  ASSERT_EQ(record.servers.size(), 2u);
  EXPECT_EQ(record.servers[0].name, "s0");
  EXPECT_EQ(record.distribution.server_for(0), 0u);
  EXPECT_EQ(record.distribution.server_for(1), 1u);

  // The file is linked into its parent directory.
  const auto listing = manager_->ListDirectory("/").value();
  ASSERT_EQ(listing.files.size(), 1u);
  EXPECT_EQ(listing.files[0], "data.bin");
}

TEST_F(MetadataTest, CreateFileInMissingDirectoryFails) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  EXPECT_FALSE(
      manager_->CreateFile(MakeLinearMeta("/no/dir/f"), {"s0"}, dist).ok());
  // The failed transaction must leave no attribute row behind.
  EXPECT_FALSE(manager_->FileExists("/no/dir/f").value());
}

TEST_F(MetadataTest, DuplicateFileRejected) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  ASSERT_TRUE(manager_->CreateFile(MakeLinearMeta("/f"), {"s0"}, dist).ok());
  EXPECT_FALSE(manager_->CreateFile(MakeLinearMeta("/f"), {"s0"}, dist).ok());
}

TEST_F(MetadataTest, MultidimFileRoundTrip) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  FileMeta meta;
  meta.path = "/array.dpfs";
  meta.owner = "me";
  meta.level = layout::FileLevel::kMultidim;
  meta.element_size = 8;
  meta.array_shape = {256, 256};
  meta.brick_shape = {64, 64};
  meta.size_bytes = 256 * 256 * 8;
  const auto map = meta.MakeBrickMap().value();
  EXPECT_EQ(map.num_bricks(), 16u);
  const auto dist = layout::BrickDistribution::RoundRobin(16, 1).value();
  ASSERT_TRUE(manager_->CreateFile(meta, {"s0"}, dist).ok());

  const FileRecord record = manager_->LookupFile("/array.dpfs").value();
  EXPECT_EQ(record.meta.level, layout::FileLevel::kMultidim);
  EXPECT_EQ(record.meta.array_shape, (layout::Shape{256, 256}));
  EXPECT_EQ(record.meta.brick_shape, (layout::Shape{64, 64}));
  EXPECT_EQ(record.meta.element_size, 8u);
  EXPECT_EQ(record.meta.MakeBrickMap().value().num_bricks(), 16u);
}

TEST_F(MetadataTest, ArrayFileRoundTripWithPattern) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  FileMeta meta;
  meta.path = "/chunked.dpfs";
  meta.owner = "me";
  meta.level = layout::FileLevel::kArray;
  meta.element_size = 1;
  meta.array_shape = {64, 64};
  meta.pattern = layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  meta.chunk_grid = {2, 2};
  meta.size_bytes = 64 * 64;
  const auto dist = layout::BrickDistribution::RoundRobin(4, 1).value();
  ASSERT_TRUE(manager_->CreateFile(meta, {"s0"}, dist).ok());

  const FileRecord record = manager_->LookupFile("/chunked.dpfs").value();
  ASSERT_TRUE(record.meta.pattern.has_value());
  EXPECT_EQ(record.meta.pattern->ToString(), "(BLOCK,BLOCK)");
  EXPECT_EQ(record.meta.chunk_grid, (layout::Shape{2, 2}));
}

TEST_F(MetadataTest, GreedyDistributionBricklistSurvivesRoundTrip) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("fast", 1)).ok());
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("slow", 3)).ok());
  FileMeta meta = MakeLinearMeta("/g");
  meta.size_bytes = 32 * 64;
  const auto dist = layout::BrickDistribution::Greedy(32, {1, 3}).value();
  ASSERT_TRUE(manager_->CreateFile(meta, {"fast", "slow"}, dist).ok());
  const FileRecord record = manager_->LookupFile("/g").value();
  for (layout::BrickId brick = 0; brick < 32; ++brick) {
    EXPECT_EQ(record.distribution.server_for(brick), dist.server_for(brick));
    EXPECT_EQ(record.distribution.slot_for(brick), dist.slot_for(brick));
  }
}

TEST_F(MetadataTest, UpdateFileSize) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  ASSERT_TRUE(manager_->CreateFile(MakeLinearMeta("/f"), {"s0"}, dist).ok());
  ASSERT_TRUE(manager_->UpdateFileSize("/f", 100).ok());
  EXPECT_EQ(manager_->LookupFile("/f").value().meta.size_bytes, 100u);
  // Growing past the striped capacity (2 bricks x 64 bytes) is rejected —
  // bricklists are fixed at creation.
  EXPECT_EQ(manager_->UpdateFileSize("/f", 999).code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(manager_->UpdateFileSize("/nope", 1).ok());
}

TEST_F(MetadataTest, DeleteFileCleansAllTables) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  ASSERT_TRUE(manager_->CreateFile(MakeLinearMeta("/f"), {"s0"}, dist).ok());
  ASSERT_TRUE(manager_->DeleteFile("/f").ok());
  EXPECT_FALSE(manager_->FileExists("/f").value());
  EXPECT_FALSE(manager_->LookupFile("/f").ok());
  EXPECT_TRUE(manager_->ListDirectory("/").value().files.empty());
  // Distribution rows are gone too.
  const auto rows = manager_->db()
                        .Execute("SELECT * FROM DPFS_FILE_DISTRIBUTION")
                        .value();
  EXPECT_TRUE(rows.empty());
}

TEST_F(MetadataTest, RecursiveRemoveDirectoryDeletesFiles) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  ASSERT_TRUE(manager_->MakeDirectory("/proj").ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  ASSERT_TRUE(
      manager_->CreateFile(MakeLinearMeta("/proj/f1"), {"s0"}, dist).ok());
  ASSERT_TRUE(manager_->MakeDirectory("/proj/sub").ok());
  ASSERT_TRUE(
      manager_->CreateFile(MakeLinearMeta("/proj/sub/f2"), {"s0"}, dist).ok());
  ASSERT_TRUE(manager_->RemoveDirectory("/proj", true).ok());
  EXPECT_FALSE(manager_->DirectoryExists("/proj").value());
  EXPECT_FALSE(manager_->FileExists("/proj/f1").value());
  EXPECT_FALSE(manager_->FileExists("/proj/sub/f2").value());
}

TEST_F(MetadataTest, AccessLogFollowsRenameAndDelete) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  ASSERT_TRUE(manager_->CreateFile(MakeLinearMeta("/f"), {"s0"}, dist).ok());
  ASSERT_TRUE(manager_->LogAccess("/f", false, 4, 1000, 500).ok());
  ASSERT_TRUE(manager_->LogAccess("/f", true, 2, 500, 500).ok());
  EXPECT_EQ(manager_->SummarizeAccess("/f").value().accesses, 2u);

  // Rename moves the observations to the new name.
  ASSERT_TRUE(manager_->RenameFile("/f", "/g").ok());
  EXPECT_EQ(manager_->SummarizeAccess("/f").value().accesses, 0u);
  const auto summary = manager_->SummarizeAccess("/g").value();
  EXPECT_EQ(summary.accesses, 2u);
  EXPECT_EQ(summary.transfer_bytes, 1500u);
  EXPECT_EQ(summary.useful_bytes, 1000u);

  // Delete drops them.
  ASSERT_TRUE(manager_->DeleteFile("/g").ok());
  EXPECT_EQ(manager_->SummarizeAccess("/g").value().accesses, 0u);
}

TEST_F(MetadataTest, MetadataRenameUpdatesAllTables) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  ASSERT_TRUE(manager_->MakeDirectory("/dst").ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  ASSERT_TRUE(
      manager_->CreateFile(MakeLinearMeta("/orig"), {"s0"}, dist).ok());
  ASSERT_TRUE(manager_->RenameFile("/orig", "/dst/moved").ok());
  EXPECT_FALSE(manager_->FileExists("/orig").value());
  const client::FileRecord record =
      manager_->LookupFile("/dst/moved").value();
  EXPECT_EQ(record.meta.path, "/dst/moved");
  EXPECT_EQ(record.distribution.num_bricks(), 2u);
  EXPECT_TRUE(manager_->ListDirectory("/").value().files.empty());
  EXPECT_EQ(manager_->ListDirectory("/dst").value().files.size(), 1u);
  // Preconditions enforced.
  EXPECT_FALSE(manager_->RenameFile("/missing", "/x").ok());
  EXPECT_FALSE(manager_->RenameFile("/dst/moved", "/dst").ok());  // dir
}

TEST_F(MetadataTest, PathsAreNormalized) {
  ASSERT_TRUE(manager_->MakeDirectory("/home").ok());
  EXPECT_TRUE(manager_->DirectoryExists("//home/").value());
  EXPECT_TRUE(manager_->DirectoryExists("/home/./").value());
  EXPECT_TRUE(manager_->DirectoryExists("/x/../home").value());
}

TEST_F(MetadataTest, FileNamesWithQuotesAreSafe) {
  ASSERT_TRUE(manager_->RegisterServer(MakeServer("s0", 1)).ok());
  const auto dist = layout::BrickDistribution::RoundRobin(2, 1).value();
  FileMeta meta = MakeLinearMeta("/it's a file");
  ASSERT_TRUE(manager_->CreateFile(meta, {"s0"}, dist).ok());
  EXPECT_TRUE(manager_->FileExists("/it's a file").value());
  const FileRecord record = manager_->LookupFile("/it's a file").value();
  EXPECT_EQ(record.meta.path, "/it's a file");
}

}  // namespace
}  // namespace dpfs::client
