// FileSystem API tests against a real in-process cluster: every byte here
// travels over loopback TCP to IoServer subfile stores.
#include "client/file_system.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace dpfs::client {
namespace {

Bytes PatternBytes(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.NextU64());
  }
  return data;
}

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() {
    core::ClusterOptions options;
    options.num_servers = 4;
    cluster_ = core::LocalCluster::Start(std::move(options)).value();
    fs_ = cluster_->fs();
  }

  std::unique_ptr<core::LocalCluster> cluster_;
  std::shared_ptr<FileSystem> fs_;
};

TEST_F(FileSystemTest, LinearCreateWriteReadBytes) {
  CreateOptions options;
  options.level = layout::FileLevel::kLinear;
  options.total_bytes = 10000;
  options.brick_bytes = 1024;
  FileHandle handle = fs_->Create("/lin.bin", options).value();

  const Bytes data = PatternBytes(10000, 1);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data).ok());
  Bytes read(10000);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, read).ok());
  EXPECT_EQ(read, data);
}

TEST_F(FileSystemTest, PartialReadAtOffsetAcrossBricks) {
  CreateOptions options;
  options.total_bytes = 4096;
  options.brick_bytes = 256;
  FileHandle handle = fs_->Create("/f", options).value();
  const Bytes data = PatternBytes(4096, 2);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data).ok());

  Bytes window(700);
  ASSERT_TRUE(fs_->ReadBytes(handle, 200, window).ok());
  EXPECT_TRUE(std::equal(window.begin(), window.end(), data.begin() + 200));
}

TEST_F(FileSystemTest, WritePastCapacityRejected) {
  CreateOptions options;
  options.total_bytes = 100;
  FileHandle handle = fs_->Create("/tiny", options).value();
  const Bytes data(101, 0);
  EXPECT_EQ(fs_->WriteBytes(handle, 0, data).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(fs_->WriteBytes(handle, 50, Bytes(51, 0)).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(fs_->WriteBytes(handle, 50, Bytes(50, 0)).ok());
}

TEST_F(FileSystemTest, CreateRequiresSize) {
  CreateOptions options;  // neither total_bytes nor array_shape
  EXPECT_FALSE(fs_->Create("/f", options).ok());
}

TEST_F(FileSystemTest, CreateInMissingDirectoryFails) {
  CreateOptions options;
  options.total_bytes = 10;
  EXPECT_FALSE(fs_->Create("/no/such/dir/f", options).ok());
}

TEST_F(FileSystemTest, OpenReturnsSameGeometry) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.element_size = 4;
  options.array_shape = {64, 64};
  options.brick_shape = {16, 16};
  const FileHandle created = fs_->Create("/m", options).value();
  const FileHandle opened = fs_->Open("/m").value();
  EXPECT_EQ(opened.map.num_bricks(), created.map.num_bricks());
  EXPECT_EQ(opened.map.brick_bytes(), created.map.brick_bytes());
  EXPECT_EQ(opened.meta().array_shape, (layout::Shape{64, 64}));
  for (layout::BrickId b = 0; b < created.map.num_bricks(); ++b) {
    EXPECT_EQ(opened.record.distribution.server_for(b),
              created.record.distribution.server_for(b));
  }
}

TEST_F(FileSystemTest, MultidimRegionWriteReadRoundTrip) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {32, 32};
  options.brick_shape = {8, 8};
  FileHandle handle = fs_->Create("/grid", options).value();

  // Write the whole array, then read back an interior region.
  const Bytes all = PatternBytes(32 * 32, 3);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {32, 32}}, all).ok());

  const layout::Region window{{5, 7}, {10, 12}};
  Bytes read(10 * 12);
  ASSERT_TRUE(fs_->ReadRegion(handle, window, read).ok());
  for (std::uint64_t r = 0; r < 10; ++r) {
    for (std::uint64_t c = 0; c < 12; ++c) {
      EXPECT_EQ(read[r * 12 + c], all[(r + 5) * 32 + (c + 7)])
          << "(" << r << "," << c << ")";
    }
  }
}

TEST_F(FileSystemTest, MultidimColumnAccess) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {64, 64};
  options.brick_shape = {16, 16};
  FileHandle handle = fs_->Create("/cols", options).value();
  const Bytes all = PatternBytes(64 * 64, 4);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {64, 64}}, all).ok());

  Bytes column(64);
  ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 13}, {64, 1}}, column).ok());
  for (std::uint64_t r = 0; r < 64; ++r) {
    EXPECT_EQ(column[r], all[r * 64 + 13]) << "row " << r;
  }
}

TEST_F(FileSystemTest, DisjointRegionWritesCompose) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {16, 16};
  options.brick_shape = {4, 4};
  FileHandle handle = fs_->Create("/quad", options).value();

  // Four clients write four quadrants.
  for (std::uint32_t q = 0; q < 4; ++q) {
    const layout::Region quadrant{{(q / 2) * 8, (q % 2) * 8}, {8, 8}};
    const Bytes data(64, static_cast<std::uint8_t>(q + 1));
    handle.client_id = q;
    ASSERT_TRUE(fs_->WriteRegion(handle, quadrant, data).ok());
  }
  Bytes all(256);
  ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 0}, {16, 16}}, all).ok());
  EXPECT_EQ(all[0], 1);
  EXPECT_EQ(all[15], 2);
  EXPECT_EQ(all[8 * 16], 3);
  EXPECT_EQ(all[8 * 16 + 15], 4);
}

TEST_F(FileSystemTest, ArrayLevelChunkCheckpoint) {
  CreateOptions options;
  options.level = layout::FileLevel::kArray;
  options.array_shape = {32, 32};
  options.pattern = layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  options.num_chunks = 4;
  FileHandle handle = fs_->Create("/ckpt", options).value();
  EXPECT_EQ(handle.map.num_bricks(), 4u);

  const layout::HpfPattern pattern = *handle.meta().pattern;
  layout::ProcessGrid grid;
  grid.grid = handle.meta().chunk_grid;
  std::vector<Bytes> chunks;
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    const layout::Region chunk =
        layout::ChunkForProcess({32, 32}, pattern, grid, rank).value();
    chunks.push_back(PatternBytes(chunk.num_elements(), 100 + rank));
    handle.client_id = static_cast<std::uint32_t>(rank);
    IoReport report;
    ASSERT_TRUE(fs_->WriteRegion(handle, chunk, chunks.back(), {}, &report)
                    .ok());
    // A chunk is one brick: exactly one request (§3.3).
    EXPECT_EQ(report.requests, 1u);
  }
  for (std::uint64_t rank = 0; rank < 4; ++rank) {
    const layout::Region chunk =
        layout::ChunkForProcess({32, 32}, pattern, grid, rank).value();
    Bytes restored(chunk.num_elements());
    ASSERT_TRUE(fs_->ReadRegion(handle, chunk, restored).ok());
    EXPECT_EQ(restored, chunks[rank]);
  }
}

TEST_F(FileSystemTest, ReadRegionBufferSizeChecked) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {8, 8};
  options.brick_shape = {4, 4};
  FileHandle handle = fs_->Create("/s", options).value();
  Bytes wrong(63);
  EXPECT_FALSE(fs_->ReadRegion(handle, {{0, 0}, {8, 8}}, wrong).ok());
  Bytes data(63);
  EXPECT_FALSE(fs_->WriteRegion(handle, {{0, 0}, {8, 8}}, data).ok());
}

TEST_F(FileSystemTest, DatatypeVectorColumnRoundTrip) {
  // An 8x8 byte matrix stored as a linear file; access column 3 via a
  // derived vector datatype (the MPI-IO idiom from §6).
  CreateOptions options;
  options.total_bytes = 64;
  options.brick_bytes = 16;
  FileHandle handle = fs_->Create("/mat", options).value();
  const Bytes matrix = PatternBytes(64, 5);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, matrix).ok());

  const Datatype column = Datatype::Vector(8, 1, 8, Datatype::Bytes(1)).value();
  Bytes col(8);
  ASSERT_TRUE(fs_->ReadType(handle, 3, column, col).ok());
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(col[r], matrix[r * 8 + 3]);
  }

  // Overwrite the column and verify neighbours are untouched.
  Bytes new_col(8, 0xEE);
  ASSERT_TRUE(fs_->WriteType(handle, 3, column, new_col).ok());
  Bytes after(64);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, after).ok());
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      if (c == 3) {
        EXPECT_EQ(after[r * 8 + c], 0xEE);
      } else {
        EXPECT_EQ(after[r * 8 + c], matrix[r * 8 + c]);
      }
    }
  }
}

TEST_F(FileSystemTest, SubarrayDatatypeMatchesRegionRead) {
  // A linear file holding a flattened 32x32 array: reading a subarray via
  // the datatype path must agree with the region path.
  CreateOptions options;
  options.level = layout::FileLevel::kLinear;
  options.array_shape = {32, 32};
  options.brick_bytes = 128;
  FileHandle handle = fs_->Create("/sub", options).value();
  const Bytes all = PatternBytes(32 * 32, 31);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {32, 32}}, all).ok());

  const Datatype subarray =
      Datatype::Subarray({32, 32}, {5, 7}, {10, 12}, 1).value();
  Bytes via_type(subarray.size());
  ASSERT_TRUE(fs_->ReadType(handle, 0, subarray, via_type).ok());

  Bytes via_region(10 * 12);
  ASSERT_TRUE(fs_->ReadRegion(handle, {{5, 7}, {10, 12}}, via_region).ok());
  EXPECT_EQ(via_type, via_region);
}

TEST_F(FileSystemTest, ListIoAgreesWithPerExtentPath) {
  // The same datatype access with and without IoOptions::list_io must
  // produce identical bytes; list I/O only changes how the extents travel
  // (docs/NONCONTIGUOUS_IO.md). Stride 24 over 64-byte bricks makes the
  // extents split across bricks, servers, and batch boundaries.
  CreateOptions options;
  options.total_bytes = 4096;
  options.brick_bytes = 64;
  FileHandle handle = fs_->Create("/listio", options).value();
  const Bytes base = PatternBytes(4096, 77);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, base).ok());

  const Datatype pattern =
      Datatype::Vector(128, 10, 24, Datatype::Bytes(1)).value();
  Bytes per_extent(pattern.size());
  ASSERT_TRUE(fs_->ReadType(handle, 5, pattern, per_extent).ok());
  IoOptions list;
  list.list_io = true;
  Bytes via_list(pattern.size());
  IoReport report;
  ASSERT_TRUE(fs_->ReadType(handle, 5, pattern, via_list, list, &report).ok());
  EXPECT_EQ(via_list, per_extent);
  // Combined per-server requests: at most one per server here.
  EXPECT_LE(report.requests, 4u);

  // Writes through both paths land identically.
  const Bytes payload = PatternBytes(pattern.size(), 78);
  ASSERT_TRUE(fs_->WriteType(handle, 5, pattern, payload, list).ok());
  Bytes after_list(4096);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, after_list).ok());
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, base).ok());
  ASSERT_TRUE(fs_->WriteType(handle, 5, pattern, payload).ok());
  Bytes after_plain(4096);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, after_plain).ok());
  EXPECT_EQ(after_list, after_plain);
}

TEST_F(FileSystemTest, ListIoRespectsRequestBatching) {
  // A tiny max_request_bytes forces the executor to split one server's
  // extent list into several wire requests; bytes must still round-trip.
  CreateOptions options;
  options.total_bytes = 8192;
  options.brick_bytes = 1024;
  FileHandle handle = fs_->Create("/batched", options).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(8192, 0x11)).ok());

  const Datatype pattern =
      Datatype::Vector(64, 16, 128, Datatype::Bytes(1)).value();
  IoOptions list;
  list.list_io = true;
  list.max_request_bytes = 64;  // 4 extents per wire request
  const Bytes payload = PatternBytes(pattern.size(), 79);
  metrics::Counter& wire_writes =
      metrics::GetCounter("io_server.requests.list_write");
  const std::uint64_t writes_before = wire_writes.value();
  ASSERT_TRUE(fs_->WriteType(handle, 0, pattern, payload, list).ok());
  // 64 extents over 4 servers at 4 extents per frame: more wire requests
  // than servers proves the executor split the batches.
  EXPECT_GT(wire_writes.value() - writes_before, 4u);

  Bytes back(pattern.size());
  ASSERT_TRUE(fs_->ReadType(handle, 0, pattern, back, list).ok());
  EXPECT_EQ(back, payload);
}

TEST_F(FileSystemTest, ListIoRejectsNonLinearFiles) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {16, 16};
  options.brick_shape = {4, 4};
  FileHandle handle = fs_->Create("/md", options).value();
  const Datatype type = Datatype::Vector(4, 2, 8, Datatype::Bytes(1)).value();
  IoOptions list;
  list.list_io = true;
  Bytes buf(type.size());
  EXPECT_FALSE(fs_->ReadType(handle, 0, type, buf, list).ok());
}

TEST_F(FileSystemTest, DatatypeExtentBoundsChecked) {
  CreateOptions options;
  options.total_bytes = 64;
  FileHandle handle = fs_->Create("/b", options).value();
  const Datatype type = Datatype::Vector(8, 1, 8, Datatype::Bytes(1)).value();
  Bytes buf(8);
  // extent of the vector is 57 bytes; base 8 would end at 65 > 64.
  EXPECT_FALSE(fs_->ReadType(handle, 8, type, buf).ok());
  EXPECT_TRUE(fs_->ReadType(handle, 7, type, buf).ok());
}

TEST_F(FileSystemTest, RemoveDeletesSubfilesAndMetadata) {
  CreateOptions options;
  options.total_bytes = 1024;
  options.brick_bytes = 64;
  FileHandle handle = fs_->Create("/gone", options).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(1024, 7)).ok());
  ASSERT_TRUE(fs_->Remove("/gone").ok());
  EXPECT_FALSE(fs_->Open("/gone").ok());
  // Server-side subfiles are removed too.
  for (std::size_t s = 0; s < cluster_->num_servers(); ++s) {
    EXPECT_FALSE(cluster_->server(s).store().Stat("/gone").value().exists);
  }
  // Removing twice fails cleanly.
  EXPECT_FALSE(fs_->Remove("/gone").ok());
}

TEST_F(FileSystemTest, IoReportCountsRequestsAndBytes) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {16, 16};
  options.brick_shape = {4, 4};  // 16 bricks over 4 servers
  FileHandle handle = fs_->Create("/r", options).value();
  const Bytes all = PatternBytes(256, 6);

  IoReport combined_report;
  IoOptions combined;
  combined.combine = true;
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {16, 16}}, all, combined,
                               &combined_report)
                  .ok());
  EXPECT_EQ(combined_report.requests, 4u);  // one per server
  EXPECT_EQ(combined_report.useful_bytes, 256u);

  IoReport uncombined_report;
  IoOptions uncombined;
  uncombined.combine = false;
  Bytes read(256);
  ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 0}, {16, 16}}, read, uncombined,
                              &uncombined_report)
                  .ok());
  EXPECT_EQ(uncombined_report.requests, 16u);  // one per brick
  EXPECT_EQ(read, all);
}

TEST_F(FileSystemTest, CombinedAndUncombinedReadsAgree) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {24, 24};
  options.brick_shape = {6, 6};
  FileHandle handle = fs_->Create("/agree", options).value();
  const Bytes all = PatternBytes(24 * 24, 7);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {24, 24}}, all).ok());

  const layout::Region window{{3, 2}, {17, 19}};
  Bytes a(17 * 19);
  Bytes b(17 * 19);
  IoOptions combined;
  combined.combine = true;
  IoOptions uncombined;
  uncombined.combine = false;
  ASSERT_TRUE(fs_->ReadRegion(handle, window, a, combined).ok());
  ASSERT_TRUE(fs_->ReadRegion(handle, window, b, uncombined).ok());
  EXPECT_EQ(a, b);
}

TEST_F(FileSystemTest, SieveReadsReturnIdenticalDataWithLessTransfer) {
  // Column access through a linear-array file: the worst case for
  // whole-brick reads, the best case for sieve reads.
  CreateOptions options;
  options.level = layout::FileLevel::kLinear;
  options.array_shape = {64, 64};
  options.brick_bytes = 64;  // one row per brick
  FileHandle handle = fs_->Create("/sieve", options).value();
  const Bytes all = PatternBytes(64 * 64, 21);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {64, 64}}, all).ok());

  const layout::Region column{{0, 30}, {64, 2}};
  Bytes whole(128);
  Bytes sieve(128);
  IoOptions whole_options;
  whole_options.whole_brick_reads = true;
  IoOptions sieve_options;
  sieve_options.whole_brick_reads = false;
  IoReport whole_report;
  IoReport sieve_report;
  ASSERT_TRUE(
      fs_->ReadRegion(handle, column, whole, whole_options, &whole_report)
          .ok());
  ASSERT_TRUE(
      fs_->ReadRegion(handle, column, sieve, sieve_options, &sieve_report)
          .ok());
  EXPECT_EQ(whole, sieve);
  EXPECT_EQ(sieve_report.useful_bytes, whole_report.useful_bytes);
  // Whole-brick: 64 bricks x 64 bytes; sieve: exactly the 128 useful bytes.
  EXPECT_EQ(whole_report.transfer_bytes, 64u * 64u);
  EXPECT_EQ(sieve_report.transfer_bytes, 128u);
}

TEST_F(FileSystemTest, SieveReadsWorkOnMultidimAndByteAccess) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {32, 32};
  options.brick_shape = {8, 8};
  FileHandle handle = fs_->Create("/sieve2", options).value();
  const Bytes all = PatternBytes(32 * 32, 22);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {32, 32}}, all).ok());

  IoOptions sieve_options;
  sieve_options.whole_brick_reads = false;
  Bytes window(5 * 7);
  ASSERT_TRUE(
      fs_->ReadRegion(handle, {{3, 9}, {5, 7}}, window, sieve_options).ok());
  for (std::uint64_t r = 0; r < 5; ++r) {
    for (std::uint64_t c = 0; c < 7; ++c) {
      EXPECT_EQ(window[r * 7 + c], all[(r + 3) * 32 + (c + 9)]);
    }
  }
}

TEST_F(FileSystemTest, SuggestedIoNodesLimitsServers) {
  CreateOptions options;
  options.total_bytes = 1024;
  options.brick_bytes = 64;
  options.suggested_io_nodes = 2;
  const FileHandle handle = fs_->Create("/two", options).value();
  EXPECT_EQ(handle.record.servers.size(), 2u);
  EXPECT_EQ(handle.record.distribution.num_servers(), 2u);
}

TEST_F(FileSystemTest, ParallelDispatchMatchesSequential) {
  CreateOptions options;
  options.level = layout::FileLevel::kMultidim;
  options.array_shape = {64, 64};
  options.brick_shape = {8, 8};
  FileHandle handle = fs_->Create("/pd.dpfs", options).value();
  const Bytes all = PatternBytes(64 * 64, 77);

  IoOptions parallel;
  parallel.parallel_dispatch = true;
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {64, 64}}, all, parallel).ok());

  Bytes sequential_read(64 * 64);
  Bytes parallel_read(64 * 64);
  ASSERT_TRUE(
      fs_->ReadRegion(handle, {{0, 0}, {64, 64}}, sequential_read).ok());
  IoReport report;
  ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 0}, {64, 64}}, parallel_read,
                              parallel, &report)
                  .ok());
  EXPECT_EQ(sequential_read, all);
  EXPECT_EQ(parallel_read, all);
  EXPECT_EQ(report.requests, 4u);  // one combined request per server
}

TEST_F(FileSystemTest, ParallelDispatchSurfacesErrors) {
  CreateOptions options;
  options.total_bytes = 4096;
  options.brick_bytes = 256;
  FileHandle handle = fs_->Create("/pd-err", options).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(4096, 1)).ok());
  cluster_->server(2).Stop();
  fs_->connections().Clear();
  IoOptions parallel;
  parallel.parallel_dispatch = true;
  Bytes read(4096);
  const Status status = fs_->ReadBytes(handle, 0, read, parallel);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(FileSystemTest, CloseResetsHandle) {
  CreateOptions options;
  options.total_bytes = 128;
  FileHandle handle = fs_->Create("/closable", options).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(128, 5)).ok());
  FileSystem::Close(handle);
  EXPECT_EQ(handle.map.num_bricks(), 0u);
  EXPECT_TRUE(handle.meta().path.empty());
  // The file itself is unaffected: reopening works.
  FileHandle reopened = fs_->Open("/closable").value();
  Bytes read(128);
  ASSERT_TRUE(fs_->ReadBytes(reopened, 0, read).ok());
  EXPECT_EQ(read, Bytes(128, 5));
}

TEST_F(FileSystemTest, RequestBatchingSplitsLargeTransfers) {
  CreateOptions options;
  options.total_bytes = 8192;
  options.brick_bytes = 512;  // 16 bricks over 4 servers
  FileHandle handle = fs_->Create("/batched", options).value();
  const Bytes data = PatternBytes(8192, 66);

  IoOptions tiny;
  tiny.max_request_bytes = 1024;  // forces ~2 bricks per wire request
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data, tiny).ok());

  const std::uint64_t requests_before = [&] {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < cluster_->num_servers(); ++s) {
      total += cluster_->server(s).stats().requests.load();
    }
    return total;
  }();
  Bytes read(8192);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, read, tiny).ok());
  EXPECT_EQ(read, data);
  const std::uint64_t requests_after = [&] {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < cluster_->num_servers(); ++s) {
      total += cluster_->server(s).stats().requests.load();
    }
    return total;
  }();
  // 4 combined plan-requests (one per server), but each split into two wire
  // requests by the 1 KB cap: 8 wire requests total.
  EXPECT_EQ(requests_after - requests_before, 8u);

  // Sieve reads batch too, and still reconstruct correctly.
  IoOptions tiny_sieve = tiny;
  tiny_sieve.whole_brick_reads = false;
  Bytes sieve_read(8192);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, sieve_read, tiny_sieve).ok());
  EXPECT_EQ(sieve_read, data);
}

TEST_F(FileSystemTest, AccessLoggingFeedsLevelAdvice) {
  fs_->SetAccessLogging(true);
  // The Fig 5 pathology: a linear-array file read by columns.
  CreateOptions options;
  options.level = layout::FileLevel::kLinear;
  options.array_shape = {64, 64};
  options.brick_bytes = 64;
  FileHandle handle = fs_->Create("/pathological", options).value();
  const Bytes all = PatternBytes(64 * 64, 88);
  ASSERT_TRUE(fs_->WriteRegion(handle, {{0, 0}, {64, 64}}, all).ok());
  Bytes column(64);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fs_->ReadRegion(handle, {{0, 10}, {64, 1}}, column).ok());
  }
  const std::string advice = fs_->AdviseLevel("/pathological").value();
  EXPECT_NE(advice.find("multidim"), std::string::npos) << advice;

  // The matching workload gets a clean bill.
  CreateOptions good;
  good.level = layout::FileLevel::kMultidim;
  good.array_shape = {64, 64};
  good.brick_shape = {16, 16};
  FileHandle grid = fs_->Create("/matched", good).value();
  ASSERT_TRUE(fs_->WriteRegion(grid, {{0, 0}, {64, 64}}, all).ok());
  Bytes quarter(32 * 32);
  ASSERT_TRUE(fs_->ReadRegion(grid, {{0, 0}, {32, 32}}, quarter).ok());
  const std::string good_advice = fs_->AdviseLevel("/matched").value();
  EXPECT_NE(good_advice.find("fits this workload"), std::string::npos)
      << good_advice;

  // With logging off, nothing accumulates.
  fs_->SetAccessLogging(false);
  CreateOptions quiet;
  quiet.total_bytes = 64;
  FileHandle q = fs_->Create("/quiet", quiet).value();
  ASSERT_TRUE(fs_->WriteBytes(q, 0, Bytes(64, 1)).ok());
  const std::string no_data = fs_->AdviseLevel("/quiet").value();
  EXPECT_NE(no_data.find("no access observations"), std::string::npos);

  // The summary aggregates correctly.
  const auto summary =
      fs_->metadata().SummarizeAccess("/pathological").value();
  EXPECT_EQ(summary.accesses, 4u);  // 1 write + 3 reads
  EXPECT_LT(summary.efficiency(), 0.5);
  ASSERT_TRUE(fs_->metadata().ClearAccessLog("/pathological").ok());
  EXPECT_EQ(fs_->metadata().SummarizeAccess("/pathological").value().accesses,
            0u);
}

TEST_F(FileSystemTest, RenameMovesMetadataNotBytes) {
  CreateOptions options;
  options.total_bytes = 2048;
  options.brick_bytes = 256;
  FileHandle handle = fs_->Create("/old.bin", options).value();
  const Bytes data = PatternBytes(2048, 55);
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, data).ok());
  const std::uint64_t writes_before =
      cluster_->server(0).stats().bytes_written.load();

  ASSERT_TRUE(fs_->metadata().MakeDirectory("/archive").ok());
  ASSERT_TRUE(fs_->Rename("/old.bin", "/archive/new.bin").ok());

  // No payload bytes moved during the rename.
  EXPECT_EQ(cluster_->server(0).stats().bytes_written.load(), writes_before);
  EXPECT_FALSE(fs_->Open("/old.bin").ok());
  FileHandle renamed = fs_->Open("/archive/new.bin").value();
  Bytes restored(2048);
  ASSERT_TRUE(fs_->ReadBytes(renamed, 0, restored).ok());
  EXPECT_EQ(restored, data);
  // Directory links updated on both sides.
  EXPECT_TRUE(fs_->metadata().ListDirectory("/").value().files.empty());
  EXPECT_EQ(fs_->metadata().ListDirectory("/archive").value().files.size(),
            1u);
}

TEST_F(FileSystemTest, RenamePreconditionsChecked) {
  CreateOptions options;
  options.total_bytes = 64;
  ASSERT_TRUE(fs_->Create("/a", options).ok());
  ASSERT_TRUE(fs_->Create("/b", options).ok());
  EXPECT_FALSE(fs_->Rename("/missing", "/x").ok());
  EXPECT_EQ(fs_->Rename("/a", "/b").code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(fs_->Rename("/a", "/no/dir/x").ok());
  // Failed renames leave the source intact and readable.
  FileHandle a = fs_->Open("/a").value();
  Bytes read(64);
  EXPECT_TRUE(fs_->ReadBytes(a, 0, read).ok());
}

TEST_F(FileSystemTest, RenameOfNeverWrittenFileWorks) {
  // No subfiles exist yet; the rename is metadata-only.
  CreateOptions options;
  options.total_bytes = 64;
  ASSERT_TRUE(fs_->Create("/empty", options).ok());
  ASSERT_TRUE(fs_->Rename("/empty", "/still-empty").ok());
  FileHandle handle = fs_->Open("/still-empty").value();
  Bytes read(64);
  ASSERT_TRUE(fs_->ReadBytes(handle, 0, read).ok());
  EXPECT_EQ(read, Bytes(64, 0));  // unwritten bytes are zero
}

TEST_F(FileSystemTest, MetadataCacheServesRepeatOpens) {
  CreateOptions options;
  options.total_bytes = 512;
  ASSERT_TRUE(fs_->Create("/cached.bin", options).ok());
  const auto before = fs_->metadata_cache_stats();
  // Create primed the cache, so the first Open already hits.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_->Open("/cached.bin").ok());
  }
  const auto after = fs_->metadata_cache_stats();
  EXPECT_EQ(after.hits, before.hits + 5);
  EXPECT_EQ(after.misses, before.misses);
  // Path normalization feeds the same cache entry.
  ASSERT_TRUE(fs_->Open("//cached.bin").ok());
  EXPECT_EQ(fs_->metadata_cache_stats().hits, after.hits + 1);
}

TEST_F(FileSystemTest, RemoveInvalidatesMetadataCache) {
  CreateOptions options;
  options.total_bytes = 512;
  FileHandle handle = fs_->Create("/gone2.bin", options).value();
  ASSERT_TRUE(fs_->WriteBytes(handle, 0, Bytes(512, 1)).ok());
  ASSERT_TRUE(fs_->Remove("/gone2.bin").ok());
  EXPECT_FALSE(fs_->Open("/gone2.bin").ok());
}

TEST_F(FileSystemTest, ExplicitInvalidationForcesRelookup) {
  CreateOptions options;
  options.total_bytes = 512;
  ASSERT_TRUE(fs_->Create("/inv.bin", options).ok());
  fs_->InvalidateMetadataCache();
  const auto before = fs_->metadata_cache_stats();
  ASSERT_TRUE(fs_->Open("/inv.bin").ok());
  EXPECT_EQ(fs_->metadata_cache_stats().misses, before.misses + 1);
  // Out-of-band deletion in the DB is visible after invalidation.
  ASSERT_TRUE(fs_->metadata().DeleteFile("/inv.bin").ok());
  ASSERT_TRUE(fs_->Open("/inv.bin").ok());  // stale cache still answers
  fs_->InvalidateMetadataCache("/inv.bin");
  EXPECT_FALSE(fs_->Open("/inv.bin").ok());  // now it does not
}

TEST_F(FileSystemTest, CapacityAwarePlacementHonorsAdvertisedSpace) {
  // A fresh cluster whose servers advertise room for only 8 bricks each.
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 2;
  cluster_options.capacity_bytes = 8 * 1024;
  auto small_cluster =
      core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = small_cluster->fs();

  CreateOptions options;
  options.brick_bytes = 1024;
  options.placement = layout::PlacementPolicy::kCapacityAware;

  // 16 bricks fit exactly (8 + 8).
  options.total_bytes = 16 * 1024;
  ASSERT_TRUE(fs->Create("/fits", options).ok());
  // 17 bricks do not.
  options.total_bytes = 17 * 1024;
  const Result<FileHandle> too_big = fs->Create("/overflow", options);
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
  // The failed create leaves no metadata behind.
  EXPECT_FALSE(fs->metadata().FileExists("/overflow").value());
}

TEST_F(FileSystemTest, GreedyPlacementViaHints) {
  // Register heterogeneity by recreating the cluster with perf numbers is
  // heavy; instead verify the hint plumbs through on this homogeneous
  // cluster (greedy with equal perf ≡ balanced).
  CreateOptions options;
  options.total_bytes = 64 * 64;
  options.brick_bytes = 64;
  options.placement = layout::PlacementPolicy::kGreedy;
  const FileHandle handle = fs_->Create("/greedy", options).value();
  for (layout::ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(handle.record.distribution.bricks_on(s).size(), 16u);
  }
}

}  // namespace
}  // namespace dpfs::client
