// Pool eviction × retry/backoff across a server restart, on both
// connection-handling engines: idle pooled connections to a restarted
// server are stale, Acquire must probe and redial (counting
// `conn_pool.redials`) instead of handing the dead stream to a caller, and
// EnsureFreshConnection gives long-held connections the same probe.
#include "client/conn_pool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "common/temp_dir.h"
#include "core/cluster.h"
#include "server/io_server.h"

namespace dpfs::client {
namespace {

metrics::Counter& Redials() {
  return metrics::GetCounter("conn_pool.redials");
}

class ConnPoolRedialTest
    : public ::testing::TestWithParam<server::ServerEngine> {
 protected:
  ConnPoolRedialTest() : dir_(TempDir::Create("dpfs-redial").value()) {
    server_ = StartServer(0);
  }

  std::unique_ptr<server::IoServer> StartServer(std::uint16_t port) {
    server::ServerOptions options;
    options.root_dir = dir_.path();
    options.port = port;
    options.engine = GetParam();
    return server::IoServer::Start(std::move(options)).value();
  }

  /// Stops the server and brings a replacement up on the same port, like a
  /// workstation reboot. Idle pooled connections all go stale.
  void RestartServer() {
    const std::uint16_t port = server_->endpoint().port;
    server_->Stop();
    server_.reset();
    server_ = StartServer(port);
  }

  TempDir dir_;
  std::unique_ptr<server::IoServer> server_;
  ConnectionPool pool_;
};

TEST_P(ConnPoolRedialTest, StalePooledConnectionIsEvictedAndRedialed) {
  {
    PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
    ASSERT_TRUE(conn->Ping().ok());
  }
  ASSERT_EQ(pool_.idle_count(), 1u);

  const std::uint64_t redials_before = Redials().value();
  RestartServer();
  // Give the dead server's FIN time to reach the pooled socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
  EXPECT_TRUE(conn->Ping().ok());  // fresh stream, not the stale one
  EXPECT_EQ(Redials().value() - redials_before, 1u);
  EXPECT_EQ(server_->stats().sessions_accepted.load(), 1u);
}

TEST_P(ConnPoolRedialTest, HealthyPooledConnectionIsNotRedialed) {
  {
    PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
    ASSERT_TRUE(conn->Ping().ok());
  }
  const std::uint64_t redials_before = Redials().value();
  PooledConnection conn = pool_.Acquire(server_->endpoint()).value();
  EXPECT_TRUE(conn->Ping().ok());
  EXPECT_EQ(Redials().value(), redials_before);
  EXPECT_EQ(server_->stats().sessions_accepted.load(), 1u);  // pool hit
}

TEST_P(ConnPoolRedialTest, EnsureFreshConnectionRedialsAcrossRestart) {
  std::optional<net::ServerConnection> conn;
  ASSERT_TRUE(EnsureFreshConnection(conn, server_->endpoint()).ok());
  ASSERT_TRUE(conn.has_value());
  ASSERT_TRUE(conn->Ping().ok());

  // While the peer is up, the probe is a no-op on the held connection.
  const std::uint64_t redials_before = Redials().value();
  ASSERT_TRUE(EnsureFreshConnection(conn, server_->endpoint()).ok());
  EXPECT_EQ(Redials().value(), redials_before);
  EXPECT_EQ(server_->stats().sessions_accepted.load(), 1u);

  RestartServer();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(EnsureFreshConnection(conn, server_->endpoint()).ok());
  EXPECT_TRUE(conn->Ping().ok());
  EXPECT_EQ(Redials().value() - redials_before, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    BothEngines, ConnPoolRedialTest,
    ::testing::Values(server::ServerEngine::kThreadPerConnection,
                      server::ServerEngine::kEventLoop),
    [](const ::testing::TestParamInfo<server::ServerEngine>& param) {
      return param.param == server::ServerEngine::kThreadPerConnection
                 ? "ThreadPerConnection"
                 : "EventLoop";
    });

// Retry/backoff composed with pool eviction, through the full client: a
// server restart mid-workload leaves the FileSystem's pooled connections
// stale; follow-up accesses must evict, redial, and (with retries) succeed
// without surfacing an error.
class RetryPoolEvictionTest
    : public ::testing::TestWithParam<server::ServerEngine> {};

TEST_P(RetryPoolEvictionTest, RestartedServerIsRedialedUnderRetries) {
  core::ClusterOptions options;
  options.num_servers = 2;
  options.engine = GetParam();
  auto cluster = core::LocalCluster::Start(std::move(options)).value();
  auto fs = cluster->fs();

  client::CreateOptions create;
  create.total_bytes = 16 * 1024;
  create.brick_bytes = 4 * 1024;
  client::FileHandle handle = fs->Create("/evict.bin", create).value();
  const Bytes data(16 * 1024, 0x3C);
  ASSERT_TRUE(fs->WriteBytes(handle, 0, data).ok());  // pools connections

  const std::uint64_t redials_before = Redials().value();
  ASSERT_TRUE(cluster->RestartServer(0).ok());
  ASSERT_TRUE(cluster->RestartServer(1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Bytes read(16 * 1024);
  client::IoOptions io;
  io.max_retries = 10;  // spans any straggling accept-loop startup
  client::IoReport report;
  ASSERT_TRUE(fs->ReadBytes(handle, 0, read, io, &report).ok());
  EXPECT_EQ(read, data);
  // Both servers' pooled connections were stale: the pool redialed rather
  // than burning the caller's retry budget on dead streams.
  EXPECT_GE(Redials().value() - redials_before, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    BothEngines, RetryPoolEvictionTest,
    ::testing::Values(server::ServerEngine::kThreadPerConnection,
                      server::ServerEngine::kEventLoop),
    [](const ::testing::TestParamInfo<server::ServerEngine>& param) {
      return param.param == server::ServerEngine::kThreadPerConnection
                 ? "ThreadPerConnection"
                 : "EventLoop";
    });

}  // namespace
}  // namespace dpfs::client
