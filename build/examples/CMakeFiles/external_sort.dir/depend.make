# Empty dependencies file for external_sort.
# This may be replaced when dependencies are built.
