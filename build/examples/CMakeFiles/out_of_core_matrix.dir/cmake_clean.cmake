file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_matrix.dir/out_of_core_matrix.cpp.o"
  "CMakeFiles/out_of_core_matrix.dir/out_of_core_matrix.cpp.o.d"
  "out_of_core_matrix"
  "out_of_core_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
