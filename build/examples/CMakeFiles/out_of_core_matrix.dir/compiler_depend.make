# Empty compiler generated dependencies file for out_of_core_matrix.
# This may be replaced when dependencies are built.
