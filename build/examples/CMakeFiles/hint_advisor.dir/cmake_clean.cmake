file(REMOVE_RECURSE
  "CMakeFiles/hint_advisor.dir/hint_advisor.cpp.o"
  "CMakeFiles/hint_advisor.dir/hint_advisor.cpp.o.d"
  "hint_advisor"
  "hint_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
