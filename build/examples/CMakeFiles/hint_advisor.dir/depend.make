# Empty dependencies file for hint_advisor.
# This may be replaced when dependencies are built.
