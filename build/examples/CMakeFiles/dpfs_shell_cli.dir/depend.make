# Empty dependencies file for dpfs_shell_cli.
# This may be replaced when dependencies are built.
