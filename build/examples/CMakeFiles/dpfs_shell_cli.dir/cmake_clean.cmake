file(REMOVE_RECURSE
  "CMakeFiles/dpfs_shell_cli.dir/dpfs_shell.cpp.o"
  "CMakeFiles/dpfs_shell_cli.dir/dpfs_shell.cpp.o.d"
  "dpfs-shell"
  "dpfs-shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_shell_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
