# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--megabytes" "1")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_checkpoint_restart]=] "/root/repo/build/examples/checkpoint_restart" "--dim" "128" "--processes" "4" "--steps" "2")
set_tests_properties([=[example_checkpoint_restart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_out_of_core_matrix]=] "/root/repo/build/examples/out_of_core_matrix" "--dim" "256" "--tile" "64" "--panels" "2")
set_tests_properties([=[example_out_of_core_matrix]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_hint_advisor]=] "/root/repo/build/examples/hint_advisor" "--dim" "4096" "--clients" "4" "--servers" "2")
set_tests_properties([=[example_hint_advisor]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_external_sort]=] "/root/repo/build/examples/external_sort" "--keys" "65536" "--budget-keys" "8192" "--threads" "4")
set_tests_properties([=[example_external_sort]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
