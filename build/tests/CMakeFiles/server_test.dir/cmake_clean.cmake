file(REMOVE_RECURSE
  "CMakeFiles/server_test.dir/server/backpressure_test.cpp.o"
  "CMakeFiles/server_test.dir/server/backpressure_test.cpp.o.d"
  "CMakeFiles/server_test.dir/server/fd_cache_test.cpp.o"
  "CMakeFiles/server_test.dir/server/fd_cache_test.cpp.o.d"
  "CMakeFiles/server_test.dir/server/io_server_test.cpp.o"
  "CMakeFiles/server_test.dir/server/io_server_test.cpp.o.d"
  "CMakeFiles/server_test.dir/server/protocol_fuzz_test.cpp.o"
  "CMakeFiles/server_test.dir/server/protocol_fuzz_test.cpp.o.d"
  "CMakeFiles/server_test.dir/server/subfile_store_test.cpp.o"
  "CMakeFiles/server_test.dir/server/subfile_store_test.cpp.o.d"
  "server_test"
  "server_test.pdb"
  "server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
