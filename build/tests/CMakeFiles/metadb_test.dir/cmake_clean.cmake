file(REMOVE_RECURSE
  "CMakeFiles/metadb_test.dir/metadb/database_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/database_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/predicate_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/predicate_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/recovery_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/recovery_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/schema_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/schema_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/sql_fuzz_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/sql_fuzz_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/sql_lexer_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/sql_lexer_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/sql_parser_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/sql_parser_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/table_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/table_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/value_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/value_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/wal_crash_recovery_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/wal_crash_recovery_test.cpp.o.d"
  "CMakeFiles/metadb_test.dir/metadb/wal_test.cpp.o"
  "CMakeFiles/metadb_test.dir/metadb/wal_test.cpp.o.d"
  "metadb_test"
  "metadb_test.pdb"
  "metadb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
