# Empty compiler generated dependencies file for metadb_test.
# This may be replaced when dependencies are built.
