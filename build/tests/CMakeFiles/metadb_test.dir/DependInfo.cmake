
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metadb/database_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/database_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/database_test.cpp.o.d"
  "/root/repo/tests/metadb/predicate_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/predicate_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/predicate_test.cpp.o.d"
  "/root/repo/tests/metadb/recovery_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/recovery_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/recovery_test.cpp.o.d"
  "/root/repo/tests/metadb/schema_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/schema_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/schema_test.cpp.o.d"
  "/root/repo/tests/metadb/sql_fuzz_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/sql_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/sql_fuzz_test.cpp.o.d"
  "/root/repo/tests/metadb/sql_lexer_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/sql_lexer_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/sql_lexer_test.cpp.o.d"
  "/root/repo/tests/metadb/sql_parser_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/sql_parser_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/sql_parser_test.cpp.o.d"
  "/root/repo/tests/metadb/table_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/table_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/table_test.cpp.o.d"
  "/root/repo/tests/metadb/value_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/value_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/value_test.cpp.o.d"
  "/root/repo/tests/metadb/wal_crash_recovery_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/wal_crash_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/wal_crash_recovery_test.cpp.o.d"
  "/root/repo/tests/metadb/wal_test.cpp" "tests/CMakeFiles/metadb_test.dir/metadb/wal_test.cpp.o" "gcc" "tests/CMakeFiles/metadb_test.dir/metadb/wal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dpfs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dpfs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/dpfs_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dpfs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/dpfs_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
