
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bytes_test.cpp" "tests/CMakeFiles/common_test.dir/common/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/bytes_test.cpp.o.d"
  "/root/repo/tests/common/crc32_test.cpp" "tests/CMakeFiles/common_test.dir/common/crc32_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/crc32_test.cpp.o.d"
  "/root/repo/tests/common/failpoint_test.cpp" "tests/CMakeFiles/common_test.dir/common/failpoint_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/failpoint_test.cpp.o.d"
  "/root/repo/tests/common/log_test.cpp" "tests/CMakeFiles/common_test.dir/common/log_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/log_test.cpp.o.d"
  "/root/repo/tests/common/options_test.cpp" "tests/CMakeFiles/common_test.dir/common/options_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/options_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/status_test.cpp" "tests/CMakeFiles/common_test.dir/common/status_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/status_test.cpp.o.d"
  "/root/repo/tests/common/strings_test.cpp" "tests/CMakeFiles/common_test.dir/common/strings_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/strings_test.cpp.o.d"
  "/root/repo/tests/common/temp_dir_test.cpp" "tests/CMakeFiles/common_test.dir/common/temp_dir_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/temp_dir_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dpfs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dpfs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/dpfs_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dpfs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/dpfs_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
