file(REMOVE_RECURSE
  "CMakeFiles/client_test.dir/client/brick_cache_test.cpp.o"
  "CMakeFiles/client_test.dir/client/brick_cache_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/collective_test.cpp.o"
  "CMakeFiles/client_test.dir/client/collective_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/conn_pool_test.cpp.o"
  "CMakeFiles/client_test.dir/client/conn_pool_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/datatype_test.cpp.o"
  "CMakeFiles/client_test.dir/client/datatype_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/file_system_test.cpp.o"
  "CMakeFiles/client_test.dir/client/file_system_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/matrix_test.cpp.o"
  "CMakeFiles/client_test.dir/client/matrix_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/metadata_test.cpp.o"
  "CMakeFiles/client_test.dir/client/metadata_test.cpp.o.d"
  "CMakeFiles/client_test.dir/client/retry_backoff_test.cpp.o"
  "CMakeFiles/client_test.dir/client/retry_backoff_test.cpp.o.d"
  "client_test"
  "client_test.pdb"
  "client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
