
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/client/brick_cache_test.cpp" "tests/CMakeFiles/client_test.dir/client/brick_cache_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/brick_cache_test.cpp.o.d"
  "/root/repo/tests/client/collective_test.cpp" "tests/CMakeFiles/client_test.dir/client/collective_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/collective_test.cpp.o.d"
  "/root/repo/tests/client/conn_pool_test.cpp" "tests/CMakeFiles/client_test.dir/client/conn_pool_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/conn_pool_test.cpp.o.d"
  "/root/repo/tests/client/datatype_test.cpp" "tests/CMakeFiles/client_test.dir/client/datatype_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/datatype_test.cpp.o.d"
  "/root/repo/tests/client/file_system_test.cpp" "tests/CMakeFiles/client_test.dir/client/file_system_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/file_system_test.cpp.o.d"
  "/root/repo/tests/client/matrix_test.cpp" "tests/CMakeFiles/client_test.dir/client/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/matrix_test.cpp.o.d"
  "/root/repo/tests/client/metadata_test.cpp" "tests/CMakeFiles/client_test.dir/client/metadata_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/metadata_test.cpp.o.d"
  "/root/repo/tests/client/retry_backoff_test.cpp" "tests/CMakeFiles/client_test.dir/client/retry_backoff_test.cpp.o" "gcc" "tests/CMakeFiles/client_test.dir/client/retry_backoff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dpfs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dpfs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/dpfs_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dpfs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/dpfs_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
