
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/layout/brick_map_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/brick_map_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/brick_map_test.cpp.o.d"
  "/root/repo/tests/layout/combine_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/combine_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/combine_test.cpp.o.d"
  "/root/repo/tests/layout/geometry_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/geometry_test.cpp.o.d"
  "/root/repo/tests/layout/hpf_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/hpf_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/hpf_test.cpp.o.d"
  "/root/repo/tests/layout/multidim_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/multidim_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/multidim_test.cpp.o.d"
  "/root/repo/tests/layout/placement_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/placement_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/placement_test.cpp.o.d"
  "/root/repo/tests/layout/plan_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/plan_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/plan_test.cpp.o.d"
  "/root/repo/tests/layout/property_test.cpp" "tests/CMakeFiles/layout_test.dir/layout/property_test.cpp.o" "gcc" "tests/CMakeFiles/layout_test.dir/layout/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dpfs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dpfs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/dpfs_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dpfs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/dpfs_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
