file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/chaos_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/chaos_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/cluster_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/cluster_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/consistency_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/consistency_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/durability_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/durability_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/failure_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/failure_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/fsck_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/fsck_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/model_validation_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/model_validation_test.cpp.o.d"
  "CMakeFiles/integration_test.dir/integration/umbrella_test.cpp.o"
  "CMakeFiles/integration_test.dir/integration/umbrella_test.cpp.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
