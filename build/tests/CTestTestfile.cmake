# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/metadb_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
add_test([=[deployment_smoke]=] "/root/repo/tests/integration/deployment_test.sh" "/root/repo/build/tools/dpfsd" "/root/repo/build/tools/dpfs")
set_tests_properties([=[deployment_smoke]=] PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;94;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[shell_script_smoke]=] "/root/repo/tests/integration/shell_script_test.sh" "/root/repo/build/examples/dpfs-shell")
set_tests_properties([=[shell_script_smoke]=] PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;100;add_test;/root/repo/tests/CMakeLists.txt;0;")
