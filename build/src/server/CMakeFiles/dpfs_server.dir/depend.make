# Empty dependencies file for dpfs_server.
# This may be replaced when dependencies are built.
