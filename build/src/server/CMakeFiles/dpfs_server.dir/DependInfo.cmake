
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/fd_cache.cpp" "src/server/CMakeFiles/dpfs_server.dir/fd_cache.cpp.o" "gcc" "src/server/CMakeFiles/dpfs_server.dir/fd_cache.cpp.o.d"
  "/root/repo/src/server/io_server.cpp" "src/server/CMakeFiles/dpfs_server.dir/io_server.cpp.o" "gcc" "src/server/CMakeFiles/dpfs_server.dir/io_server.cpp.o.d"
  "/root/repo/src/server/subfile_store.cpp" "src/server/CMakeFiles/dpfs_server.dir/subfile_store.cpp.o" "gcc" "src/server/CMakeFiles/dpfs_server.dir/subfile_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
