file(REMOVE_RECURSE
  "libdpfs_server.a"
)
