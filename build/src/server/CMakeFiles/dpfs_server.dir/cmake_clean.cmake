file(REMOVE_RECURSE
  "CMakeFiles/dpfs_server.dir/fd_cache.cpp.o"
  "CMakeFiles/dpfs_server.dir/fd_cache.cpp.o.d"
  "CMakeFiles/dpfs_server.dir/io_server.cpp.o"
  "CMakeFiles/dpfs_server.dir/io_server.cpp.o.d"
  "CMakeFiles/dpfs_server.dir/subfile_store.cpp.o"
  "CMakeFiles/dpfs_server.dir/subfile_store.cpp.o.d"
  "libdpfs_server.a"
  "libdpfs_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
