# Empty dependencies file for dpfs_metadb.
# This may be replaced when dependencies are built.
