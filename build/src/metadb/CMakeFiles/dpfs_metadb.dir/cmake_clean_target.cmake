file(REMOVE_RECURSE
  "libdpfs_metadb.a"
)
