file(REMOVE_RECURSE
  "CMakeFiles/dpfs_metadb.dir/database.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/database.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/predicate.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/predicate.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/schema.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/schema.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/sql_lexer.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/sql_lexer.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/sql_parser.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/sql_parser.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/table.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/table.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/value.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/value.cpp.o.d"
  "CMakeFiles/dpfs_metadb.dir/wal.cpp.o"
  "CMakeFiles/dpfs_metadb.dir/wal.cpp.o.d"
  "libdpfs_metadb.a"
  "libdpfs_metadb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_metadb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
