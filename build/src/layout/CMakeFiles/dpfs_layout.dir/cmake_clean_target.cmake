file(REMOVE_RECURSE
  "libdpfs_layout.a"
)
