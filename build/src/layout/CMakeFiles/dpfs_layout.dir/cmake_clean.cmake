file(REMOVE_RECURSE
  "CMakeFiles/dpfs_layout.dir/brick_map.cpp.o"
  "CMakeFiles/dpfs_layout.dir/brick_map.cpp.o.d"
  "CMakeFiles/dpfs_layout.dir/geometry.cpp.o"
  "CMakeFiles/dpfs_layout.dir/geometry.cpp.o.d"
  "CMakeFiles/dpfs_layout.dir/hpf.cpp.o"
  "CMakeFiles/dpfs_layout.dir/hpf.cpp.o.d"
  "CMakeFiles/dpfs_layout.dir/placement.cpp.o"
  "CMakeFiles/dpfs_layout.dir/placement.cpp.o.d"
  "CMakeFiles/dpfs_layout.dir/plan.cpp.o"
  "CMakeFiles/dpfs_layout.dir/plan.cpp.o.d"
  "libdpfs_layout.a"
  "libdpfs_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
