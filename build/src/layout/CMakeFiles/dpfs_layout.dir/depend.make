# Empty dependencies file for dpfs_layout.
# This may be replaced when dependencies are built.
