
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/brick_map.cpp" "src/layout/CMakeFiles/dpfs_layout.dir/brick_map.cpp.o" "gcc" "src/layout/CMakeFiles/dpfs_layout.dir/brick_map.cpp.o.d"
  "/root/repo/src/layout/geometry.cpp" "src/layout/CMakeFiles/dpfs_layout.dir/geometry.cpp.o" "gcc" "src/layout/CMakeFiles/dpfs_layout.dir/geometry.cpp.o.d"
  "/root/repo/src/layout/hpf.cpp" "src/layout/CMakeFiles/dpfs_layout.dir/hpf.cpp.o" "gcc" "src/layout/CMakeFiles/dpfs_layout.dir/hpf.cpp.o.d"
  "/root/repo/src/layout/placement.cpp" "src/layout/CMakeFiles/dpfs_layout.dir/placement.cpp.o" "gcc" "src/layout/CMakeFiles/dpfs_layout.dir/placement.cpp.o.d"
  "/root/repo/src/layout/plan.cpp" "src/layout/CMakeFiles/dpfs_layout.dir/plan.cpp.o" "gcc" "src/layout/CMakeFiles/dpfs_layout.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
