file(REMOVE_RECURSE
  "libdpfs_net.a"
)
