file(REMOVE_RECURSE
  "CMakeFiles/dpfs_net.dir/connection.cpp.o"
  "CMakeFiles/dpfs_net.dir/connection.cpp.o.d"
  "CMakeFiles/dpfs_net.dir/frame.cpp.o"
  "CMakeFiles/dpfs_net.dir/frame.cpp.o.d"
  "CMakeFiles/dpfs_net.dir/messages.cpp.o"
  "CMakeFiles/dpfs_net.dir/messages.cpp.o.d"
  "CMakeFiles/dpfs_net.dir/socket.cpp.o"
  "CMakeFiles/dpfs_net.dir/socket.cpp.o.d"
  "libdpfs_net.a"
  "libdpfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
