# Empty compiler generated dependencies file for dpfs_net.
# This may be replaced when dependencies are built.
