
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/brick_cache.cpp" "src/client/CMakeFiles/dpfs_client.dir/brick_cache.cpp.o" "gcc" "src/client/CMakeFiles/dpfs_client.dir/brick_cache.cpp.o.d"
  "/root/repo/src/client/collective.cpp" "src/client/CMakeFiles/dpfs_client.dir/collective.cpp.o" "gcc" "src/client/CMakeFiles/dpfs_client.dir/collective.cpp.o.d"
  "/root/repo/src/client/conn_pool.cpp" "src/client/CMakeFiles/dpfs_client.dir/conn_pool.cpp.o" "gcc" "src/client/CMakeFiles/dpfs_client.dir/conn_pool.cpp.o.d"
  "/root/repo/src/client/datatype.cpp" "src/client/CMakeFiles/dpfs_client.dir/datatype.cpp.o" "gcc" "src/client/CMakeFiles/dpfs_client.dir/datatype.cpp.o.d"
  "/root/repo/src/client/file_system.cpp" "src/client/CMakeFiles/dpfs_client.dir/file_system.cpp.o" "gcc" "src/client/CMakeFiles/dpfs_client.dir/file_system.cpp.o.d"
  "/root/repo/src/client/metadata.cpp" "src/client/CMakeFiles/dpfs_client.dir/metadata.cpp.o" "gcc" "src/client/CMakeFiles/dpfs_client.dir/metadata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/dpfs_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
