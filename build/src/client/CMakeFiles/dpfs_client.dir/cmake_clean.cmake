file(REMOVE_RECURSE
  "CMakeFiles/dpfs_client.dir/brick_cache.cpp.o"
  "CMakeFiles/dpfs_client.dir/brick_cache.cpp.o.d"
  "CMakeFiles/dpfs_client.dir/collective.cpp.o"
  "CMakeFiles/dpfs_client.dir/collective.cpp.o.d"
  "CMakeFiles/dpfs_client.dir/conn_pool.cpp.o"
  "CMakeFiles/dpfs_client.dir/conn_pool.cpp.o.d"
  "CMakeFiles/dpfs_client.dir/datatype.cpp.o"
  "CMakeFiles/dpfs_client.dir/datatype.cpp.o.d"
  "CMakeFiles/dpfs_client.dir/file_system.cpp.o"
  "CMakeFiles/dpfs_client.dir/file_system.cpp.o.d"
  "CMakeFiles/dpfs_client.dir/metadata.cpp.o"
  "CMakeFiles/dpfs_client.dir/metadata.cpp.o.d"
  "libdpfs_client.a"
  "libdpfs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
