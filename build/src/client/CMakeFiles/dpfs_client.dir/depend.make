# Empty dependencies file for dpfs_client.
# This may be replaced when dependencies are built.
