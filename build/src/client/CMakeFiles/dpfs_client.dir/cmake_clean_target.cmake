file(REMOVE_RECURSE
  "libdpfs_client.a"
)
