# Empty compiler generated dependencies file for dpfs_core.
# This may be replaced when dependencies are built.
