file(REMOVE_RECURSE
  "libdpfs_core.a"
)
