file(REMOVE_RECURSE
  "CMakeFiles/dpfs_core.dir/cluster.cpp.o"
  "CMakeFiles/dpfs_core.dir/cluster.cpp.o.d"
  "libdpfs_core.a"
  "libdpfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
