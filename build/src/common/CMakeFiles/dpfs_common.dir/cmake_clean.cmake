file(REMOVE_RECURSE
  "CMakeFiles/dpfs_common.dir/bytes.cpp.o"
  "CMakeFiles/dpfs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/crc32.cpp.o"
  "CMakeFiles/dpfs_common.dir/crc32.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/failpoint.cpp.o"
  "CMakeFiles/dpfs_common.dir/failpoint.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/log.cpp.o"
  "CMakeFiles/dpfs_common.dir/log.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/options.cpp.o"
  "CMakeFiles/dpfs_common.dir/options.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/status.cpp.o"
  "CMakeFiles/dpfs_common.dir/status.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/strings.cpp.o"
  "CMakeFiles/dpfs_common.dir/strings.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/temp_dir.cpp.o"
  "CMakeFiles/dpfs_common.dir/temp_dir.cpp.o.d"
  "CMakeFiles/dpfs_common.dir/thread_pool.cpp.o"
  "CMakeFiles/dpfs_common.dir/thread_pool.cpp.o.d"
  "libdpfs_common.a"
  "libdpfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
