# Empty dependencies file for dpfs_common.
# This may be replaced when dependencies are built.
