file(REMOVE_RECURSE
  "libdpfs_common.a"
)
