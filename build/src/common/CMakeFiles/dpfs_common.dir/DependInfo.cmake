
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cpp" "src/common/CMakeFiles/dpfs_common.dir/bytes.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/bytes.cpp.o.d"
  "/root/repo/src/common/crc32.cpp" "src/common/CMakeFiles/dpfs_common.dir/crc32.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/crc32.cpp.o.d"
  "/root/repo/src/common/failpoint.cpp" "src/common/CMakeFiles/dpfs_common.dir/failpoint.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/failpoint.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/dpfs_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/log.cpp.o.d"
  "/root/repo/src/common/options.cpp" "src/common/CMakeFiles/dpfs_common.dir/options.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/options.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/dpfs_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/dpfs_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/strings.cpp.o.d"
  "/root/repo/src/common/temp_dir.cpp" "src/common/CMakeFiles/dpfs_common.dir/temp_dir.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/temp_dir.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/dpfs_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/dpfs_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
