# Empty dependencies file for dpfs_simnet.
# This may be replaced when dependencies are built.
