file(REMOVE_RECURSE
  "libdpfs_simnet.a"
)
