
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/replay.cpp" "src/simnet/CMakeFiles/dpfs_simnet.dir/replay.cpp.o" "gcc" "src/simnet/CMakeFiles/dpfs_simnet.dir/replay.cpp.o.d"
  "/root/repo/src/simnet/storage_class.cpp" "src/simnet/CMakeFiles/dpfs_simnet.dir/storage_class.cpp.o" "gcc" "src/simnet/CMakeFiles/dpfs_simnet.dir/storage_class.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
