file(REMOVE_RECURSE
  "CMakeFiles/dpfs_simnet.dir/replay.cpp.o"
  "CMakeFiles/dpfs_simnet.dir/replay.cpp.o.d"
  "CMakeFiles/dpfs_simnet.dir/storage_class.cpp.o"
  "CMakeFiles/dpfs_simnet.dir/storage_class.cpp.o.d"
  "libdpfs_simnet.a"
  "libdpfs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
