# Empty dependencies file for dpfs_shell.
# This may be replaced when dependencies are built.
