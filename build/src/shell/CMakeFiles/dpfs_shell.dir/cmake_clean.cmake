file(REMOVE_RECURSE
  "CMakeFiles/dpfs_shell.dir/shell.cpp.o"
  "CMakeFiles/dpfs_shell.dir/shell.cpp.o.d"
  "libdpfs_shell.a"
  "libdpfs_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
