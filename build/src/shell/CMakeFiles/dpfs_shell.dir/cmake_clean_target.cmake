file(REMOVE_RECURSE
  "libdpfs_shell.a"
)
