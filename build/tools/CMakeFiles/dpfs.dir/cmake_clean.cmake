file(REMOVE_RECURSE
  "CMakeFiles/dpfs.dir/dpfs.cpp.o"
  "CMakeFiles/dpfs.dir/dpfs.cpp.o.d"
  "dpfs"
  "dpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
