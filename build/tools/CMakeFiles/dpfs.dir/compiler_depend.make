# Empty compiler generated dependencies file for dpfs.
# This may be replaced when dependencies are built.
