file(REMOVE_RECURSE
  "CMakeFiles/dpfsd.dir/dpfsd.cpp.o"
  "CMakeFiles/dpfsd.dir/dpfsd.cpp.o.d"
  "dpfsd"
  "dpfsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpfsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
