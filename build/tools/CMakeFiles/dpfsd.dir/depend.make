# Empty dependencies file for dpfsd.
# This may be replaced when dependencies are built.
