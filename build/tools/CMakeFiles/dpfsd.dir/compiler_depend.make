# Empty compiler generated dependencies file for dpfsd.
# This may be replaced when dependencies are built.
