# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench_cmake
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[figure_shapes]=] "/root/repo/build/bench/shape_check")
set_tests_properties([=[figure_shapes]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
