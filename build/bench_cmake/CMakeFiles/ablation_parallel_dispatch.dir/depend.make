# Empty dependencies file for ablation_parallel_dispatch.
# This may be replaced when dependencies are built.
