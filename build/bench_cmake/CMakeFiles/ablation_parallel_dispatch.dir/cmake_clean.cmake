file(REMOVE_RECURSE
  "../bench/ablation_parallel_dispatch"
  "../bench/ablation_parallel_dispatch.pdb"
  "CMakeFiles/ablation_parallel_dispatch.dir/ablation_parallel_dispatch.cpp.o"
  "CMakeFiles/ablation_parallel_dispatch.dir/ablation_parallel_dispatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
