file(REMOVE_RECURSE
  "../bench/fig11_file_levels"
  "../bench/fig11_file_levels.pdb"
  "CMakeFiles/fig11_file_levels.dir/fig11_file_levels.cpp.o"
  "CMakeFiles/fig11_file_levels.dir/fig11_file_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_file_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
