# Empty dependencies file for fig11_file_levels.
# This may be replaced when dependencies are built.
