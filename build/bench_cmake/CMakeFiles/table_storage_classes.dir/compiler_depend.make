# Empty compiler generated dependencies file for table_storage_classes.
# This may be replaced when dependencies are built.
