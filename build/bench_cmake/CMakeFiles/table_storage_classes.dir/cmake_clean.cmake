file(REMOVE_RECURSE
  "../bench/table_storage_classes"
  "../bench/table_storage_classes.pdb"
  "CMakeFiles/table_storage_classes.dir/table_storage_classes.cpp.o"
  "CMakeFiles/table_storage_classes.dir/table_storage_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_storage_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
