file(REMOVE_RECURSE
  "../bench/macro_mixed_workload"
  "../bench/macro_mixed_workload.pdb"
  "CMakeFiles/macro_mixed_workload.dir/macro_mixed_workload.cpp.o"
  "CMakeFiles/macro_mixed_workload.dir/macro_mixed_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
