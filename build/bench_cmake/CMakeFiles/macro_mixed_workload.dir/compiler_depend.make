# Empty compiler generated dependencies file for macro_mixed_workload.
# This may be replaced when dependencies are built.
