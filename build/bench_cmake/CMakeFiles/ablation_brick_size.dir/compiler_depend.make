# Empty compiler generated dependencies file for ablation_brick_size.
# This may be replaced when dependencies are built.
