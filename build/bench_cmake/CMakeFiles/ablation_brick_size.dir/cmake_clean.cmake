file(REMOVE_RECURSE
  "../bench/ablation_brick_size"
  "../bench/ablation_brick_size.pdb"
  "CMakeFiles/ablation_brick_size.dir/ablation_brick_size.cpp.o"
  "CMakeFiles/ablation_brick_size.dir/ablation_brick_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_brick_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
