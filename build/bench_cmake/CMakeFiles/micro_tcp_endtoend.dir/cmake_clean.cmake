file(REMOVE_RECURSE
  "../bench/micro_tcp_endtoend"
  "../bench/micro_tcp_endtoend.pdb"
  "CMakeFiles/micro_tcp_endtoend.dir/micro_tcp_endtoend.cpp.o"
  "CMakeFiles/micro_tcp_endtoend.dir/micro_tcp_endtoend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tcp_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
