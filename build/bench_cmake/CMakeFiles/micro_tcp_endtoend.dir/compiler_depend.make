# Empty compiler generated dependencies file for micro_tcp_endtoend.
# This may be replaced when dependencies are built.
