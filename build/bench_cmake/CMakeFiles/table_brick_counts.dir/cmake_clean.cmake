file(REMOVE_RECURSE
  "../bench/table_brick_counts"
  "../bench/table_brick_counts.pdb"
  "CMakeFiles/table_brick_counts.dir/table_brick_counts.cpp.o"
  "CMakeFiles/table_brick_counts.dir/table_brick_counts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_brick_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
