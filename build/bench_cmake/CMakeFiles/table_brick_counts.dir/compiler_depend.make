# Empty compiler generated dependencies file for table_brick_counts.
# This may be replaced when dependencies are built.
