# Empty compiler generated dependencies file for fig12_file_levels.
# This may be replaced when dependencies are built.
