file(REMOVE_RECURSE
  "../bench/fig12_file_levels"
  "../bench/fig12_file_levels.pdb"
  "CMakeFiles/fig12_file_levels.dir/fig12_file_levels.cpp.o"
  "CMakeFiles/fig12_file_levels.dir/fig12_file_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_file_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
