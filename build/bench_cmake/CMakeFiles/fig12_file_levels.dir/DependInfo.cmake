
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_file_levels.cpp" "bench_cmake/CMakeFiles/fig12_file_levels.dir/fig12_file_levels.cpp.o" "gcc" "bench_cmake/CMakeFiles/fig12_file_levels.dir/fig12_file_levels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dpfs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/dpfs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/shell/CMakeFiles/dpfs_shell.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/dpfs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/dpfs_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/metadb/CMakeFiles/dpfs_metadb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
