file(REMOVE_RECURSE
  "../bench/table_request_counts"
  "../bench/table_request_counts.pdb"
  "CMakeFiles/table_request_counts.dir/table_request_counts.cpp.o"
  "CMakeFiles/table_request_counts.dir/table_request_counts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_request_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
