# Empty compiler generated dependencies file for table_request_counts.
# This may be replaced when dependencies are built.
