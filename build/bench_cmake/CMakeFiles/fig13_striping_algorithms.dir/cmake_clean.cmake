file(REMOVE_RECURSE
  "../bench/fig13_striping_algorithms"
  "../bench/fig13_striping_algorithms.pdb"
  "CMakeFiles/fig13_striping_algorithms.dir/fig13_striping_algorithms.cpp.o"
  "CMakeFiles/fig13_striping_algorithms.dir/fig13_striping_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_striping_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
