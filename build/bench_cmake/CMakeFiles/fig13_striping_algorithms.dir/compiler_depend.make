# Empty compiler generated dependencies file for fig13_striping_algorithms.
# This may be replaced when dependencies are built.
