# Empty dependencies file for micro_metadb.
# This may be replaced when dependencies are built.
