file(REMOVE_RECURSE
  "../bench/micro_metadb"
  "../bench/micro_metadb.pdb"
  "CMakeFiles/micro_metadb.dir/micro_metadb.cpp.o"
  "CMakeFiles/micro_metadb.dir/micro_metadb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_metadb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
