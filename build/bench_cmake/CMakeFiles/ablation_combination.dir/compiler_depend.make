# Empty compiler generated dependencies file for ablation_combination.
# This may be replaced when dependencies are built.
