file(REMOVE_RECURSE
  "../bench/ablation_combination"
  "../bench/ablation_combination.pdb"
  "CMakeFiles/ablation_combination.dir/ablation_combination.cpp.o"
  "CMakeFiles/ablation_combination.dir/ablation_combination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
