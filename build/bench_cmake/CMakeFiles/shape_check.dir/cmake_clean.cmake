file(REMOVE_RECURSE
  "../bench/shape_check"
  "../bench/shape_check.pdb"
  "CMakeFiles/shape_check.dir/shape_check.cpp.o"
  "CMakeFiles/shape_check.dir/shape_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
