# Empty dependencies file for ablation_sieve_reads.
# This may be replaced when dependencies are built.
