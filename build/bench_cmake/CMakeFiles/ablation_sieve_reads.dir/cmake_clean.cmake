file(REMOVE_RECURSE
  "../bench/ablation_sieve_reads"
  "../bench/ablation_sieve_reads.pdb"
  "CMakeFiles/ablation_sieve_reads.dir/ablation_sieve_reads.cpp.o"
  "CMakeFiles/ablation_sieve_reads.dir/ablation_sieve_reads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sieve_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
