# Empty dependencies file for fig14_striping_algorithms.
# This may be replaced when dependencies are built.
