file(REMOVE_RECURSE
  "../bench/motivation_remote_vs_dpfs"
  "../bench/motivation_remote_vs_dpfs.pdb"
  "CMakeFiles/motivation_remote_vs_dpfs.dir/motivation_remote_vs_dpfs.cpp.o"
  "CMakeFiles/motivation_remote_vs_dpfs.dir/motivation_remote_vs_dpfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_remote_vs_dpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
