# Empty compiler generated dependencies file for motivation_remote_vs_dpfs.
# This may be replaced when dependencies are built.
