file(REMOVE_RECURSE
  "../bench/ablation_heterogeneity"
  "../bench/ablation_heterogeneity.pdb"
  "CMakeFiles/ablation_heterogeneity.dir/ablation_heterogeneity.cpp.o"
  "CMakeFiles/ablation_heterogeneity.dir/ablation_heterogeneity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
