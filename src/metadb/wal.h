// Write-ahead log for the metadata database.
//
// Record stream layout (all little-endian):
//   [u32 payload_len][u32 crc32c(payload)][payload]
// payload = [u8 kind][u64 txn_id][kind-specific body]
//
// Mutations are buffered per transaction and appended as
// BEGIN, op..., COMMIT at commit time, followed by one fsync, so a torn tail
// (crash mid-append) never exposes a half-applied transaction: replay applies
// only transactions whose COMMIT record survived intact.
#pragma once

#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "metadb/schema.h"
#include "metadb/table.h"

namespace dpfs::metadb {

enum class WalRecordKind : std::uint8_t {
  kBegin = 1,
  kCommit = 2,
  kCreateTable = 3,
  kDropTable = 4,
  kInsert = 5,
  kUpdate = 6,
  kDelete = 7,
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kBegin;
  std::uint64_t txn_id = 0;
  std::string table;   // create/drop/insert/update/delete
  Schema schema;       // create
  RowId row_id = 0;    // insert/update/delete
  Row row;             // insert/update

  [[nodiscard]] Bytes Encode() const;
  static Result<WalRecord> Decode(ByteSpan payload);
};

/// Append-only WAL file. One writer at a time (the Database serializes).
class WriteAheadLog {
 public:
  /// Opens (creating if needed) and replays existing committed transactions
  /// through `apply`, which is invoked once per operation record (never for
  /// kBegin/kCommit) in commit order. A torn tail is silently discarded.
  /// Returns the WAL positioned for appending, plus the highest txn id seen.
  static Result<WriteAheadLog> Open(
      const std::filesystem::path& path,
      const std::function<Status(const WalRecord&)>& apply,
      std::uint64_t* max_txn_id);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Appends a full transaction (BEGIN + ops + COMMIT) and flushes to disk.
  Status AppendTransaction(std::uint64_t txn_id,
                           const std::vector<WalRecord>& ops);

  /// With sync commits, every AppendTransaction ends with fdatasync, making
  /// commits power-failure durable (default: flush to the page cache only —
  /// process-crash durable, much faster).
  void SetSyncCommits(bool sync) noexcept { sync_commits_ = sync; }
  [[nodiscard]] bool sync_commits() const noexcept { return sync_commits_; }

  /// Truncates the log after a successful snapshot.
  Status Reset();

  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return size_; }

 private:
  explicit WriteAheadLog(std::FILE* file, std::filesystem::path path,
                         std::uint64_t size)
      : file_(file), path_(std::move(path)), size_(size) {}
  void Close() noexcept;

  std::FILE* file_ = nullptr;
  std::filesystem::path path_;
  std::uint64_t size_ = 0;
  bool sync_commits_ = false;
};

}  // namespace dpfs::metadb
