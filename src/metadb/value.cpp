#include "metadb/value.h"

#include <cstdio>

namespace dpfs::metadb {

std::string_view ValueTypeName(ValueType type) noexcept {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kText: return "text";
  }
  return "unknown";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(AsInt());
    case ValueType::kDouble: return AsDouble();
    default:
      return InvalidArgumentError("cannot coerce " +
                                  std::string(ValueTypeName(type())) +
                                  " to double");
  }
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (type() == ValueType::kText || other.type() == ValueType::kText) {
    if (type() != ValueType::kText || other.type() != ValueType::kText) {
      return InvalidArgumentError("cannot compare text with " +
                                  std::string(ValueTypeName(type())) + "/" +
                                  std::string(ValueTypeName(other.type())));
    }
    const int cmp = AsText().compare(other.AsText());
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
    const std::int64_t a = AsInt();
    const std::int64_t b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  DPFS_ASSIGN_OR_RETURN(const double a, ToDouble());
  DPFS_ASSIGN_OR_RETURN(const double b, other.ToDouble());
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kText: return "'" + AsText() + "'";
  }
  return "?";
}

void Value::Serialize(BinaryWriter& writer) const {
  writer.WriteU8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull: break;
    case ValueType::kInt: writer.WriteI64(AsInt()); break;
    case ValueType::kDouble: writer.WriteF64(AsDouble()); break;
    case ValueType::kText: writer.WriteString(AsText()); break;
  }
}

Result<Value> Value::Deserialize(BinaryReader& reader) {
  DPFS_ASSIGN_OR_RETURN(const std::uint8_t tag, reader.ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull: return Value::Null();
    case ValueType::kInt: {
      DPFS_ASSIGN_OR_RETURN(const std::int64_t v, reader.ReadI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      DPFS_ASSIGN_OR_RETURN(const double v, reader.ReadF64());
      return Value(v);
    }
    case ValueType::kText: {
      DPFS_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
      return Value(std::move(v));
    }
  }
  return ProtocolError("value: bad type tag " + std::to_string(tag));
}

}  // namespace dpfs::metadb
