#include "metadb/sql_parser.h"

#include "common/strings.h"
#include "metadb/sql_lexer.h"

namespace dpfs::metadb {
namespace {

/// Cursor over the token stream with one-token lookahead.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    DPFS_ASSIGN_OR_RETURN(Statement stmt, ParseOne());
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& what) const {
    return InvalidArgumentError("sql parser: " + what + " near offset " +
                                std::to_string(Peek().offset));
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return Error("expected '" + std::string(symbol) + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error("expected keyword '" + std::string(keyword) + "'");
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  Result<Statement> ParseOne() {
    const Token& head = Peek();
    if (head.IsKeyword("CREATE")) return ParseCreateTable();
    if (head.IsKeyword("DROP")) return ParseDropTable();
    if (head.IsKeyword("INSERT")) return ParseInsert();
    if (head.IsKeyword("SELECT")) return ParseSelect();
    if (head.IsKeyword("UPDATE")) return ParseUpdate();
    if (head.IsKeyword("DELETE")) return ParseDelete();
    if (head.IsKeyword("BEGIN")) {
      Advance();
      return Statement(BeginStmt{});
    }
    if (head.IsKeyword("COMMIT")) {
      Advance();
      return Statement(CommitStmt{});
    }
    if (head.IsKeyword("ROLLBACK")) {
      Advance();
      return Statement(RollbackStmt{});
    }
    return Error("unknown statement");
  }

  Result<ValueType> ParseColumnType() {
    DPFS_ASSIGN_OR_RETURN(const std::string name,
                          ExpectIdentifier("column type"));
    if (EqualsIgnoreCase(name, "INT") || EqualsIgnoreCase(name, "INTEGER") ||
        EqualsIgnoreCase(name, "BIGINT")) {
      return ValueType::kInt;
    }
    if (EqualsIgnoreCase(name, "DOUBLE") || EqualsIgnoreCase(name, "REAL") ||
        EqualsIgnoreCase(name, "FLOAT")) {
      return ValueType::kDouble;
    }
    if (EqualsIgnoreCase(name, "TEXT") || EqualsIgnoreCase(name, "VARCHAR") ||
        EqualsIgnoreCase(name, "STRING")) {
      return ValueType::kText;
    }
    return Error("unknown column type '" + name + "'");
  }

  Result<Statement> ParseCreateTable() {
    Advance();  // CREATE
    DPFS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStmt stmt;
    if (Peek().IsKeyword("IF")) {
      Advance();
      DPFS_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      DPFS_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_not_exists = true;
    }
    DPFS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    DPFS_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      ColumnDef col;
      DPFS_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      DPFS_ASSIGN_OR_RETURN(col.type, ParseColumnType());
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        DPFS_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        col.primary_key = true;
      }
      stmt.columns.push_back(std::move(col));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    DPFS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDropTable() {
    Advance();  // DROP
    DPFS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStmt stmt;
    if (Peek().IsKeyword("IF")) {
      Advance();
      DPFS_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_exists = true;
    }
    DPFS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    return Statement(std::move(stmt));
  }

  Result<Value> ParseLiteral() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger: {
        const std::int64_t v = token.int_value;
        Advance();
        return Value(v);
      }
      case TokenKind::kFloat: {
        const double v = token.float_value;
        Advance();
        return Value(v);
      }
      case TokenKind::kString: {
        std::string v = token.text;
        Advance();
        return Value(std::move(v));
      }
      case TokenKind::kIdentifier:
        if (token.IsKeyword("NULL")) {
          Advance();
          return Value::Null();
        }
        [[fallthrough]];
      default:
        return Error("expected literal value");
    }
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    DPFS_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    DPFS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (Peek().IsSymbol("(")) {
      Advance();
      while (true) {
        DPFS_ASSIGN_OR_RETURN(std::string col,
                              ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      DPFS_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    DPFS_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      DPFS_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        DPFS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      DPFS_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    return Statement(std::move(stmt));
  }

  // Expression grammar: or_expr := and_expr (OR and_expr)*
  //                      and_expr := unary (AND unary)*
  //                      unary := NOT unary | primary
  //                      primary := '(' or_expr ')'
  //                               | operand [IS [NOT] NULL | cmp operand]
  //                      operand := literal | column
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DPFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DPFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().IsKeyword("AND")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeNot(std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParseOperand() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kInteger || token.kind == TokenKind::kFloat ||
        token.kind == TokenKind::kString || token.IsKeyword("NULL")) {
      DPFS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      return MakeLiteral(std::move(v));
    }
    if (token.kind == TokenKind::kIdentifier) {
      return MakeColumn(Advance().text);
    }
    return Error("expected column or literal");
  }

  Result<ExprPtr> ParsePrimary() {
    if (Peek().IsSymbol("(")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      DPFS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    DPFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (Peek().IsKeyword("NOT")) {
        Advance();
        negated = true;
      }
      DPFS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return MakeIsNull(std::move(lhs), negated);
    }
    if (Peek().IsKeyword("LIKE") ||
        (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("LIKE"))) {
      const bool negated = Peek().IsKeyword("NOT");
      if (negated) Advance();
      Advance();  // LIKE
      if (Peek().kind != TokenKind::kString) {
        return Error("LIKE requires a string pattern");
      }
      std::string pattern = Advance().text;
      return MakeLike(std::move(lhs), std::move(pattern), negated);
    }
    if (Peek().IsKeyword("IN") ||
        (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN"))) {
      // Desugar `x IN (a, b, c)` to `(x = a OR x = b OR x = c)`.
      const bool negated = Peek().IsKeyword("NOT");
      if (negated) Advance();
      Advance();  // IN
      DPFS_RETURN_IF_ERROR(ExpectSymbol("("));
      ExprPtr disjunction;
      while (true) {
        DPFS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        ExprPtr equal =
            MakeCompare(CompareOp::kEq, lhs, MakeLiteral(std::move(v)));
        disjunction = disjunction == nullptr
                          ? std::move(equal)
                          : MakeOr(std::move(disjunction), std::move(equal));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      DPFS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return negated ? MakeNot(std::move(disjunction))
                     : std::move(disjunction);
    }
    static constexpr std::pair<std::string_view, CompareOp> kOps[] = {
        {"=", CompareOp::kEq}, {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe},
        {">=", CompareOp::kGe}, {"<", CompareOp::kLt}, {">", CompareOp::kGt},
    };
    for (const auto& [symbol, op] : kOps) {
      if (Peek().IsSymbol(symbol)) {
        Advance();
        DPFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
        return MakeCompare(op, std::move(lhs), std::move(rhs));
      }
    }
    return Error("expected comparison operator");
  }

  Result<Statement> ParseSelect() {
    Advance();  // SELECT
    SelectStmt stmt;
    if (Peek().IsKeyword("COUNT") && Peek(1).IsSymbol("(")) {
      Advance();  // COUNT
      Advance();  // (
      DPFS_RETURN_IF_ERROR(ExpectSymbol("*"));
      DPFS_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.count_only = true;
    } else if (Peek().IsSymbol("*")) {
      Advance();
    } else {
      while (true) {
        DPFS_ASSIGN_OR_RETURN(std::string col,
                              ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    DPFS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DPFS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      DPFS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      OrderBy order;
      DPFS_ASSIGN_OR_RETURN(order.column, ExpectIdentifier("column name"));
      if (Peek().IsKeyword("DESC")) {
        Advance();
        order.descending = true;
      } else if (Peek().IsKeyword("ASC")) {
        Advance();
      }
      stmt.order_by = std::move(order);
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kInteger || Peek().int_value < 0) {
        return Error("LIMIT requires a non-negative integer");
      }
      stmt.limit = static_cast<std::size_t>(Advance().int_value);
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStmt stmt;
    DPFS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    DPFS_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      DPFS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      DPFS_RETURN_IF_ERROR(ExpectSymbol("="));
      DPFS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      stmt.assignments.emplace_back(std::move(col), std::move(v));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    DPFS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    DPFS_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      DPFS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  DPFS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace dpfs::metadb
