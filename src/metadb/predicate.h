// WHERE-clause expression trees.
//
// Expressions are built by the SQL parser (or programmatically by tests) and
// evaluated against a (Schema, Row) pair. Supported: column references,
// literals, =, !=, <, <=, >, >=, AND, OR, NOT, IS NULL / IS NOT NULL.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "metadb/schema.h"
#include "metadb/value.h"

namespace dpfs::metadb {

enum class CompareOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpName(CompareOp op) noexcept;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Construct through the factory functions below.
class Expr {
 public:
  enum class Kind : std::uint8_t {
    kLiteral,
    kColumn,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kIsNull,
    kLike,
  };

  virtual ~Expr() = default;
  [[nodiscard]] virtual Kind kind() const noexcept = 0;

  /// Evaluates to a Value. Boolean results are int 0/1.
  [[nodiscard]] virtual Result<Value> Evaluate(const Schema& schema,
                                               const Row& row) const = 0;

  /// Pretty form for error messages and EXPLAIN-style debugging.
  [[nodiscard]] virtual std::string ToString() const = 0;
};

ExprPtr MakeLiteral(Value value);
ExprPtr MakeColumn(std::string name);
ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
/// SQL LIKE: '%' matches any run (including empty), '_' any single char.
ExprPtr MakeLike(ExprPtr operand, std::string pattern, bool negated);

/// The LIKE matcher itself (exposed for tests).
bool LikeMatch(std::string_view text, std::string_view pattern) noexcept;

/// Evaluates `expr` as a boolean filter; NULL results count as false.
Result<bool> EvaluateFilter(const Expr& expr, const Schema& schema,
                            const Row& row);

/// If `expr` constrains `column_index` to a single equality value
/// (possibly under AND), returns that value — used for primary-key fast
/// paths. Returns nullopt when no such constraint exists.
std::optional<Value> ExtractEqualityConstraint(const Expr& expr,
                                               const Schema& schema,
                                               std::size_t column_index);

}  // namespace dpfs::metadb
