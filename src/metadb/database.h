// The embedded metadata database: SQL front end, transactions, durability.
//
// This is DPFS's substitute for the paper's POSTGRES instance. One Database
// owns a set of tables, executes the SQL subset in sql_ast.h, and provides:
//   * atomic multi-statement transactions (BEGIN/COMMIT/ROLLBACK) with
//     in-memory undo and WAL-backed redo,
//   * crash recovery (snapshot + committed-WAL replay, torn tails discarded),
//   * checkpointing (snapshot rewrite + WAL truncation).
// All entry points are thread-safe behind one reader/writer lock: mutations
// (and transaction control) hold it exclusively; plain SELECTs outside the
// auto-checkpoint path run under a shared hold, so concurrent lookups no
// longer serialize. For metadata scaling beyond one writer, see
// metadb/sharded_database.h.
#pragma once

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "metadb/sql_ast.h"
#include "metadb/table.h"
#include "metadb/wal.h"

namespace dpfs::metrics {
class Counter;
class Histogram;
}  // namespace dpfs::metrics

namespace dpfs::metadb {

/// Rows returned by SELECT (or affected-count for mutations).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affected_rows = 0;

  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows.size(); }

  /// Typed cell accessors by column name; error on unknown column or type.
  [[nodiscard]] Result<std::int64_t> GetInt(std::size_t row,
                                            std::string_view column) const;
  [[nodiscard]] Result<double> GetDouble(std::size_t row,
                                         std::string_view column) const;
  [[nodiscard]] Result<std::string> GetText(std::size_t row,
                                            std::string_view column) const;
  [[nodiscard]] Result<Value> GetValue(std::size_t row,
                                       std::string_view column) const;

  /// ASCII table rendering for the shell and debugging.
  [[nodiscard]] std::string ToString() const;
};

class Database {
 public:
  /// Durable database rooted at `dir` (created if missing): `snapshot.db`
  /// plus `wal.log`. Recovers committed state on open.
  ///
  /// The database is embedded, single-process: Open takes an exclusive
  /// advisory lock (`<dir>/lock`) held until destruction, waiting up to
  /// `lock_wait` for another process to release it (kUnavailable on
  /// timeout). Short-lived openers — dpfsd registration, dpfs CLI commands —
  /// therefore serialize instead of corrupting each other's WAL.
  static Result<std::unique_ptr<Database>> Open(
      const std::filesystem::path& dir,
      std::chrono::milliseconds lock_wait = std::chrono::milliseconds(5000));

  /// Enables automatic checkpointing: after any auto-commit or COMMIT that
  /// leaves the WAL larger than `wal_bytes`, the database snapshots and
  /// truncates the log (bounding recovery time). 0 disables (default).
  void SetAutoCheckpoint(std::uint64_t wal_bytes);

  /// Power-failure durability: fdatasync the WAL on every commit. Default
  /// off (process-crash durable only). No-op on in-memory databases.
  void SetSyncCommits(bool sync);

  /// Volatile database (tests, simulations) — no files, no WAL.
  static std::unique_ptr<Database> OpenInMemory();

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes one statement. BEGIN/COMMIT/ROLLBACK control the
  /// explicit transaction; other statements auto-commit when outside one.
  Result<ResultSet> Execute(std::string_view sql);

  /// Pre-parsed execution (skips the parser; used by hot metadata paths).
  Result<ResultSet> ExecuteStatement(const Statement& statement);

  /// Serializes all tables to the snapshot file and truncates the WAL.
  /// No-op (Ok) for in-memory databases.
  Status Checkpoint();

  /// Builds a non-unique secondary index on `table.column` to accelerate
  /// equality predicates. Indexes are in-memory acceleration (derived
  /// state): re-create them after reopening a durable database.
  Status CreateIndex(std::string_view table, std::string_view column);

  /// Serializes the whole database as replayable SQL: one CREATE TABLE plus
  /// one INSERT per row, in a deterministic order. Feeding every statement
  /// back through Execute() on an empty database reproduces the state —
  /// the ops/migration escape hatch.
  [[nodiscard]] std::vector<std::string> DumpSql() const;

  /// Introspection.
  [[nodiscard]] std::vector<std::string> TableNames() const;
  [[nodiscard]] bool HasTable(std::string_view name) const;
  [[nodiscard]] bool in_transaction() const;
  [[nodiscard]] std::uint64_t wal_size_bytes() const;

  /// Tags this database as shard `shard` of a ShardedDatabase: statement
  /// count and execute latency are additionally recorded under
  /// `metadb.statements{shard=N}` / `metadb.execute_us{shard=N}` so per-shard
  /// load imbalance is visible (docs/OBSERVABILITY.md). Call once, before
  /// the database is shared across threads.
  void SetMetricsShard(std::size_t shard);

 private:
  Database() = default;

  struct UndoOp;

  // All require the caller to hold mu_ (checked by the analysis).
  Result<ResultSet> ExecuteLocked(const Statement& statement)
      DPFS_REQUIRES(mu_);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStmt& stmt)
      DPFS_REQUIRES(mu_);
  Result<ResultSet> ExecuteDropTable(const DropTableStmt& stmt)
      DPFS_REQUIRES(mu_);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt) DPFS_REQUIRES(mu_);
  // SELECT mutates nothing, so a shared (reader) hold suffices — the
  // exclusive hold inside ExecuteLocked satisfies it too.
  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt) const
      DPFS_REQUIRES_SHARED(mu_);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& stmt) DPFS_REQUIRES(mu_);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& stmt) DPFS_REQUIRES(mu_);
  Status BeginLocked() DPFS_REQUIRES(mu_);
  Status CommitLocked() DPFS_REQUIRES(mu_);
  Status RollbackLocked() DPFS_REQUIRES(mu_);
  Result<Table*> FindTable(std::string_view name) DPFS_REQUIRES(mu_);
  Result<const Table*> FindTable(std::string_view name) const
      DPFS_REQUIRES_SHARED(mu_);
  // dpfs:no-tsa(open-time only: runs on the one thread building the
  // database, before it is shared, so no lock is held)
  Status ApplyWalRecord(const WalRecord& record)
      DPFS_NO_THREAD_SAFETY_ANALYSIS;
  // dpfs:no-tsa(open-time only, same single-thread recovery path as
  // ApplyWalRecord)
  Status LoadSnapshot(const std::filesystem::path& file)
      DPFS_NO_THREAD_SAFETY_ANALYSIS;
  Status WriteSnapshot(const std::filesystem::path& file) const
      DPFS_REQUIRES(mu_);
  void RecordRedo(WalRecord record) DPFS_REQUIRES(mu_);
  void RecordUndo(UndoOp op) DPFS_REQUIRES(mu_);

  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_
      DPFS_GUARDED_BY(mu_);             // key: lower name
  std::optional<WriteAheadLog> wal_
      DPFS_GUARDED_BY(mu_);             // nullopt for in-memory
  int lock_fd_ = -1;                    // exclusive cross-process lock
  std::filesystem::path dir_;           // immutable after Open
  std::uint64_t next_txn_id_ DPFS_GUARDED_BY(mu_) = 1;
  std::uint64_t auto_checkpoint_wal_bytes_
      DPFS_GUARDED_BY(mu_) = 0;         // 0 = disabled

  // Per-shard labeled instruments (null when not part of a ShardedDatabase).
  // Set once before the database is shared, then read-only — no lock.
  metrics::Counter* shard_statements_ = nullptr;
  metrics::Histogram* shard_execute_us_ = nullptr;

  // Active transaction state (empty when not in a transaction).
  bool in_txn_ DPFS_GUARDED_BY(mu_) = false;
  bool implicit_txn_ DPFS_GUARDED_BY(mu_) = false;
  std::vector<WalRecord> redo_ DPFS_GUARDED_BY(mu_);
  std::vector<UndoOp> undo_ DPFS_GUARDED_BY(mu_);
};

}  // namespace dpfs::metadb
