#include "metadb/predicate.h"

#include <utility>

namespace dpfs::metadb {
namespace {

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kLiteral; }
  [[nodiscard]] Result<Value> Evaluate(const Schema&,
                                       const Row&) const override {
    return value_;
  }
  [[nodiscard]] std::string ToString() const override {
    return value_.ToString();
  }
  [[nodiscard]] const Value& value() const noexcept { return value_; }

 private:
  Value value_;
};

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kColumn; }
  [[nodiscard]] Result<Value> Evaluate(const Schema& schema,
                                       const Row& row) const override {
    DPFS_ASSIGN_OR_RETURN(const std::size_t index, schema.ColumnIndex(name_));
    return row.at(index);
  }
  [[nodiscard]] std::string ToString() const override { return name_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kCompare; }
  [[nodiscard]] Result<Value> Evaluate(const Schema& schema,
                                       const Row& row) const override {
    DPFS_ASSIGN_OR_RETURN(const Value lhs, lhs_->Evaluate(schema, row));
    DPFS_ASSIGN_OR_RETURN(const Value rhs, rhs_->Evaluate(schema, row));
    // SQL semantics: comparison with NULL yields NULL (treated false by
    // EvaluateFilter).
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    DPFS_ASSIGN_OR_RETURN(const int cmp, lhs.Compare(rhs));
    bool truth = false;
    switch (op_) {
      case CompareOp::kEq: truth = cmp == 0; break;
      case CompareOp::kNe: truth = cmp != 0; break;
      case CompareOp::kLt: truth = cmp < 0; break;
      case CompareOp::kLe: truth = cmp <= 0; break;
      case CompareOp::kGt: truth = cmp > 0; break;
      case CompareOp::kGe: truth = cmp >= 0; break;
    }
    return Value(static_cast<std::int64_t>(truth));
  }
  [[nodiscard]] std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + std::string(CompareOpName(op_)) +
           " " + rhs_->ToString() + ")";
  }
  [[nodiscard]] CompareOp op() const noexcept { return op_; }
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class BinaryBoolExpr final : public Expr {
 public:
  BinaryBoolExpr(Kind kind, ExprPtr lhs, ExprPtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] Kind kind() const noexcept override { return kind_; }
  [[nodiscard]] Result<Value> Evaluate(const Schema& schema,
                                       const Row& row) const override {
    DPFS_ASSIGN_OR_RETURN(const bool lhs, EvaluateFilter(*lhs_, schema, row));
    if (kind_ == Kind::kAnd && !lhs) return Value(std::int64_t{0});
    if (kind_ == Kind::kOr && lhs) return Value(std::int64_t{1});
    DPFS_ASSIGN_OR_RETURN(const bool rhs, EvaluateFilter(*rhs_, schema, row));
    return Value(static_cast<std::int64_t>(rhs));
  }
  [[nodiscard]] std::string ToString() const override {
    const char* name = kind_ == Kind::kAnd ? " AND " : " OR ";
    return "(" + lhs_->ToString() + name + rhs_->ToString() + ")";
  }
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

 private:
  Kind kind_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kNot; }
  [[nodiscard]] Result<Value> Evaluate(const Schema& schema,
                                       const Row& row) const override {
    DPFS_ASSIGN_OR_RETURN(const bool v, EvaluateFilter(*operand_, schema, row));
    return Value(static_cast<std::int64_t>(!v));
  }
  [[nodiscard]] std::string ToString() const override {
    return "(NOT " + operand_->ToString() + ")";
  }

 private:
  ExprPtr operand_;
};

class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kIsNull; }
  [[nodiscard]] Result<Value> Evaluate(const Schema& schema,
                                       const Row& row) const override {
    DPFS_ASSIGN_OR_RETURN(const Value v, operand_->Evaluate(schema, row));
    const bool truth = negated_ ? !v.is_null() : v.is_null();
    return Value(static_cast<std::int64_t>(truth));
  }
  [[nodiscard]] std::string ToString() const override {
    return "(" + operand_->ToString() +
           (negated_ ? " IS NOT NULL)" : " IS NULL)");
  }

 private:
  ExprPtr operand_;
  bool negated_;
};

class LikeExpr final : public Expr {
 public:
  LikeExpr(ExprPtr operand, std::string pattern, bool negated)
      : operand_(std::move(operand)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kLike; }
  [[nodiscard]] Result<Value> Evaluate(const Schema& schema,
                                       const Row& row) const override {
    DPFS_ASSIGN_OR_RETURN(const Value v, operand_->Evaluate(schema, row));
    if (v.is_null()) return Value::Null();
    if (v.type() != ValueType::kText) {
      return InvalidArgumentError("LIKE requires a text operand");
    }
    const bool truth = LikeMatch(v.AsText(), pattern_) != negated_;
    return Value(static_cast<std::int64_t>(truth));
  }
  [[nodiscard]] std::string ToString() const override {
    return "(" + operand_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
           pattern_ + "')";
  }

 private:
  ExprPtr operand_;
  std::string pattern_;
  bool negated_;
};

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) noexcept {
  // Iterative wildcard match with backtracking over the last '%'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string_view CompareOpName(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

ExprPtr MakeLiteral(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr MakeColumn(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryBoolExpr>(Expr::Kind::kAnd, std::move(lhs),
                                          std::move(rhs));
}
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryBoolExpr>(Expr::Kind::kOr, std::move(lhs),
                                          std::move(rhs));
}
ExprPtr MakeNot(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}
ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  return std::make_shared<IsNullExpr>(std::move(operand), negated);
}
ExprPtr MakeLike(ExprPtr operand, std::string pattern, bool negated) {
  return std::make_shared<LikeExpr>(std::move(operand), std::move(pattern),
                                    negated);
}

Result<bool> EvaluateFilter(const Expr& expr, const Schema& schema,
                            const Row& row) {
  DPFS_ASSIGN_OR_RETURN(const Value v, expr.Evaluate(schema, row));
  if (v.is_null()) return false;
  switch (v.type()) {
    case ValueType::kInt: return v.AsInt() != 0;
    case ValueType::kDouble: return v.AsDouble() != 0.0;
    default:
      return InvalidArgumentError("WHERE clause did not evaluate to boolean");
  }
}

std::optional<Value> ExtractEqualityConstraint(const Expr& expr,
                                               const Schema& schema,
                                               std::size_t column_index) {
  if (expr.kind() == Expr::Kind::kAnd) {
    const auto& and_expr = static_cast<const BinaryBoolExpr&>(expr);
    if (auto lhs =
            ExtractEqualityConstraint(and_expr.lhs(), schema, column_index)) {
      return lhs;
    }
    return ExtractEqualityConstraint(and_expr.rhs(), schema, column_index);
  }
  if (expr.kind() != Expr::Kind::kCompare) return std::nullopt;
  const auto& cmp = static_cast<const CompareExpr&>(expr);
  if (cmp.op() != CompareOp::kEq) return std::nullopt;

  const Expr* column_side = nullptr;
  const Expr* literal_side = nullptr;
  if (cmp.lhs().kind() == Expr::Kind::kColumn &&
      cmp.rhs().kind() == Expr::Kind::kLiteral) {
    column_side = &cmp.lhs();
    literal_side = &cmp.rhs();
  } else if (cmp.rhs().kind() == Expr::Kind::kColumn &&
             cmp.lhs().kind() == Expr::Kind::kLiteral) {
    column_side = &cmp.rhs();
    literal_side = &cmp.lhs();
  } else {
    return std::nullopt;
  }
  const auto& column = static_cast<const ColumnExpr&>(*column_side);
  const Result<std::size_t> index = schema.ColumnIndex(column.name());
  if (!index.ok() || index.value() != column_index) return std::nullopt;
  return static_cast<const LiteralExpr&>(*literal_side).value();
}

}  // namespace dpfs::metadb
