// Typed cell values for the DPFS metadata database.
//
// The four DPFS tables use integers (sizes, performance numbers), doubles
// (reserved), and text (names, brick lists, HPF patterns). NULL is supported
// because DPFS-FILE-ATTR columns like `pattern` only apply to array-level
// files.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/status.h"

namespace dpfs::metadb {

enum class ValueType : std::uint8_t { kNull = 0, kInt = 1, kDouble = 2, kText = 3 };

std::string_view ValueTypeName(ValueType type) noexcept;

/// A dynamically typed cell. Comparison between numeric types promotes to
/// double; comparing text with numbers is an error (kInvalidArgument).
class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL
  Value(std::int64_t v) : data_(v) {}   // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}         // NOLINT
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  [[nodiscard]] ValueType type() const noexcept {
    return static_cast<ValueType>(data_.index());
  }
  [[nodiscard]] bool is_null() const noexcept {
    return type() == ValueType::kNull;
  }

  /// Typed accessors; calling the wrong one on a populated value aborts
  /// (programming error). Use type() to dispatch.
  [[nodiscard]] std::int64_t AsInt() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] double AsDouble() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& AsText() const {
    return std::get<std::string>(data_);
  }

  /// Numeric coercion: int or double → double. Error on text/NULL.
  [[nodiscard]] Result<double> ToDouble() const;

  /// Three-way compare. NULL compares equal to NULL and less than everything
  /// else (SQL-lite semantics sufficient for metadata predicates; DPFS
  /// predicates never rely on NULL ordering).
  [[nodiscard]] Result<int> Compare(const Value& other) const;

  /// Display form: NULL, 42, 3.5, 'text'.
  [[nodiscard]] std::string ToString() const;

  void Serialize(BinaryWriter& writer) const;
  static Result<Value> Deserialize(BinaryReader& reader);

  friend bool operator==(const Value& a, const Value& b) {
    const auto cmp = a.Compare(b);
    return cmp.ok() && cmp.value() == 0;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

}  // namespace dpfs::metadb
