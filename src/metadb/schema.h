// Table schemas: typed, named columns with optional PRIMARY KEY.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "metadb/value.h"

namespace dpfs::metadb {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kText;
  bool primary_key = false;  // at most one column per table

  friend bool operator==(const ColumnDef&, const ColumnDef&) = default;
};

using Row = std::vector<Value>;

class Schema {
 public:
  Schema() = default;
  /// Validates: non-empty, unique case-insensitive names, ≤1 primary key,
  /// no kNull column types.
  static Result<Schema> Create(std::vector<ColumnDef> columns);

  [[nodiscard]] const std::vector<ColumnDef>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return columns_.size();
  }

  /// Case-insensitive lookup; kNotFound if absent.
  [[nodiscard]] Result<std::size_t> ColumnIndex(std::string_view name) const;

  /// Index of the PRIMARY KEY column, if declared.
  [[nodiscard]] std::optional<std::size_t> primary_key_index() const noexcept {
    return primary_key_index_;
  }

  /// Checks arity and per-column type compatibility (NULL always allowed,
  /// int accepted into double columns).
  [[nodiscard]] Status ValidateRow(const Row& row) const;

  void Serialize(BinaryWriter& writer) const;
  static Result<Schema> Deserialize(BinaryReader& reader);

 private:
  std::vector<ColumnDef> columns_;
  std::optional<std::size_t> primary_key_index_;
};

/// Coerces `value` for storage into a column of `type`: int → double when the
/// column is double; everything else must match exactly or be NULL.
Result<Value> CoerceValue(const Value& value, ValueType type);

}  // namespace dpfs::metadb
