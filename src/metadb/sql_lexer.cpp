#include "metadb/sql_lexer.h"

#include <cctype>

#include "common/strings.h"

namespace dpfs::metadb {

bool Token::IsSymbol(std::string_view s) const noexcept {
  return kind == TokenKind::kSymbol && text == s;
}

bool Token::IsKeyword(std::string_view keyword) const noexcept {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, keyword);
}

namespace {

bool IsIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
  // '-' and '.' appear inside DPFS identifiers like DPFS-SERVER and host
  // names; the lexer only treats '-' as part of an identifier when it follows
  // an identifier character (handled by the scan loop below).
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = sql.size();

  const auto make_error = [&](const std::string& what, std::size_t at) {
    return InvalidArgumentError("sql lexer: " + what + " at offset " +
                                std::to_string(at));
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;

    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentBody(sql[i])) ++i;
      // Trim a trailing '-' or '.' that is really punctuation.
      while (i > start && (sql[i - 1] == '-' || sql[i - 1] == '.')) --i;
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') {
          if (is_float) return make_error("malformed number", start);
          is_float = true;
        }
        ++i;
      }
      const std::string_view text = sql.substr(start, i - start);
      if (is_float) {
        DPFS_ASSIGN_OR_RETURN(token.float_value, ParseDouble(text));
        token.kind = TokenKind::kFloat;
      } else {
        DPFS_ASSIGN_OR_RETURN(token.int_value, ParseInt64(text));
        token.kind = TokenKind::kInteger;
      }
      token.text = std::string(text);
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += sql[i++];
      }
      if (!closed) return make_error("unterminated string literal", token.offset);
      token.kind = TokenKind::kString;
      token.text = std::move(body);
      tokens.push_back(std::move(token));
      continue;
    }

    // Multi-char operators first.
    const std::string_view rest = sql.substr(i);
    for (const std::string_view op : {"!=", "<>", "<=", ">="}) {
      if (StartsWith(rest, op)) {
        token.kind = TokenKind::kSymbol;
        token.text = (op == "<>") ? "!=" : std::string(op);
        tokens.push_back(std::move(token));
        i += op.size();
        goto next_char;
      }
    }
    if (std::string_view("(),;*=<>").find(c) != std::string_view::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return make_error(std::string("unexpected character '") + c + "'", i);
  next_char:;
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dpfs::metadb
