#include "metadb/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/log.h"

namespace dpfs::metadb {

Bytes WalRecord::Encode() const {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(kind));
  writer.WriteU64(txn_id);
  switch (kind) {
    case WalRecordKind::kBegin:
    case WalRecordKind::kCommit:
      break;
    case WalRecordKind::kCreateTable:
      writer.WriteString(table);
      schema.Serialize(writer);
      break;
    case WalRecordKind::kDropTable:
      writer.WriteString(table);
      break;
    case WalRecordKind::kInsert:
    case WalRecordKind::kUpdate:
      writer.WriteString(table);
      writer.WriteU64(row_id);
      writer.WriteU32(static_cast<std::uint32_t>(row.size()));
      for (const Value& v : row) v.Serialize(writer);
      break;
    case WalRecordKind::kDelete:
      writer.WriteString(table);
      writer.WriteU64(row_id);
      break;
  }
  return std::move(writer).TakeBuffer();
}

Result<WalRecord> WalRecord::Decode(ByteSpan payload) {
  BinaryReader reader(payload);
  WalRecord record;
  DPFS_ASSIGN_OR_RETURN(const std::uint8_t kind_tag, reader.ReadU8());
  record.kind = static_cast<WalRecordKind>(kind_tag);
  DPFS_ASSIGN_OR_RETURN(record.txn_id, reader.ReadU64());
  switch (record.kind) {
    case WalRecordKind::kBegin:
    case WalRecordKind::kCommit:
      break;
    case WalRecordKind::kCreateTable: {
      DPFS_ASSIGN_OR_RETURN(record.table, reader.ReadString());
      DPFS_ASSIGN_OR_RETURN(record.schema, Schema::Deserialize(reader));
      break;
    }
    case WalRecordKind::kDropTable: {
      DPFS_ASSIGN_OR_RETURN(record.table, reader.ReadString());
      break;
    }
    case WalRecordKind::kInsert:
    case WalRecordKind::kUpdate: {
      DPFS_ASSIGN_OR_RETURN(record.table, reader.ReadString());
      DPFS_ASSIGN_OR_RETURN(record.row_id, reader.ReadU64());
      DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
      record.row.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        DPFS_ASSIGN_OR_RETURN(Value v, Value::Deserialize(reader));
        record.row.push_back(std::move(v));
      }
      break;
    }
    case WalRecordKind::kDelete: {
      DPFS_ASSIGN_OR_RETURN(record.table, reader.ReadString());
      DPFS_ASSIGN_OR_RETURN(record.row_id, reader.ReadU64());
      break;
    }
    default:
      return ProtocolError("wal: bad record kind " + std::to_string(kind_tag));
  }
  if (!reader.AtEnd()) return ProtocolError("wal: record has trailing bytes");
  return record;
}

namespace {

/// Reads the whole file; returns decoded records of the committed prefix.
Result<std::vector<WalRecord>> ReadCommittedRecords(
    const std::filesystem::path& path, std::uint64_t* valid_size) {
  *valid_size = 0;
  std::vector<WalRecord> committed;
  std::FILE* file = std::fopen(path.string().c_str(), "rb");
  if (file == nullptr) return committed;  // no log yet
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  std::vector<WalRecord> pending;   // ops of the in-flight txn
  bool in_txn = false;
  std::uint64_t offset = 0;

  while (true) {
    std::uint8_t header[8];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, header, 4);
    std::memcpy(&crc, header + 4, 4);
    if (len > (64u << 20)) break;  // corrupt length; treat as torn tail
    Bytes payload(len);
    if (len > 0 && std::fread(payload.data(), 1, len, file) != len) break;
    if (Crc32c(payload) != crc) break;  // torn/corrupt tail
    const Result<WalRecord> decoded = WalRecord::Decode(payload);
    if (!decoded.ok()) break;
    const WalRecord& record = decoded.value();

    switch (record.kind) {
      case WalRecordKind::kBegin:
        pending.clear();
        in_txn = true;
        break;
      case WalRecordKind::kCommit:
        if (in_txn) {
          for (WalRecord& op : pending) committed.push_back(std::move(op));
          pending.clear();
          in_txn = false;
          // Everything up to and including this record is durable.
          offset += 8 + len;
          *valid_size = offset;
          continue;
        }
        break;
      default:
        if (in_txn) pending.push_back(record);
        break;
    }
    offset += 8 + len;
  }
  return committed;
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(
    const std::filesystem::path& path,
    const std::function<Status(const WalRecord&)>& apply,
    std::uint64_t* max_txn_id) {
  std::uint64_t valid_size = 0;
  DPFS_ASSIGN_OR_RETURN(const std::vector<WalRecord> committed,
                        ReadCommittedRecords(path, &valid_size));
  for (const WalRecord& record : committed) {
    DPFS_RETURN_IF_ERROR(
        apply(record).WithContext("wal replay of table '" + record.table + "'"));
    if (max_txn_id != nullptr && record.txn_id > *max_txn_id) {
      *max_txn_id = record.txn_id;
    }
  }
  // Truncate any torn tail so new appends start at a clean boundary.
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::resize_file(path, valid_size, ec);
    if (ec) return IoError("wal truncate: " + ec.message());
  }
  std::FILE* file = std::fopen(path.string().c_str(), "ab");
  if (file == nullptr) return IoErrnoError("open wal", path.string());
  return WriteAheadLog(file, path, valid_size);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      size_(other.size_),
      sync_commits_(other.sync_commits_) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    size_ = other.size_;
    sync_commits_ = other.sync_commits_;
    other.file_ = nullptr;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() { Close(); }

void WriteAheadLog::Close() noexcept {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::AppendTransaction(std::uint64_t txn_id,
                                        const std::vector<WalRecord>& ops) {
  if (file_ == nullptr) return InternalError("wal: closed");
  BinaryWriter frame;
  const auto append_record = [&frame](const WalRecord& record) {
    const Bytes payload = record.Encode();
    frame.WriteU32(static_cast<std::uint32_t>(payload.size()));
    frame.WriteU32(Crc32c(payload));
    frame.WriteRaw(payload);
  };
  WalRecord begin;
  begin.kind = WalRecordKind::kBegin;
  begin.txn_id = txn_id;
  append_record(begin);
  for (const WalRecord& op : ops) {
    WalRecord stamped = op;  // ops carry the owning transaction's id
    stamped.txn_id = txn_id;
    append_record(stamped);
  }
  WalRecord commit;
  commit.kind = WalRecordKind::kCommit;
  commit.txn_id = txn_id;
  append_record(commit);

  const Bytes& data = frame.buffer();
  if (auto fp = failpoint::Check("wal.append")) {
    switch (fp->action) {
      case failpoint::Action::kReturnError:
        return fp->status;
      case failpoint::Action::kTornWrite:
      case failpoint::Action::kShortIo: {
        // Persist only the first `arg` bytes of the transaction's frame —
        // the on-disk image a crash mid-append leaves behind. The caller
        // must treat this WAL as dead (close and recover), exactly as after
        // a real torn write.
        const std::size_t torn =
            std::min<std::size_t>(static_cast<std::size_t>(fp->arg),
                                  data.size());
        if (torn > 0 &&
            std::fwrite(data.data(), 1, torn, file_) != torn) {
          return IoErrnoError("wal torn append", path_.string());
        }
        (void)std::fflush(file_);
        size_ += torn;
        return IoError("wal append torn after " + std::to_string(torn) +
                       " bytes (" + fp->status.message() + ")");
      }
      default:
        break;
    }
  }
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return IoErrnoError("wal append", path_.string());
  }
  if (std::fflush(file_) != 0) {
    return IoErrnoError("wal flush", path_.string());
  }
  // Crash-before-sync: bytes reached the page cache, durability did not.
  DPFS_FAILPOINT_RETURN("wal.sync");
  if (sync_commits_ && ::fdatasync(fileno(file_)) != 0) {
    return IoErrnoError("wal fdatasync", path_.string());
  }
  size_ += data.size();
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  Close();
  std::error_code ec;
  std::filesystem::resize_file(path_, 0, ec);
  if (ec) return IoError("wal reset: " + ec.message());
  file_ = std::fopen(path_.string().c_str(), "ab");
  if (file_ == nullptr) return IoErrnoError("reopen wal", path_.string());
  size_ = 0;
  return Status::Ok();
}

}  // namespace dpfs::metadb
