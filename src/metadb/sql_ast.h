// Parsed statement forms for the DPFS SQL subset.
//
// Supported statements (enough to express everything the paper does with
// POSTGRES, plus transactions):
//   CREATE TABLE [IF NOT EXISTS] t (col TYPE [PRIMARY KEY], ...)
//   DROP TABLE [IF EXISTS] t
//   INSERT INTO t [(cols)] VALUES (v, ...) [, (v, ...) ...]
//   SELECT cols|* FROM t [WHERE expr] [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET col = literal, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   BEGIN | COMMIT | ROLLBACK
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "metadb/predicate.h"
#include "metadb/schema.h"

namespace dpfs::metadb {

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<Value>> rows;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectStmt {
  std::vector<std::string> columns;  // empty = '*'
  bool count_only = false;           // SELECT COUNT(*) — yields one int row
  std::string table;
  ExprPtr where;  // may be null
  std::optional<OrderBy> order_by;
  std::optional<std::size_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
};

struct BeginStmt {};
struct CommitStmt {};
struct RollbackStmt {};

using Statement =
    std::variant<CreateTableStmt, DropTableStmt, InsertStmt, SelectStmt,
                 UpdateStmt, DeleteStmt, BeginStmt, CommitStmt, RollbackStmt>;

}  // namespace dpfs::metadb
