#include "metadb/sharded_database.h"

#include <cstdio>
#include <string>

#include "common/strings.h"

namespace dpfs::metadb {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::filesystem::path ShardDir(const std::filesystem::path& dir,
                               std::size_t index) {
  char name[16];
  std::snprintf(name, sizeof(name), "shard-%02zu", index);
  return dir / name;
}

/// Reads "<dir>/shards" ("shards=<N>"); 0 means no manifest.
Result<std::size_t> ReadManifest(const std::filesystem::path& dir) {
  const std::filesystem::path file = dir / "shards";
  std::FILE* in = std::fopen(file.string().c_str(), "rb");
  if (in == nullptr) return static_cast<std::size_t>(0);
  char buf[64];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, in);
  std::fclose(in);
  buf[n] = '\0';
  const std::string_view text = TrimWhitespace(buf);
  constexpr std::string_view kPrefix = "shards=";
  unsigned long long count = 0;
  if (text.substr(0, kPrefix.size()) != kPrefix ||
      std::sscanf(text.data() + kPrefix.size(), "%llu", &count) != 1 ||
      count == 0) {
    return DataLossError("bad shard manifest '" + file.string() + "': " +
                         std::string(text));
  }
  return static_cast<std::size_t>(count);
}

Status WriteManifest(const std::filesystem::path& dir, std::size_t count) {
  const std::filesystem::path file = dir / "shards";
  std::FILE* out = std::fopen(file.string().c_str(), "wb");
  if (out == nullptr) return IoErrnoError("write shard manifest", file.string());
  const std::string line = "shards=" + std::to_string(count) + "\n";
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), out) == line.size() &&
      std::fflush(out) == 0;
  std::fclose(out);
  if (!ok) return IoErrnoError("write shard manifest", file.string());
  return Status::Ok();
}

}  // namespace

std::uint64_t ShardedDatabase::HashPath(std::string_view path) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const char c : path) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    const std::filesystem::path& dir, std::size_t num_shards,
    std::chrono::milliseconds lock_wait) {
  if (num_shards == 0 || num_shards > kMaxShards) {
    return InvalidArgumentError("metadb_shards must be in [1, " +
                                std::to_string(kMaxShards) + "], got " +
                                std::to_string(num_shards));
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return IoError("create db dir '" + dir.string() + "': " + ec.message());
  }

  DPFS_ASSIGN_OR_RETURN(const std::size_t manifest_shards, ReadManifest(dir));
  if (num_shards == 1) {
    if (manifest_shards > 1) {
      return InvalidArgumentError(
          "database '" + dir.string() + "' is sharded (" +
          std::to_string(manifest_shards) +
          " shards); opening it with metadb_shards=1 requires an explicit "
          "migration (DumpSql replay)");
    }
    // Plain single database: byte-identical layout, no manifest.
    DPFS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(dir, lock_wait));
    std::vector<std::shared_ptr<Database>> shards;
    shards.push_back(std::move(db));
    return std::unique_ptr<ShardedDatabase>(
        new ShardedDatabase(std::move(shards)));
  }

  if (manifest_shards == 0) {
    // Fresh sharded database — unless the dir already holds unsharded state.
    if (std::filesystem::exists(dir / "snapshot.db") ||
        std::filesystem::exists(dir / "wal.log")) {
      return InvalidArgumentError(
          "database '" + dir.string() +
          "' holds an unsharded snapshot/WAL; opening it with metadb_shards=" +
          std::to_string(num_shards) +
          " requires an explicit migration (DumpSql replay)");
    }
    DPFS_RETURN_IF_ERROR(WriteManifest(dir, num_shards));
  } else if (manifest_shards != num_shards) {
    return InvalidArgumentError(
        "database '" + dir.string() + "' has " +
        std::to_string(manifest_shards) + " shards but metadb_shards=" +
        std::to_string(num_shards) +
        " was requested; resharding requires an explicit migration");
  }

  std::vector<std::shared_ptr<Database>> shards;
  shards.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    DPFS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(ShardDir(dir, i), lock_wait));
    db->SetMetricsShard(i);
    shards.push_back(std::move(db));
  }
  return std::unique_ptr<ShardedDatabase>(
      new ShardedDatabase(std::move(shards)));
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::OpenInMemory(
    std::size_t num_shards) {
  if (num_shards == 0 || num_shards > kMaxShards) {
    return InvalidArgumentError("metadb_shards must be in [1, " +
                                std::to_string(kMaxShards) + "], got " +
                                std::to_string(num_shards));
  }
  std::vector<std::shared_ptr<Database>> shards;
  shards.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    std::shared_ptr<Database> db = Database::OpenInMemory();
    if (num_shards > 1) db->SetMetricsShard(i);
    shards.push_back(std::move(db));
  }
  return std::unique_ptr<ShardedDatabase>(
      new ShardedDatabase(std::move(shards)));
}

std::unique_ptr<ShardedDatabase> ShardedDatabase::Adopt(
    std::shared_ptr<Database> db) {
  std::vector<std::shared_ptr<Database>> shards;
  shards.push_back(std::move(db));
  return std::unique_ptr<ShardedDatabase>(
      new ShardedDatabase(std::move(shards)));
}

void ShardedDatabase::SetAutoCheckpoint(std::uint64_t wal_bytes) {
  for (const auto& shard : shards_) shard->SetAutoCheckpoint(wal_bytes);
}

void ShardedDatabase::SetSyncCommits(bool sync) {
  for (const auto& shard : shards_) shard->SetSyncCommits(sync);
}

Status ShardedDatabase::Checkpoint() {
  for (const auto& shard : shards_) {
    DPFS_RETURN_IF_ERROR(shard->Checkpoint());
  }
  return Status::Ok();
}

}  // namespace dpfs::metadb
