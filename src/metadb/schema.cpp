#include "metadb/schema.h"

#include "common/strings.h"

namespace dpfs::metadb {

Result<Schema> Schema::Create(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return InvalidArgumentError("schema must have at least one column");
  }
  Schema schema;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const ColumnDef& col = columns[i];
    if (col.name.empty()) {
      return InvalidArgumentError("column name must be non-empty");
    }
    if (col.type == ValueType::kNull) {
      return InvalidArgumentError("column '" + col.name +
                                  "' cannot have type null");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(columns[j].name, col.name)) {
        return InvalidArgumentError("duplicate column name '" + col.name + "'");
      }
    }
    if (col.primary_key) {
      if (schema.primary_key_index_.has_value()) {
        return InvalidArgumentError("multiple primary key columns");
      }
      schema.primary_key_index_ = i;
    }
  }
  schema.columns_ = std::move(columns);
  return schema;
}

Result<std::size_t> Schema::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return NotFoundError("no such column '" + std::string(name) + "'");
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return InvalidArgumentError(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const Result<Value> coerced = CoerceValue(row[i], columns_[i].type);
    if (!coerced.ok()) {
      return coerced.status().WithContext("column '" + columns_[i].name + "'");
    }
  }
  return Status::Ok();
}

void Schema::Serialize(BinaryWriter& writer) const {
  writer.WriteU32(static_cast<std::uint32_t>(columns_.size()));
  for (const ColumnDef& col : columns_) {
    writer.WriteString(col.name);
    writer.WriteU8(static_cast<std::uint8_t>(col.type));
    writer.WriteBool(col.primary_key);
  }
}

Result<Schema> Schema::Deserialize(BinaryReader& reader) {
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  std::vector<ColumnDef> columns;
  columns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ColumnDef col;
    DPFS_ASSIGN_OR_RETURN(col.name, reader.ReadString());
    DPFS_ASSIGN_OR_RETURN(const std::uint8_t type_tag, reader.ReadU8());
    col.type = static_cast<ValueType>(type_tag);
    DPFS_ASSIGN_OR_RETURN(col.primary_key, reader.ReadBool());
    columns.push_back(std::move(col));
  }
  return Schema::Create(std::move(columns));
}

Result<Value> CoerceValue(const Value& value, ValueType type) {
  if (value.is_null()) return value;
  if (value.type() == type) return value;
  if (type == ValueType::kDouble && value.type() == ValueType::kInt) {
    return Value(static_cast<double>(value.AsInt()));
  }
  return InvalidArgumentError("type mismatch: cannot store " +
                              std::string(ValueTypeName(value.type())) +
                              " into " + std::string(ValueTypeName(type)) +
                              " column");
}

}  // namespace dpfs::metadb
