#include "metadb/database.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <cstdio>
#include <ctime>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "metadb/sql_parser.h"

namespace dpfs::metadb {

// ---------------------------------------------------------------------------
// ResultSet

namespace {

Result<std::size_t> FindColumn(const std::vector<std::string>& columns,
                               std::string_view name) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i], name)) return i;
  }
  return NotFoundError("result set has no column '" + std::string(name) + "'");
}

// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
// execute_us times the whole statement (lock wait included); commit_us
// times CommitLocked, which is dominated by the WAL append.
struct MetadbMetricsT {
  metrics::Counter& statements = metrics::GetCounter("metadb.statements");
  metrics::Counter& commits = metrics::GetCounter("metadb.commits");
  metrics::Counter& rollbacks = metrics::GetCounter("metadb.rollbacks");
  metrics::Histogram& execute_us = metrics::GetHistogram("metadb.execute_us");
  metrics::Histogram& commit_us = metrics::GetHistogram("metadb.commit_us");
};
MetadbMetricsT& MetadbMetrics() {
  static MetadbMetricsT m;
  return m;
}

}  // namespace

Result<Value> ResultSet::GetValue(std::size_t row,
                                  std::string_view column) const {
  if (row >= rows.size()) {
    return OutOfRangeError("row index " + std::to_string(row) +
                           " out of range");
  }
  DPFS_ASSIGN_OR_RETURN(const std::size_t col, FindColumn(columns, column));
  return rows[row].at(col);
}

Result<std::int64_t> ResultSet::GetInt(std::size_t row,
                                       std::string_view column) const {
  DPFS_ASSIGN_OR_RETURN(const Value v, GetValue(row, column));
  if (v.type() != ValueType::kInt) {
    return InvalidArgumentError("column '" + std::string(column) +
                                "' is not int");
  }
  return v.AsInt();
}

Result<double> ResultSet::GetDouble(std::size_t row,
                                    std::string_view column) const {
  DPFS_ASSIGN_OR_RETURN(const Value v, GetValue(row, column));
  return v.ToDouble();
}

Result<std::string> ResultSet::GetText(std::size_t row,
                                       std::string_view column) const {
  DPFS_ASSIGN_OR_RETURN(const Value v, GetValue(row, column));
  if (v.type() != ValueType::kText) {
    return InvalidArgumentError("column '" + std::string(column) +
                                "' is not text");
  }
  return v.AsText();
}

std::string ResultSet::ToString() const {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string text = row[c].type() == ValueType::kText
                             ? row[c].AsText()
                             : row[c].ToString();
      if (c < widths.size()) widths[c] = std::max(widths[c], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& line) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      out += line[c];
      if (c < widths.size()) {
        out.append(widths[c] > line[c].size() ? widths[c] - line[c].size() : 0,
                   ' ');
      }
      out += (c + 1 == line.size()) ? "\n" : "  ";
    }
  };
  append_row(columns);
  for (const auto& line : cells) append_row(line);
  return out;
}

// ---------------------------------------------------------------------------
// Undo log

struct Database::UndoOp {
  enum class Kind : std::uint8_t {
    kEraseInserted,    // undo insert
    kRestoreRow,       // undo update/delete
    kDropCreated,      // undo create table
    kRestoreTable,     // undo drop table
  };
  Kind kind;
  std::string table;
  RowId row_id = 0;
  Row row;                         // kRestoreRow (the old image)
  bool was_delete = false;         // kRestoreRow: re-insert vs overwrite
  std::unique_ptr<Table> dropped;  // kRestoreTable
};

// ---------------------------------------------------------------------------
// Open / recovery

namespace {

/// Acquires an exclusive flock on <dir>/lock, polling until `wait` elapses.
/// The holder records "pid=<pid> since=<unix-seconds>" in the lock file so a
/// timed-out contender can name it — a bare "locked by another process" made
/// the ASan-widened deployment startup race needlessly hard to debug.
Result<int> AcquireDirLock(const std::filesystem::path& dir,
                           std::chrono::milliseconds wait) {
  const std::string lock_path = (dir / "lock").string();
  const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) return IoErrnoError("open db lock", lock_path);
  const auto deadline = std::chrono::steady_clock::now() + wait;
  while (true) {
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      char owner[64];
      const int n =
          std::snprintf(owner, sizeof(owner), "pid=%ld since=%lld\n",
                        static_cast<long>(::getpid()),
                        static_cast<long long>(::time(nullptr)));
      if (n > 0) {
        (void)::ftruncate(fd, 0);
        (void)::pwrite(fd, owner, static_cast<std::size_t>(n), 0);
      }
      return fd;
    }
    if (errno != EWOULDBLOCK && errno != EINTR) {
      ::close(fd);
      return IoErrnoError("lock db", lock_path);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      char owner[64];
      const ssize_t n = ::pread(fd, owner, sizeof(owner) - 1, 0);
      ::close(fd);
      std::string holder;
      if (n > 0) {
        owner[n] = '\0';
        holder = std::string(TrimWhitespace(owner));
      }
      return UnavailableError(
          "database '" + dir.string() + "' is locked by another process" +
          (holder.empty() ? "" : " (holder: " + holder + ")"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(
    const std::filesystem::path& dir, std::chrono::milliseconds lock_wait) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return IoError("create db dir '" + dir.string() + "': " + ec.message());

  std::unique_ptr<Database> db(new Database());
  DPFS_ASSIGN_OR_RETURN(db->lock_fd_, AcquireDirLock(dir, lock_wait));
  db->dir_ = dir;
  // The database is not shared yet, but recovery touches mu_-guarded state;
  // holding the (uncontended) lock keeps the analysis sound here.
  WriterMutexLock lock(db->mu_);
  const std::filesystem::path snapshot = dir / "snapshot.db";
  if (std::filesystem::exists(snapshot)) {
    DPFS_RETURN_IF_ERROR(db->LoadSnapshot(snapshot));
  }
  std::uint64_t max_txn_id = db->next_txn_id_ - 1;
  DPFS_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::Open(
          dir / "wal.log",
          [&db](const WalRecord& record) { return db->ApplyWalRecord(record); },
          &max_txn_id));
  db->wal_.emplace(std::move(wal));
  db->next_txn_id_ = max_txn_id + 1;
  return db;
}

std::unique_ptr<Database> Database::OpenInMemory() {
  return std::unique_ptr<Database>(new Database());
}

Database::~Database() {
  // Close the WAL before releasing the cross-process lock so the next
  // opener never sees a file we are still appending to.
  wal_.reset();
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
}

Status Database::ApplyWalRecord(const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kCreateTable: {
      const std::string key = ToLower(record.table);
      if (tables_.contains(key)) {
        return AlreadyExistsError("replay: table exists: " + record.table);
      }
      tables_[key] = std::make_unique<Table>(record.table, record.schema);
      return Status::Ok();
    }
    case WalRecordKind::kDropTable:
      if (tables_.erase(ToLower(record.table)) == 0) {
        return NotFoundError("replay: no table " + record.table);
      }
      return Status::Ok();
    case WalRecordKind::kInsert: {
      DPFS_ASSIGN_OR_RETURN(Table * table, FindTable(record.table));
      return table->InsertWithId(record.row_id, record.row);
    }
    case WalRecordKind::kUpdate: {
      DPFS_ASSIGN_OR_RETURN(Table * table, FindTable(record.table));
      return table->UpdateRow(record.row_id, record.row);
    }
    case WalRecordKind::kDelete: {
      DPFS_ASSIGN_OR_RETURN(Table * table, FindTable(record.table));
      return table->Erase(record.row_id);
    }
    default:
      return InternalError("replay: unexpected record kind");
  }
}

// ---------------------------------------------------------------------------
// Snapshot format: "DPFSMDB1" magic, then a CRC-protected body.

namespace {
constexpr char kSnapshotMagic[8] = {'D', 'P', 'F', 'S', 'M', 'D', 'B', '1'};
}  // namespace

Status Database::WriteSnapshot(const std::filesystem::path& file) const {
  BinaryWriter body;
  body.WriteU64(next_txn_id_);
  body.WriteU32(static_cast<std::uint32_t>(tables_.size()));
  for (const auto& [key, table] : tables_) {
    body.WriteString(table->name());
    table->schema().Serialize(body);
    body.WriteU64(table->next_row_id());
    body.WriteU64(table->rows().size());
    for (const auto& [row_id, row] : table->rows()) {
      body.WriteU64(row_id);
      body.WriteU32(static_cast<std::uint32_t>(row.size()));
      for (const Value& v : row) v.Serialize(body);
    }
  }
  const Bytes& payload = body.buffer();

  const std::filesystem::path tmp = file.string() + ".tmp";
  std::FILE* out = std::fopen(tmp.string().c_str(), "wb");
  if (out == nullptr) return IoErrnoError("open snapshot", tmp.string());
  bool write_ok = std::fwrite(kSnapshotMagic, 1, 8, out) == 8;
  BinaryWriter header;
  header.WriteU32(static_cast<std::uint32_t>(payload.size()));
  header.WriteU32(Crc32c(payload));
  write_ok = write_ok &&
             std::fwrite(header.buffer().data(), 1, header.size(), out) ==
                 header.size();
  write_ok =
      write_ok && std::fwrite(payload.data(), 1, payload.size(), out) ==
                      payload.size();
  write_ok = write_ok && std::fflush(out) == 0;
  std::fclose(out);
  if (!write_ok) return IoErrnoError("write snapshot", tmp.string());

  std::error_code ec;
  std::filesystem::rename(tmp, file, ec);
  if (ec) return IoError("rename snapshot: " + ec.message());
  return Status::Ok();
}

Status Database::LoadSnapshot(const std::filesystem::path& file) {
  std::FILE* in = std::fopen(file.string().c_str(), "rb");
  if (in == nullptr) return IoErrnoError("open snapshot", file.string());
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{in};

  char magic[8];
  if (std::fread(magic, 1, 8, in) != 8 ||
      std::memcmp(magic, kSnapshotMagic, 8) != 0) {
    return DataLossError("snapshot: bad magic in " + file.string());
  }
  std::uint8_t header[8];
  if (std::fread(header, 1, 8, in) != 8) {
    return DataLossError("snapshot: truncated header");
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  Bytes payload(len);
  if (len > 0 && std::fread(payload.data(), 1, len, in) != len) {
    return DataLossError("snapshot: truncated body");
  }
  if (Crc32c(payload) != crc) {
    return DataLossError("snapshot: checksum mismatch");
  }

  BinaryReader reader(payload);
  DPFS_ASSIGN_OR_RETURN(next_txn_id_, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t table_count, reader.ReadU32());
  for (std::uint32_t t = 0; t < table_count; ++t) {
    DPFS_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    DPFS_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(reader));
    DPFS_ASSIGN_OR_RETURN(const std::uint64_t next_row_id, reader.ReadU64());
    DPFS_ASSIGN_OR_RETURN(const std::uint64_t row_count, reader.ReadU64());
    auto table = std::make_unique<Table>(name, std::move(schema));
    for (std::uint64_t r = 0; r < row_count; ++r) {
      DPFS_ASSIGN_OR_RETURN(const std::uint64_t row_id, reader.ReadU64());
      DPFS_ASSIGN_OR_RETURN(const std::uint32_t value_count, reader.ReadU32());
      Row row;
      row.reserve(value_count);
      for (std::uint32_t v = 0; v < value_count; ++v) {
        DPFS_ASSIGN_OR_RETURN(Value value, Value::Deserialize(reader));
        row.push_back(std::move(value));
      }
      DPFS_RETURN_IF_ERROR(table->InsertWithId(row_id, std::move(row)));
    }
    table->set_next_row_id(next_row_id);
    tables_[ToLower(name)] = std::move(table);
  }
  return Status::Ok();
}

Status Database::Checkpoint() {
  WriterMutexLock lock(mu_);
  if (in_txn_) {
    return AbortedError("cannot checkpoint inside a transaction");
  }
  if (!wal_.has_value()) return Status::Ok();  // in-memory
  DPFS_RETURN_IF_ERROR(WriteSnapshot(dir_ / "snapshot.db"));
  return wal_->Reset();
}

void Database::SetAutoCheckpoint(std::uint64_t wal_bytes) {
  WriterMutexLock lock(mu_);
  auto_checkpoint_wal_bytes_ = wal_bytes;
}

void Database::SetSyncCommits(bool sync) {
  WriterMutexLock lock(mu_);
  if (wal_.has_value()) wal_->SetSyncCommits(sync);
}

void Database::SetMetricsShard(std::size_t shard) {
  const std::string label = "{shard=" + std::to_string(shard) + "}";
  shard_statements_ = &metrics::GetCounter("metadb.statements" + label);
  shard_execute_us_ = &metrics::GetHistogram("metadb.execute_us" + label);
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  WriterMutexLock lock(mu_);
  DPFS_ASSIGN_OR_RETURN(Table * found, FindTable(table));
  return found->CreateIndex(column);
}

// ---------------------------------------------------------------------------
// Execution

Result<ResultSet> Database::Execute(std::string_view sql) {
  DPFS_ASSIGN_OR_RETURN(const Statement statement, ParseStatement(sql));
  return ExecuteStatement(statement);
}

Result<ResultSet> Database::ExecuteStatement(const Statement& statement) {
  MetadbMetrics().statements.Add();
  if (shard_statements_ != nullptr) shard_statements_->Add();
  metrics::ScopedTimer timer(MetadbMetrics().execute_us);
  std::optional<metrics::ScopedTimer> shard_timer;
  if (shard_execute_us_ != nullptr) shard_timer.emplace(*shard_execute_us_);

  // Reader fast path: a SELECT mutates nothing (its auto-commit records no
  // redo/undo and cannot grow the WAL), so concurrent lookups share mu_
  // instead of serializing. SELECTs inside an explicit transaction see the
  // same state either way: statements from other threads could always
  // interleave between this transaction's statements.
  if (const auto* select = std::get_if<SelectStmt>(&statement)) {
    ReaderMutexLock lock(mu_);
    return ExecuteSelect(*select);
  }

  WriterMutexLock lock(mu_);
  Result<ResultSet> result = ExecuteLocked(statement);
  // Auto-checkpoint outside transactions once the WAL outgrows the bound.
  if (result.ok() && !in_txn_ && wal_.has_value() &&
      auto_checkpoint_wal_bytes_ > 0 &&
      wal_->size_bytes() > auto_checkpoint_wal_bytes_) {
    const Status snapshotted = WriteSnapshot(dir_ / "snapshot.db");
    if (snapshotted.ok()) {
      // dpfs:unchecked(a failed truncate leaves the WAL intact — replay
      // over the new snapshot is idempotent, so nothing is lost)
      (void)wal_->Reset();
    }
  }
  return result;
}

Result<Table*> Database::FindTable(std::string_view name) {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return NotFoundError("no such table '" + std::string(name) + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::FindTable(std::string_view name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return NotFoundError("no such table '" + std::string(name) + "'");
  }
  return it->second.get();
}

void Database::RecordRedo(WalRecord record) {
  record.txn_id = next_txn_id_;
  redo_.push_back(std::move(record));
}

void Database::RecordUndo(UndoOp op) { undo_.push_back(std::move(op)); }

Status Database::BeginLocked() {
  if (in_txn_) return AbortedError("nested BEGIN");
  in_txn_ = true;
  implicit_txn_ = false;
  redo_.clear();
  undo_.clear();
  return Status::Ok();
}

Status Database::CommitLocked() {
  if (!in_txn_) return AbortedError("COMMIT outside transaction");
  MetadbMetrics().commits.Add();
  metrics::ScopedTimer timer(MetadbMetrics().commit_us);
  if (wal_.has_value() && !redo_.empty()) {
    // Refused durability before any WAL byte is written: the commit fails
    // cleanly and the in-memory state rolls back.
    if (const auto fp = failpoint::Check("metadb.commit");
        fp.has_value() && fp->action == failpoint::Action::kReturnError) {
      // dpfs:unchecked(the injected commit failure is the status to
      // surface; in-memory undo cannot fail)
      (void)RollbackLocked();
      return fp->status;
    }
    const Status appended = wal_->AppendTransaction(next_txn_id_, redo_);
    if (!appended.ok()) {
      // Durability failed: roll the in-memory state back so memory and disk
      // stay consistent, then surface the error.
      // dpfs:unchecked(the WAL append error is the one to report; the
      // in-memory undo cannot fail)
      (void)RollbackLocked();
      return appended;
    }
  }
  ++next_txn_id_;
  in_txn_ = false;
  redo_.clear();
  undo_.clear();
  return Status::Ok();
}

Status Database::RollbackLocked() {
  if (!in_txn_) return AbortedError("ROLLBACK outside transaction");
  MetadbMetrics().rollbacks.Add();
  // Undo in reverse order.
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    UndoOp& op = *it;
    switch (op.kind) {
      case UndoOp::Kind::kEraseInserted: {
        const Result<Table*> table = FindTable(op.table);
        if (table.ok()) (void)table.value()->Erase(op.row_id);
        break;
      }
      case UndoOp::Kind::kRestoreRow: {
        const Result<Table*> table = FindTable(op.table);
        if (table.ok()) {
          if (op.was_delete) {
            (void)table.value()->InsertWithId(op.row_id, std::move(op.row));
          } else {
            (void)table.value()->UpdateRow(op.row_id, std::move(op.row));
          }
        }
        break;
      }
      case UndoOp::Kind::kDropCreated:
        tables_.erase(ToLower(op.table));
        break;
      case UndoOp::Kind::kRestoreTable:
        tables_[ToLower(op.table)] = std::move(op.dropped);
        break;
    }
  }
  in_txn_ = false;
  redo_.clear();
  undo_.clear();
  return Status::Ok();
}

Result<ResultSet> Database::ExecuteLocked(const Statement& statement) {
  // Transaction control statements.
  if (std::holds_alternative<BeginStmt>(statement)) {
    DPFS_RETURN_IF_ERROR(BeginLocked());
    return ResultSet{};
  }
  if (std::holds_alternative<CommitStmt>(statement)) {
    DPFS_RETURN_IF_ERROR(CommitLocked());
    return ResultSet{};
  }
  if (std::holds_alternative<RollbackStmt>(statement)) {
    DPFS_RETURN_IF_ERROR(RollbackLocked());
    return ResultSet{};
  }

  const bool auto_commit = !in_txn_;
  if (auto_commit) {
    DPFS_RETURN_IF_ERROR(BeginLocked());
    implicit_txn_ = true;
  }

  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    if (const auto* stmt = std::get_if<CreateTableStmt>(&statement)) {
      return ExecuteCreateTable(*stmt);
    }
    if (const auto* stmt = std::get_if<DropTableStmt>(&statement)) {
      return ExecuteDropTable(*stmt);
    }
    if (const auto* stmt = std::get_if<InsertStmt>(&statement)) {
      return ExecuteInsert(*stmt);
    }
    if (const auto* stmt = std::get_if<SelectStmt>(&statement)) {
      return ExecuteSelect(*stmt);
    }
    if (const auto* stmt = std::get_if<UpdateStmt>(&statement)) {
      return ExecuteUpdate(*stmt);
    }
    if (const auto* stmt = std::get_if<DeleteStmt>(&statement)) {
      return ExecuteDelete(*stmt);
    }
    return InternalError("unhandled statement kind");
  }();

  if (auto_commit) {
    if (result.ok()) {
      DPFS_RETURN_IF_ERROR(CommitLocked());
    } else {
      // dpfs:unchecked(the statement error propagates below; rollback of
      // the implicit txn is in-memory and cannot fail)
      (void)RollbackLocked();
    }
  } else if (!result.ok()) {
    // Statement-level atomicity inside explicit transactions is provided by
    // executing each statement against a consistent state: a failed statement
    // has already rolled back its partial effects (see ExecuteInsert/Update).
  }
  return result;
}

Result<ResultSet> Database::ExecuteCreateTable(const CreateTableStmt& stmt) {
  const std::string key = ToLower(stmt.table);
  if (tables_.contains(key)) {
    if (stmt.if_not_exists) return ResultSet{};
    return AlreadyExistsError("table '" + stmt.table + "' already exists");
  }
  DPFS_ASSIGN_OR_RETURN(Schema schema, Schema::Create(stmt.columns));
  tables_[key] = std::make_unique<Table>(stmt.table, schema);
  WalRecord redo;
  redo.kind = WalRecordKind::kCreateTable;
  redo.table = stmt.table;
  redo.schema = std::move(schema);
  RecordRedo(std::move(redo));
  UndoOp undo;
  undo.kind = UndoOp::Kind::kDropCreated;
  undo.table = stmt.table;
  RecordUndo(std::move(undo));
  return ResultSet{};
}

Result<ResultSet> Database::ExecuteDropTable(const DropTableStmt& stmt) {
  const std::string key = ToLower(stmt.table);
  const auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (stmt.if_exists) return ResultSet{};
    return NotFoundError("no such table '" + stmt.table + "'");
  }
  UndoOp undo;
  undo.kind = UndoOp::Kind::kRestoreTable;
  undo.table = stmt.table;
  undo.dropped = std::move(it->second);
  tables_.erase(it);
  RecordUndo(std::move(undo));
  WalRecord redo;
  redo.kind = WalRecordKind::kDropTable;
  redo.table = stmt.table;
  RecordRedo(std::move(redo));
  return ResultSet{};
}

Result<ResultSet> Database::ExecuteInsert(const InsertStmt& stmt) {
  DPFS_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));
  const Schema& schema = table->schema();

  // Map the statement's column list (or schema order) to indices.
  std::vector<std::size_t> indices;
  if (stmt.columns.empty()) {
    indices.resize(schema.num_columns());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  } else {
    for (const std::string& name : stmt.columns) {
      DPFS_ASSIGN_OR_RETURN(const std::size_t index,
                            schema.ColumnIndex(name));
      indices.push_back(index);
    }
  }

  std::vector<RowId> inserted;  // for partial rollback on failure
  for (const std::vector<Value>& values : stmt.rows) {
    if (values.size() != indices.size()) {
      // dpfs:unchecked(undoing rows this statement just inserted; Erase
      // of a known-present row cannot fail)
      for (const RowId id : inserted) (void)table->Erase(id);
      return InvalidArgumentError(
          "INSERT arity mismatch: " + std::to_string(values.size()) +
          " values for " + std::to_string(indices.size()) + " columns");
    }
    Row row(schema.num_columns(), Value::Null());
    for (std::size_t i = 0; i < indices.size(); ++i) row[indices[i]] = values[i];
    const Result<RowId> id = table->Insert(std::move(row));
    if (!id.ok()) {
      // dpfs:unchecked(partial-insert rollback; Erase of a row this
      // statement inserted cannot fail)
      for (const RowId prev : inserted) (void)table->Erase(prev);
      return id.status();
    }
    inserted.push_back(id.value());
  }
  for (const RowId id : inserted) {
    DPFS_ASSIGN_OR_RETURN(Row stored, table->Get(id));
    WalRecord redo;
    redo.kind = WalRecordKind::kInsert;
    redo.table = table->name();
    redo.row_id = id;
    redo.row = std::move(stored);
    RecordRedo(std::move(redo));
    UndoOp undo;
    undo.kind = UndoOp::Kind::kEraseInserted;
    undo.table = table->name();
    undo.row_id = id;
    RecordUndo(std::move(undo));
  }
  ResultSet result;
  result.affected_rows = inserted.size();
  return result;
}

Result<ResultSet> Database::ExecuteSelect(const SelectStmt& stmt) const {
  DPFS_ASSIGN_OR_RETURN(const Table* table, FindTable(stmt.table));
  const Schema& schema = table->schema();
  DPFS_ASSIGN_OR_RETURN(auto matches, table->Scan(stmt.where.get()));

  if (stmt.count_only) {
    ResultSet result;
    result.columns = {"count"};
    result.rows.push_back({Value(static_cast<std::int64_t>(matches.size()))});
    result.affected_rows = 1;
    return result;
  }

  // Projection indices.
  std::vector<std::size_t> projection;
  ResultSet result;
  if (stmt.columns.empty()) {
    projection.resize(schema.num_columns());
    for (std::size_t i = 0; i < projection.size(); ++i) {
      projection[i] = i;
      result.columns.push_back(schema.columns()[i].name);
    }
  } else {
    for (const std::string& name : stmt.columns) {
      DPFS_ASSIGN_OR_RETURN(const std::size_t index, schema.ColumnIndex(name));
      projection.push_back(index);
      result.columns.push_back(schema.columns()[index].name);
    }
  }

  if (stmt.order_by.has_value()) {
    DPFS_ASSIGN_OR_RETURN(const std::size_t sort_col,
                          schema.ColumnIndex(stmt.order_by->column));
    const bool descending = stmt.order_by->descending;
    std::stable_sort(matches.begin(), matches.end(),
                     [sort_col, descending](const auto& a, const auto& b) {
                       const Result<int> cmp =
                           a.second[sort_col].Compare(b.second[sort_col]);
                       const int c = cmp.ok() ? cmp.value() : 0;
                       return descending ? c > 0 : c < 0;
                     });
  }

  const std::size_t limit =
      stmt.limit.value_or(std::numeric_limits<std::size_t>::max());
  for (const auto& [id, row] : matches) {
    if (result.rows.size() >= limit) break;
    Row projected;
    projected.reserve(projection.size());
    for (const std::size_t index : projection) projected.push_back(row[index]);
    result.rows.push_back(std::move(projected));
  }
  result.affected_rows = result.rows.size();
  return result;
}

Result<ResultSet> Database::ExecuteUpdate(const UpdateStmt& stmt) {
  DPFS_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));
  const Schema& schema = table->schema();

  std::vector<std::pair<std::size_t, Value>> assignments;
  for (const auto& [name, value] : stmt.assignments) {
    DPFS_ASSIGN_OR_RETURN(const std::size_t index, schema.ColumnIndex(name));
    assignments.emplace_back(index, value);
  }

  DPFS_ASSIGN_OR_RETURN(const auto matches, table->Scan(stmt.where.get()));
  // Two-phase: build all new rows first so a type error mutates nothing.
  std::vector<std::pair<RowId, Row>> updates;
  for (const auto& [id, row] : matches) {
    Row new_row = row;
    for (const auto& [index, value] : assignments) {
      DPFS_ASSIGN_OR_RETURN(new_row[index],
                            CoerceValue(value, schema.columns()[index].type));
    }
    DPFS_RETURN_IF_ERROR(schema.ValidateRow(new_row));
    updates.emplace_back(id, std::move(new_row));
  }
  for (auto& [id, new_row] : updates) {
    DPFS_ASSIGN_OR_RETURN(Row old_row, table->Get(id));
    DPFS_RETURN_IF_ERROR(table->UpdateRow(id, new_row));
    WalRecord redo;
    redo.kind = WalRecordKind::kUpdate;
    redo.table = table->name();
    redo.row_id = id;
    redo.row = new_row;
    RecordRedo(std::move(redo));
    UndoOp undo;
    undo.kind = UndoOp::Kind::kRestoreRow;
    undo.table = table->name();
    undo.row_id = id;
    undo.row = std::move(old_row);
    undo.was_delete = false;
    RecordUndo(std::move(undo));
  }
  ResultSet result;
  result.affected_rows = updates.size();
  return result;
}

Result<ResultSet> Database::ExecuteDelete(const DeleteStmt& stmt) {
  DPFS_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));
  DPFS_ASSIGN_OR_RETURN(const auto matches, table->Scan(stmt.where.get()));
  for (const auto& [id, row] : matches) {
    DPFS_RETURN_IF_ERROR(table->Erase(id));
    WalRecord redo;
    redo.kind = WalRecordKind::kDelete;
    redo.table = table->name();
    redo.row_id = id;
    RecordRedo(std::move(redo));
    UndoOp undo;
    undo.kind = UndoOp::Kind::kRestoreRow;
    undo.table = table->name();
    undo.row_id = id;
    undo.row = row;
    undo.was_delete = true;
    RecordUndo(std::move(undo));
  }
  ResultSet result;
  result.affected_rows = matches.size();
  return result;
}

// ---------------------------------------------------------------------------
// Introspection

namespace {

std::string SqlLiteral(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(value.AsInt());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value.AsDouble());
      // Ensure the literal parses back as a double, not an int.
      std::string text(buf);
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find("inf") == std::string::npos &&
          text.find("nan") == std::string::npos) {
        text += ".0";
      }
      return text;
    }
    case ValueType::kText: {
      std::string out = "'";
      for (const char c : value.AsText()) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string_view SqlTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kText: return "TEXT";
    default: return "TEXT";
  }
}

}  // namespace

std::vector<std::string> Database::DumpSql() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> statements;
  for (const auto& [key, table] : tables_) {
    std::string ddl = "CREATE TABLE " + table->name() + " (";
    const Schema& schema = table->schema();
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      const ColumnDef& col = schema.columns()[c];
      if (c > 0) ddl += ", ";
      ddl += col.name;
      ddl += ' ';
      ddl += SqlTypeName(col.type);
      if (col.primary_key) ddl += " PRIMARY KEY";
    }
    ddl += ")";
    statements.push_back(std::move(ddl));

    for (const auto& [row_id, row] : table->rows()) {
      std::string insert = "INSERT INTO " + table->name() + " VALUES (";
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) insert += ", ";
        insert += SqlLiteral(row[c]);
      }
      insert += ")";
      statements.push_back(std::move(insert));
    }
  }
  return statements;
}

std::vector<std::string> Database::TableNames() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

bool Database::HasTable(std::string_view name) const {
  ReaderMutexLock lock(mu_);
  return tables_.contains(ToLower(name));
}

bool Database::in_transaction() const {
  ReaderMutexLock lock(mu_);
  return in_txn_;
}

std::uint64_t Database::wal_size_bytes() const {
  ReaderMutexLock lock(mu_);
  return wal_.has_value() ? wal_->size_bytes() : 0;
}

}  // namespace dpfs::metadb
