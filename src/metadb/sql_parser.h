// Recursive-descent parser for the DPFS SQL subset (see sql_ast.h).
#pragma once

#include <string_view>

#include "common/status.h"
#include "metadb/sql_ast.h"

namespace dpfs::metadb {

/// Parses exactly one statement (an optional trailing ';' is allowed).
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace dpfs::metadb
