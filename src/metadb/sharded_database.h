// Path-hash sharded metadata database facade.
//
// N independent Database instances — each with its own directory, WAL,
// snapshot, and cross-process flock — behind one object, routed by an
// FNV-1a hash of the path. All rows keyed by one path land on one shard, so
// single-path transactions stay single-shard; cross-shard mutations are the
// *caller's* problem (client::MetadataManager runs an intent-record
// protocol on top — docs/METADATA_SCHEMA.md "Sharding").
//
// With num_shards == 1 the facade opens `dir` directly as a plain Database:
// the on-disk layout stays byte-identical to the unsharded engine, which
// keeps the paper's single-database semantics as the default
// (`metadb_shards` in DESIGN.md's extension list).
//
// On-disk layout for N > 1:
//   <dir>/shards       manifest, one line: "shards=<N>"
//   <dir>/shard-00/    a full Database directory per shard
//   ...
// Open fails kInvalidArgument when the manifest disagrees with the
// requested count, or when `dir` already holds an unsharded snapshot.db —
// resharding is an explicit migration (DumpSql replay), never guessed at.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "metadb/database.h"

namespace dpfs::metadb {

class ShardedDatabase {
 public:
  /// Hard cap on the shard count: enough for any realistic metadata tier,
  /// small enough that per-shard fan-out (repair scans, checkpoints) stays
  /// trivial.
  static constexpr std::size_t kMaxShards = 64;

  /// Durable sharded database rooted at `dir` (created if missing). With
  /// num_shards == 1 this is exactly Database::Open(dir). Each shard takes
  /// its own advisory lock with the same `lock_wait` semantics.
  static Result<std::unique_ptr<ShardedDatabase>> Open(
      const std::filesystem::path& dir, std::size_t num_shards,
      std::chrono::milliseconds lock_wait = std::chrono::milliseconds(5000));

  /// Volatile shards (tests, simulations) — no files, no WAL.
  static Result<std::unique_ptr<ShardedDatabase>> OpenInMemory(
      std::size_t num_shards);

  /// Wraps an already-open single Database as a 1-shard facade — the
  /// backward-compatible path for callers that still hand
  /// MetadataManager::Attach a plain Database.
  static std::unique_ptr<ShardedDatabase> Adopt(std::shared_ptr<Database> db);

  /// FNV-1a 64-bit hash of `path`, the routing function. Deterministic
  /// across processes and builds (std::hash is not); callers pass
  /// normalized absolute paths so aliases of one file agree on a shard.
  [[nodiscard]] static std::uint64_t HashPath(std::string_view path) noexcept;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t ShardForPath(std::string_view path) const noexcept {
    return static_cast<std::size_t>(HashPath(path) % shards_.size());
  }
  [[nodiscard]] Database& shard(std::size_t index) { return *shards_[index]; }
  [[nodiscard]] const std::shared_ptr<Database>& shard_ptr(
      std::size_t index) const {
    return shards_[index];
  }
  [[nodiscard]] Database& DatabaseForPath(std::string_view path) {
    return *shards_[ShardForPath(path)];
  }

  /// Fan-out of the Database knobs to every shard.
  void SetAutoCheckpoint(std::uint64_t wal_bytes);
  void SetSyncCommits(bool sync);
  Status Checkpoint();

 private:
  explicit ShardedDatabase(std::vector<std::shared_ptr<Database>> shards)
      : shards_(std::move(shards)) {}

  std::vector<std::shared_ptr<Database>> shards_;  // immutable after Open
};

}  // namespace dpfs::metadb
