#include "metadb/table.h"

#include <algorithm>

namespace dpfs::metadb {

std::string Table::EncodeKey(const Value& value) {
  BinaryWriter writer;
  value.Serialize(writer);
  const Bytes& raw = writer.buffer();
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

Status Table::CheckPrimaryKey(const Row& row,
                              std::optional<RowId> ignore_id) const {
  const auto pk = schema_.primary_key_index();
  if (!pk.has_value()) return Status::Ok();
  const Value& key = row[*pk];
  if (key.is_null()) {
    return InvalidArgumentError("table '" + name_ +
                                "': primary key cannot be NULL");
  }
  const auto it = pk_index_.find(EncodeKey(key));
  if (it != pk_index_.end() && (!ignore_id || it->second != *ignore_id)) {
    return AlreadyExistsError("table '" + name_ + "': duplicate primary key " +
                              key.ToString());
  }
  return Status::Ok();
}

void Table::IndexInsert(const Row& row, RowId id) {
  const auto pk = schema_.primary_key_index();
  if (pk.has_value()) pk_index_[EncodeKey(row[*pk])] = id;
  for (auto& [column, index] : secondary_indexes_) {
    std::vector<RowId>& ids = index[EncodeKey(row[column])];
    ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
  }
}

void Table::IndexErase(const Row& row, RowId id) {
  const auto pk = schema_.primary_key_index();
  if (pk.has_value()) pk_index_.erase(EncodeKey(row[*pk]));
  for (auto& [column, index] : secondary_indexes_) {
    const auto it = index.find(EncodeKey(row[column]));
    if (it == index.end()) continue;
    std::vector<RowId>& ids = it->second;
    const auto pos = std::lower_bound(ids.begin(), ids.end(), id);
    if (pos != ids.end() && *pos == id) ids.erase(pos);
    if (ids.empty()) index.erase(it);
  }
}

Status Table::CreateIndex(std::string_view column) {
  DPFS_ASSIGN_OR_RETURN(const std::size_t column_index,
                        schema_.ColumnIndex(column));
  if (secondary_indexes_.contains(column_index)) return Status::Ok();
  std::map<std::string, std::vector<RowId>>& index =
      secondary_indexes_[column_index];
  for (const auto& [id, row] : rows_) {
    index[EncodeKey(row[column_index])].push_back(id);  // rows_ is id-sorted
  }
  return Status::Ok();
}

bool Table::HasIndex(std::size_t column_index) const noexcept {
  return secondary_indexes_.contains(column_index);
}

Result<std::vector<RowId>> Table::LookupByIndex(std::size_t column_index,
                                                const Value& key) const {
  const auto index_it = secondary_indexes_.find(column_index);
  if (index_it == secondary_indexes_.end()) {
    return NotFoundError("table '" + name_ + "': no index on column " +
                         std::to_string(column_index));
  }
  const auto it = index_it->second.find(EncodeKey(key));
  if (it == index_it->second.end()) return std::vector<RowId>{};
  return it->second;
}

Result<RowId> Table::Insert(Row row) {
  DPFS_RETURN_IF_ERROR(schema_.ValidateRow(row));
  for (std::size_t i = 0; i < row.size(); ++i) {
    DPFS_ASSIGN_OR_RETURN(row[i],
                          CoerceValue(row[i], schema_.columns()[i].type));
  }
  DPFS_RETURN_IF_ERROR(CheckPrimaryKey(row, std::nullopt));
  const RowId id = next_row_id_++;
  IndexInsert(row, id);
  rows_.emplace(id, std::move(row));
  return id;
}

Status Table::InsertWithId(RowId id, Row row) {
  if (rows_.contains(id)) {
    return AlreadyExistsError("table '" + name_ + "': row id " +
                              std::to_string(id) + " already exists");
  }
  DPFS_RETURN_IF_ERROR(schema_.ValidateRow(row));
  DPFS_RETURN_IF_ERROR(CheckPrimaryKey(row, std::nullopt));
  IndexInsert(row, id);
  rows_.emplace(id, std::move(row));
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::Ok();
}

Status Table::UpdateRow(RowId id, Row new_row) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) {
    return NotFoundError("table '" + name_ + "': no row " + std::to_string(id));
  }
  DPFS_RETURN_IF_ERROR(schema_.ValidateRow(new_row));
  for (std::size_t i = 0; i < new_row.size(); ++i) {
    DPFS_ASSIGN_OR_RETURN(new_row[i],
                          CoerceValue(new_row[i], schema_.columns()[i].type));
  }
  DPFS_RETURN_IF_ERROR(CheckPrimaryKey(new_row, id));
  IndexErase(it->second, id);
  IndexInsert(new_row, id);
  it->second = std::move(new_row);
  return Status::Ok();
}

Status Table::Erase(RowId id) {
  const auto it = rows_.find(id);
  if (it == rows_.end()) {
    return NotFoundError("table '" + name_ + "': no row " + std::to_string(id));
  }
  IndexErase(it->second, id);
  rows_.erase(it);
  return Status::Ok();
}

Result<Row> Table::Get(RowId id) const {
  const auto it = rows_.find(id);
  if (it == rows_.end()) {
    return NotFoundError("table '" + name_ + "': no row " + std::to_string(id));
  }
  return it->second;
}

Result<RowId> Table::LookupByPrimaryKey(const Value& key) const {
  if (!schema_.primary_key_index().has_value()) {
    return NotFoundError("table '" + name_ + "': no primary key declared");
  }
  const auto it = pk_index_.find(EncodeKey(key));
  if (it == pk_index_.end()) {
    return NotFoundError("table '" + name_ + "': no row with key " +
                         key.ToString());
  }
  return it->second;
}

Result<std::vector<std::pair<RowId, Row>>> Table::Scan(
    const Expr* filter) const {
  std::vector<std::pair<RowId, Row>> out;
  // Primary-key fast path: an equality constraint on the PK column reduces
  // the scan to one index probe.
  if (filter != nullptr) {
    const auto pk = schema_.primary_key_index();
    if (pk.has_value()) {
      if (const auto key = ExtractEqualityConstraint(*filter, schema_, *pk)) {
        const Result<RowId> id = LookupByPrimaryKey(*key);
        if (!id.ok()) return out;  // no match
        DPFS_ASSIGN_OR_RETURN(Row row, Get(id.value()));
        DPFS_ASSIGN_OR_RETURN(const bool keep,
                              EvaluateFilter(*filter, schema_, row));
        if (keep) out.emplace_back(id.value(), std::move(row));
        return out;
      }
    }
  }
  // Secondary-index fast path: an equality constraint on an indexed column
  // narrows the scan to that key's row list (residual filter still applies).
  if (filter != nullptr) {
    for (const auto& [column, index] : secondary_indexes_) {
      const auto key = ExtractEqualityConstraint(*filter, schema_, column);
      if (!key.has_value()) continue;
      DPFS_ASSIGN_OR_RETURN(const std::vector<RowId> ids,
                            LookupByIndex(column, *key));
      for (const RowId id : ids) {
        DPFS_ASSIGN_OR_RETURN(Row row, Get(id));
        DPFS_ASSIGN_OR_RETURN(const bool keep,
                              EvaluateFilter(*filter, schema_, row));
        if (keep) out.emplace_back(id, std::move(row));
      }
      return out;
    }
  }

  for (const auto& [id, row] : rows_) {
    if (filter != nullptr) {
      DPFS_ASSIGN_OR_RETURN(const bool keep,
                            EvaluateFilter(*filter, schema_, row));
      if (!keep) continue;
    }
    out.emplace_back(id, row);
  }
  return out;
}

}  // namespace dpfs::metadb
