// Tokenizer for the DPFS SQL subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpfs::metadb {

enum class TokenKind : std::uint8_t {
  kIdentifier,   // table / column names and keywords (case-insensitive)
  kInteger,      // 42, -17
  kFloat,        // 3.5, -0.25
  kString,       // 'text' with '' escaping
  kSymbol,       // ( ) , ; * = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier/symbol text, or decoded string body
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::size_t offset = 0;  // byte offset in the input, for error messages

  [[nodiscard]] bool IsSymbol(std::string_view s) const noexcept;
  /// Case-insensitive keyword match against an identifier token.
  [[nodiscard]] bool IsKeyword(std::string_view keyword) const noexcept;
};

/// Tokenizes the full input; the last token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace dpfs::metadb
