// In-memory table with stable row identities and an optional unique
// primary-key index.
//
// Row identities (RowId) are never reused, which lets the transaction layer
// record precise undo information and the WAL replay deterministic mutations.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "metadb/predicate.h"
#include "metadb/schema.h"

namespace dpfs::metadb {

using RowId = std::uint64_t;

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Schema& schema() const noexcept { return schema_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Validates, coerces, checks primary-key uniqueness, and stores the row.
  /// Returns the new RowId.
  Result<RowId> Insert(Row row);

  /// Inserts with a caller-chosen RowId (WAL replay). Fails if the id exists.
  Status InsertWithId(RowId id, Row row);

  /// Full row replacement; re-validates and maintains the PK index.
  Status UpdateRow(RowId id, Row new_row);

  /// Removes the row; kNotFound if absent.
  Status Erase(RowId id);

  [[nodiscard]] Result<Row> Get(RowId id) const;

  /// Primary-key point lookup; kNotFound when absent or no PK declared.
  [[nodiscard]] Result<RowId> LookupByPrimaryKey(const Value& key) const;

  /// Builds a non-unique secondary index over `column`, maintained by all
  /// later mutations. Idempotent per column.
  Status CreateIndex(std::string_view column);
  [[nodiscard]] bool HasIndex(std::size_t column_index) const noexcept;
  /// RowIds whose `column_index` cell equals `key` (ascending order).
  /// Requires an index on that column.
  [[nodiscard]] Result<std::vector<RowId>> LookupByIndex(
      std::size_t column_index, const Value& key) const;

  /// All (id, row) pairs matching `filter` (nullptr = all), in RowId order.
  [[nodiscard]] Result<std::vector<std::pair<RowId, Row>>> Scan(
      const Expr* filter) const;

  /// Iteration support for snapshots.
  [[nodiscard]] const std::map<RowId, Row>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] RowId next_row_id() const noexcept { return next_row_id_; }
  void set_next_row_id(RowId id) noexcept { next_row_id_ = id; }

 private:
  /// Canonical byte encoding used as the PK map key.
  static std::string EncodeKey(const Value& value);
  Status CheckPrimaryKey(const Row& row, std::optional<RowId> ignore_id) const;
  void IndexInsert(const Row& row, RowId id);
  void IndexErase(const Row& row, RowId id);

  std::string name_;
  Schema schema_;
  std::map<RowId, Row> rows_;
  std::map<std::string, RowId> pk_index_;
  /// column index → (encoded key → sorted row ids).
  std::map<std::size_t, std::map<std::string, std::vector<RowId>>>
      secondary_indexes_;
  RowId next_row_id_ = 1;
};

}  // namespace dpfs::metadb
