#include "shell/shell.h"

#include <fstream>

#include "common/strings.h"

namespace dpfs::shell {

namespace {

constexpr std::uint64_t kCopyChunkBytes = 4 * 1024 * 1024;

Status NeedArgs(const std::vector<std::string>& args, std::size_t n,
                const std::string& usage) {
  if (args.size() < n) return InvalidArgumentError("usage: " + usage);
  return Status::Ok();
}

}  // namespace

Result<std::string> Shell::Resolve(std::string_view path) const {
  if (path.empty()) return cwd_;
  if (path.front() == '/') return NormalizePath(path);
  return NormalizePath(cwd_ + "/" + std::string(path));
}

Status Shell::Execute(std::string_view line, std::ostream& out) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty()) return Status::Ok();
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());

  if (cmd == "sql") {
    // The rest of the line verbatim (it may contain quoted strings).
    const std::size_t pos = line.find("sql");
    return CmdSql(TrimWhitespace(line.substr(pos + 3)), out);
  }

  if (cmd == "pwd") {
    out << cwd_ << "\n";
    return Status::Ok();
  }
  if (cmd == "cd") return CmdCd(args);
  if (cmd == "ls") return CmdLs(args, out);
  if (cmd == "mkdir") return CmdMkdir(args);
  if (cmd == "rmdir") return CmdRmdir(args);
  if (cmd == "rm") return CmdRm(args);
  if (cmd == "stat") return CmdStat(args, out);
  if (cmd == "df") return CmdDf(out);
  if (cmd == "servers") return CmdServers(out);
  if (cmd == "cp") return CmdCp(args, out);
  if (cmd == "import") return CmdImport(args, out);
  if (cmd == "export") return CmdExport(args, out);
  if (cmd == "cat") return CmdCat(args, out);
  if (cmd == "mv") return CmdMv(args, out);
  if (cmd == "du") return CmdDu(args, out);
  if (cmd == "chmod") return CmdChmod(args);
  if (cmd == "chown") return CmdChown(args);
  if (cmd == "fsck") {
    const bool repair = !args.empty() && args[0] == "-repair";
    DPFS_ASSIGN_OR_RETURN(const client::FileSystem::FsckReport report,
                          fs_->Fsck(repair));
    out << "fsck: " << report.files_checked << " files, "
        << report.servers_checked << " servers checked\n";
    for (const auto& orphan : report.orphans) {
      out << "  orphan subfile " << orphan.subfile << " on " << orphan.server
          << " (" << FormatByteSize(orphan.size) << ")"
          << (repair ? " — removed" : "") << "\n";
    }
    for (const std::string& server : report.unreachable_servers) {
      out << "  unreachable server: " << server << "\n";
    }
    out << (report.clean() ? "clean\n"
                           : repair ? "repaired\n" : "issues found\n");
    return Status::Ok();
  }
  if (cmd == "advise") {
    DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "advise <file>"));
    DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[0]));
    DPFS_ASSIGN_OR_RETURN(const std::string advice, fs_->AdviseLevel(path));
    out << advice << "\n";
    return Status::Ok();
  }
  if (cmd == "help") {
    out << "commands: pwd cd ls mkdir rmdir rm mv stat du df servers cp "
           "import export cat chmod chown advise fsck sql help\n";
    return Status::Ok();
  }
  return InvalidArgumentError("unknown command '" + cmd +
                              "' (try 'help')");
}

Status Shell::CmdCd(const std::vector<std::string>& args) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "cd <dir>"));
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[0]));
  DPFS_ASSIGN_OR_RETURN(const bool exists,
                        fs_->metadata().DirectoryExists(path));
  if (!exists) return NotFoundError("no such directory '" + path + "'");
  cwd_ = path;
  return Status::Ok();
}

Status Shell::CmdLs(const std::vector<std::string>& args, std::ostream& out) {
  bool long_format = false;
  std::string target;
  for (const std::string& arg : args) {
    if (arg == "-l") {
      long_format = true;
    } else {
      target = arg;
    }
  }
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(target));
  DPFS_ASSIGN_OR_RETURN(const client::MetadataManager::Listing listing,
                        fs_->metadata().ListDirectory(path));
  for (const std::string& dir : listing.directories) {
    out << dir << "/\n";
  }
  for (const std::string& file : listing.files) {
    if (!long_format) {
      out << file << "\n";
      continue;
    }
    const std::string full = (path == "/" ? "" : path) + "/" + file;
    const Result<client::FileRecord> record =
        fs_->metadata().LookupFile(full);
    if (!record.ok()) {
      out << file << "  <missing attributes>\n";
      continue;
    }
    const client::FileMeta& meta = record.value().meta;
    out << file << "  " << meta.owner << "  " << std::oct << meta.permission
        << std::dec << "  " << FormatByteSize(meta.size_bytes) << "  "
        << layout::FileLevelName(meta.level) << "\n";
  }
  return Status::Ok();
}

Status Shell::CmdMkdir(const std::vector<std::string>& args) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "mkdir <dir>"));
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[0]));
  return fs_->metadata().MakeDirectory(path);
}

Status Shell::CmdRmdir(const std::vector<std::string>& args) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "rmdir [-r] <dir>"));
  bool recursive = false;
  std::string target;
  for (const std::string& arg : args) {
    if (arg == "-r") {
      recursive = true;
    } else {
      target = arg;
    }
  }
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(target));
  return fs_->RemoveDirectory(path, recursive);
}

Status Shell::CmdRm(const std::vector<std::string>& args) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "rm <file>"));
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[0]));
  return fs_->Remove(path);
}

Status Shell::CmdStat(const std::vector<std::string>& args,
                      std::ostream& out) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "stat <file>"));
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[0]));
  DPFS_ASSIGN_OR_RETURN(const client::FileRecord record,
                        fs_->metadata().LookupFile(path));
  const client::FileMeta& meta = record.meta;
  out << "file:       " << meta.path << "\n"
      << "owner:      " << meta.owner << "\n"
      << "permission: " << std::oct << meta.permission << std::dec << "\n"
      << "size:       " << meta.size_bytes << " ("
      << FormatByteSize(meta.size_bytes) << ")\n"
      << "level:      " << layout::FileLevelName(meta.level) << "\n"
      << "elemsize:   " << meta.element_size << "\n";
  if (!meta.array_shape.empty()) {
    out << "dims:       ";
    for (std::size_t d = 0; d < meta.array_shape.size(); ++d) {
      out << (d ? " x " : "") << meta.array_shape[d];
    }
    out << "\n";
  }
  if (meta.level == layout::FileLevel::kLinear) {
    out << "brick:      " << meta.brick_bytes << " bytes\n";
  } else if (meta.level == layout::FileLevel::kMultidim) {
    out << "brick:      ";
    for (std::size_t d = 0; d < meta.brick_shape.size(); ++d) {
      out << (d ? " x " : "") << meta.brick_shape[d];
    }
    out << " elements\n";
  } else if (meta.pattern.has_value()) {
    out << "pattern:    " << meta.pattern->ToString() << "\n";
  }
  out << "servers:    " << record.servers.size() << "\n";
  for (std::size_t s = 0; s < record.servers.size(); ++s) {
    out << "  [" << s << "] " << record.servers[s].name << "  bricks="
        << record.distribution.bricks_on(static_cast<layout::ServerId>(s))
               .size()
        << "\n";
  }
  return Status::Ok();
}

Status Shell::CmdDf(std::ostream& out) {
  DPFS_ASSIGN_OR_RETURN(const std::vector<client::ServerInfo> servers,
                        fs_->metadata().ListServers());
  out << "server  capacity  performance  used  requests\n";
  for (const client::ServerInfo& server : servers) {
    out << server.name << "  " << FormatByteSize(server.capacity_bytes)
        << "  " << server.performance;
    // Live usage via the kStats RPC; unreachable servers degrade gracefully.
    auto conn = fs_->connections().Acquire(server.endpoint);
    if (conn.ok()) {
      auto pooled = std::move(conn).value();
      const auto stats = pooled->Stats();
      if (stats.ok()) {
        out << "  " << FormatByteSize(stats.value().stored_bytes) << "  "
            << stats.value().requests;
      } else {
        pooled.Poison();
        out << "  <unreachable>";
      }
    } else {
      out << "  <unreachable>";
    }
    out << "\n";
  }
  return Status::Ok();
}

Status Shell::CmdServers(std::ostream& out) {
  DPFS_ASSIGN_OR_RETURN(const std::vector<client::ServerInfo> servers,
                        fs_->metadata().ListServers());
  for (const client::ServerInfo& server : servers) {
    out << server.name << "  " << server.endpoint.ToString() << "\n";
  }
  return Status::Ok();
}

Status Shell::CmdCp(const std::vector<std::string>& args, std::ostream& out) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 2, "cp <src> <dst>"));
  DPFS_ASSIGN_OR_RETURN(const std::string src, Resolve(args[0]));
  DPFS_ASSIGN_OR_RETURN(const std::string dst, Resolve(args[1]));

  DPFS_ASSIGN_OR_RETURN(client::FileHandle in, fs_->Open(src));
  client::CreateOptions options;
  const client::FileMeta& meta = in.meta();
  options.level = meta.level;
  options.element_size = meta.element_size;
  options.array_shape = meta.array_shape;
  options.total_bytes = meta.size_bytes;
  options.brick_bytes = meta.brick_bytes;
  options.brick_shape = meta.brick_shape;
  options.pattern = meta.pattern;
  options.chunk_grid = meta.chunk_grid;
  options.owner = meta.owner;
  options.permission = meta.permission;
  DPFS_ASSIGN_OR_RETURN(client::FileHandle dst_handle,
                        fs_->Create(dst, options));

  // Stream through the flat byte space for linear files; shaped files copy
  // region by region along the leading dimension.
  if (meta.level == layout::FileLevel::kLinear && meta.array_shape.empty()) {
    Bytes chunk;
    std::uint64_t offset = 0;
    while (offset < meta.size_bytes) {
      const std::uint64_t take =
          std::min<std::uint64_t>(kCopyChunkBytes, meta.size_bytes - offset);
      chunk.resize(take);
      DPFS_RETURN_IF_ERROR(fs_->ReadBytes(in, offset, chunk));
      DPFS_RETURN_IF_ERROR(fs_->WriteBytes(dst_handle, offset, chunk));
      offset += take;
    }
  } else {
    const layout::Shape& shape = meta.array_shape;
    std::uint64_t row_bytes = meta.element_size;
    for (std::size_t d = 1; d < shape.size(); ++d) row_bytes *= shape[d];
    const std::uint64_t rows_per_chunk =
        std::max<std::uint64_t>(1, kCopyChunkBytes / std::max<std::uint64_t>(
                                                         1, row_bytes));
    Bytes chunk;
    for (std::uint64_t row = 0; row < shape[0]; row += rows_per_chunk) {
      const std::uint64_t take =
          std::min<std::uint64_t>(rows_per_chunk, shape[0] - row);
      layout::Region region;
      region.lower.assign(shape.size(), 0);
      region.extent = shape;
      region.lower[0] = row;
      region.extent[0] = take;
      chunk.resize(region.num_elements() * meta.element_size);
      DPFS_RETURN_IF_ERROR(fs_->ReadRegion(in, region, chunk));
      DPFS_RETURN_IF_ERROR(fs_->WriteRegion(dst_handle, region, chunk));
    }
  }
  out << "copied " << FormatByteSize(meta.size_bytes) << " " << src << " -> "
      << dst << "\n";
  return Status::Ok();
}

Status Shell::CmdImport(const std::vector<std::string>& args,
                        std::ostream& out) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 2, "import <local-file> <dpfs-file>"));
  std::ifstream in(args[0], std::ios::binary | std::ios::ate);
  if (!in) return IoError("cannot open local file '" + args[0] + "'");
  const std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  if (size == 0) return InvalidArgumentError("local file is empty");

  DPFS_ASSIGN_OR_RETURN(const std::string dst, Resolve(args[1]));
  client::CreateOptions options;
  options.level = layout::FileLevel::kLinear;
  options.total_bytes = size;
  DPFS_ASSIGN_OR_RETURN(client::FileHandle handle, fs_->Create(dst, options));

  Bytes chunk;
  std::uint64_t offset = 0;
  while (offset < size) {
    const std::uint64_t take =
        std::min<std::uint64_t>(kCopyChunkBytes, size - offset);
    chunk.resize(take);
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(take));
    if (!in) return IoError("short read from '" + args[0] + "'");
    DPFS_RETURN_IF_ERROR(fs_->WriteBytes(handle, offset, chunk));
    offset += take;
  }
  out << "imported " << FormatByteSize(size) << " into " << dst << "\n";
  return Status::Ok();
}

Status Shell::CmdExport(const std::vector<std::string>& args,
                        std::ostream& out) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 2, "export <dpfs-file> <local-file>"));
  DPFS_ASSIGN_OR_RETURN(const std::string src, Resolve(args[0]));
  DPFS_ASSIGN_OR_RETURN(client::FileHandle handle, fs_->Open(src));
  const std::uint64_t size = handle.meta().size_bytes;

  std::ofstream local(args[1], std::ios::binary | std::ios::trunc);
  if (!local) return IoError("cannot create local file '" + args[1] + "'");

  // Multidimensional files are re-linearized to row-major on export — the
  // "extra in-memory data reorganization" of §3.2 — by reading through the
  // region API, which always yields packed row-major bytes.
  Bytes chunk;
  if (handle.meta().array_shape.empty()) {
    std::uint64_t offset = 0;
    while (offset < size) {
      const std::uint64_t take =
          std::min<std::uint64_t>(kCopyChunkBytes, size - offset);
      chunk.resize(take);
      DPFS_RETURN_IF_ERROR(fs_->ReadBytes(handle, offset, chunk));
      local.write(reinterpret_cast<const char*>(chunk.data()),
                  static_cast<std::streamsize>(take));
      offset += take;
    }
  } else {
    const layout::Shape& shape = handle.meta().array_shape;
    std::uint64_t row_bytes = handle.meta().element_size;
    for (std::size_t d = 1; d < shape.size(); ++d) row_bytes *= shape[d];
    const std::uint64_t rows_per_chunk = std::max<std::uint64_t>(
        1, kCopyChunkBytes / std::max<std::uint64_t>(1, row_bytes));
    for (std::uint64_t row = 0; row < shape[0]; row += rows_per_chunk) {
      const std::uint64_t take =
          std::min<std::uint64_t>(rows_per_chunk, shape[0] - row);
      layout::Region region;
      region.lower.assign(shape.size(), 0);
      region.extent = shape;
      region.lower[0] = row;
      region.extent[0] = take;
      chunk.resize(region.num_elements() * handle.meta().element_size);
      DPFS_RETURN_IF_ERROR(fs_->ReadRegion(handle, region, chunk));
      local.write(reinterpret_cast<const char*>(chunk.data()),
                  static_cast<std::streamsize>(chunk.size()));
    }
  }
  if (!local) return IoError("short write to '" + args[1] + "'");
  out << "exported " << FormatByteSize(size) << " to " << args[1] << "\n";
  return Status::Ok();
}

Status Shell::CmdMv(const std::vector<std::string>& args, std::ostream& out) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 2, "mv <src> <dst>"));
  DPFS_ASSIGN_OR_RETURN(const std::string src, Resolve(args[0]));
  DPFS_ASSIGN_OR_RETURN(const std::string dst, Resolve(args[1]));
  // A true rename: subfiles move on each server, metadata updates in one
  // transaction — no data bytes cross the wire.
  DPFS_RETURN_IF_ERROR(fs_->Rename(src, dst));
  out << "renamed " << src << " -> " << dst << "\n";
  return Status::Ok();
}

Result<std::uint64_t> Shell::TreeBytes(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const client::MetadataManager::Listing listing,
                        fs_->metadata().ListDirectory(path));
  std::uint64_t total = 0;
  const std::string prefix = path == "/" ? "" : path;
  for (const std::string& file : listing.files) {
    DPFS_ASSIGN_OR_RETURN(const client::FileRecord record,
                          fs_->metadata().LookupFile(prefix + "/" + file));
    total += record.meta.size_bytes;
  }
  for (const std::string& dir : listing.directories) {
    DPFS_ASSIGN_OR_RETURN(const std::uint64_t below,
                          TreeBytes(prefix + "/" + dir));
    total += below;
  }
  return total;
}

Status Shell::CmdDu(const std::vector<std::string>& args, std::ostream& out) {
  DPFS_ASSIGN_OR_RETURN(const std::string path,
                        Resolve(args.empty() ? "" : args[0]));
  DPFS_ASSIGN_OR_RETURN(const std::uint64_t total, TreeBytes(path));
  out << FormatByteSize(total) << "  " << path << "\n";
  return Status::Ok();
}

Status Shell::CmdChmod(const std::vector<std::string>& args) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 2, "chmod <octal-mode> <file>"));
  char* end = nullptr;
  const unsigned long mode = std::strtoul(args[0].c_str(), &end, 8);
  if (end != args[0].c_str() + args[0].size() || args[0].empty() ||
      mode > 07777) {
    return InvalidArgumentError("bad mode '" + args[0] +
                                "' (expect octal like 644)");
  }
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[1]));
  return fs_->metadata().SetPermission(path,
                                       static_cast<std::uint32_t>(mode));
}

Status Shell::CmdChown(const std::vector<std::string>& args) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 2, "chown <owner> <file>"));
  DPFS_ASSIGN_OR_RETURN(const std::string path, Resolve(args[1]));
  return fs_->metadata().SetOwner(path, args[0]);
}

Status Shell::CmdSql(std::string_view line, std::ostream& out) {
  if (line.empty()) return InvalidArgumentError("usage: sql <statement>");
  client::MetadataManager* embedded = fs_->embedded_metadata();
  if (embedded == nullptr) {
    return UnimplementedError(
        "sql needs embedded metadata; this client talks to a remote "
        "metadata server (run the shell on the metad host instead)");
  }
  // Runs against shard 0 — the whole database unless metadb_shards > 1
  // (sharded deployments debug per shard; rows for other shards' paths
  // won't be visible here).
  DPFS_ASSIGN_OR_RETURN(const metadb::ResultSet result,
                        embedded->db().Execute(line));
  if (!result.columns.empty()) {
    out << result.ToString();
  } else {
    out << "ok (" << result.affected_rows << " rows affected)\n";
  }
  return Status::Ok();
}

Status Shell::CmdCat(const std::vector<std::string>& args, std::ostream& out) {
  DPFS_RETURN_IF_ERROR(NeedArgs(args, 1, "cat <file>"));
  DPFS_ASSIGN_OR_RETURN(const std::string src, Resolve(args[0]));
  DPFS_ASSIGN_OR_RETURN(client::FileHandle handle, fs_->Open(src));
  const std::uint64_t size = handle.meta().size_bytes;
  if (!handle.meta().array_shape.empty()) {
    return InvalidArgumentError("cat supports raw linear files only");
  }
  Bytes chunk;
  std::uint64_t offset = 0;
  while (offset < size) {
    const std::uint64_t take =
        std::min<std::uint64_t>(kCopyChunkBytes, size - offset);
    chunk.resize(take);
    DPFS_RETURN_IF_ERROR(fs_->ReadBytes(handle, offset, chunk));
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(take));
    offset += take;
  }
  return Status::Ok();
}

}  // namespace dpfs::shell
