// The DPFS user interface (§7): UNIX-style commands over a live file system.
//
// Commands: pwd, cd, ls [-l] [path], mkdir <path>, rmdir [-r] <path>,
// rm <path>, mv <src> <dst>, stat <path>, du [path], df, servers,
// cp <src> <dst>, import <local> <dpfs>, export <dpfs> <local>, cat <path>,
// sql <statement>, help. Relative paths resolve against the shell's working
// directory. `import`/`export` move data between the sequential local file
// system and DPFS, the convenience the paper calls out for post-processing
// workflows; `sql` exposes the metadata database directly (§5's "standard
// SQL" access path).
#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "client/file_system.h"

namespace dpfs::shell {

class Shell {
 public:
  explicit Shell(std::shared_ptr<client::FileSystem> fs)
      : fs_(std::move(fs)) {}

  /// Parses and runs one command line, writing human output to `out`.
  /// Returns the command's status; unknown commands are kInvalidArgument.
  Status Execute(std::string_view line, std::ostream& out);

  [[nodiscard]] const std::string& cwd() const noexcept { return cwd_; }

 private:
  /// Resolves `path` against cwd and normalizes.
  Result<std::string> Resolve(std::string_view path) const;

  Status CmdLs(const std::vector<std::string>& args, std::ostream& out);
  Status CmdCd(const std::vector<std::string>& args);
  Status CmdMkdir(const std::vector<std::string>& args);
  Status CmdRmdir(const std::vector<std::string>& args);
  Status CmdRm(const std::vector<std::string>& args);
  Status CmdStat(const std::vector<std::string>& args, std::ostream& out);
  Status CmdDf(std::ostream& out);
  Status CmdServers(std::ostream& out);
  Status CmdCp(const std::vector<std::string>& args, std::ostream& out);
  Status CmdImport(const std::vector<std::string>& args, std::ostream& out);
  Status CmdExport(const std::vector<std::string>& args, std::ostream& out);
  Status CmdCat(const std::vector<std::string>& args, std::ostream& out);
  Status CmdMv(const std::vector<std::string>& args, std::ostream& out);
  Status CmdDu(const std::vector<std::string>& args, std::ostream& out);
  Status CmdSql(std::string_view line, std::ostream& out);
  Status CmdChmod(const std::vector<std::string>& args);
  Status CmdChown(const std::vector<std::string>& args);

  /// Sums the sizes of every file under `path`, recursively.
  Result<std::uint64_t> TreeBytes(const std::string& path);

  std::shared_ptr<client::FileSystem> fs_;
  std::string cwd_ = "/";
};

}  // namespace dpfs::shell
