// DPFS — Distributed Parallel File System: umbrella header.
//
// Pull in this one header to use the whole public API:
//   * dpfs::client::FileSystem / FileHandle — the DPFS API (§6)
//   * dpfs::client::Datatype               — MPI-IO-style derived datatypes
//   * dpfs::client::CollectiveFile         — MPI-IO-style collective layer
//   * dpfs::layout::*                      — striping, placement, planning
//   * dpfs::server::IoServer               — the I/O server
//   * dpfs::metadb::Database               — the embedded metadata database
//   * dpfs::simnet::*                      — the performance-model replayer
//   * dpfs::shell::Shell                   — the user interface (§7)
//   * dpfs::core::LocalCluster             — in-process cluster bootstrap
#pragma once

#include "client/brick_cache.h"  // IWYU pragma: export
#include "client/collective.h"   // IWYU pragma: export
#include "client/datatype.h"     // IWYU pragma: export
#include "client/file_system.h"  // IWYU pragma: export
#include "client/metadata.h"     // IWYU pragma: export
#include "core/cluster.h"        // IWYU pragma: export
#include "layout/brick_map.h"    // IWYU pragma: export
#include "layout/hpf.h"          // IWYU pragma: export
#include "layout/placement.h"    // IWYU pragma: export
#include "layout/plan.h"         // IWYU pragma: export
#include "metadb/database.h"     // IWYU pragma: export
#include "server/io_server.h"    // IWYU pragma: export
#include "shell/shell.h"         // IWYU pragma: export
#include "simnet/replay.h"       // IWYU pragma: export

namespace dpfs {

/// Library version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

}  // namespace dpfs
