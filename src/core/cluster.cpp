#include "core/cluster.h"

namespace dpfs::core {

Result<std::unique_ptr<LocalCluster>> LocalCluster::Start(
    ClusterOptions options) {
  if (options.num_servers == 0) {
    return InvalidArgumentError("cluster needs at least one server");
  }
  if (!options.performance.empty() &&
      options.performance.size() != options.num_servers) {
    return InvalidArgumentError(
        "performance vector must match num_servers or be empty");
  }
  if (options.start_metadata_service && !options.metadata_endpoint.empty()) {
    return InvalidArgumentError(
        "start_metadata_service and metadata_endpoint are mutually "
        "exclusive: either this cluster runs the metad or it dials one");
  }

  std::unique_ptr<LocalCluster> cluster(new LocalCluster());
  if (options.root_dir.empty()) {
    DPFS_ASSIGN_OR_RETURN(TempDir temp, TempDir::Create("dpfs-cluster"));
    cluster->root_ = temp.path();
    cluster->owned_root_.emplace(std::move(temp));
  } else {
    cluster->root_ = options.root_dir;
    std::error_code ec;
    std::filesystem::create_directories(cluster->root_, ec);
    if (ec) return IoError("create cluster root: " + ec.message());
  }

  if (options.metadata_endpoint.empty()) {
    if (options.durable_metadata) {
      DPFS_ASSIGN_OR_RETURN(
          std::unique_ptr<metadb::ShardedDatabase> db,
          metadb::ShardedDatabase::Open(cluster->root_ / "metadb",
                                        options.metadb_shards));
      cluster->sharded_db_ = std::move(db);
    } else {
      DPFS_ASSIGN_OR_RETURN(
          std::unique_ptr<metadb::ShardedDatabase> db,
          metadb::ShardedDatabase::OpenInMemory(options.metadb_shards));
      cluster->sharded_db_ = std::move(db);
    }
  }

  cluster->max_sessions_ = options.max_sessions;
  cluster->engine_ = options.engine;
  cluster->metadata_cache_ttl_ = options.metadata_cache_ttl;

  client::RemoteMetadataOptions remote_options;
  remote_options.cache_ttl = options.metadata_cache_ttl;
  if (!options.metadata_endpoint.empty()) {
    DPFS_ASSIGN_OR_RETURN(const net::Endpoint endpoint,
                          net::Endpoint::Parse(options.metadata_endpoint));
    DPFS_ASSIGN_OR_RETURN(
        cluster->fs_,
        client::FileSystem::ConnectRemote(endpoint, remote_options));
  } else if (options.start_metadata_service) {
    metad::MetadOptions metad_options;
    metad_options.max_sessions = options.max_sessions;
    metad_options.engine = options.engine;
    DPFS_ASSIGN_OR_RETURN(
        cluster->metad_,
        metad::MetadService::Start(cluster->sharded_db_, metad_options));
    DPFS_ASSIGN_OR_RETURN(cluster->fs_,
                          client::FileSystem::ConnectRemote(
                              cluster->metad_->endpoint(), remote_options));
  } else {
    DPFS_ASSIGN_OR_RETURN(cluster->fs_,
                          client::FileSystem::Connect(cluster->sharded_db_));
  }
  for (std::uint32_t i = 0; i < options.num_servers; ++i) {
    server::ServerOptions server_options;
    server_options.root_dir =
        cluster->root_ / ("server" + std::to_string(i));
    server_options.max_sessions = options.max_sessions;
    server_options.engine = options.engine;
    DPFS_ASSIGN_OR_RETURN(std::unique_ptr<server::IoServer> server,
                          server::IoServer::Start(std::move(server_options)));

    client::ServerInfo info;
    // Zero-padded so name order == registration order (ListServers sorts by
    // name), keeping server indices stable.
    char name[32];
    std::snprintf(name, sizeof(name), "ionode%03u.dpfs.local", i);
    info.name = name;
    info.endpoint = server->endpoint();
    info.capacity_bytes = options.capacity_bytes;
    info.performance =
        options.performance.empty() ? 1u : options.performance[i];
    // Durable metadata may hold a row from a previous run of this cluster
    // (same name, stale port) — replace it, as dpfsd does on restart.
    (void)cluster->fs_->metadata().UnregisterServer(info.name);
    DPFS_RETURN_IF_ERROR(cluster->fs_->metadata().RegisterServer(info));

    cluster->servers_.push_back(std::move(server));
  }
  return cluster;
}

LocalCluster::~LocalCluster() { Stop(); }

void LocalCluster::Stop() {
  // Drop pooled client connections first so server session threads unblock.
  if (fs_ != nullptr) fs_->connections().Clear();
  for (const std::unique_ptr<server::IoServer>& server : servers_) {
    if (server != nullptr) server->Stop();
  }
  if (metad_ != nullptr) metad_->Stop();
}

Status LocalCluster::RestartServer(std::size_t index) {
  if (index >= servers_.size()) {
    return InvalidArgumentError("no server at index " + std::to_string(index));
  }
  const net::Endpoint endpoint = servers_[index]->endpoint();
  servers_[index]->Stop();
  servers_[index].reset();  // release the port before rebinding it

  server::ServerOptions server_options;
  server_options.root_dir = root_ / ("server" + std::to_string(index));
  server_options.port = endpoint.port;  // keep the registered endpoint valid
  server_options.max_sessions = max_sessions_;
  server_options.engine = engine_;
  DPFS_ASSIGN_OR_RETURN(servers_[index],
                        server::IoServer::Start(std::move(server_options)));
  return Status::Ok();
}

Status LocalCluster::RestartMetad() {
  if (metad_ == nullptr) {
    return InvalidArgumentError(
        "cluster has no in-process metadata service "
        "(set ClusterOptions::start_metadata_service)");
  }
  const net::Endpoint endpoint = metad_->endpoint();
  metad_->Stop();
  metad_.reset();  // release the port before rebinding it

  metad::MetadOptions options;
  options.port = endpoint.port;  // clients redial the endpoint they know
  options.max_sessions = max_sessions_;
  options.engine = engine_;
  DPFS_ASSIGN_OR_RETURN(metad_,
                        metad::MetadService::Start(sharded_db_, options));
  // Cached records may predate whatever interrupted the old incarnation.
  if (fs_ != nullptr) fs_->InvalidateMetadataCache();
  return Status::Ok();
}

}  // namespace dpfs::core
