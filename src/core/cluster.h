// In-process DPFS cluster bootstrap.
//
// The paper runs one DPFS server per storage workstation; examples, tests,
// and the shell need the same topology without a machine room. LocalCluster
// starts N real IoServers (each with its own subfile root and TCP port on
// loopback), opens a metadata database, registers the servers in
// DPFS_SERVER, and hands back a connected FileSystem. Everything is torn
// down in reverse order on destruction.
#pragma once

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "client/file_system.h"
#include "common/status.h"
#include "common/temp_dir.h"
#include "metad/metad.h"
#include "server/io_server.h"

namespace dpfs::core {

struct ClusterOptions {
  std::uint32_t num_servers = 4;
  /// Normalized performance number per server (§4.1); sized to num_servers
  /// or empty for all-1 (homogeneous).
  std::vector<std::uint32_t> performance;
  /// Advertised capacity per server (metadata only).
  std::uint64_t capacity_bytes = 1ull << 30;
  /// Root for server storage and the metadata db; a TempDir is created when
  /// empty.
  std::filesystem::path root_dir;
  /// Persist metadata on disk (WAL + snapshot) instead of in memory.
  bool durable_metadata = false;
  /// Path-hash metadata shards (`metadb_shards` extension). 1 = the paper's
  /// single database with a byte-identical on-disk layout.
  std::size_t metadb_shards = 1;
  /// Concurrent session cap per server (0 = unlimited); see
  /// ServerOptions::max_sessions.
  std::size_t max_sessions = 0;
  /// Connection-handling engine for every server in the cluster (the
  /// DPFS_SERVER_ENGINE env var still overrides; see ServerOptions::engine).
  server::ServerEngine engine = server::ServerEngine::kThreadPerConnection;
  /// Run an in-process dpfs-metad owning the metadata database; the
  /// cluster's FileSystem then talks to it over the wire (extension:
  /// `metadata_endpoint`). Default off — embedded metadata, byte-identical
  /// to the paper's model.
  bool start_metadata_service = false;
  /// host:port of an already-running dpfs-metad to use instead of opening
  /// a database in this process. Mutually exclusive with
  /// start_metadata_service; db()/sharded_db() return null in this mode
  /// (the remote process owns the database and its flock).
  std::string metadata_endpoint;
  /// LookupFile cache TTL for the remote metadata modes; 0 disables the
  /// cache. Ignored with embedded metadata.
  std::chrono::milliseconds metadata_cache_ttl{250};
};

class LocalCluster {
 public:
  static Result<std::unique_ptr<LocalCluster>> Start(ClusterOptions options);

  ~LocalCluster();
  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  [[nodiscard]] std::shared_ptr<client::FileSystem> fs() const noexcept {
    return fs_;
  }
  /// Shard 0 — the whole database when metadb_shards == 1. Cross-shard
  /// consumers use sharded_db(). Null when the cluster uses an external
  /// metadata_endpoint (the remote process owns the database).
  [[nodiscard]] std::shared_ptr<metadb::Database> db() const noexcept {
    return sharded_db_ == nullptr ? nullptr : sharded_db_->shard_ptr(0);
  }
  [[nodiscard]] const std::shared_ptr<metadb::ShardedDatabase>& sharded_db()
      const noexcept {
    return sharded_db_;
  }
  [[nodiscard]] std::size_t num_servers() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] server::IoServer& server(std::size_t index) {
    return *servers_.at(index);
  }
  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

  /// Stops every server (idempotent; also runs at destruction).
  void Stop();

  /// Stops server `index` and starts a replacement on the same port and
  /// subfile root, as if the workstation rebooted. Registered metadata is
  /// unchanged (same name, same endpoint), so clients recover by retrying.
  Status RestartServer(std::size_t index);

  /// The in-process metadata service, or null unless
  /// start_metadata_service was set.
  [[nodiscard]] metad::MetadService* metad() const noexcept {
    return metad_.get();
  }

  /// Stops the in-process metad and starts a replacement on the same port
  /// and the same ShardedDatabase, as if the metadata host rebooted —
  /// Start re-runs intent repair, so chaos tests exercise crash recovery
  /// over the wire. Error unless start_metadata_service was set.
  Status RestartMetad();

 private:
  LocalCluster() = default;

  std::optional<TempDir> owned_root_;
  std::filesystem::path root_;
  std::size_t max_sessions_ = 0;
  server::ServerEngine engine_ = server::ServerEngine::kThreadPerConnection;
  std::chrono::milliseconds metadata_cache_ttl_{250};
  std::vector<std::unique_ptr<server::IoServer>> servers_;
  std::shared_ptr<metadb::ShardedDatabase> sharded_db_;
  std::unique_ptr<metad::MetadService> metad_;
  std::shared_ptr<client::FileSystem> fs_;
};

}  // namespace dpfs::core
