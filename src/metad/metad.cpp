#include "metad/metad.h"

#include <sys/socket.h>

#include <string>
#include <utility>

#include "client/meta_wire.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "layout/placement.h"
#include "net/frame.h"
#include "net/messages.h"
#include "server/event_loop.h"
#include "server/metrics_http.h"

namespace dpfs::metad {

namespace {

using client::meta_wire::AccessSummaryReply;
using client::meta_wire::BoolReply;
using client::meta_wire::CreateFileRequest;
using client::meta_wire::FileRecordReply;
using client::meta_wire::ListingReply;
using client::meta_wire::LogAccessRequest;
using client::meta_wire::NameRequest;
using client::meta_wire::PathRequest;
using client::meta_wire::RemoveDirectoryRequest;
using client::meta_wire::RenameRequest;
using client::meta_wire::ServerListReply;
using client::meta_wire::ServerRequest;
using client::meta_wire::SetOwnerRequest;
using client::meta_wire::SetPermissionRequest;
using client::meta_wire::UpdateSizeRequest;

// Per-opcode request counters and service-time histograms for the opcodes
// this service answers (kPing/kShutdown/kMetrics + every kMeta*); names
// follow docs/OBSERVABILITY.md (metad.requests.meta_lookup_file, ...).
// Slots for I/O opcodes stay null — they are refused before counting.
struct OpMetrics {
  metrics::Counter* requests[net::kMaxMessageType + 1] = {};
  metrics::Histogram* service_time_us[net::kMaxMessageType + 1] = {};
  metrics::Counter& bad_requests = metrics::GetCounter("metad.bad_requests");
  metrics::Counter& busy_rejects = metrics::GetCounter("metad.busy_rejects");
  metrics::Gauge& inflight = metrics::GetGauge("metad.inflight_sessions");

  OpMetrics() {
    const auto add = [this](net::MessageType type) {
      const int op = static_cast<int>(type);
      const auto name = std::string(net::MessageTypeName(type));
      requests[op] = &metrics::GetCounter("metad.requests." + name);
      service_time_us[op] =
          &metrics::GetHistogram("metad.service_time_us." + name);
    };
    add(net::MessageType::kPing);
    add(net::MessageType::kShutdown);
    add(net::MessageType::kMetrics);
    for (int op = static_cast<int>(net::MessageType::kMetaRegisterServer);
         op <= net::kMaxMetaMessageType; ++op) {
      add(static_cast<net::MessageType>(op));
    }
  }
};
OpMetrics& Metrics() {
  static OpMetrics m;
  return m;
}

Bytes StatusReply(const Status& status) {
  return net::EncodeReply(status, {});
}

template <typename Reply>
Bytes BodyReply(const Reply& reply) {
  BinaryWriter body;
  reply.Encode(body);
  return net::EncodeReply(Status::Ok(), body.buffer());
}

}  // namespace

Result<std::unique_ptr<MetadService>> MetadService::Start(
    std::shared_ptr<metadb::ShardedDatabase> db, MetadOptions options) {
  if (db == nullptr) {
    return InvalidArgumentError("metad: null database");
  }
  // Attach creates missing tables and rolls forward any cross-shard intent
  // a crashed predecessor left behind — the service's recovery pass.
  DPFS_ASSIGN_OR_RETURN(std::unique_ptr<client::MetadataManager> metadata,
                        client::MetadataManager::Attach(db));
  DPFS_ASSIGN_OR_RETURN(net::TcpListener listener,
                        net::TcpListener::Bind(options.port));
  options.engine = server::ApplyEngineOverride(options.engine);
  std::unique_ptr<MetadService> service(
      new MetadService(std::move(options), std::move(listener), std::move(db),
                       std::move(metadata)));
  if (service->options_.engine == server::ServerEngine::kEventLoop) {
    server::EventLoop::Options loop_options;
    loop_options.max_sessions = service->options_.max_sessions;
    loop_options.reply_failpoint = "metad.reply";
    Result<std::unique_ptr<server::EventLoop>> loop =
        server::EventLoop::Start(
            std::move(service->listener_),
            [raw = service.get()](ByteSpan frame) {
              return raw->HandleRequest(frame);
            },
            &service->stats_, loop_options);
    if (!loop.ok()) return loop.status();
    service->event_loop_ = std::move(loop).value();
  } else {
    service->accept_thread_ = std::thread([raw = service.get()] {
      raw->AcceptLoop();
    });
  }
  if (service->options_.metrics_port != 0) {
    DPFS_ASSIGN_OR_RETURN(
        service->metrics_http_,
        server::MetricsHttpServer::Start(
            service->options_.metrics_port == server::kEphemeralMetricsPort
                ? 0
                : service->options_.metrics_port));
  }
  return service;
}

std::uint16_t MetadService::metrics_http_port() const noexcept {
  return metrics_http_ == nullptr ? 0 : metrics_http_->port();
}

MetadService::MetadService(MetadOptions options, net::TcpListener listener,
                           std::shared_ptr<metadb::ShardedDatabase> db,
                           std::unique_ptr<client::MetadataManager> metadata)
    : options_(std::move(options)),
      listener_(std::move(listener)),
      endpoint_{"127.0.0.1", listener_.port()},
      db_(std::move(db)),
      metadata_(std::move(metadata)) {}

MetadService::~MetadService() { Stop(); }

void MetadService::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (metrics_http_) metrics_http_->Stop();
  if (event_loop_) event_loop_->Stop();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(sessions_mu_);
    for (const int fd : session_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks RecvFrame in session threads
    }
  }
  std::vector<std::thread> sessions;
  {
    MutexLock lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& session : sessions) {
    if (session.joinable()) session.join();
  }
}

void MetadService::StopAcceptingAsync() {
  if (event_loop_) {
    event_loop_->SignalStop();
  } else {
    listener_.Close();  // unblocks the accept thread
  }
}

void MetadService::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      DPFS_LOG_WARN << "metad accept failed: "
                    << accepted.status().ToString();
      return;
    }
    stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(sessions_mu_);
    session_fds_.push_back(accepted.value().fd());
    sessions_.emplace_back(
        [this, socket = std::move(accepted).value()]() mutable {
          Session(std::move(socket));
        });
  }
}

void MetadService::Session(net::TcpSocket socket) {
  const std::size_t concurrent =
      active_sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
  struct SessionGuard {
    std::atomic<std::size_t>& counter;
    ~SessionGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } guard{active_sessions_};

  Bytes frame;
  if (options_.max_sessions > 0 && concurrent > options_.max_sessions) {
    stats_.sessions_rejected_busy.fetch_add(1, std::memory_order_relaxed);
    Metrics().busy_rejects.Add();
    if (net::RecvFrame(socket, frame).ok()) {
      // dpfs:unchecked(best-effort courtesy reply before dropping the
      // session; the client treats a vanished connection the same way)
      (void)net::SendFrame(
          socket, net::EncodeReply(
                      ResourceExhaustedError("server busy, retry later"), {}));
    }
    return;
  }

  Metrics().inflight.Add(1);
  struct InflightGuard {
    metrics::Gauge& gauge;
    ~InflightGuard() { gauge.Sub(1); }
  } inflight_guard{Metrics().inflight};

  while (!stopping_.load(std::memory_order_relaxed)) {
    const Status received = net::RecvFrame(socket, frame);
    if (!received.ok()) {
      // kUnavailable at a frame boundary is a normal client disconnect.
      if (received.code() != StatusCode::kUnavailable) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        DPFS_LOG_DEBUG << "metad session recv: " << received.ToString();
      }
      return;
    }
    Bytes reply = HandleRequest(frame);
    if (auto fp = failpoint::Check("metad.reply")) {
      if (fp->action == failpoint::Action::kDisconnect) {
        // Drop the session with the reply unsent: the client cannot know
        // whether its mutation committed (the ambiguity chaos tests pin).
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (fp->action == failpoint::Action::kReturnError) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        reply = net::EncodeReply(fp->status, {});
      }
    }
    const Status sent = net::SendFrame(socket, reply);
    if (!sent.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

Bytes MetadService::HandleRequest(ByteSpan frame) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  const Result<net::DecodedRequest> decoded = net::DecodeRequest(frame);
  if (!decoded.ok()) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    Metrics().bad_requests.Add();
    return StatusReply(decoded.status());
  }
  if (failpoint::Check("metad.crash")) {
    // The service dies under this request: stop serving and answer
    // kUnavailable so the client's view matches an abrupt process death
    // followed by connection refusal.
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    stopping_.store(true, std::memory_order_relaxed);
    StopAcceptingAsync();
    return StatusReply(
        UnavailableError("metadata server crashed (failpoint metad.crash)"));
  }
  const net::MessageType type = decoded.value().type;
  const int op = static_cast<int>(type);
  if (Metrics().requests[op] == nullptr) {
    // An I/O opcode (kRead, kWrite, ...) aimed at the metadata server.
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    Metrics().bad_requests.Add();
    return StatusReply(
        ProtocolError(std::string(net::MessageTypeName(type)) +
                      " is an I/O opcode; not served by the metadata server"));
  }
  Metrics().requests[op]->Add();
  metrics::ScopedTimer timer(*Metrics().service_time_us[op]);
  BinaryReader reader(decoded.value().body);
  return Dispatch(type, reader);
}

// dpfs:blocking-ok(the metadata service intentionally executes durable
// namespace mutations on its loop thread: the WAL commit *is* the service
// time the client is waiting for, and §3.1 serializes metadata ops anyway)
Bytes MetadService::Dispatch(net::MessageType type, BinaryReader& reader) {
  switch (type) {
    case net::MessageType::kPing:
      return StatusReply(Status::Ok());

    case net::MessageType::kShutdown:
      stopping_.store(true, std::memory_order_relaxed);
      StopAcceptingAsync();
      return StatusReply(Status::Ok());

    case net::MessageType::kMetrics: {
      BinaryWriter body;
      body.WriteString(metrics::Registry::Global().TextSnapshot());
      return net::EncodeReply(Status::Ok(), body.buffer());
    }

    case net::MessageType::kMetaRegisterServer: {
      const Result<ServerRequest> request = ServerRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->RegisterServer(request.value().server));
    }

    case net::MessageType::kMetaUnregisterServer: {
      const Result<NameRequest> request = NameRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->UnregisterServer(request.value().name));
    }

    case net::MessageType::kMetaListServers: {
      Result<std::vector<client::ServerInfo>> servers =
          metadata_->ListServers();
      if (!servers.ok()) return StatusReply(servers.status());
      ServerListReply reply;
      reply.servers = std::move(servers).value();
      return BodyReply(reply);
    }

    case net::MessageType::kMetaLookupServer: {
      const Result<NameRequest> request = NameRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      Result<client::ServerInfo> server =
          metadata_->LookupServer(request.value().name);
      if (!server.ok()) return StatusReply(server.status());
      BinaryWriter body;
      client::meta_wire::EncodeServerInfo(server.value(), body);
      return net::EncodeReply(Status::Ok(), body.buffer());
    }

    case net::MessageType::kMetaCreateFile: {
      const Result<CreateFileRequest> request =
          CreateFileRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      const Result<layout::BrickMap> map = request.value().meta.MakeBrickMap();
      if (!map.ok()) return StatusReply(map.status());
      std::vector<std::vector<layout::BrickId>> bricklists;
      bricklists.reserve(request.value().bricklists.size());
      for (const std::string& text : request.value().bricklists) {
        Result<std::vector<layout::BrickId>> bricks =
            layout::BrickDistribution::DecodeBrickList(text);
        if (!bricks.ok()) return StatusReply(bricks.status());
        bricklists.push_back(std::move(bricks).value());
      }
      Result<layout::BrickDistribution> distribution =
          layout::BrickDistribution::FromBrickLists(map.value().num_bricks(),
                                                    std::move(bricklists));
      if (!distribution.ok()) return StatusReply(distribution.status());
      std::vector<layout::BrickDistribution> replicas;
      replicas.reserve(request.value().replica_bricklists.size());
      for (const std::vector<std::string>& rank :
           request.value().replica_bricklists) {
        std::vector<std::vector<layout::BrickId>> rank_lists;
        rank_lists.reserve(rank.size());
        for (const std::string& text : rank) {
          Result<std::vector<layout::BrickId>> bricks =
              layout::BrickDistribution::DecodeBrickList(text);
          if (!bricks.ok()) return StatusReply(bricks.status());
          rank_lists.push_back(std::move(bricks).value());
        }
        Result<layout::BrickDistribution> rank_dist =
            layout::BrickDistribution::FromBrickLists(
                map.value().num_bricks(), std::move(rank_lists));
        if (!rank_dist.ok()) return StatusReply(rank_dist.status());
        replicas.push_back(std::move(rank_dist).value());
      }
      return StatusReply(metadata_->CreateFile(request.value().meta,
                                               request.value().server_names,
                                               distribution.value(),
                                               replicas));
    }

    case net::MessageType::kMetaLookupFile: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      Result<client::FileRecord> record =
          metadata_->LookupFile(request.value().path);
      if (!record.ok()) return StatusReply(record.status());
      FileRecordReply reply;
      reply.record = std::move(record).value();
      return BodyReply(reply);
    }

    case net::MessageType::kMetaUpdateSize: {
      const Result<UpdateSizeRequest> request =
          UpdateSizeRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->UpdateFileSize(
          request.value().path, request.value().size_bytes));
    }

    case net::MessageType::kMetaSetPermission: {
      const Result<SetPermissionRequest> request =
          SetPermissionRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->SetPermission(
          request.value().path, request.value().permission));
    }

    case net::MessageType::kMetaSetOwner: {
      const Result<SetOwnerRequest> request = SetOwnerRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(
          metadata_->SetOwner(request.value().path, request.value().owner));
    }

    case net::MessageType::kMetaDeleteFile: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->DeleteFile(request.value().path));
    }

    case net::MessageType::kMetaFileExists: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      const Result<bool> exists = metadata_->FileExists(request.value().path);
      if (!exists.ok()) return StatusReply(exists.status());
      BoolReply reply;
      reply.value = exists.value();
      return BodyReply(reply);
    }

    case net::MessageType::kMetaRenameFile: {
      const Result<RenameRequest> request = RenameRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(
          metadata_->RenameFile(request.value().from, request.value().to));
    }

    case net::MessageType::kMetaLogAccess: {
      const Result<LogAccessRequest> request =
          LogAccessRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->LogAccess(
          request.value().path, request.value().is_write,
          request.value().requests, request.value().transfer_bytes,
          request.value().useful_bytes));
    }

    case net::MessageType::kMetaSummarizeAccess: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      Result<client::MetadataService::AccessSummary> summary =
          metadata_->SummarizeAccess(request.value().path);
      if (!summary.ok()) return StatusReply(summary.status());
      AccessSummaryReply reply;
      reply.summary = summary.value();
      return BodyReply(reply);
    }

    case net::MessageType::kMetaClearAccessLog: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->ClearAccessLog(request.value().path));
    }

    case net::MessageType::kMetaMakeDirectory: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->MakeDirectory(request.value().path));
    }

    case net::MessageType::kMetaRemoveDirectory: {
      const Result<RemoveDirectoryRequest> request =
          RemoveDirectoryRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      return StatusReply(metadata_->RemoveDirectory(
          request.value().path, request.value().recursive));
    }

    case net::MessageType::kMetaDirectoryExists: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      const Result<bool> exists =
          metadata_->DirectoryExists(request.value().path);
      if (!exists.ok()) return StatusReply(exists.status());
      BoolReply reply;
      reply.value = exists.value();
      return BodyReply(reply);
    }

    case net::MessageType::kMetaListDirectory: {
      const Result<PathRequest> request = PathRequest::Decode(reader);
      if (!request.ok()) return StatusReply(request.status());
      Result<client::MetadataService::Listing> listing =
          metadata_->ListDirectory(request.value().path);
      if (!listing.ok()) return StatusReply(listing.status());
      ListingReply reply;
      reply.listing = std::move(listing).value();
      return BodyReply(reply);
    }

    default:
      // I/O opcodes — refused in HandleRequest before dispatch; the switch
      // stays total under -Wswitch.
      break;
  }
  return StatusReply(ProtocolError("unhandled message type"));
}

}  // namespace dpfs::metad
