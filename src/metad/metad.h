// dpfs-metad — the standalone DPFS metadata server (extension:
// `metadata_endpoint`, docs/METADATA_SCHEMA.md "Remote access").
//
// The paper embeds metadata access in every client; since metadb::Database
// holds an advisory flock, that limits a namespace to one process. This
// service is the unlock (HopsFS-style): it owns the ShardedDatabase and
// serves the kMeta* namespace opcodes over the same frame envelope as the
// I/O servers, so any number of client processes share one mutable
// namespace through their RemoteMetadataManager (client/remote_metadata.h).
//
// Both connection engines run here: the paper's thread-per-connection model
// by default, or the epoll reactor (server::EventLoop) when
// MetadOptions::engine selects it — the loop is handed "metad.reply" as its
// reply failpoint site so chaos schedules target this service specifically.
//
// Crash recovery is inherited, not reimplemented: Start attaches a
// MetadataManager, whose Attach rolls forward any cross-shard intent
// records a previous incarnation left mid-mutation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "client/metadata.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "metadb/sharded_database.h"
#include "net/connection.h"
#include "net/socket.h"
#include "server/io_server.h"

namespace dpfs::server {
class EventLoop;
class MetricsHttpServer;
}  // namespace dpfs::server

namespace dpfs::metad {

struct MetadOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  /// Concurrent session cap (thread engine rejects with "server busy" like
  /// the I/O server; the event engine enforces it in the reactor). 0 =
  /// unlimited.
  std::size_t max_sessions = 0;
  /// Engine selection; DPFS_SERVER_ENGINE overrides it process-wide.
  server::ServerEngine engine = server::ServerEngine::kThreadPerConnection;
  /// != 0: serve `GET /metrics` over plain HTTP on this port
  /// (server/metrics_http.h); 0 = no HTTP endpoint;
  /// server::kEphemeralMetricsPort = ephemeral.
  std::uint16_t metrics_port = 0;
};

class MetadService {
 public:
  /// Attaches a MetadataManager to `db` (creating tables and rolling
  /// forward pending cross-shard intents), binds, and starts serving.
  static Result<std::unique_ptr<MetadService>> Start(
      std::shared_ptr<metadb::ShardedDatabase> db, MetadOptions options = {});

  ~MetadService();
  MetadService(const MetadService&) = delete;
  MetadService& operator=(const MetadService&) = delete;

  [[nodiscard]] net::Endpoint endpoint() const noexcept { return endpoint_; }
  [[nodiscard]] const server::ServerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] server::ServerEngine engine() const noexcept {
    return options_.engine;
  }
  /// Bound HTTP scrape port (metrics_port != 0 only); 0 when disabled.
  [[nodiscard]] std::uint16_t metrics_http_port() const noexcept;
  /// The embedded manager actually serving requests (tests reach through
  /// this to inspect the database the service owns).
  [[nodiscard]] client::MetadataManager& metadata() noexcept {
    return *metadata_;
  }

  /// Stops accepting, unblocks in-flight sessions, joins all threads.
  /// Idempotent. The database handle is released on destruction, so a
  /// successor service can re-open the directory (flock) afterwards.
  void Stop();

 private:
  MetadService(MetadOptions options, net::TcpListener listener,
               std::shared_ptr<metadb::ShardedDatabase> db,
               std::unique_ptr<client::MetadataManager> metadata);

  void AcceptLoop();
  void Session(net::TcpSocket socket);
  /// Decodes one request frame, counts/times it per opcode, and dispatches.
  Bytes HandleRequest(ByteSpan frame);
  /// The per-opcode service switch; returns the reply payload.
  Bytes Dispatch(net::MessageType type, BinaryReader& reader);
  /// kShutdown's engine-appropriate "stop taking connections" signal.
  void StopAcceptingAsync();

  MetadOptions options_;
  net::TcpListener listener_;
  net::Endpoint endpoint_;
  std::shared_ptr<metadb::ShardedDatabase> db_;
  std::unique_ptr<client::MetadataManager> metadata_;
  server::ServerStats stats_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_sessions_{0};
  std::thread accept_thread_;
  Mutex sessions_mu_;
  std::vector<std::thread> sessions_ DPFS_GUARDED_BY(sessions_mu_);
  std::vector<int> session_fds_
      DPFS_GUARDED_BY(sessions_mu_);  // for unblocking on Stop

  std::unique_ptr<server::EventLoop> event_loop_;  // engine == kEventLoop
  std::unique_ptr<server::MetricsHttpServer>
      metrics_http_;  // metrics_port != 0 only
};

}  // namespace dpfs::metad
