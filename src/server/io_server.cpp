#include "server/io_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string_view>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "net/frame.h"
#include "net/messages.h"
#include "server/event_loop.h"
#include "server/metrics_http.h"

namespace dpfs::server {

namespace {
// Per-opcode request counters and service-time histograms, indexed by the
// numeric MessageType. Only the opcodes an I/O server actually serves get a
// slot (ping..metrics plus the list-I/O pair); a null slot is how
// HandleRequest recognizes a metadata opcode aimed at the wrong server.
// Resolved once; names follow docs/OBSERVABILITY.md
// (io_server.requests.read, ...).
struct OpMetrics {
  metrics::Counter* requests[net::kMaxMessageType + 1] = {};
  metrics::Histogram* service_time_us[net::kMaxMessageType + 1] = {};
  metrics::Counter& bad_requests =
      metrics::GetCounter("io_server.bad_requests");
  metrics::Counter& busy_rejects =
      metrics::GetCounter("io_server.busy_rejects");
  metrics::Gauge& inflight =
      metrics::GetGauge("io_server.inflight_sessions");
  metrics::Counter& coalesced_fragments =
      metrics::GetCounter("io_server.coalesced_fragments");
  metrics::Counter& list_extents =
      metrics::GetCounter("io_server.list_extents");

  OpMetrics() {
    const auto add = [this](net::MessageType type) {
      const int op = static_cast<int>(type);
      const auto name = std::string(net::MessageTypeName(type));
      requests[op] = &metrics::GetCounter("io_server.requests." + name);
      service_time_us[op] =
          &metrics::GetHistogram("io_server.service_time_us." + name);
    };
    for (int op = static_cast<int>(net::MessageType::kPing);
         op <= static_cast<int>(net::MessageType::kMetrics); ++op) {
      add(static_cast<net::MessageType>(op));
    }
    add(net::MessageType::kListRead);
    add(net::MessageType::kListWrite);
  }
};
OpMetrics& Metrics() {
  static OpMetrics m;
  return m;
}

/// Atomic (tmp + rename) text-snapshot dump; partial files never appear at
/// the published path.
void DumpSnapshot(const std::filesystem::path& path) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      DPFS_LOG_WARN << "metrics dump: cannot open " << tmp.string();
      return;
    }
    out << metrics::Registry::Global().TextSnapshot();
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    DPFS_LOG_WARN << "metrics dump: rename to " << path.string() << ": "
                  << ec.message();
  }
}
}  // namespace

ServerEngine ApplyEngineOverride(ServerEngine configured) {
  const char* env = std::getenv("DPFS_SERVER_ENGINE");
  if (env == nullptr) return configured;
  const std::string_view value(env);
  if (value == "event") return ServerEngine::kEventLoop;
  if (value == "thread") return ServerEngine::kThreadPerConnection;
  if (!value.empty()) {
    DPFS_LOG_WARN << "DPFS_SERVER_ENGINE='" << value
                  << "' is not 'thread' or 'event'; ignoring";
  }
  return configured;
}

Result<std::unique_ptr<IoServer>> IoServer::Start(ServerOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(options.root_dir, ec);
  if (ec) {
    return IoError("create server root '" + options.root_dir.string() +
                   "': " + ec.message());
  }
  DPFS_ASSIGN_OR_RETURN(net::TcpListener listener,
                        net::TcpListener::Bind(options.port));
  options.engine = ApplyEngineOverride(options.engine);
  std::unique_ptr<IoServer> server(
      new IoServer(std::move(options), std::move(listener)));
  if (server->options_.engine == ServerEngine::kEventLoop) {
    EventLoop::Options loop_options;
    loop_options.max_sessions = server->options_.max_sessions;
    // The reactor owns the listener from here; endpoint_ was captured in
    // the constructor, and the moved-from listener_ is a safe no-op Close.
    Result<std::unique_ptr<EventLoop>> loop = EventLoop::Start(
        std::move(server->listener_),
        [raw = server.get()](ByteSpan frame) {
          return raw->HandleRequest(frame);
        },
        &server->stats_, loop_options);
    if (!loop.ok()) return loop.status();
    server->event_loop_ = std::move(loop).value();
  } else {
    server->accept_thread_ = std::thread([raw = server.get()] {
      raw->AcceptLoop();
    });
  }
  if (server->options_.metrics_dump_interval.count() > 0) {
    server->dump_thread_ = std::thread([raw = server.get()] {
      raw->MetricsDumpLoop();
    });
  }
  if (server->options_.metrics_port != 0) {
    DPFS_ASSIGN_OR_RETURN(
        server->metrics_http_,
        MetricsHttpServer::Start(
            server->options_.metrics_port == kEphemeralMetricsPort
                ? 0
                : server->options_.metrics_port));
  }
  return server;
}

std::uint16_t IoServer::metrics_http_port() const noexcept {
  return metrics_http_ == nullptr ? 0 : metrics_http_->port();
}

IoServer::IoServer(ServerOptions options, net::TcpListener listener)
    : options_(std::move(options)),
      store_(options_.root_dir),
      listener_(std::move(listener)),
      endpoint_{"127.0.0.1", listener_.port()} {}

IoServer::~IoServer() { Stop(); }

void IoServer::Stop() {
  if (stopping_.exchange(true)) {
    // Already stopping; still join if the first caller was another thread.
  }
  if (dump_thread_.joinable()) {
    {
      MutexLock lock(dump_mu_);
      dump_stop_ = true;
    }
    dump_cv_.NotifyAll();
    dump_thread_.join();
  }
  if (metrics_http_) metrics_http_->Stop();
  if (event_loop_) event_loop_->Stop();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(sessions_mu_);
    for (const int fd : session_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks RecvExact in session threads
    }
  }
  std::vector<std::thread> sessions;
  {
    MutexLock lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& session : sessions) {
    if (session.joinable()) session.join();
  }
}

void IoServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      DPFS_LOG_WARN << "accept failed: " << accepted.status().ToString();
      return;
    }
    stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(sessions_mu_);
    session_fds_.push_back(accepted.value().fd());
    sessions_.emplace_back(
        [this, socket = std::move(accepted).value()]() mutable {
          Session(std::move(socket));
        });
  }
}

void IoServer::Session(net::TcpSocket socket) {
  const std::size_t concurrent =
      active_sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
  struct SessionGuard {
    std::atomic<std::size_t>& counter;
    ~SessionGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } guard{active_sessions_};

  bool reject_busy =
      options_.max_sessions > 0 && concurrent > options_.max_sessions;
  if (!reject_busy) {
    // "server.session" kBusy simulates §4.2's overloaded server without
    // needing max_sessions pressure (busy-storm chaos schedules).
    if (const auto fp = failpoint::Check("server.session");
        fp.has_value() && fp->action == failpoint::Action::kBusy) {
      reject_busy = true;
    }
  }
  Bytes frame;
  if (reject_busy) {
    // §4.2's overloaded server: answer one request with "busy" so the
    // client backs off and retries, then drop the session.
    stats_.sessions_rejected_busy.fetch_add(1, std::memory_order_relaxed);
    Metrics().busy_rejects.Add();
    if (net::RecvFrame(socket, frame).ok()) {
      // dpfs:unchecked(best-effort courtesy reply before dropping the
      // session; the client treats a vanished connection the same way)
      (void)net::SendFrame(
          socket, net::EncodeReply(
                      ResourceExhaustedError("server busy, retry later"), {}));
    }
    return;
  }

  // Serving for real from here: show up in the inflight_sessions gauge
  // (rejected-busy sessions above deliberately don't).
  Metrics().inflight.Add(1);
  struct InflightGuard {
    metrics::Gauge& gauge;
    ~InflightGuard() { gauge.Sub(1); }
  } inflight_guard{Metrics().inflight};

  while (!stopping_.load(std::memory_order_relaxed)) {
    const Status received = net::RecvFrame(socket, frame);
    if (!received.ok()) {
      // kUnavailable at a frame boundary is a normal client disconnect.
      if (received.code() != StatusCode::kUnavailable) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        DPFS_LOG_DEBUG << "session recv: " << received.ToString();
      }
      return;
    }
    Bytes reply = HandleRequest(frame);
    if (auto fp = failpoint::Check("server.before_reply")) {
      if (fp->action == failpoint::Action::kDisconnect) {
        // Drop the session with the reply unsent: the client sees a dead
        // connection after a request it cannot know the fate of.
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (fp->action == failpoint::Action::kReturnError) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        reply = net::EncodeReply(fp->status, {});
      }
    }
    const Status sent = net::SendFrame(socket, reply);
    if (!sent.ok()) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

Bytes IoServer::HandleRequest(ByteSpan frame) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  const Result<net::DecodedRequest> decoded = net::DecodeRequest(frame);
  if (!decoded.ok()) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    Metrics().bad_requests.Add();
    return net::EncodeReply(decoded.status(), {});
  }
  const net::MessageType type = decoded.value().type;
  BinaryReader reader(decoded.value().body);
  const int op = static_cast<int>(type);
  if (Metrics().requests[op] == nullptr) {
    // Metadata opcodes (kMeta*) decode fine but are served by dpfs-metad,
    // not an I/O server — their slots in the per-op arrays stay null.
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    Metrics().bad_requests.Add();
    return net::EncodeReply(
        ProtocolError(std::string(net::MessageTypeName(type)) +
                      " is a metadata opcode; not served by an I/O server"),
        {});
  }
  Metrics().requests[op]->Add();
  metrics::ScopedTimer timer(*Metrics().service_time_us[op]);
  return Dispatch(type, reader);
}

Bytes IoServer::Dispatch(net::MessageType type, BinaryReader& reader) {
  switch (type) {
    case net::MessageType::kPing:
      return net::EncodeReply(Status::Ok(), {});

    case net::MessageType::kRead: {
      Result<net::ReadRequest> request = net::ReadRequest::Decode(reader);
      if (!request.ok()) return net::EncodeReply(request.status(), {});
      if (options_.engine == ServerEngine::kEventLoop) {
        // Server-side request batching (docs/ASYNC_SERVER.md): adjacent
        // bricks collapse to one store op; reply bytes are unchanged, so
        // this stays inside the opt-in engine.
        const std::size_t before = request.value().fragments.size();
        request.value().fragments =
            CoalesceAdjacentReads(std::move(request.value().fragments));
        Metrics().coalesced_fragments.Add(
            before - request.value().fragments.size());
      }
      Result<Bytes> data =
          store_.ReadFragments(request.value().subfile,
                               request.value().fragments);
      if (!data.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return net::EncodeReply(data.status(), {});
      }
      stats_.bytes_read.fetch_add(data.value().size(),
                                  std::memory_order_relaxed);
      return net::EncodeReply(Status::Ok(), data.value());
    }

    case net::MessageType::kWrite: {
      Result<net::WriteRequest> request = net::WriteRequest::Decode(reader);
      if (!request.ok()) return net::EncodeReply(request.status(), {});
      const std::uint64_t payload = request.value().total_bytes();
      if (options_.engine == ServerEngine::kEventLoop) {
        const std::size_t before = request.value().fragments.size();
        request.value().fragments =
            CoalesceAdjacentWrites(std::move(request.value().fragments));
        Metrics().coalesced_fragments.Add(
            before - request.value().fragments.size());
      }
      const Status written = store_.WriteFragments(request.value().subfile,
                                                   request.value().fragments,
                                                   request.value().sync);
      if (!written.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return net::EncodeReply(written, {});
      }
      stats_.bytes_written.fetch_add(payload, std::memory_order_relaxed);
      return net::EncodeReply(Status::Ok(), {});
    }

    case net::MessageType::kListRead: {
      // Noncontiguous list read (docs/NONCONTIGUOUS_IO.md): the decoder has
      // already enforced the extent rules, so the store can iterate the
      // extents directly — same fragment machinery as kRead, one reply.
      Result<net::ListReadRequest> request =
          net::ListReadRequest::Decode(reader);
      if (!request.ok()) return net::EncodeReply(request.status(), {});
      Metrics().list_extents.Add(request.value().extents.size());
      if (options_.engine == ServerEngine::kEventLoop) {
        const std::size_t before = request.value().extents.size();
        request.value().extents =
            CoalesceAdjacentReads(std::move(request.value().extents));
        Metrics().coalesced_fragments.Add(
            before - request.value().extents.size());
      }
      Result<Bytes> data = store_.ReadFragments(request.value().subfile,
                                                request.value().extents);
      if (!data.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return net::EncodeReply(data.status(), {});
      }
      stats_.bytes_read.fetch_add(data.value().size(),
                                  std::memory_order_relaxed);
      return net::EncodeReply(Status::Ok(), data.value());
    }

    case net::MessageType::kListWrite: {
      Result<net::ListWriteRequest> request =
          net::ListWriteRequest::Decode(reader);
      if (!request.ok()) return net::EncodeReply(request.status(), {});
      Metrics().list_extents.Add(request.value().extents.size());
      const std::uint64_t payload = request.value().total_bytes();
      // Scatter the batched payload into per-extent fragments (the decoder
      // guarantees the payload size equals the extent sum); the store's
      // write path is shared with kWrite from here.
      std::vector<net::WriteFragment> fragments;
      fragments.reserve(request.value().extents.size());
      std::size_t cursor = 0;
      for (const net::ReadFragment& extent : request.value().extents) {
        net::WriteFragment fragment;
        fragment.offset = extent.offset;
        fragment.data.assign(
            request.value().data.begin() + static_cast<std::ptrdiff_t>(cursor),
            request.value().data.begin() +
                static_cast<std::ptrdiff_t>(cursor + extent.length));
        cursor += extent.length;
        fragments.push_back(std::move(fragment));
      }
      if (options_.engine == ServerEngine::kEventLoop) {
        const std::size_t before = fragments.size();
        fragments = CoalesceAdjacentWrites(std::move(fragments));
        Metrics().coalesced_fragments.Add(before - fragments.size());
      }
      const Status written = store_.WriteFragments(
          request.value().subfile, fragments, request.value().sync);
      if (!written.ok()) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        return net::EncodeReply(written, {});
      }
      stats_.bytes_written.fetch_add(payload, std::memory_order_relaxed);
      return net::EncodeReply(Status::Ok(), {});
    }

    case net::MessageType::kStat: {
      const Result<std::string> subfile = reader.ReadString();
      if (!subfile.ok()) return net::EncodeReply(subfile.status(), {});
      const Result<net::StatReply> stat = store_.Stat(subfile.value());
      if (!stat.ok()) return net::EncodeReply(stat.status(), {});
      BinaryWriter body;
      body.WriteBool(stat.value().exists);
      body.WriteU64(stat.value().size);
      return net::EncodeReply(Status::Ok(), body.buffer());
    }

    case net::MessageType::kDelete: {
      const Result<std::string> subfile = reader.ReadString();
      if (!subfile.ok()) return net::EncodeReply(subfile.status(), {});
      return net::EncodeReply(store_.Delete(subfile.value()), {});
    }

    case net::MessageType::kTruncate: {
      const Result<std::string> subfile = reader.ReadString();
      if (!subfile.ok()) return net::EncodeReply(subfile.status(), {});
      const Result<std::uint64_t> size = reader.ReadU64();
      if (!size.ok()) return net::EncodeReply(size.status(), {});
      return net::EncodeReply(
          store_.Truncate(subfile.value(), size.value()), {});
    }

    case net::MessageType::kList: {
      const Result<std::vector<net::SubfileInfo>> listing =
          store_.ListSubfiles();
      if (!listing.ok()) return net::EncodeReply(listing.status(), {});
      BinaryWriter body;
      body.WriteU32(static_cast<std::uint32_t>(listing.value().size()));
      for (const net::SubfileInfo& info : listing.value()) {
        body.WriteString(info.name);
        body.WriteU64(info.size);
      }
      return net::EncodeReply(Status::Ok(), body.buffer());
    }

    case net::MessageType::kRename: {
      const Result<std::string> from = reader.ReadString();
      if (!from.ok()) return net::EncodeReply(from.status(), {});
      const Result<std::string> to = reader.ReadString();
      if (!to.ok()) return net::EncodeReply(to.status(), {});
      return net::EncodeReply(store_.Rename(from.value(), to.value()), {});
    }

    case net::MessageType::kShutdown:
      stopping_.store(true, std::memory_order_relaxed);
      StopAcceptingAsync();
      return net::EncodeReply(Status::Ok(), {});

    case net::MessageType::kStats: {
      net::StatsReply stats;
      stats.requests = stats_.requests.load(std::memory_order_relaxed);
      stats.bytes_read = stats_.bytes_read.load(std::memory_order_relaxed);
      stats.bytes_written =
          stats_.bytes_written.load(std::memory_order_relaxed);
      stats.sessions_accepted =
          stats_.sessions_accepted.load(std::memory_order_relaxed);
      stats.errors = stats_.errors.load(std::memory_order_relaxed);
      stats.fd_cache_hits = store_.fd_cache().hits();
      stats.fd_cache_misses = store_.fd_cache().misses();
      const Result<std::uint64_t> stored = store_.TotalBytesStored();
      stats.stored_bytes = stored.ok() ? stored.value() : 0;
      BinaryWriter body;
      stats.Encode(body);
      return net::EncodeReply(Status::Ok(), body.buffer());
    }

    case net::MessageType::kMetrics: {
      // The full text exposition of the process-wide registry (every
      // component, not just this server's counters); in the multi-process
      // deployment each dpfsd answers with its own process's snapshot.
      BinaryWriter body;
      body.WriteString(metrics::Registry::Global().TextSnapshot());
      return net::EncodeReply(Status::Ok(), body.buffer());
    }

    default:
      // kMeta* — rejected in HandleRequest before the per-op metric arrays;
      // unreachable here, but the switch must stay total under -Wswitch.
      break;
  }
  return net::EncodeReply(ProtocolError("unhandled message type"), {});
}

void IoServer::StopAcceptingAsync() {
  if (event_loop_) {
    // Runs on the loop thread itself (kShutdown is serviced there), so only
    // signal; the reactor flushes the shutdown reply during its drain and
    // the eventual Stop() joins.
    event_loop_->SignalStop();
  } else {
    listener_.Close();  // unblocks the accept thread
  }
}

void IoServer::MetricsDumpLoop() {
  const std::filesystem::path path = options_.metrics_dump_path.empty()
                                         ? options_.root_dir / "metrics.txt"
                                         : options_.metrics_dump_path;
  {
    MutexLock lock(dump_mu_);
    while (!dump_stop_) {
      if (dump_cv_.WaitFor(dump_mu_, options_.metrics_dump_interval)) {
        continue;  // notified: re-check dump_stop_
      }
      DumpSnapshot(path);
    }
  }
  // Final snapshot on shutdown so even a short run leaves one behind.
  DumpSnapshot(path);
}

}  // namespace dpfs::server
