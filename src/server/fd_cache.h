// LRU cache of open subfile descriptors.
//
// Every brick request used to pay an open()/close() pair; the cache keeps
// descriptors hot across requests and sessions. Descriptors are handed out
// as shared_ptr so eviction never closes a file mid-pread: the kernel fd is
// closed when the last in-flight operation drops its reference.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dpfs::server {

/// Owns one kernel fd; closes on destruction.
class SharedFd {
 public:
  explicit SharedFd(int fd) noexcept : fd_(fd) {}
  ~SharedFd();
  SharedFd(const SharedFd&) = delete;
  SharedFd& operator=(const SharedFd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }

 private:
  int fd_;
};

using SharedFdPtr = std::shared_ptr<SharedFd>;

class FdCache {
 public:
  /// `capacity` open descriptors are kept; least-recently-used beyond that
  /// are closed (once unreferenced).
  explicit FdCache(std::size_t capacity = 128) : capacity_(capacity) {}
  ~FdCache() { Clear(); }  // keeps the fd_cache.open_fds gauge honest
  FdCache(const FdCache&) = delete;
  FdCache& operator=(const FdCache&) = delete;

  /// Returns an fd for `path` opened read/write. With `create`, missing
  /// files (and parent directories) are created; without it, a missing file
  /// returns kNotFound so readers can synthesize zeroes.
  Result<SharedFdPtr> Acquire(const std::string& path, bool create);

  /// Drops the cache entry (delete/truncate paths call this).
  void Invalidate(const std::string& path);

  void Clear();
  [[nodiscard]] std::size_t size() const;
  // Counter reads take the lock: sessions serve Stats() concurrently with
  // sessions updating the counters (was an unlocked read — a data race).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  struct Entry {
    SharedFdPtr fd;
    std::list<std::string>::iterator lru_pos;
  };
  void TouchLocked(Entry& entry, const std::string& path)
      DPFS_REQUIRES(mu_);

  mutable Mutex mu_;
  const std::size_t capacity_;  // immutable after construction
  std::map<std::string, Entry> entries_ DPFS_GUARDED_BY(mu_);
  std::list<std::string> lru_ DPFS_GUARDED_BY(mu_);  // front = most recent
  std::uint64_t hits_ DPFS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ DPFS_GUARDED_BY(mu_) = 0;
};

}  // namespace dpfs::server
