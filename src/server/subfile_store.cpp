#include "server/subfile_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <algorithm>
#include <cstring>

#include "common/metrics.h"
#include "common/strings.h"

namespace dpfs::server {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
// bytes_read counts bytes returned to clients (zero-filled holes included);
// bytes_written counts payload bytes put to disk.
struct StoreMetrics {
  metrics::Counter& reads = metrics::GetCounter("subfile_store.reads");
  metrics::Counter& writes = metrics::GetCounter("subfile_store.writes");
  metrics::Counter& bytes_read =
      metrics::GetCounter("subfile_store.bytes_read");
  metrics::Counter& bytes_written =
      metrics::GetCounter("subfile_store.bytes_written");
  metrics::Counter& fsyncs = metrics::GetCounter("subfile_store.fsyncs");
};
StoreMetrics& Metrics() {
  static StoreMetrics m;
  return m;
}
}  // namespace

Result<std::filesystem::path> SubfileStore::ResolvePath(
    const std::string& subfile) const {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(subfile));
  if (normalized == "/") {
    return InvalidArgumentError("subfile name resolves to the store root");
  }
  // normalized starts with '/'; strip it and join under root.
  return root_ / normalized.substr(1);
}

Result<Bytes> SubfileStore::ReadFragments(
    const std::string& subfile,
    const std::vector<net::ReadFragment>& fragments) {
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path path,
                        ResolvePath(subfile));
  std::uint64_t total = 0;
  for (const net::ReadFragment& fragment : fragments) total += fragment.length;
  Bytes out(total, 0);
  Metrics().reads.Add();

  const Result<SharedFdPtr> fd = fd_cache_.Acquire(path.string(), false);
  if (!fd.ok()) {
    if (fd.status().code() == StatusCode::kNotFound) {
      // A never-written subfile is all holes; zeroes are correct.
      Metrics().bytes_read.Add(total);
      return out;
    }
    return fd.status();
  }

  std::uint64_t cursor = 0;
  for (const net::ReadFragment& fragment : fragments) {
    std::uint64_t read_so_far = 0;
    while (read_so_far < fragment.length) {
      const ssize_t n = ::pread(
          fd.value()->get(), out.data() + cursor + read_so_far,
          fragment.length - read_so_far,
          static_cast<off_t>(fragment.offset + read_so_far));
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoErrnoError("pread subfile", path.string());
      }
      if (n == 0) break;  // EOF: the rest stays zero (sparse hole semantics)
      read_so_far += static_cast<std::uint64_t>(n);
    }
    cursor += fragment.length;
  }
  Metrics().bytes_read.Add(total);
  return out;
}

Status SubfileStore::WriteFragments(
    const std::string& subfile,
    const std::vector<net::WriteFragment>& fragments, bool sync) {
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path path,
                        ResolvePath(subfile));
  DPFS_ASSIGN_OR_RETURN(const SharedFdPtr fd,
                        fd_cache_.Acquire(path.string(), true));
  Metrics().writes.Add();

  for (const net::WriteFragment& fragment : fragments) {
    std::uint64_t written = 0;
    while (written < fragment.data.size()) {
      const ssize_t n = ::pwrite(
          fd->get(), fragment.data.data() + written,
          fragment.data.size() - written,
          static_cast<off_t>(fragment.offset + written));
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoErrnoError("pwrite subfile", path.string());
      }
      written += static_cast<std::uint64_t>(n);
    }
    Metrics().bytes_written.Add(fragment.data.size());
  }
  if (sync) {
    Metrics().fsyncs.Add();
    if (::fsync(fd->get()) != 0) {
      return IoErrnoError("fsync subfile", path.string());
    }
  }
  return Status::Ok();
}

Result<net::StatReply> SubfileStore::Stat(const std::string& subfile) {
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path path,
                        ResolvePath(subfile));
  net::StatReply reply;
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    reply.exists = false;
    return reply;  // missing file is not an error for stat
  }
  reply.exists = true;
  reply.size = size;
  return reply;
}

Status SubfileStore::Delete(const std::string& subfile) {
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path path,
                        ResolvePath(subfile));
  fd_cache_.Invalidate(path.string());
  std::error_code ec;
  const bool removed = std::filesystem::remove(path, ec);
  if (ec) return IoError("delete subfile: " + ec.message());
  if (!removed) {
    return NotFoundError("subfile '" + subfile + "' does not exist");
  }
  return Status::Ok();
}

Status SubfileStore::Truncate(const std::string& subfile, std::uint64_t size) {
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path path,
                        ResolvePath(subfile));
  DPFS_ASSIGN_OR_RETURN(const SharedFdPtr fd,
                        fd_cache_.Acquire(path.string(), true));
  if (::ftruncate(fd->get(), static_cast<off_t>(size)) != 0) {
    return IoErrnoError("ftruncate subfile", path.string());
  }
  return Status::Ok();
}

Status SubfileStore::Rename(const std::string& from, const std::string& to) {
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path src, ResolvePath(from));
  DPFS_ASSIGN_OR_RETURN(const std::filesystem::path dst, ResolvePath(to));
  std::error_code ec;
  if (!std::filesystem::exists(src, ec)) {
    return NotFoundError("subfile '" + from + "' does not exist");
  }
  std::filesystem::create_directories(dst.parent_path(), ec);
  if (ec) return IoError("create rename dirs: " + ec.message());
  fd_cache_.Invalidate(src.string());
  fd_cache_.Invalidate(dst.string());
  std::filesystem::rename(src, dst, ec);
  if (ec) return IoError("rename subfile: " + ec.message());
  return Status::Ok();
}

Result<std::uint64_t> SubfileStore::TotalBytesStored() const {
  std::uint64_t total = 0;
  std::error_code ec;
  if (!std::filesystem::exists(root_, ec)) return total;
  for (auto it = std::filesystem::recursive_directory_iterator(root_, ec);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) {
      total += it->file_size(ec);
    }
  }
  return total;
}

Result<std::vector<net::SubfileInfo>> SubfileStore::ListSubfiles() const {
  std::vector<net::SubfileInfo> out;
  std::error_code ec;
  if (!std::filesystem::exists(root_, ec)) return out;
  for (auto it = std::filesystem::recursive_directory_iterator(root_, ec);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file(ec)) continue;
    net::SubfileInfo info;
    const std::filesystem::path relative =
        std::filesystem::relative(it->path(), root_, ec);
    if (ec) continue;
    info.name = "/" + relative.generic_string();
    info.size = it->file_size(ec);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const net::SubfileInfo& a, const net::SubfileInfo& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace dpfs::server
