// The DPFS I/O server (§2): accepts client connections over TCP and services
// brick read/write requests against its local subfile store.
//
// Concurrency model follows the paper: the server handles concurrent client
// requests "by spawning multiple processes or threads to handle them" — here
// one session thread per accepted connection, all sharing the SubfileStore
// (kernel pread/pwrite make fragment I/O thread-safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/connection.h"
#include "net/socket.h"
#include "server/subfile_store.h"

namespace dpfs::server {

struct ServerOptions {
  std::filesystem::path root_dir;  // subfile storage root
  std::uint16_t port = 0;          // 0 = ephemeral
  /// Concurrent session cap; sessions beyond it get a "server busy" error
  /// reply and are dropped, and the client "has to try again later" (§4.2).
  /// 0 = unlimited.
  std::size_t max_sessions = 0;
};

/// Monotonic counters exposed for tests and the shell's `df`.
struct ServerStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> bytes_read{0};     // payload bytes served
  std::atomic<std::uint64_t> bytes_written{0};  // payload bytes stored
  std::atomic<std::uint64_t> sessions_accepted{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> sessions_rejected_busy{0};
};

class IoServer {
 public:
  /// Binds, starts the accept loop, and returns a running server.
  static Result<std::unique_ptr<IoServer>> Start(ServerOptions options);

  ~IoServer();
  IoServer(const IoServer&) = delete;
  IoServer& operator=(const IoServer&) = delete;

  [[nodiscard]] net::Endpoint endpoint() const noexcept { return endpoint_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SubfileStore& store() noexcept { return store_; }

  /// Stops accepting, unblocks in-flight sessions, joins all threads.
  /// Idempotent.
  void Stop();

 private:
  IoServer(ServerOptions options, net::TcpListener listener);

  void AcceptLoop();
  void Session(net::TcpSocket socket);
  /// Decodes one request frame, counts/times it per opcode, and dispatches.
  Bytes HandleRequest(ByteSpan frame);
  /// The per-opcode service switch; returns the reply payload.
  Bytes Dispatch(net::MessageType type, BinaryReader& reader);

  ServerOptions options_;
  SubfileStore store_;
  net::TcpListener listener_;
  net::Endpoint endpoint_;
  ServerStats stats_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_sessions_{0};
  std::thread accept_thread_;
  Mutex sessions_mu_;
  std::vector<std::thread> sessions_ DPFS_GUARDED_BY(sessions_mu_);
  std::vector<int> session_fds_
      DPFS_GUARDED_BY(sessions_mu_);  // for unblocking on Stop
};

}  // namespace dpfs::server
