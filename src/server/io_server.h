// The DPFS I/O server (§2): accepts client connections over TCP and services
// brick read/write requests against its local subfile store.
//
// Concurrency model follows the paper: the server handles concurrent client
// requests "by spawning multiple processes or threads to handle them" — here
// one session thread per accepted connection, all sharing the SubfileStore
// (kernel pread/pwrite make fragment I/O thread-safe).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/connection.h"
#include "net/socket.h"
#include "server/subfile_store.h"

namespace dpfs::server {

class EventLoop;
class MetricsHttpServer;

/// Connection-handling engine. The paper's model (one thread per accepted
/// connection, §2) is the default; the epoll reactor with request batching
/// is the opt-in extension (docs/ASYNC_SERVER.md).
enum class ServerEngine : std::uint8_t {
  kThreadPerConnection,
  kEventLoop,
};

/// DPFS_SERVER_ENGINE=thread|event forces every server in the process
/// (I/O and metadata alike) onto one engine — how CI runs the full suite
/// against the reactor.
ServerEngine ApplyEngineOverride(ServerEngine configured);

struct ServerOptions {
  std::filesystem::path root_dir;  // subfile storage root
  std::uint16_t port = 0;          // 0 = ephemeral
  /// Concurrent session cap; sessions beyond it get a "server busy" error
  /// reply and are dropped, and the client "has to try again later" (§4.2).
  /// 0 = unlimited.
  std::size_t max_sessions = 0;
  /// Engine selection; the DPFS_SERVER_ENGINE env var ("thread" | "event")
  /// overrides it process-wide so the whole test suite can be forced onto
  /// either engine without code changes.
  ServerEngine engine = ServerEngine::kThreadPerConnection;
  /// > 0: a background thread writes the process-wide metrics text snapshot
  /// to `metrics_dump_path` every interval (atomic tmp+rename), so long
  /// runs are observable without a DPFS client (docs/OBSERVABILITY.md).
  std::chrono::milliseconds metrics_dump_interval{0};
  /// Snapshot target; empty = root_dir / "metrics.txt".
  std::filesystem::path metrics_dump_path;
  /// != 0: also serve the metrics snapshot over plain HTTP on this port
  /// (`GET /metrics`, server/metrics_http.h) so external scrapers can pull
  /// without speaking the DPFS protocol. 0 = no HTTP endpoint. Use
  /// kEphemeralMetricsPort to bind an ephemeral port (tests).
  std::uint16_t metrics_port = 0;
};

/// Sentinel for ServerOptions/MetadOptions::metrics_port: start the HTTP
/// endpoint on an ephemeral port (query it via metrics_http_port()).
inline constexpr std::uint16_t kEphemeralMetricsPort = 0xffff;

/// Monotonic counters exposed for tests and the shell's `df`.
struct ServerStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> bytes_read{0};     // payload bytes served
  std::atomic<std::uint64_t> bytes_written{0};  // payload bytes stored
  std::atomic<std::uint64_t> sessions_accepted{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> sessions_rejected_busy{0};
};

class IoServer {
 public:
  /// Binds, starts the accept loop, and returns a running server.
  static Result<std::unique_ptr<IoServer>> Start(ServerOptions options);

  ~IoServer();
  IoServer(const IoServer&) = delete;
  IoServer& operator=(const IoServer&) = delete;

  [[nodiscard]] net::Endpoint endpoint() const noexcept { return endpoint_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SubfileStore& store() noexcept { return store_; }
  /// The engine actually running (options + DPFS_SERVER_ENGINE override).
  [[nodiscard]] ServerEngine engine() const noexcept {
    return options_.engine;
  }
  /// Bound HTTP scrape port (metrics_port != 0 only); 0 when disabled.
  [[nodiscard]] std::uint16_t metrics_http_port() const noexcept;

  /// Stops accepting, unblocks in-flight sessions, joins all threads.
  /// Idempotent.
  void Stop();

 private:
  IoServer(ServerOptions options, net::TcpListener listener);

  void AcceptLoop();
  void Session(net::TcpSocket socket);
  /// Decodes one request frame, counts/times it per opcode, and dispatches.
  Bytes HandleRequest(ByteSpan frame);
  /// The per-opcode service switch; returns the reply payload.
  Bytes Dispatch(net::MessageType type, BinaryReader& reader);
  /// kShutdown's engine-appropriate "stop taking connections" signal.
  void StopAcceptingAsync();
  void MetricsDumpLoop();

  ServerOptions options_;
  SubfileStore store_;
  net::TcpListener listener_;
  net::Endpoint endpoint_;
  ServerStats stats_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_sessions_{0};
  std::thread accept_thread_;
  Mutex sessions_mu_;
  std::vector<std::thread> sessions_ DPFS_GUARDED_BY(sessions_mu_);
  std::vector<int> session_fds_
      DPFS_GUARDED_BY(sessions_mu_);  // for unblocking on Stop

  std::unique_ptr<EventLoop> event_loop_;  // engine == kEventLoop only

  std::thread dump_thread_;  // metrics_dump_interval > 0 only
  Mutex dump_mu_;
  CondVar dump_cv_;
  bool dump_stop_ DPFS_GUARDED_BY(dump_mu_) = false;

  std::unique_ptr<MetricsHttpServer> metrics_http_;  // metrics_port != 0 only
};

}  // namespace dpfs::server
