// Subfile storage on the server's local file system.
//
// DPFS is deliberately layered on the storage node's local file system (§2
// footnote: "DPFS is built on top of the local file system ... and can take
// advantage of I/O optimizations such as caching and prefetching"). A
// subfile named "/home/user/data.dpfs" maps to <root>/home/user/data.dpfs;
// brick slots are addressed by (offset, length) fragments. Unwritten slots
// are holes: reads past EOF return zeroes, matching sparse local files.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/messages.h"
#include "server/fd_cache.h"

namespace dpfs::server {

class SubfileStore {
 public:
  explicit SubfileStore(std::filesystem::path root) : root_(std::move(root)) {}

  /// Reads every fragment, concatenated in order. Bytes past EOF are zero.
  Result<Bytes> ReadFragments(const std::string& subfile,
                              const std::vector<net::ReadFragment>& fragments);

  /// Writes every fragment at its offset, creating the subfile (and parent
  /// directories) as needed. `sync` fsyncs before returning.
  Status WriteFragments(const std::string& subfile,
                        const std::vector<net::WriteFragment>& fragments,
                        bool sync);

  Result<net::StatReply> Stat(const std::string& subfile);
  Status Delete(const std::string& subfile);
  Status Truncate(const std::string& subfile, std::uint64_t size);
  /// Atomic local rename (creates the destination's parents). kNotFound if
  /// the source subfile does not exist.
  Status Rename(const std::string& from, const std::string& to);

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

  /// Total bytes stored under the root (shell `df`).
  Result<std::uint64_t> TotalBytesStored() const;

  /// All subfiles under the root with their sizes, names normalized to
  /// DPFS form ("/dir/file"), sorted — fsck's ground truth.
  Result<std::vector<net::SubfileInfo>> ListSubfiles() const;

  [[nodiscard]] const FdCache& fd_cache() const noexcept { return fd_cache_; }

 private:
  /// Maps a subfile name to a local path, rejecting escapes from the root.
  Result<std::filesystem::path> ResolvePath(const std::string& subfile) const;

  std::filesystem::path root_;
  FdCache fd_cache_;
};

}  // namespace dpfs::server
