// Event-driven I/O server engine: an epoll reactor with nonblocking
// per-connection state machines and server-side request batching.
//
// The paper's server "spawn[s] multiple processes or threads" per client;
// that model caps sessions at the thread budget and pays a stack + context
// switch per connection. This engine is the opt-in alternative
// (ServerOptions::engine = ServerEngine::kEventLoop): one thread multiplexes
// every connection through epoll, frames are decoded incrementally as bytes
// arrive (net::FrameDecoder), replies queue on per-connection write buffers
// with backpressure, and all requests drained from a connection in one wake
// are serviced as a batch — carrying the paper's §4 request-combination idea
// into the server itself (adjacent bricks coalesce into single store ops).
// Design notes and batching rules: docs/ASYNC_SERVER.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/messages.h"
#include "net/socket.h"

namespace dpfs::server {

struct ServerStats;  // io_server.h; the engines share one counter block

/// Merges runs of fragments that are adjacent *in request order*
/// (fragment[i] ends exactly where fragment[i+1] begins). The concatenated
/// reply bytes are unchanged by construction, so this is safe on any read
/// request; the store then pays one pread per run instead of one per brick.
/// A combined §4.2 request for consecutive bricks of a subfile collapses to
/// a single fragment.
std::vector<net::ReadFragment> CoalesceAdjacentReads(
    std::vector<net::ReadFragment> fragments);

/// Write-side twin: adjacent-in-order write fragments merge into one
/// contiguous fragment (one pwrite). Overlapping or out-of-order fragments
/// are never merged, preserving last-writer-wins byte semantics exactly.
std::vector<net::WriteFragment> CoalesceAdjacentWrites(
    std::vector<net::WriteFragment> fragments);

/// The epoll reactor. Owns the listener, every accepted connection, and one
/// loop thread. IoServer wires it up in Start() and supplies the request
/// handler (the same HandleRequest both engines share, so opcode dispatch,
/// per-opcode metrics, and failpoints behave identically).
class EventLoop {
 public:
  struct Options {
    /// Concurrent session cap; connections beyond it get one "server busy"
    /// reply and are dropped, exactly like the thread engine (§4.2).
    std::size_t max_sessions = 0;
    /// Per-connection reply-backlog bytes beyond which the loop stops
    /// reading that connection (write backpressure): a slow reader cannot
    /// balloon server memory. Reading resumes once the backlog drains.
    std::size_t max_write_backlog = 4u << 20;
    /// Failpoint site checked between servicing a request and queueing its
    /// reply (docs/FAULT_INJECTION.md). The I/O server keeps the default;
    /// the metadata server passes "metad.reply" so chaos tests target one
    /// service without disturbing the other.
    std::string reply_failpoint = "server.before_reply";
  };

  /// Services one decoded request frame, returns the encoded reply payload.
  using Handler = std::function<Bytes(ByteSpan)>;

  /// Takes ownership of a bound listener and starts the loop thread.
  static Result<std::unique_ptr<EventLoop>> Start(net::TcpListener listener,
                                                  Handler handler,
                                                  ServerStats* stats,
                                                  Options options);

  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Stops accepting, flushes pending replies (bounded drain), closes every
  /// connection, and joins the loop thread. Idempotent, callable from any
  /// thread except the loop thread itself.
  void Stop();

  /// Async stop: signal only, no join. The kShutdown opcode calls this from
  /// inside the handler (i.e. on the loop thread), where joining would
  /// deadlock; the queued shutdown reply is still flushed during drain.
  void SignalStop();

 private:
  /// Per-connection nonblocking state machine (docs/ASYNC_SERVER.md).
  struct Conn {
    net::TcpSocket socket;
    net::FrameDecoder decoder;
    Bytes out;                // encoded reply bytes not yet on the wire
    std::size_t out_off = 0;  // prefix of `out` already sent
    std::uint32_t interest = 0;      // epoll events currently registered
    bool paused_read = false;   // EPOLLIN suppressed (backpressure / drain)
    bool reject_busy = false;   // over the session cap: busy-reply and drop
    bool close_after_flush = false;  // busy reject or shutdown drain
    bool counted_inflight = false;   // io_server.inflight_sessions held
  };

  EventLoop(net::TcpListener listener, Handler handler, ServerStats* stats,
            Options options);

  void Run();
  void HandleAccept();
  void HandleReadable(int fd);
  void HandleWritable(int fd);
  /// Drains complete frames from `conn`, services them as one batch, and
  /// queues replies. Returns false if the connection must close.
  bool ServiceBatch(int fd, Conn& conn);
  /// Pushes queued bytes to the socket; manages EPOLLOUT registration.
  /// Returns false if the connection died mid-send.
  bool Flush(int fd, Conn& conn);
  void UpdateInterest(int fd, Conn& conn);
  void CloseConn(int fd);
  void BeginDrain();

  net::TcpListener listener_;
  Handler handler_;
  ServerStats* stats_;
  Options options_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop()/SignalStop() wake the loop
  std::atomic<bool> stopping_{false};
  // Everything below is touched by the loop thread only.
  bool draining_ = false;
  std::map<int, Conn> conns_;
  std::size_t serving_ = 0;  // conns counted against max_sessions
  std::thread thread_;
};

}  // namespace dpfs::server
