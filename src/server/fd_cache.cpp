#include "server/fd_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <vector>

#include "common/metrics.h"

namespace dpfs::server {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
struct CacheMetrics {
  metrics::Counter& hits = metrics::GetCounter("fd_cache.hits");
  metrics::Counter& misses = metrics::GetCounter("fd_cache.misses");
  metrics::Counter& evictions = metrics::GetCounter("fd_cache.evictions");
  metrics::Gauge& open_fds = metrics::GetGauge("fd_cache.open_fds");
};
CacheMetrics& Metrics() {
  static CacheMetrics m;
  return m;
}
}  // namespace

SharedFd::~SharedFd() {
  if (fd_ >= 0) ::close(fd_);
}

Result<SharedFdPtr> FdCache::Acquire(const std::string& path, bool create) {
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(path);
    if (it != entries_.end()) {
      ++hits_;
      Metrics().hits.Add();
      TouchLocked(it->second, path);
      return it->second.fd;
    }
    ++misses_;
    Metrics().misses.Add();
  }

  // Open outside the lock; opening is the slow part.
  if (create) {
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec) {
      return IoError("create subfile dirs for '" + path + "': " +
                     ec.message());
    }
  }
  const int flags = O_RDWR | (create ? O_CREAT : 0);
  const int raw = ::open(path.c_str(), flags, 0644);
  if (raw < 0) {
    if (errno == ENOENT && !create) {
      return NotFoundError("subfile '" + path + "' does not exist");
    }
    return IoErrnoError("open subfile", path);
  }
  SharedFdPtr fd = std::make_shared<SharedFd>(raw);

  // Evicted descriptors are parked here so their close() (a syscall, and
  // potentially the last ref) runs after the lock is released — nothing
  // serialized behind mu_ waits on the kernel.
  std::vector<SharedFdPtr> retired;
  {
    MutexLock lock(mu_);
    // Another thread may have raced us; keep the existing entry and let our
    // descriptor close when `fd` goes out of scope.
    const auto it = entries_.find(path);
    if (it != entries_.end()) {
      TouchLocked(it->second, path);
      return it->second.fd;
    }
    lru_.push_front(path);
    entries_[path] = Entry{fd, lru_.begin()};
    Metrics().open_fds.Add();
    while (entries_.size() > capacity_) {
      const std::string& victim = lru_.back();
      const auto victim_it = entries_.find(victim);
      retired.push_back(std::move(victim_it->second.fd));
      entries_.erase(victim_it);
      lru_.pop_back();
      Metrics().evictions.Add();
      Metrics().open_fds.Sub();
    }
  }
  return fd;
}

void FdCache::TouchLocked(Entry& entry, const std::string& path) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(path);
  entry.lru_pos = lru_.begin();
}

void FdCache::Invalidate(const std::string& path) {
  SharedFdPtr retired;  // closes after the lock is released
  MutexLock lock(mu_);
  const auto it = entries_.find(path);
  if (it != entries_.end()) {
    retired = std::move(it->second.fd);
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    Metrics().open_fds.Sub();
  }
}

void FdCache::Clear() {
  std::map<std::string, Entry> retired;  // closes unlocked
  MutexLock lock(mu_);
  Metrics().open_fds.Sub(static_cast<std::int64_t>(entries_.size()));
  retired.swap(entries_);
  lru_.clear();
}

std::size_t FdCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::uint64_t FdCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::uint64_t FdCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace dpfs::server
