#include "server/metrics_http.h"

#include <string>

#include "common/metrics.h"

namespace dpfs::server {

namespace {

// Process-wide scrape counter (docs/OBSERVABILITY.md): every HTTP request
// the endpoint answers, 200 and 404 alike.
metrics::Counter& ScrapeCounter() {
  static metrics::Counter& c = metrics::GetCounter("metrics_http.requests");
  return c;
}

// Reads until the end of the request headers ("\r\n\r\n"), a size cap, or
// peer close, and returns the request text. Scrapers send tiny requests, so
// the first recv almost always completes the read.
std::string ReadRequest(net::TcpSocket& socket) {
  std::string request;
  Bytes chunk(1024);
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const Result<net::TcpSocket::SomeIo> got =
        socket.RecvSome(MutableByteSpan(chunk));
    if (!got.ok() || got.value().closed || got.value().bytes == 0) break;
    request.append(reinterpret_cast<const char*>(chunk.data()),
                   got.value().bytes);
  }
  return request;
}

void WriteResponse(net::TcpSocket& socket, const std::string& status_line,
                   const std::string& body) {
  std::string response = "HTTP/1.0 " + status_line +
                         "\r\n"
                         "Content-Type: text/plain; charset=utf-8\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\n"
                         "Connection: close\r\n"
                         "\r\n" +
                         body;
  // dpfs:unchecked(a scraper that hangs up mid-response only hurts itself;
  // the serve loop moves on to the next connection either way)
  (void)socket.SendAll(
      ByteSpan(reinterpret_cast<const unsigned char*>(response.data()),
               response.size()));
}

}  // namespace

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    std::uint16_t port) {
  DPFS_ASSIGN_OR_RETURN(net::TcpListener listener, net::TcpListener::Bind(port));
  std::unique_ptr<MetricsHttpServer> server(
      new MetricsHttpServer(std::move(listener)));
  server->thread_ = std::thread([raw = server.get()] { raw->ServeLoop(); });
  return server;
}

MetricsHttpServer::MetricsHttpServer(net::TcpListener listener)
    : listener_(std::move(listener)), port_(listener_.port()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  listener_.Close();  // unblocks Accept()
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::ServeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<net::TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;  // transient accept failure; keep serving
    }
    net::TcpSocket socket = std::move(accepted).value();
    const std::string request = ReadRequest(socket);
    ScrapeCounter().Add();
    // Only the exact scrape route exists; "GET /metrics HTTP/1.x" is what
    // Prometheus and curl send. Anything else is a 404.
    if (request.rfind("GET /metrics ", 0) == 0 ||
        request.rfind("GET /metrics\r", 0) == 0) {
      WriteResponse(socket, "200 OK",
                    metrics::Registry::Global().TextSnapshot());
    } else {
      WriteResponse(socket, "404 Not Found", "only GET /metrics is served\n");
    }
  }
}

}  // namespace dpfs::server
