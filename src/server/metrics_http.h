// Plain-HTTP scrape endpoint for the process-wide metrics registry
// (docs/OBSERVABILITY.md "Scraping"): `GET /metrics` returns the
// Registry::Global() text snapshot, so Prometheus-style collectors and
// plain curl can observe a dpfsd / dpfs-metad without speaking the DPFS
// wire protocol. Enabled by ServerOptions::metrics_port /
// MetadOptions::metrics_port (the --metrics-port flag); off by default.
//
// Thread model: one dedicated blocking accept thread, one request per
// connection (HTTP/1.0 close semantics). This listener is deliberately NOT
// part of either server engine's reactor — a slow scraper must never sit
// on the data path — so none of the deep-lint reactor-root rules apply to
// it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/status.h"
#include "net/socket.h"

namespace dpfs::server {

class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  static Result<std::unique_ptr<MetricsHttpServer>> Start(std::uint16_t port);

  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins the serve thread. Idempotent.
  void Stop();

 private:
  explicit MetricsHttpServer(net::TcpListener listener);

  void ServeLoop();

  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace dpfs::server
