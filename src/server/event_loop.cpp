#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/metrics.h"
#include "server/io_server.h"

namespace dpfs::server {

namespace {

/// Reactor instruments (docs/OBSERVABILITY.md). inflight_sessions and
/// busy_rejects are shared with the thread engine by name.
struct LoopMetrics {
  metrics::Gauge& inflight =
      metrics::GetGauge("io_server.inflight_sessions");
  metrics::Histogram& batch_size =
      metrics::GetHistogram("io_server.batch_size");
  metrics::Counter& epoll_wake = metrics::GetCounter("io_server.epoll_wake");
  metrics::Counter& busy_rejects =
      metrics::GetCounter("io_server.busy_rejects");
};
LoopMetrics& Metrics() {
  static LoopMetrics m;
  return m;
}

/// Per-RecvSome scratch size; a wake drains at most kMaxReadPerWake bytes
/// from one connection before servicing, so one firehose client cannot
/// monopolize the loop (level-triggered epoll re-arms immediately).
constexpr std::size_t kReadChunk = 64u << 10;
constexpr std::size_t kMaxReadPerWake = 1u << 20;

/// How long Stop()/kShutdown waits for queued replies to reach slow readers
/// before closing their connections anyway.
constexpr std::chrono::milliseconds kDrainBudget{500};

}  // namespace

std::vector<net::ReadFragment> CoalesceAdjacentReads(
    std::vector<net::ReadFragment> fragments) {
  std::vector<net::ReadFragment> merged;
  merged.reserve(fragments.size());
  for (const net::ReadFragment& fragment : fragments) {
    if (!merged.empty() &&
        merged.back().length <= UINT64_MAX - merged.back().offset &&
        merged.back().offset + merged.back().length == fragment.offset) {
      merged.back().length += fragment.length;
    } else {
      merged.push_back(fragment);
    }
  }
  return merged;
}

std::vector<net::WriteFragment> CoalesceAdjacentWrites(
    std::vector<net::WriteFragment> fragments) {
  std::vector<net::WriteFragment> merged;
  merged.reserve(fragments.size());
  for (net::WriteFragment& fragment : fragments) {
    if (!merged.empty() &&
        merged.back().data.size() <= UINT64_MAX - merged.back().offset &&
        merged.back().offset + merged.back().data.size() == fragment.offset) {
      merged.back().data.insert(merged.back().data.end(),
                                fragment.data.begin(), fragment.data.end());
    } else {
      merged.push_back(std::move(fragment));
    }
  }
  return merged;
}

EventLoop::EventLoop(net::TcpListener listener, Handler handler,
                     ServerStats* stats, Options options)
    : listener_(std::move(listener)),
      handler_(std::move(handler)),
      stats_(stats),
      options_(options) {}

Result<std::unique_ptr<EventLoop>> EventLoop::Start(net::TcpListener listener,
                                                    Handler handler,
                                                    ServerStats* stats,
                                                    Options options) {
  DPFS_RETURN_IF_ERROR(listener.SetNonBlocking());
  std::unique_ptr<EventLoop> loop(new EventLoop(
      std::move(listener), std::move(handler), stats, options));
  loop->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (loop->epoll_fd_ < 0) return IoErrnoError("epoll_create1", "event_loop");
  loop->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (loop->wake_fd_ < 0) return IoErrnoError("eventfd", "event_loop");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = loop->listener_.fd();
  if (::epoll_ctl(loop->epoll_fd_, EPOLL_CTL_ADD, loop->listener_.fd(),
                  &ev) != 0) {
    return IoErrnoError("epoll_ctl add listener", "event_loop");
  }
  ev.data.fd = loop->wake_fd_;
  if (::epoll_ctl(loop->epoll_fd_, EPOLL_CTL_ADD, loop->wake_fd_, &ev) != 0) {
    return IoErrnoError("epoll_ctl add eventfd", "event_loop");
  }
  loop->thread_ = std::thread([raw = loop.get()] { raw->Run(); });
  return loop;
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::SignalStop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) ::eventfd_write(wake_fd_, 1);
}

void EventLoop::Stop() {
  SignalStop();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Run() {
  const int listen_fd = listener_.fd();
  std::chrono::steady_clock::time_point drain_deadline{};
  epoll_event events[64];
  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
      drain_deadline = std::chrono::steady_clock::now() + kDrainBudget;
    }
    int timeout_ms = -1;
    if (draining_) {
      if (conns_.empty()) break;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              drain_deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) break;
      timeout_ms = static_cast<int>(std::min<long long>(remaining, 50));
    }
    const int n = ::epoll_wait(epoll_fd_, events, std::size(events),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      DPFS_LOG_WARN << "epoll_wait: " << std::strerror(errno);
      break;
    }
    Metrics().epoll_wake.Add();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        eventfd_t value = 0;
        ::eventfd_read(wake_fd_, &value);
        continue;
      }
      if (fd == listen_fd) {
        if (!draining_) HandleAccept();
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(fd);
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 &&
          conns_.count(fd) != 0) {
        HandleReadable(fd);
      }
    }
  }
  // Whatever survives the drain budget is cut off here.
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
  listener_.Close();
}

void EventLoop::BeginDrain() {
  draining_ = true;
  listener_.Close();  // the kernel drops it from the epoll set on close
  std::vector<int> done;
  for (auto& [fd, conn] : conns_) {
    conn.paused_read = true;
    conn.close_after_flush = true;
    if (conn.out_off == conn.out.size()) {
      done.push_back(fd);
    } else {
      UpdateInterest(fd, conn);
    }
  }
  for (const int fd : done) CloseConn(fd);
}

void EventLoop::HandleAccept() {
  for (;;) {
    Result<std::optional<net::TcpSocket>> accepted =
        listener_.AcceptNonBlocking();
    if (!accepted.ok()) return;  // listener torn down under us: stopping
    if (!accepted.value().has_value()) return;  // backlog drained
    net::TcpSocket socket = std::move(accepted.value().value());
    if (!socket.SetNonBlocking(true).ok()) continue;
    stats_->sessions_accepted.fetch_add(1, std::memory_order_relaxed);

    Conn conn;
    conn.reject_busy =
        options_.max_sessions > 0 && serving_ >= options_.max_sessions;
    if (!conn.reject_busy) {
      // Same §4.2 busy-storm hook as the thread engine's session entry.
      if (const auto fp = failpoint::Check("server.session");
          fp.has_value() && fp->action == failpoint::Action::kBusy) {
        conn.reject_busy = true;
      }
    }
    if (conn.reject_busy) {
      stats_->sessions_rejected_busy.fetch_add(1, std::memory_order_relaxed);
      Metrics().busy_rejects.Add();
    }

    const int fd = socket.fd();
    conn.socket = std::move(socket);
    conn.interest = EPOLLIN;
    epoll_event ev{};
    ev.events = conn.interest;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      DPFS_LOG_WARN << "epoll_ctl add conn: " << std::strerror(errno);
      continue;  // Conn destructor closes the socket
    }
    if (!conn.reject_busy) {
      conn.counted_inflight = true;
      ++serving_;
      Metrics().inflight.Add(1);
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void EventLoop::HandleReadable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.paused_read) return;  // stale level-triggered wake

  std::uint8_t chunk[kReadChunk];
  std::size_t total = 0;
  bool peer_closed = false;
  while (total < kMaxReadPerWake) {
    const Result<net::TcpSocket::SomeIo> got =
        conn.socket.RecvSome({chunk, sizeof(chunk)});
    if (!got.ok()) {
      // Mirror the thread engine: kUnavailable at a frame boundary is a
      // normal disconnect, anything else is an error.
      if (got.status().code() != StatusCode::kUnavailable ||
          conn.decoder.mid_frame()) {
        stats_->errors.fetch_add(1, std::memory_order_relaxed);
        DPFS_LOG_DEBUG << "event conn recv: " << got.status().ToString();
      }
      CloseConn(fd);
      return;
    }
    if (got.value().bytes > 0) {
      conn.decoder.Append({chunk, got.value().bytes});
      total += got.value().bytes;
    }
    if (got.value().closed) {
      peer_closed = true;
      break;
    }
    if (got.value().bytes == 0) break;  // would block
  }

  if (!ServiceBatch(fd, conn)) {
    CloseConn(fd);
    return;
  }
  if (peer_closed) {
    if (conn.decoder.mid_frame()) {
      // Truncated mid-message — the thread engine's kProtocolError case.
      stats_->errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (conn.out_off == conn.out.size()) {
      CloseConn(fd);
      return;
    }
    // Half-close: the peer may still be reading; flush replies, then close.
    conn.paused_read = true;
    conn.close_after_flush = true;
  }
  UpdateInterest(fd, conn);
}

bool EventLoop::ServiceBatch(int fd, Conn& conn) {
  std::size_t batch = 0;
  Bytes frame;
  for (;;) {
    const Result<bool> has_frame = conn.decoder.Next(frame);
    if (!has_frame.ok()) {
      // Oversize or corrupt frame poisons the stream; drop the connection
      // (the thread engine's RecvFrame error path).
      stats_->errors.fetch_add(1, std::memory_order_relaxed);
      DPFS_LOG_DEBUG << "event conn decode: "
                     << has_frame.status().ToString();
      return false;
    }
    if (!has_frame.value()) break;

    Bytes reply;
    if (conn.reject_busy) {
      // §4.2: answer the first request with "busy" so the client backs off
      // and retries, then drop the session (remaining frames unserviced).
      reply = net::EncodeReply(
          ResourceExhaustedError("server busy, retry later"), {});
      conn.paused_read = true;
      conn.close_after_flush = true;
    } else {
      reply = handler_(frame);
      ++batch;
      if (auto fp = failpoint::Check(options_.reply_failpoint.c_str())) {
        if (fp->action == failpoint::Action::kDisconnect) {
          stats_->errors.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        if (fp->action == failpoint::Action::kReturnError) {
          stats_->errors.fetch_add(1, std::memory_order_relaxed);
          reply = net::EncodeReply(fp->status, {});
        }
      }
    }
    const Result<Bytes> encoded = net::EncodeFrame(reply);
    if (!encoded.ok()) {
      stats_->errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    conn.out.insert(conn.out.end(), encoded.value().begin(),
                    encoded.value().end());
    if (conn.close_after_flush) break;
    if (stopping_.load(std::memory_order_acquire)) {
      // kShutdown just ran on this thread; finish its reply, service no
      // further frames (the session loop's stopping_ check).
      conn.paused_read = true;
      conn.close_after_flush = true;
      break;
    }
  }
  if (batch > 0) Metrics().batch_size.Observe(batch);
  if (!Flush(fd, conn)) return false;
  if (conn.close_after_flush && conn.out_off == conn.out.size()) {
    return false;  // busy reply / shutdown reply fully on the wire
  }
  if (!conn.close_after_flush) {
    // Write backpressure: stop reading while this peer's reply backlog is
    // over budget; HandleWritable resumes reads once it half-drains.
    conn.paused_read =
        conn.out.size() - conn.out_off > options_.max_write_backlog;
  }
  return true;
}

bool EventLoop::Flush(int fd, Conn& conn) {
  (void)fd;
  while (conn.out_off < conn.out.size()) {
    const Result<std::size_t> sent =
        conn.socket.SendSome(ByteSpan(conn.out).subspan(conn.out_off));
    if (!sent.ok()) {
      stats_->errors.fetch_add(1, std::memory_order_relaxed);
      DPFS_LOG_DEBUG << "event conn send: " << sent.status().ToString();
      return false;
    }
    if (sent.value() == 0) break;  // socket buffer full
    conn.out_off += sent.value();
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off >= (256u << 10)) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
  return true;
}

void EventLoop::HandleWritable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (!Flush(fd, conn)) {
    CloseConn(fd);
    return;
  }
  if (conn.out_off == conn.out.size() && conn.close_after_flush) {
    CloseConn(fd);
    return;
  }
  if (!conn.close_after_flush && conn.paused_read &&
      conn.out.size() - conn.out_off <= options_.max_write_backlog / 2) {
    conn.paused_read = false;  // half-drained: resume reads (hysteresis)
  }
  UpdateInterest(fd, conn);
}

void EventLoop::UpdateInterest(int fd, Conn& conn) {
  std::uint32_t want = 0;
  if (!conn.paused_read) want |= EPOLLIN;
  if (conn.out_off < conn.out.size()) want |= EPOLLOUT;
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) {
    conn.interest = want;
  }
}

void EventLoop::CloseConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Deregister only while the socket still owns the descriptor. A failpoint
  // (net.recv_some / net.send_some kDisconnect) may have closed it already —
  // the kernel dropped the epoll registration at close, and the fd number can
  // be reused by a concurrent thread, so epoll_ctl on it would race.
  if (it->second.socket.fd() >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  if (it->second.counted_inflight) {
    --serving_;
    Metrics().inflight.Sub(1);
  }
  conns_.erase(it);  // TcpSocket destructor closes the fd
}

}  // namespace dpfs::server
