// Deterministic fault injection (failpoints).
//
// A failpoint is a named site in production code where a test (or the
// DPFS_FAILPOINTS environment variable) can inject a programmed failure:
// an error return, a short read/write, a delay, a disconnect mid-frame, a
// torn WAL append, or a "server busy" rejection. Sites are compiled in
// permanently but cost a single relaxed atomic load while nothing is armed,
// so they are safe on hot paths.
//
// Site idiom:
//
//   if (auto fp = failpoint::Check("net.send_all")) {
//     switch (fp->action) { ... interpret per-site ... }
//   }
//
// Generic actions (kReturnError, kDelay) need no site cooperation beyond
// returning fp->status; transfer-shaping actions (kShortIo, kDisconnect,
// kTornWrite) use fp->arg as a byte count the site honors. The registry is
// process-global and thread-safe; tests arm failpoints programmatically and
// must DisarmAll() on teardown. See docs/FAULT_INJECTION.md for the site
// catalog and the DPFS_FAILPOINTS syntax.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace dpfs::failpoint {

enum class Action : std::uint8_t {
  kOff = 0,
  kReturnError,  // site returns `status`
  kShortIo,      // site transfers only `arg` bytes, then reports failure
  kDelay,        // handled inside Check: sleep `arg` ms, then continue
  kDisconnect,   // site sends/receives `arg` bytes, then severs the transport
  kTornWrite,    // site persists only the first `arg` bytes, then fails
  kBusy,         // server site replies "busy, retry later" and drops the session
};

/// What a site should do, armed under a failpoint name.
struct Spec {
  Action action = Action::kOff;
  /// Error code carried by `Hit::status` (kReturnError primarily; other
  /// actions get a per-action default when left at kOk).
  StatusCode code = StatusCode::kOk;
  std::string message;    // empty = "failpoint '<name>'"
  std::uint64_t arg = 0;  // bytes (kShortIo/kDisconnect/kTornWrite), ms (kDelay)
  int skip = 0;           // let the first N evaluations pass untouched
  int count = -1;         // fire at most N times after skip; -1 = unlimited
};

/// One triggered evaluation, as seen by the site.
struct Hit {
  Action action = Action::kOff;
  std::uint64_t arg = 0;
  Status status;  // pre-built error for the site to return (or adapt)
};

/// Arms (or re-arms) `name` with `spec`. Action kOff disarms.
void Arm(const std::string& name, Spec spec);

/// Parses and arms a config string:
///   name=action[:param][,skip=N][,count=M][;name2=...]
/// where action is one of off|error|short|delay|disconnect|torn|busy and
/// param is a status-code name for `error` (e.g. error:unavailable, alias
/// busy -> resource_exhausted) or a number for the byte/ms actions.
/// DPFS_FAILPOINTS is parsed through this at process start.
Status ArmFromString(const std::string& config);

/// Disarms `name`, keeping its hit counter readable until DisarmAll.
void Disarm(const std::string& name);

/// Disarms everything and resets all counters (test teardown).
void DisarmAll();

/// Times `name` actually fired (delays count; skipped evaluations do not).
std::uint64_t HitCount(const std::string& name);

namespace detail {
extern std::atomic<int> g_armed;  // number of armed failpoints, process-wide
std::optional<Hit> Evaluate(const char* name);
}  // namespace detail

/// Hot-path check: one relaxed atomic load when nothing is armed anywhere.
inline std::optional<Hit> Check(const char* name) {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0) {
    return std::nullopt;
  }
  return detail::Evaluate(name);
}

}  // namespace dpfs::failpoint

/// Returns from the enclosing function with the armed error when `name` is
/// armed with kReturnError (works for Status and Result<T> returns). Other
/// actions at the site are ignored by this macro.
#define DPFS_FAILPOINT_RETURN(name)                                        \
  do {                                                                     \
    if (auto dpfs_fp_hit_ = ::dpfs::failpoint::Check(name);                \
        dpfs_fp_hit_.has_value() &&                                        \
        dpfs_fp_hit_->action == ::dpfs::failpoint::Action::kReturnError) { \
      return dpfs_fp_hit_->status;                                         \
    }                                                                      \
  } while (false)
