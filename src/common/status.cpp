#include "common/status.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpfs {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kPermissionDenied: return "permission_denied";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kProtocolError: return "protocol_error";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

Status InvalidArgumentError(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status NotFoundError(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status AlreadyExistsError(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
Status PermissionDeniedError(std::string message) {
  return {StatusCode::kPermissionDenied, std::move(message)};
}
Status OutOfRangeError(std::string message) {
  return {StatusCode::kOutOfRange, std::move(message)};
}
Status UnimplementedError(std::string message) {
  return {StatusCode::kUnimplemented, std::move(message)};
}
Status InternalError(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}
Status UnavailableError(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}
Status DataLossError(std::string message) {
  return {StatusCode::kDataLoss, std::move(message)};
}
Status IoError(std::string message) {
  return {StatusCode::kIoError, std::move(message)};
}
Status ProtocolError(std::string message) {
  return {StatusCode::kProtocolError, std::move(message)};
}
Status AbortedError(std::string message) {
  return {StatusCode::kAborted, std::move(message)};
}
Status ResourceExhaustedError(std::string message) {
  return {StatusCode::kResourceExhausted, std::move(message)};
}

Status IoErrnoError(std::string_view op, std::string_view target) {
  const int saved_errno = errno;
  std::string message(op);
  message += " '";
  message += target;
  message += "': ";
  message += std::strerror(saved_errno);
  return IoError(std::move(message));
}

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: Result::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace dpfs
