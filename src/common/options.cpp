#include "common/options.h"

#include "common/strings.h"

namespace dpfs {

Result<Options> Options::Parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      opts.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      // "--" terminator: rest is positional.
      for (int j = i + 1; j < argc; ++j) opts.positional_.emplace_back(argv[j]);
      break;
    }
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      opts.flags_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      opts.flags_[std::string(arg)] = argv[++i];
    } else {
      opts.flags_[std::string(arg)] = "true";
    }
  }
  return opts;
}

bool Options::Has(const std::string& name) const {
  return flags_.contains(name);
}

std::string Options::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Options::GetInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto parsed = ParseInt64(it->second);
  return parsed.ok() ? parsed.value() : fallback;
}

double Options::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto parsed = ParseDouble(it->second);
  return parsed.ok() ? parsed.value() : fallback;
}

bool Options::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string lower = ToLower(it->second);
  return lower == "true" || lower == "1" || lower == "yes" || lower == "on";
}

}  // namespace dpfs
