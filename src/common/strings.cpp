#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace dpfs {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    std::size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) noexcept {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<std::int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return InvalidArgumentError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  // std::from_chars<double> is not universally available; snprintf-parse.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || buf.empty()) {
    return InvalidArgumentError("not a number: '" + buf + "'");
  }
  return value;
}

std::string FormatByteSize(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

Result<std::string> NormalizePath(std::string_view path) {
  std::vector<std::string> stack;
  for (const std::string& part : SplitString(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (stack.empty()) {
        return InvalidArgumentError("path escapes root: '" +
                                    std::string(path) + "'");
      }
      stack.pop_back();
      continue;
    }
    stack.push_back(part);
  }
  if (stack.empty()) return std::string("/");
  std::string out;
  for (const std::string& part : stack) {
    out += '/';
    out += part;
  }
  return out;
}

std::pair<std::string, std::string> SplitPath(
    std::string_view normalized_path) {
  if (normalized_path == "/" || normalized_path.empty()) return {"/", ""};
  const std::size_t pos = normalized_path.rfind('/');
  std::string parent(normalized_path.substr(0, pos));
  if (parent.empty()) parent = "/";
  return {parent, std::string(normalized_path.substr(pos + 1))};
}

}  // namespace dpfs
