#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_annotations.h"

namespace dpfs::failpoint {

namespace detail {
std::atomic<int> g_armed{0};
}  // namespace detail

namespace {

struct State {
  Spec spec;
  std::uint64_t hits = 0;
};

/// Process-global armed-failpoint registry. Leaked (never destroyed) so
/// sites evaluated during static destruction stay safe.
struct Registry {
  Mutex mu;
  std::map<std::string, State> states DPFS_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Default error code when the spec leaves `code` at kOk.
StatusCode DefaultCode(Action action) {
  switch (action) {
    case Action::kReturnError:
      return StatusCode::kIoError;
    case Action::kShortIo:
    case Action::kTornWrite:
      return StatusCode::kIoError;
    case Action::kDisconnect:
      return StatusCode::kUnavailable;
    case Action::kBusy:
      return StatusCode::kResourceExhausted;
    case Action::kOff:
    case Action::kDelay:
      break;
  }
  return StatusCode::kInternal;
}

Result<StatusCode> ParseStatusCode(std::string_view name) {
  if (EqualsIgnoreCase(name, "busy")) return StatusCode::kResourceExhausted;
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted); ++c) {
    const auto code = static_cast<StatusCode>(c);
    if (EqualsIgnoreCase(name, StatusCodeName(code))) return code;
  }
  return InvalidArgumentError("failpoint: unknown status code '" +
                              std::string(name) + "'");
}

Result<Action> ParseAction(std::string_view name) {
  if (EqualsIgnoreCase(name, "off")) return Action::kOff;
  if (EqualsIgnoreCase(name, "error")) return Action::kReturnError;
  if (EqualsIgnoreCase(name, "short")) return Action::kShortIo;
  if (EqualsIgnoreCase(name, "delay")) return Action::kDelay;
  if (EqualsIgnoreCase(name, "disconnect")) return Action::kDisconnect;
  if (EqualsIgnoreCase(name, "torn")) return Action::kTornWrite;
  if (EqualsIgnoreCase(name, "busy")) return Action::kBusy;
  return InvalidArgumentError("failpoint: unknown action '" +
                              std::string(name) + "'");
}

Result<int> ParseInt(std::string_view text, std::string_view what) {
  int value = 0;
  bool any = false;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("failpoint: bad " + std::string(what) +
                                  " '" + std::string(text) + "'");
    }
    value = value * 10 + (c - '0');
    any = true;
  }
  if (!any) {
    return InvalidArgumentError("failpoint: empty " + std::string(what));
  }
  return value;
}

/// Parses one "name=action[:param][,skip=N][,count=M]" clause.
Status ArmOneClause(std::string_view clause) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return InvalidArgumentError("failpoint: clause '" + std::string(clause) +
                                "' is not name=action");
  }
  const std::string name(TrimWhitespace(clause.substr(0, eq)));
  Spec spec;
  std::string_view rest = clause.substr(eq + 1);
  bool first = true;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view field = TrimWhitespace(rest.substr(0, comma));
    rest = (comma == std::string_view::npos) ? std::string_view{}
                                             : rest.substr(comma + 1);
    if (first) {
      first = false;
      const std::size_t colon = field.find(':');
      DPFS_ASSIGN_OR_RETURN(
          spec.action, ParseAction(field.substr(0, colon)));
      if (colon != std::string_view::npos) {
        const std::string_view param = field.substr(colon + 1);
        if (spec.action == Action::kReturnError) {
          DPFS_ASSIGN_OR_RETURN(spec.code, ParseStatusCode(param));
        } else {
          DPFS_ASSIGN_OR_RETURN(const int arg, ParseInt(param, "argument"));
          spec.arg = static_cast<std::uint64_t>(arg);
        }
      }
      continue;
    }
    if (field.substr(0, 5) == "skip=") {
      DPFS_ASSIGN_OR_RETURN(spec.skip, ParseInt(field.substr(5), "skip"));
    } else if (field.substr(0, 6) == "count=") {
      DPFS_ASSIGN_OR_RETURN(spec.count, ParseInt(field.substr(6), "count"));
    } else {
      return InvalidArgumentError("failpoint: unknown field '" +
                                  std::string(field) + "'");
    }
  }
  if (first) {
    return InvalidArgumentError("failpoint: clause '" + std::string(clause) +
                                "' has no action");
  }
  Arm(name, std::move(spec));
  return Status::Ok();
}

/// DPFS_FAILPOINTS is parsed once at process start, so env-armed points are
/// live before any I/O happens (malformed clauses abort loudly: a chaos run
/// with a typo'd schedule must not silently test nothing).
const bool g_env_parsed = [] {
  if (const char* env = std::getenv("DPFS_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    const Status armed = ArmFromString(env);
    if (!armed.ok()) {
      std::fprintf(stderr, "DPFS_FAILPOINTS: %s\n", armed.ToString().c_str());
      std::abort();
    }
  }
  return true;
}();

}  // namespace

void Arm(const std::string& name, Spec spec) {
  if (spec.code == StatusCode::kOk) spec.code = DefaultCode(spec.action);
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  State& state = registry.states[name];
  const bool was_armed = state.spec.action != Action::kOff;
  const bool now_armed = spec.action != Action::kOff;
  state.spec = std::move(spec);
  if (was_armed != now_armed) {
    detail::g_armed.fetch_add(now_armed ? 1 : -1, std::memory_order_relaxed);
  }
}

Status ArmFromString(const std::string& config) {
  std::string_view rest = config;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view clause = TrimWhitespace(rest.substr(0, semi));
    rest = (semi == std::string_view::npos) ? std::string_view{}
                                            : rest.substr(semi + 1);
    if (clause.empty()) continue;
    DPFS_RETURN_IF_ERROR(ArmOneClause(clause));
  }
  return Status::Ok();
}

void Disarm(const std::string& name) {
  Spec off;
  off.action = Action::kOff;
  Arm(name, std::move(off));
}

void DisarmAll() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  int armed = 0;
  for (const auto& [name, state] : registry.states) {
    if (state.spec.action != Action::kOff) ++armed;
  }
  registry.states.clear();
  detail::g_armed.fetch_sub(armed, std::memory_order_relaxed);
}

std::uint64_t HitCount(const std::string& name) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  const auto it = registry.states.find(name);
  return it == registry.states.end() ? 0 : it->second.hits;
}

namespace detail {

std::optional<Hit> Evaluate(const char* name) {
  Hit hit;
  {
    Registry& registry = GlobalRegistry();
    MutexLock lock(registry.mu);
    const auto it = registry.states.find(name);
    if (it == registry.states.end()) return std::nullopt;
    State& state = it->second;
    if (state.spec.action == Action::kOff) return std::nullopt;
    if (state.spec.skip > 0) {
      --state.spec.skip;
      return std::nullopt;
    }
    ++state.hits;
    hit.action = state.spec.action;
    hit.arg = state.spec.arg;
    hit.status = Status(
        state.spec.code,
        state.spec.message.empty() ? "failpoint '" + std::string(name) + "'"
                                   : state.spec.message);
    if (state.spec.count > 0 && --state.spec.count == 0) {
      state.spec.action = Action::kOff;
      g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Delays complete inside Check so sites need no cooperation — and the
  // sleep happens outside the registry lock.
  if (hit.action == Action::kDelay) {
    // dpfs:blocking-ok(the injected delay *is* the programmed fault; an
    // unarmed site never reaches this branch)
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    return std::nullopt;
  }
  return hit;
}

}  // namespace detail

}  // namespace dpfs::failpoint
