#include "common/thread_pool.h"

#include <algorithm>

#include "common/metrics.h"

namespace dpfs {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
// queue_depth aggregates across every pool in the process (server request
// pools + the client dispatch pool).
struct PoolMetrics {
  metrics::Counter& submitted =
      metrics::GetCounter("thread_pool.tasks_submitted");
  metrics::Counter& completed =
      metrics::GetCounter("thread_pool.tasks_completed");
  metrics::Gauge& queue_depth = metrics::GetGauge("thread_pool.queue_depth");
  metrics::Histogram& queue_wait_us =
      metrics::GetHistogram("thread_pool.queue_wait_us");
  metrics::Histogram& task_us = metrics::GetHistogram("thread_pool.task_us");
};
PoolMetrics& Metrics() {
  static PoolMetrics m;
  return m;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Metrics().submitted.Add();
  Metrics().queue_depth.Add();
  {
    MutexLock lock(mu_);
    queue_.push_back(Task{std::move(task), std::chrono::steady_clock::now()});
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    Metrics().queue_depth.Sub();
    Metrics().queue_wait_us.Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - task.enqueued)
            .count()));
    {
      metrics::ScopedTimer timer(Metrics().task_us);
      task.fn();
    }
    Metrics().completed.Add();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  Mutex mu;
  CondVar cv;
  std::size_t remaining = count;
  if (count == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    pool.Submit([&, i] {
      fn(i);
      MutexLock lock(mu);
      if (--remaining == 0) cv.NotifyOne();
    });
  }
  MutexLock lock(mu);
  while (remaining != 0) cv.Wait(mu);
}

}  // namespace dpfs
