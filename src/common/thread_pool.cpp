#include "common/thread_pool.h"

#include <algorithm>

namespace dpfs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = count;
  if (count == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    pool.Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace dpfs
