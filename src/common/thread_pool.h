// Fixed-size worker pool.
//
// DPFS uses one pool per server for request handling (the paper's "spawning
// multiple processes or threads") and one in the client to issue per-server
// requests in parallel. Tasks are type-erased std::function<void()>; use
// ParallelFor for bulk fan-out with automatic joining.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dpfs {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks. Must not be called after the destructor
  /// has begun.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  // Enqueue timestamp rides with the task so queue-wait latency is
  // observable (thread_pool.queue_wait_us, docs/OBSERVABILITY.md).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };
  void WorkerLoop();

  Mutex mu_;
  CondVar work_cv_;   // signals workers: new task or shutdown
  CondVar idle_cv_;   // signals Wait(): everything drained
  std::deque<Task> queue_ DPFS_GUARDED_BY(mu_);
  std::size_t in_flight_ DPFS_GUARDED_BY(mu_) = 0;
  bool shutdown_ DPFS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written only before workers start
};

/// Runs fn(i) for i in [0, count) across `pool`, blocking until all complete.
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace dpfs
