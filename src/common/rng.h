// Deterministic PRNG (SplitMix64) for workload generators and tests.
//
// std::mt19937 output differs in distribution helpers across standard
// libraries; benches need bit-for-bit reproducible workloads, so DPFS ships
// its own tiny generator and distribution helpers.
#pragma once

#include <cstdint>

namespace dpfs {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t NextU64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // modulo bias for our bounds (<< 2^64) is negligible for workloads.
    return NextU64() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace dpfs
