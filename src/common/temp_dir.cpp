#include "common/temp_dir.h"

#include <atomic>
#include <chrono>
#include <system_error>

namespace dpfs {
namespace {

std::atomic<std::uint64_t> g_counter{0};

}  // namespace

Result<TempDir> TempDir::Create(std::string_view prefix) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::temp_directory_path(ec);
  if (ec) return IoError("temp_directory_path: " + ec.message());
  const auto nonce =
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      (g_counter.fetch_add(1, std::memory_order_relaxed) << 32);
  const fs::path dir =
      root / (std::string(prefix) + "." + std::to_string(nonce));
  if (!fs::create_directories(dir, ec) || ec) {
    return IoError("create temp dir '" + dir.string() + "': " + ec.message());
  }
  return TempDir(dir);
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() { Remove(); }

void TempDir::Remove() noexcept {
  if (path_.empty()) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
  path_.clear();
}

}  // namespace dpfs
