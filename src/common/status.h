// Error handling primitives for DPFS.
//
// DPFS never throws across public API boundaries: fallible operations return
// Status (no payload) or Result<T> (payload or error). Both carry a machine
// code plus a human-readable message chain, so a failure deep inside the
// metadata database or the wire protocol surfaces with full context.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dpfs {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,     // transient: server down, connection refused
  kDataLoss,        // checksum mismatch, torn write
  kIoError,         // local file system failure
  kProtocolError,   // malformed frame / message
  kAborted,         // transaction conflict
  kResourceExhausted,
};

/// Stable lowercase name for a status code ("ok", "not_found", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value without payload.
class [[nodiscard]] Status {
 public:
  /// Constructs OK.
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return {}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// Returns a copy of this status with `context + ": "` prefixed to the
  /// message, preserving the code. No-op on OK statuses.
  [[nodiscard]] Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Factory helpers mirroring the code enum.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status IoError(std::string message);
Status ProtocolError(std::string message);
Status AbortedError(std::string message);
Status ResourceExhaustedError(std::string message);

/// Builds an IoError from the current `errno`, e.g. IoErrnoError("open", path).
Status IoErrnoError(std::string_view op, std::string_view target);

/// A value of type T or an error Status. Accessing value() on an error
/// terminates (programming error), so callers must check ok() first or use
/// the DPFS_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : data_(Status(code, std::move(message))) {}

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  [[nodiscard]] const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;
  std::variant<T, Status> data_;
};

[[noreturn]] void DieOnBadResultAccess(const Status& status);

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) DieOnBadResultAccess(std::get<Status>(data_));
}

// Propagation macros (statement-expression free; portable C++20).
#define DPFS_RETURN_IF_ERROR(expr)                     \
  do {                                                 \
    ::dpfs::Status dpfs_status_ = (expr);              \
    if (!dpfs_status_.ok()) return dpfs_status_;       \
  } while (false)

#define DPFS_INTERNAL_CONCAT2(a, b) a##b
#define DPFS_INTERNAL_CONCAT(a, b) DPFS_INTERNAL_CONCAT2(a, b)

#define DPFS_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto DPFS_INTERNAL_CONCAT(dpfs_result_, __LINE__) = (expr);             \
  if (!DPFS_INTERNAL_CONCAT(dpfs_result_, __LINE__).ok())                 \
    return DPFS_INTERNAL_CONCAT(dpfs_result_, __LINE__).status();         \
  lhs = std::move(DPFS_INTERNAL_CONCAT(dpfs_result_, __LINE__)).value()

}  // namespace dpfs
