// Minimal leveled logger.
//
// DPFS servers and clients run many threads; log lines are formatted into a
// local buffer and emitted with one write so they never interleave. The
// global level defaults to kWarn so tests and benchmarks stay quiet; examples
// raise it to kInfo.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace dpfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets/gets the process-wide minimum level that is emitted.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {

bool LogEnabled(LogLevel level) noexcept;
void EmitLogLine(LogLevel level, std::string_view file, int line,
                 std::string_view message);

/// Accumulates one log statement; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) noexcept
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { EmitLogLine(level_, file_, line_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DPFS_LOG(level)                                            \
  if (!::dpfs::internal::LogEnabled(::dpfs::LogLevel::level)) {    \
  } else                                                           \
    ::dpfs::internal::LogLine(::dpfs::LogLevel::level, __FILE__, __LINE__)

#define DPFS_LOG_DEBUG DPFS_LOG(kDebug)
#define DPFS_LOG_INFO DPFS_LOG(kInfo)
#define DPFS_LOG_WARN DPFS_LOG(kWarn)
#define DPFS_LOG_ERROR DPFS_LOG(kError)

}  // namespace dpfs
