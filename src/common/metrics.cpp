#include "common/metrics.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace dpfs::metrics {

void Histogram::Observe(std::uint64_t value) noexcept {
  const int bucket = std::bit_width(value);  // 0 for value 0, else log2+1.
  buckets_[bucket < kNumBuckets ? bucket : kNumBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::GetSnapshot() const noexcept {
  Snapshot snap;
  std::uint64_t buckets[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;

  // Quantile = upper bound of the bucket containing the quantile rank,
  // clamped to the observed max. Bucket i (i>0) covers [2^(i-1), 2^i - 1].
  auto quantile = [&](double q) -> std::uint64_t {
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(snap.count - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (seen > rank) {
        const std::uint64_t upper =
            i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
        return upper < snap.max ? upper : snap.max;
      }
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

Registry& Registry::Global() {
  // Leaked: call sites cache instrument references in function-local
  // statics, which may be read by detached threads during shutdown.
  static Registry* global = new Registry();
  return *global;
}

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::TextSnapshot() const {
  // One "<sort-key>" -> "<rendered line>" pair per instrument, merged and
  // sorted by name so diffs between snapshots line up.
  std::vector<std::pair<std::string, std::string>> lines;
  {
    MutexLock lock(mu_);
    lines.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, counter] : counters_) {
      lines.emplace_back(name,
                         "counter " + name + " " +
                             std::to_string(counter->value()));
    }
    for (const auto& [name, gauge] : gauges_) {
      lines.emplace_back(
          name, "gauge " + name + " " + std::to_string(gauge->value()));
    }
    for (const auto& [name, histogram] : histograms_) {
      const Histogram::Snapshot s = histogram->GetSnapshot();
      std::ostringstream line;
      line << "histogram " << name << " count=" << s.count << " sum=" << s.sum
           << " p50=" << s.p50 << " p95=" << s.p95 << " p99=" << s.p99
           << " max=" << s.max;
      lines.emplace_back(name, line.str());
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dpfs::metrics
