// Lock-cheap metrics for every DPFS hot path.
//
// The paper evaluates DPFS only end-to-end (Figs. 11-14); this registry makes
// the *inside* of a run visible — cache hit rates, request-combination
// effectiveness, per-opcode service times, retry totals — so bench numbers
// and EXPERIMENTS.md claims are explainable, and subsequent perf PRs have
// something to report against. The full metric catalog lives in
// docs/OBSERVABILITY.md.
//
// Design:
//   * Three instrument kinds: Counter (monotonic), Gauge (up/down), and
//     Histogram (fixed power-of-two buckets with p50/p95/p99 estimates).
//     All updates are relaxed atomics — no lock on any hot path.
//   * Instruments live forever: Registry::Get*() interns by name and never
//     removes, so call sites cache the returned reference (typically in a
//     function-local static struct) and pay one map lookup per process.
//   * `Registry::Global()` is the process-wide registry every production
//     call site uses; tests construct their own Registry instances.
//   * `TextSnapshot()` renders one "<kind> <name> ..." line per instrument,
//     sorted by name — the exposition the benches print and the `kMetrics`
//     wire opcode returns (docs/WIRE_PROTOCOL.md).
//
// In-process clusters (LocalCluster, tests, benches) share one Global()
// registry across all servers and clients; in the multi-process deployment
// each process naturally exposes only its own numbers.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace dpfs::metrics {

/// Monotonic event count. Relaxed atomic increments; never decremented.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, cached bytes). May go up and down.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(std::int64_t delta = 1) noexcept {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket distribution. Bucket i holds values whose bit width is i
/// (i.e. value in [2^(i-1), 2^i - 1]; value 0 lands in bucket 0), so
/// Observe() is a bit_width plus one relaxed fetch_add. Quantiles are
/// estimated as the upper bound of the bucket holding the quantile rank,
/// clamped to the observed maximum — a <=2x overestimate by construction,
/// which is plenty for "did this path get slower" questions.
class Histogram {
 public:
  /// 2^40 us ~= 13 days: everything DPFS times fits below the last bound.
  static constexpr int kNumBuckets = 41;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(std::uint64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
  };
  /// Taken with relaxed loads: concurrent Observe() calls may or may not be
  /// included, but the snapshot never tears a single update.
  [[nodiscard]] Snapshot GetSnapshot() const noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Named instrument store. Get*() interns: the first call for a name creates
/// the instrument, later calls return the same reference. Instruments are
/// never removed, so returned references stay valid for the registry's
/// lifetime (forever, for Global()). A name identifies one kind; asking for
/// the same name as a different kind returns a distinct instrument (the
/// three kinds are separate namespaces — don't do that; the catalog in
/// docs/OBSERVABILITY.md keeps names unique).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry. Deliberately leaked so instrument references
  /// cached in function-local statics never dangle during shutdown.
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// One line per instrument, sorted by metric name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> p50=<v> p95=<v> p99=<v> max=<v>
  [[nodiscard]] std::string TextSnapshot() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DPFS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DPFS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DPFS_GUARDED_BY(mu_);
};

/// Global-registry conveniences; cache the result, don't call per event.
inline Counter& GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}
inline Gauge& GetGauge(std::string_view name) {
  return Registry::Global().GetGauge(name);
}
inline Histogram& GetHistogram(std::string_view name) {
  return Registry::Global().GetHistogram(name);
}

/// Observes elapsed wall time in microseconds on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(histogram) {}
  ~ScopedTimer() {
    histogram_.Observe(
        static_cast<std::uint64_t>(timer_.ElapsedSeconds() * 1e6));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  WallTimer timer_;
};

}  // namespace dpfs::metrics
