#include "common/bytes.h"

namespace dpfs {

void BinaryWriter::PatchU32(std::size_t offset, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    buffer_.at(offset + i) = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

Result<std::uint8_t> BinaryReader::ReadU8() {
  return ReadLittleEndian<std::uint8_t>();
}
Result<std::uint16_t> BinaryReader::ReadU16() {
  return ReadLittleEndian<std::uint16_t>();
}
Result<std::uint32_t> BinaryReader::ReadU32() {
  return ReadLittleEndian<std::uint32_t>();
}
Result<std::uint64_t> BinaryReader::ReadU64() {
  return ReadLittleEndian<std::uint64_t>();
}
Result<std::int32_t> BinaryReader::ReadI32() {
  DPFS_ASSIGN_OR_RETURN(std::uint32_t raw, ReadU32());
  return static_cast<std::int32_t>(raw);
}
Result<std::int64_t> BinaryReader::ReadI64() {
  DPFS_ASSIGN_OR_RETURN(std::uint64_t raw, ReadU64());
  return static_cast<std::int64_t>(raw);
}
Result<double> BinaryReader::ReadF64() {
  DPFS_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
Result<bool> BinaryReader::ReadBool() {
  DPFS_ASSIGN_OR_RETURN(std::uint8_t raw, ReadU8());
  if (raw > 1) return ProtocolError("binary reader: bool out of range");
  return raw == 1;
}

Result<ByteSpan> BinaryReader::ReadBytes() {
  DPFS_ASSIGN_OR_RETURN(std::uint32_t size, ReadU32());
  return ReadRaw(size);
}

Result<std::string> BinaryReader::ReadString() {
  DPFS_ASSIGN_OR_RETURN(ByteSpan bytes, ReadBytes());
  return std::string(AsStringView(bytes));
}

Result<ByteSpan> BinaryReader::ReadRaw(std::size_t count) {
  if (remaining() < count) {
    return ProtocolError("binary reader: truncated input");
  }
  ByteSpan view = data_.subspan(pos_, count);
  pos_ += count;
  return view;
}

}  // namespace dpfs
