// CRC-32C (Castagnoli) used to protect WAL records and wire frames.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace dpfs {

/// One-shot CRC-32C of a byte span.
std::uint32_t Crc32c(ByteSpan data) noexcept;

/// Incremental form: crc = Crc32cExtend(crc_so_far, next_chunk).
/// Seed with 0 for a fresh computation.
std::uint32_t Crc32cExtend(std::uint32_t crc, ByteSpan data) noexcept;

}  // namespace dpfs
