// RAII scratch directory used by tests, examples, and server subfile stores.
#pragma once

#include <filesystem>
#include <string>

#include "common/status.h"

namespace dpfs {

/// Creates a unique directory under the system temp root and removes it
/// (recursively) on destruction. Move-only.
class TempDir {
 public:
  /// `prefix` becomes part of the directory name for debuggability.
  static Result<TempDir> Create(std::string_view prefix = "dpfs");

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Convenience: path / name.
  [[nodiscard]] std::filesystem::path Sub(std::string_view name) const {
    return path_ / name;
  }

 private:
  explicit TempDir(std::filesystem::path path) : path_(std::move(path)) {}
  void Remove() noexcept;
  std::filesystem::path path_;
};

}  // namespace dpfs
