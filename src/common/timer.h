// Wall-clock timing for benchmark harnesses.
#pragma once

#include <chrono>

namespace dpfs {

/// Steady-clock stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void Reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double ElapsedMillis() const noexcept {
    return ElapsedSeconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dpfs
