// Clang thread-safety-analysis capability macros.
//
// These expand to Clang's `-Wthread-safety` attributes so lock discipline is
// checked at compile time (the strict build turns the analysis into errors);
// on other compilers they expand to nothing. Annotate data members with
// DPFS_GUARDED_BY(mu_), lock-held preconditions with DPFS_REQUIRES(mu_), and
// use the annotated dpfs::Mutex / dpfs::MutexLock from common/mutex.h —
// std::mutex carries no capability attributes under libstdc++, so the
// analysis cannot see it. See docs/STATIC_ANALYSIS.md for the catalog and
// how to read the diagnostics.
#pragma once

#if defined(__clang__)
#define DPFS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DPFS_THREAD_ANNOTATION(x)  // no-op: analysis is Clang-only
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define DPFS_CAPABILITY(x) DPFS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII guard type: acquires on construction, releases on
/// destruction (early returns are understood).
#define DPFS_SCOPED_CAPABILITY DPFS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define DPFS_GUARDED_BY(x) DPFS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define DPFS_PT_GUARDED_BY(x) DPFS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held on entry (and
/// still held on exit). The Locked-suffix private-method idiom.
#define DPFS_REQUIRES(...) \
  DPFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared-mode precondition: at least reader access to the capability is
/// held on entry (exclusive access satisfies it too). The Shared-suffix
/// private-method idiom for read paths under a SharedMutex.
#define DPFS_REQUIRES_SHARED(...) \
  DPFS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function precondition: the listed capabilities are NOT held on entry
/// (deadlock guard for public methods that take the lock themselves).
#define DPFS_EXCLUDES(...) DPFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires / releases the capability (lock() / unlock() shapes).
#define DPFS_ACQUIRE(...) \
  DPFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DPFS_RELEASE(...) \
  DPFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared-mode acquire / release (lock_shared() / unlock_shared() shapes).
#define DPFS_ACQUIRE_SHARED(...) \
  DPFS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DPFS_RELEASE_SHARED(...) \
  DPFS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Release for scoped guards that may hold the capability in either mode
/// (a ReaderMutexLock destructor releases shared; the analysis accepts the
/// generic form for both).
#define DPFS_RELEASE_GENERIC(...) \
  DPFS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; `b` is the success return value.
#define DPFS_TRY_ACQUIRE(b, ...) \
  DPFS_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define DPFS_RETURN_CAPABILITY(x) DPFS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the analysis
/// cannot see (single-threaded init, external synchronization). Always pair
/// with a comment saying why.
#define DPFS_NO_THREAD_SAFETY_ANALYSIS \
  DPFS_THREAD_ANNOTATION(no_thread_safety_analysis)
