// Annotated mutex primitives for the thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so Clang's -Wthread-safety cannot track them. These zero-cost wrappers
// re-expose the same primitives with the attributes attached:
//
//   Mutex       — std::mutex as a DPFS_CAPABILITY (same layout, same cost)
//   MutexLock   — std::lock_guard as a DPFS_SCOPED_CAPABILITY
//   CondVar     — std::condition_variable bound to Mutex; Wait() documents
//                 (and the analysis checks) that the lock is held
//   SharedMutex — std::shared_mutex; exclusive writers, concurrent readers
//   WriterMutexLock / ReaderMutexLock — RAII guards for SharedMutex
//
// Repo invariant (enforced by tools/dpfs_lint.py): production code under
// src/ uses these instead of raw std::mutex / std::shared_mutex /
// std::lock_guard / std::unique_lock / std::shared_lock /
// std::condition_variable, so every guarded member stays visible to the
// analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace dpfs {

/// std::mutex with capability attributes. Lock through MutexLock; the raw
/// lock()/unlock() surface exists for the rare manual pairing and for
/// CondVar's internals.
class DPFS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DPFS_ACQUIRE() { mu_.lock(); }
  void unlock() DPFS_RELEASE() { mu_.unlock(); }
  bool try_lock() DPFS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a Mutex (std::lock_guard with the scoped attribute; early
/// returns release correctly under the analysis).
class DPFS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DPFS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DPFS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::shared_mutex with capability attributes: one writer or many
/// readers. Members readable under either mode are still declared
/// DPFS_GUARDED_BY(mu_) — the analysis allows reads under a shared hold and
/// writes only under the exclusive hold. Lock through WriterMutexLock /
/// ReaderMutexLock.
class DPFS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DPFS_ACQUIRE() { mu_.lock(); }
  void unlock() DPFS_RELEASE() { mu_.unlock(); }
  void lock_shared() DPFS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DPFS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class DPFS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DPFS_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() DPFS_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class DPFS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DPFS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() DPFS_RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::condition_variable over Mutex. Wait() requires (and keeps) the lock:
/// write waits as explicit `while (!predicate) cv.Wait(mu)` loops — a
/// predicate lambda would be analyzed as a separate unlocked function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  void Wait(Mutex& mu) DPFS_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock unlocked-side bookkeeping so ownership stays with the
    // caller's MutexLock.
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// Wait() with a timeout: returns false if `timeout` elapsed without a
  /// notification (spurious wakeups return true — re-check the predicate
  /// either way, in the same explicit while loop as Wait). Periodic
  /// background work (the io_server metrics dump) uses this as an
  /// interruptible sleep.
  bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      DPFS_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dpfs
