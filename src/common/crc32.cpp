#include "common/crc32.h"

#include <array>

namespace dpfs {
namespace {

// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, ByteSpan data) noexcept {
  crc = ~crc;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

std::uint32_t Crc32c(ByteSpan data) noexcept { return Crc32cExtend(0, data); }

}  // namespace dpfs
