#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <thread>

namespace dpfs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

std::string_view Basename(std::string_view path) noexcept {
  const auto pos = path.rfind('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

bool LogEnabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void EmitLogLine(LogLevel level, std::string_view file, int line,
                 std::string_view message) {
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto micros =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  const std::string_view base = Basename(file);
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "%s %lld.%06lld %.*s:%d] ",
                LevelTag(level), static_cast<long long>(micros / 1000000),
                static_cast<long long>(micros % 1000000),
                static_cast<int>(base.size()), base.data(), line);
  std::string out(prefix);
  out += message;
  out += '\n';
  std::fwrite(out.data(), 1, out.size(), stderr);
}

}  // namespace internal
}  // namespace dpfs
