// Small string helpers shared across DPFS modules (path handling in the
// metadata directory table, shell tokenizing, SQL lexing).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dpfs {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Splits on whitespace runs; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

std::string_view TrimWhitespace(std::string_view input) noexcept;

bool StartsWith(std::string_view s, std::string_view prefix) noexcept;
bool EndsWith(std::string_view s, std::string_view suffix) noexcept;

std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality (SQL keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b) noexcept;

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

Result<std::int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// "12.3 MB", "980 KB", "1.5 GB" — used by shell `df`/`ls -l` and benches.
std::string FormatByteSize(std::uint64_t bytes);

/// Normalizes a DPFS path: collapses "//", resolves "." and "..", ensures a
/// leading "/". Returns an error if ".." escapes the root.
Result<std::string> NormalizePath(std::string_view path);

/// Splits "/a/b/c" into ("/a/b", "c"). Root has parent "/" and name "".
std::pair<std::string, std::string> SplitPath(std::string_view normalized_path);

}  // namespace dpfs
