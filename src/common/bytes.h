// Byte-buffer and binary serialization primitives.
//
// Everything that crosses the DPFS wire protocol or lands in the metadata
// write-ahead log is encoded with BinaryWriter and decoded with BinaryReader.
// Encoding is explicit little-endian with varint-free fixed-width integers,
// so frames are position-independent and trivially seekable.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dpfs {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

/// Views arbitrary contiguous memory as bytes.
inline ByteSpan AsBytes(const void* data, std::size_t size) noexcept {
  return {static_cast<const std::uint8_t*>(data), size};
}
inline ByteSpan AsBytes(std::string_view s) noexcept {
  return AsBytes(s.data(), s.size());
}
inline std::string_view AsStringView(ByteSpan bytes) noexcept {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// Appends fixed-width little-endian values to a growable byte vector.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(Bytes initial) : buffer_(std::move(initial)) {}

  void WriteU8(std::uint8_t v) { buffer_.push_back(v); }
  void WriteU16(std::uint16_t v) { WriteLittleEndian(v); }
  void WriteU32(std::uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(std::uint64_t v) { WriteLittleEndian(v); }
  void WriteI32(std::int32_t v) { WriteLittleEndian(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteLittleEndian(static_cast<std::uint64_t>(v)); }
  void WriteF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void WriteBytes(ByteSpan bytes) {
    WriteU32(static_cast<std::uint32_t>(bytes.size()));
    WriteRaw(bytes);
  }
  void WriteString(std::string_view s) { WriteBytes(AsBytes(s)); }

  /// Raw bytes, no length prefix.
  void WriteRaw(ByteSpan bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const Bytes& buffer() const noexcept { return buffer_; }
  [[nodiscard]] Bytes TakeBuffer() && { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

  /// Overwrites 4 bytes at `offset` (for back-patching frame lengths).
  void PatchU32(std::size_t offset, std::uint32_t v);

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buffer_;
};

/// Reads fixed-width little-endian values off a non-owning byte view.
/// All accessors are checked: reading past the end returns kProtocolError.
class BinaryReader {
 public:
  explicit BinaryReader(ByteSpan data) noexcept : data_(data) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int32_t> ReadI32();
  Result<std::int64_t> ReadI64();
  Result<double> ReadF64();
  Result<bool> ReadBool();

  /// Length-prefixed byte string; returns a view into the underlying buffer.
  Result<ByteSpan> ReadBytes();
  Result<std::string> ReadString();

  /// Raw bytes, exact count.
  Result<ByteSpan> ReadRaw(std::size_t count);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  template <typename T>
  Result<T> ReadLittleEndian() {
    if (remaining() < sizeof(T)) {
      return ProtocolError("binary reader: truncated input");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace dpfs
