// Tiny command-line flag parser used by examples and benchmark binaries.
// Supports --name=value, --name value, and boolean --name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpfs {

class Options {
 public:
  /// Parses argv; unknown flags are kept and queryable, positional arguments
  /// are collected in order. Returns an error only on malformed input
  /// (e.g. "--" followed by nothing).
  static Result<Options> Parse(int argc, const char* const* argv);

  [[nodiscard]] bool Has(const std::string& name) const;
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dpfs
