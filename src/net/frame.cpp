#include "net/frame.h"

#include "common/crc32.h"

namespace dpfs::net {

Status SendFrame(TcpSocket& socket, ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds maximum size");
  }
  BinaryWriter header;
  header.WriteU32(static_cast<std::uint32_t>(payload.size()));
  header.WriteU32(Crc32c(payload));
  DPFS_RETURN_IF_ERROR(socket.SendAll(header.buffer()));
  return socket.SendAll(payload);
}

Status RecvFrame(TcpSocket& socket, Bytes& payload) {
  std::uint8_t header[8];
  DPFS_RETURN_IF_ERROR(socket.RecvExact({header, sizeof(header)}));
  BinaryReader reader(AsBytes(header, sizeof(header)));
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t length, reader.ReadU32());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t crc, reader.ReadU32());
  if (length > kMaxFrameBytes) {
    return ProtocolError("frame length " + std::to_string(length) +
                         " exceeds maximum");
  }
  payload.resize(length);
  if (length > 0) {
    DPFS_RETURN_IF_ERROR(socket.RecvExact({payload.data(), payload.size()}));
  }
  if (Crc32c(payload) != crc) {
    return DataLossError("frame checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace dpfs::net
