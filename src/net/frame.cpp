#include "net/frame.h"

#include "common/crc32.h"

namespace dpfs::net {

Status SendFrame(TcpSocket& socket, ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds maximum size");
  }
  BinaryWriter header;
  header.WriteU32(static_cast<std::uint32_t>(payload.size()));
  header.WriteU32(Crc32c(payload));
  DPFS_RETURN_IF_ERROR(socket.SendAll(header.buffer()));
  return socket.SendAll(payload);
}

Result<Bytes> EncodeFrame(ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds maximum size");
  }
  BinaryWriter frame;
  frame.WriteU32(static_cast<std::uint32_t>(payload.size()));
  frame.WriteU32(Crc32c(payload));
  frame.WriteRaw(payload);
  return std::move(frame).TakeBuffer();
}

void FrameDecoder::Append(ByteSpan data) {
  // Reclaim the consumed prefix before growing: steady-state request
  // streams keep the buffer at roughly one frame.
  if (consumed_ > 0 && (consumed_ == buffer_.size() ||
                        consumed_ >= (64u << 10))) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

Result<bool> FrameDecoder::Next(Bytes& payload) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 8) return false;
  BinaryReader reader(ByteSpan(buffer_).subspan(consumed_, 8));
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t length, reader.ReadU32());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t crc, reader.ReadU32());
  if (length > kMaxFrameBytes) {
    return ProtocolError("frame length " + std::to_string(length) +
                         " exceeds maximum");
  }
  if (available < 8 + static_cast<std::size_t>(length)) return false;
  const ByteSpan body = ByteSpan(buffer_).subspan(consumed_ + 8, length);
  if (Crc32c(body) != crc) {
    return DataLossError("frame checksum mismatch");
  }
  payload.assign(body.begin(), body.end());
  consumed_ += 8 + static_cast<std::size_t>(length);
  return true;
}

Status RecvFrame(TcpSocket& socket, Bytes& payload) {
  std::uint8_t header[8];
  DPFS_RETURN_IF_ERROR(socket.RecvExact({header, sizeof(header)}));
  BinaryReader reader(AsBytes(header, sizeof(header)));
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t length, reader.ReadU32());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t crc, reader.ReadU32());
  if (length > kMaxFrameBytes) {
    return ProtocolError("frame length " + std::to_string(length) +
                         " exceeds maximum");
  }
  payload.resize(length);
  if (length > 0) {
    DPFS_RETURN_IF_ERROR(socket.RecvExact({payload.data(), payload.size()}));
  }
  if (Crc32c(payload) != crc) {
    return DataLossError("frame checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace dpfs::net
