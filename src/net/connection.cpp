#include "net/connection.h"

#include <sys/socket.h>

#include <cerrno>

#include "common/failpoint.h"

namespace dpfs::net {

Result<Endpoint> Endpoint::Parse(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return InvalidArgumentError("endpoint '" + std::string(text) +
                                "' is not host:port");
  }
  Endpoint endpoint;
  endpoint.host = std::string(text.substr(0, colon));
  const std::string port_text(text.substr(colon + 1));
  int port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("endpoint port '" + port_text +
                                  "' is not a number");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return InvalidArgumentError("endpoint port '" + port_text +
                                  "' is out of range");
    }
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

Result<ServerConnection> ServerConnection::Connect(const Endpoint& endpoint) {
  DPFS_ASSIGN_OR_RETURN(TcpSocket socket,
                        TcpSocket::Connect(endpoint.host, endpoint.port));
  return ServerConnection(std::move(socket), endpoint);
}

bool ServerConnection::PeerClosed() const noexcept {
  char byte = 0;
  const ssize_t peeked =
      ::recv(socket_.fd(), &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (peeked == 0) return true;  // orderly FIN
  if (peeked < 0) return errno != EAGAIN && errno != EWOULDBLOCK;
  return false;  // unread bytes pending — the next Call will sort it out
}

Result<Bytes> ServerConnection::Call(MessageType type, ByteSpan body) {
  DPFS_FAILPOINT_RETURN("client.call");
  const Bytes request = EncodeRequest(type, body);
  DPFS_RETURN_IF_ERROR(
      SendFrame(socket_, request)
          .WithContext("send " + std::string(MessageTypeName(type)) + " to " +
                       endpoint_.ToString()));
  Bytes reply_frame;
  const Status received = RecvFrame(socket_, reply_frame);
  if (!received.ok()) {
    // Any reply-path transport failure — clean close, mid-frame close
    // (kProtocolError), or CRC mismatch (kDataLoss) — means the server or
    // the connection died under us. Surface all of them as kUnavailable so
    // the caller's retry policy treats a torn reply like a dead server: the
    // connection is abandoned and the (idempotent) request re-issued.
    const Status context = received.WithContext(
        "recv " + std::string(MessageTypeName(type)) + " reply from " +
        endpoint_.ToString());
    if (received.code() == StatusCode::kProtocolError ||
        received.code() == StatusCode::kDataLoss) {
      return UnavailableError(context.message());
    }
    return context;
  }
  DPFS_ASSIGN_OR_RETURN(const DecodedReply reply, DecodeReply(reply_frame));
  if (!reply.status.ok()) return reply.status;
  return Bytes(reply.body.begin(), reply.body.end());
}

Result<Bytes> ServerConnection::Read(
    const std::string& subfile, const std::vector<ReadFragment>& fragments) {
  ReadRequest request;
  request.subfile = subfile;
  request.fragments = fragments;
  BinaryWriter body;
  request.Encode(body);
  return Call(MessageType::kRead, body.buffer());
}

Status ServerConnection::Write(const std::string& subfile,
                               std::vector<WriteFragment> fragments,
                               bool sync) {
  WriteRequest request;
  request.subfile = subfile;
  request.sync = sync;
  request.fragments = std::move(fragments);
  BinaryWriter body;
  request.Encode(body);
  return Call(MessageType::kWrite, body.buffer()).status();
}

Result<Bytes> ServerConnection::ListRead(
    const std::string& subfile, const std::vector<ReadFragment>& extents) {
  ListReadRequest request;
  request.subfile = subfile;
  request.extents = extents;
  BinaryWriter body;
  request.Encode(body);
  return Call(MessageType::kListRead, body.buffer());
}

Status ServerConnection::ListWrite(const std::string& subfile,
                                   const std::vector<ReadFragment>& extents,
                                   Bytes data, bool sync) {
  ListWriteRequest request;
  request.subfile = subfile;
  request.sync = sync;
  request.extents = extents;
  request.data = std::move(data);
  BinaryWriter body;
  request.Encode(body);
  return Call(MessageType::kListWrite, body.buffer()).status();
}

Result<StatReply> ServerConnection::Stat(const std::string& subfile) {
  BinaryWriter body;
  body.WriteString(subfile);
  DPFS_ASSIGN_OR_RETURN(const Bytes reply, Call(MessageType::kStat,
                                                body.buffer()));
  BinaryReader reader(reply);
  StatReply stat;
  DPFS_ASSIGN_OR_RETURN(stat.exists, reader.ReadBool());
  DPFS_ASSIGN_OR_RETURN(stat.size, reader.ReadU64());
  return stat;
}

Result<StatsReply> ServerConnection::Stats() {
  DPFS_ASSIGN_OR_RETURN(const Bytes reply, Call(MessageType::kStats, {}));
  BinaryReader reader(reply);
  return StatsReply::Decode(reader);
}

Result<std::string> ServerConnection::Metrics() {
  DPFS_ASSIGN_OR_RETURN(const Bytes reply, Call(MessageType::kMetrics, {}));
  BinaryReader reader(reply);
  return reader.ReadString();
}

Status ServerConnection::Delete(const std::string& subfile) {
  BinaryWriter body;
  body.WriteString(subfile);
  return Call(MessageType::kDelete, body.buffer()).status();
}

Status ServerConnection::Truncate(const std::string& subfile,
                                  std::uint64_t size) {
  BinaryWriter body;
  body.WriteString(subfile);
  body.WriteU64(size);
  return Call(MessageType::kTruncate, body.buffer()).status();
}

Status ServerConnection::Rename(const std::string& from,
                                const std::string& to) {
  BinaryWriter body;
  body.WriteString(from);
  body.WriteString(to);
  return Call(MessageType::kRename, body.buffer()).status();
}

Result<std::vector<SubfileInfo>> ServerConnection::List() {
  DPFS_ASSIGN_OR_RETURN(const Bytes reply, Call(MessageType::kList, {}));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  std::vector<SubfileInfo> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SubfileInfo info;
    DPFS_ASSIGN_OR_RETURN(info.name, reader.ReadString());
    DPFS_ASSIGN_OR_RETURN(info.size, reader.ReadU64());
    out.push_back(std::move(info));
  }
  return out;
}

Status ServerConnection::Ping() {
  return Call(MessageType::kPing, {}).status();
}

Status ServerConnection::Shutdown() {
  return Call(MessageType::kShutdown, {}).status();
}

}  // namespace dpfs::net
