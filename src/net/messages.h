// The DPFS client↔server wire protocol.
//
// Every message travels as one frame (frame.h). A request payload is
// [u8 MessageType][type-specific body]; a reply payload is
// [u8 StatusCode][string message][type-specific body].
//
// The server operates on *subfiles* — ordinary files in its local file
// system (§2: "the server ... uses the local file system API to actually
// perform I/O"). Brick placement and offsets are entirely client-side
// knowledge derived from metadata; the server just reads and writes
// (offset, length) fragments of named subfiles. A combined request (§4.2)
// is simply a fragment list with more than one entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dpfs::net {

enum class MessageType : std::uint8_t {
  kPing = 1,
  kRead = 2,
  kWrite = 3,
  kStat = 4,
  kDelete = 5,
  kTruncate = 6,
  kShutdown = 7,
  kStats = 8,    // server-wide statistics (fixed counter struct)
  kRename = 9,   // rename a subfile (body: old name string, new name string)
  kList = 10,    // list all subfiles (fsck support)
  kMetrics = 11, // full metrics text snapshot (docs/OBSERVABILITY.md)

  // Metadata-service opcodes (extension: dpfs-metad, docs/WIRE_PROTOCOL.md
  // "Metadata protocol"). Served only by the metadata server; an I/O server
  // answers them with kProtocolError. Body schemas are owned by the client
  // layer (client/meta_wire.h) because they are expressed in terms of
  // FileMeta/FileRecord; net stays ignorant of them.
  kMetaRegisterServer = 12,
  kMetaUnregisterServer = 13,
  kMetaListServers = 14,
  kMetaLookupServer = 15,
  kMetaCreateFile = 16,
  kMetaLookupFile = 17,
  kMetaUpdateSize = 18,
  kMetaSetPermission = 19,
  kMetaSetOwner = 20,
  kMetaDeleteFile = 21,
  kMetaFileExists = 22,
  kMetaRenameFile = 23,
  kMetaLogAccess = 24,
  kMetaSummarizeAccess = 25,
  kMetaClearAccessLog = 26,
  kMetaMakeDirectory = 27,
  kMetaRemoveDirectory = 28,
  kMetaDirectoryExists = 29,
  kMetaListDirectory = 30,

  // List-I/O opcodes (extension, docs/NONCONTIGUOUS_IO.md): one request
  // names many (offset, length) extents of a subfile — a noncontiguous
  // access in a single round trip, with one batched payload for writes.
  // Served by I/O servers; the metadata server refuses them.
  kListRead = 31,
  kListWrite = 32,
};

/// Highest valid MessageType value; DecodeRequest rejects anything above.
inline constexpr std::uint8_t kMaxMessageType =
    static_cast<std::uint8_t>(MessageType::kListWrite);

/// Last opcode of the contiguous kMeta* block. The metadata server serves
/// [kMetaRegisterServer, kMaxMetaMessageType] (plus ping/shutdown/metrics)
/// and refuses everything else as an I/O opcode.
inline constexpr std::uint8_t kMaxMetaMessageType =
    static_cast<std::uint8_t>(MessageType::kMetaListDirectory);

/// One entry of a kList reply.
struct SubfileInfo {
  std::string name;  // normalized ("/home/x/file")
  std::uint64_t size = 0;

  friend bool operator==(const SubfileInfo&, const SubfileInfo&) = default;
};

std::string_view MessageTypeName(MessageType type) noexcept;

/// One contiguous piece of a subfile.
struct ReadFragment {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const ReadFragment&, const ReadFragment&) = default;
};

struct ReadRequest {
  std::string subfile;
  std::vector<ReadFragment> fragments;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  void Encode(BinaryWriter& writer) const;
  static Result<ReadRequest> Decode(BinaryReader& reader);
};

struct WriteFragment {
  std::uint64_t offset = 0;
  Bytes data;

  friend bool operator==(const WriteFragment&, const WriteFragment&) = default;
};

struct WriteRequest {
  std::string subfile;
  bool sync = false;  // fsync after writing
  std::vector<WriteFragment> fragments;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  void Encode(BinaryWriter& writer) const;
  static Result<WriteRequest> Decode(BinaryReader& reader);
};

/// Noncontiguous list read: fetch every extent of `subfile` in order; the
/// reply body is the concatenated extent bytes (past-EOF bytes read back as
/// zeroes, like kRead). Decode enforces the docs/WIRE_PROTOCOL.md rejection
/// rules: at least one extent, no zero-length extents, offsets strictly
/// ascending and non-overlapping.
struct ListReadRequest {
  std::string subfile;
  std::vector<ReadFragment> extents;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  void Encode(BinaryWriter& writer) const;
  static Result<ListReadRequest> Decode(BinaryReader& reader);
};

/// Noncontiguous list write: scatter one batched payload into the extents of
/// `subfile` in order. Same extent rules as ListReadRequest; additionally the
/// payload size must equal the sum of the extent lengths (count-mismatch
/// rejection, like meta_create_file's bricklist count).
struct ListWriteRequest {
  std::string subfile;
  bool sync = false;  // fsync after writing
  std::vector<ReadFragment> extents;
  Bytes data;  // batched payload, scattered in extent order

  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  void Encode(BinaryWriter& writer) const;
  static Result<ListWriteRequest> Decode(BinaryReader& reader);
};

struct StatReply {
  bool exists = false;
  std::uint64_t size = 0;
};

/// Server-wide counters returned by kStats.
struct StatsReply {
  std::uint64_t requests = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t sessions_accepted = 0;
  std::uint64_t errors = 0;
  std::uint64_t fd_cache_hits = 0;
  std::uint64_t fd_cache_misses = 0;
  std::uint64_t stored_bytes = 0;

  void Encode(BinaryWriter& writer) const;
  static Result<StatsReply> Decode(BinaryReader& reader);
};

/// Envelope helpers.
Bytes EncodeRequest(MessageType type, ByteSpan body);
Bytes EncodeReply(const Status& status, ByteSpan body);

struct DecodedRequest {
  MessageType type;
  ByteSpan body;  // view into the frame buffer
};
Result<DecodedRequest> DecodeRequest(ByteSpan payload);

struct DecodedReply {
  Status status;
  ByteSpan body;  // view into the frame buffer
};
Result<DecodedReply> DecodeReply(ByteSpan payload);

}  // namespace dpfs::net
