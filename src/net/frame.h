// Length-prefixed, checksummed message framing over a TcpSocket.
//
// Frame layout: [u32 payload_len][u32 crc32c(payload)][payload bytes].
// The CRC catches corruption that TCP's 16-bit checksum can miss on the
// long-haul heterogeneous links DPFS targets.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "net/socket.h"

namespace dpfs::net {

/// Hard cap on a single frame; combined brick requests stay well below.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;  // 1 GiB

Status SendFrame(TcpSocket& socket, ByteSpan payload);

/// Receives one frame into `payload`. kUnavailable on clean peer close
/// before any byte of a frame, kDataLoss on checksum mismatch.
Status RecvFrame(TcpSocket& socket, Bytes& payload);

}  // namespace dpfs::net
