// Length-prefixed, checksummed message framing over a TcpSocket.
//
// Frame layout: [u32 payload_len][u32 crc32c(payload)][payload bytes].
// The CRC catches corruption that TCP's 16-bit checksum can miss on the
// long-haul heterogeneous links DPFS targets.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "net/socket.h"

namespace dpfs::net {

/// Hard cap on a single frame; combined brick requests stay well below.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;  // 1 GiB

Status SendFrame(TcpSocket& socket, ByteSpan payload);

/// Receives one frame into `payload`. kUnavailable on clean peer close
/// before any byte of a frame, kDataLoss on checksum mismatch.
Status RecvFrame(TcpSocket& socket, Bytes& payload);

/// Encodes one frame (header + payload) into a single contiguous buffer.
/// The event-loop server queues these on per-connection write buffers so a
/// partial send can resume mid-frame (docs/ASYNC_SERVER.md); SendFrame's
/// two-part send is equivalent on the wire.
Result<Bytes> EncodeFrame(ByteSpan payload);

/// Incremental frame decoder for nonblocking sockets: feed whatever bytes
/// arrive with Append(), pull complete payloads with Next(). Byte-at-a-time
/// delivery, frames split at any boundary, and several frames per Append all
/// decode identically to RecvFrame (tests/net/socket_frame_test.cpp pins
/// this; tests/server/protocol_fuzz_test.cpp fragments live traffic).
class FrameDecoder {
 public:
  /// Buffers `data` for decoding.
  void Append(ByteSpan data);

  /// Extracts the next complete frame into `payload`. Ok(true): one frame
  /// produced (call again — Append may have completed several). Ok(false):
  /// need more bytes. kProtocolError on an over-cap length, kDataLoss on a
  /// checksum mismatch; both poison the stream (no resynchronization), so
  /// the caller must drop the connection.
  Result<bool> Next(Bytes& payload);

  /// True when a frame is partially buffered — a peer close now is a
  /// mid-message truncation, not a clean boundary disconnect.
  [[nodiscard]] bool mid_frame() const noexcept {
    return buffer_.size() > consumed_;
  }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

}  // namespace dpfs::net
