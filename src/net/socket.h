// RAII POSIX TCP sockets. DPFS follows the paper's transport choice —
// plain TCP/IP sockets (§2, §10) — with blocking I/O and one handler thread
// per accepted connection on the server side.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace dpfs::net {

/// Owns a connected socket fd. Move-only.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) noexcept : fd_(fd) {}
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;
  ~TcpSocket();

  /// Connects to host:port (IPv4 dotted or "localhost").
  static Result<TcpSocket> Connect(const std::string& host,
                                   std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes the full span, looping over partial sends.
  Status SendAll(ByteSpan data);

  /// Reads exactly data.size() bytes, looping over partial receives.
  /// Returns kUnavailable on clean peer close at a message boundary
  /// (0 bytes read so far) and kProtocolError on mid-message close.
  Status RecvExact(MutableByteSpan data);

  /// Outcome of one nonblocking receive (RecvSome).
  struct SomeIo {
    std::size_t bytes = 0;  // bytes actually transferred this call
    bool closed = false;    // the peer closed the stream (recv returned 0)
  };

  /// One nonblocking recv: transfers whatever the kernel has, up to
  /// data.size(). {0, false} means the socket would block (no data yet);
  /// {0, true} means the peer closed. Only meaningful after
  /// SetNonBlocking(true) — on a blocking socket this degenerates to a
  /// single blocking recv. Failpoint site "net.recv_some"
  /// (docs/FAULT_INJECTION.md).
  Result<SomeIo> RecvSome(MutableByteSpan data);

  /// One nonblocking send: writes as much as the socket buffer accepts and
  /// returns the count; 0 means the socket would block. Failpoint site
  /// "net.send_some" (docs/FAULT_INJECTION.md).
  Result<std::size_t> SendSome(ByteSpan data);

  /// Toggles O_NONBLOCK (the event-loop server runs every accepted
  /// connection nonblocking; see docs/ASYNC_SERVER.md).
  Status SetNonBlocking(bool enabled);

  /// Disables Nagle; our request/response protocol is latency-sensitive.
  Status SetNoDelay();

  void Close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 on an ephemeral (or given) port.
///
/// Thread model: one thread blocks in Accept(); Close() may be called from
/// any other thread to unblock it (the server's shutdown path), so the fd is
/// an atomic — Close() atomically claims it and the claimant alone shuts it
/// down and closes it.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// port 0 = ephemeral; the bound port is queryable afterwards.
  static Result<TcpListener> Bind(std::uint16_t port);

  /// Blocks until a connection arrives. Returns kUnavailable if the
  /// listener has been closed (the server's shutdown path).
  Result<TcpSocket> Accept();

  /// Nonblocking accept (listener must be in nonblocking mode): an empty
  /// optional means no connection is pending right now. The event-loop
  /// server polls the listener fd and drains pending connections with this.
  Result<std::optional<TcpSocket>> AcceptNonBlocking();

  /// Puts the listening fd in O_NONBLOCK mode (event-loop engine).
  Status SetNonBlocking();

  /// The raw listening fd for readiness polling (epoll); -1 once closed.
  [[nodiscard]] int fd() const noexcept {
    return fd_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept {
    return fd_.load(std::memory_order_relaxed) >= 0;
  }

  /// Unblocks Accept() from another thread. Idempotent and race-free: the
  /// fd is claimed with an atomic exchange, so concurrent Close() calls
  /// (server Stop racing a Shutdown request) close it exactly once.
  void Close() noexcept;

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace dpfs::net
