#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace dpfs::net {

namespace {

/// Raw best-effort send of exactly `data` (the failpoints' partial-transfer
/// helper; plain SendAll must not be reentered while shaping a transfer).
void SendBestEffort(int fd, ByteSpan data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpSocket::~TcpSocket() { Close(); }

void TcpSocket::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host,
                                     std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoErrnoError("socket", host);
  TcpSocket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return UnavailableError("connect " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(errno));
  }
  DPFS_RETURN_IF_ERROR(sock.SetNoDelay());
  return sock;
}

Status TcpSocket::SetNoDelay() {
  const int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return IoErrnoError("setsockopt TCP_NODELAY", std::to_string(fd_));
  }
  return Status::Ok();
}

Status TcpSocket::SendAll(ByteSpan data) {
  if (auto fp = failpoint::Check("net.send_all")) {
    switch (fp->action) {
      case failpoint::Action::kReturnError:
        return fp->status;
      case failpoint::Action::kShortIo:
      case failpoint::Action::kDisconnect: {
        // Deliver only the first `arg` bytes, then sever the connection —
        // the peer observes a frame truncated mid-stream.
        SendBestEffort(fd_, data.first(std::min<std::size_t>(
                                 static_cast<std::size_t>(fp->arg),
                                 data.size())));
        Close();
        return UnavailableError("send: connection reset (" +
                                fp->status.message() + ")");
      }
      default:
        break;
    }
  }
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status TcpSocket::RecvExact(MutableByteSpan data) {
  if (auto fp = failpoint::Check("net.recv_exact")) {
    switch (fp->action) {
      case failpoint::Action::kReturnError:
        return fp->status;
      case failpoint::Action::kShortIo:
      case failpoint::Action::kDisconnect:
        // Behave as if the peer closed mid-message after `arg` bytes. The
        // unread bytes stay queued, but the connection is severed so no one
        // resynchronizes on them.
        Close();
        if (fp->arg == 0 && data.size() > 0) {
          return UnavailableError("peer closed connection (" +
                                  fp->status.message() + ")");
        }
        return ProtocolError("peer closed connection mid-message (" +
                             fp->status.message() + ")");
      default:
        break;
    }
  }
  std::size_t received = 0;
  while (received < data.size()) {
    const ssize_t n =
        ::recv(fd_, data.data() + received, data.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (received == 0) {
        return UnavailableError("peer closed connection");
      }
      return ProtocolError("peer closed connection mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status TcpSocket::SetNonBlocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return IoErrnoError("fcntl F_GETFL", std::to_string(fd_));
  const int updated = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, updated) != 0) {
    return IoErrnoError("fcntl F_SETFL", std::to_string(fd_));
  }
  return Status::Ok();
}

Result<TcpSocket::SomeIo> TcpSocket::RecvSome(MutableByteSpan data) {
  std::size_t limit = data.size();
  if (auto fp = failpoint::Check("net.recv_some")) {
    switch (fp->action) {
      case failpoint::Action::kReturnError:
        return fp->status;
      case failpoint::Action::kShortIo:
        // Deliver at most `arg` bytes this call; arg=0 is a spurious
        // would-block wakeup. Either way the caller must cope with less
        // data than the kernel actually has queued.
        if (fp->arg == 0) return SomeIo{0, false};
        limit = std::min<std::size_t>(limit,
                                      static_cast<std::size_t>(fp->arg));
        break;
      case failpoint::Action::kDisconnect:
        Close();
        return UnavailableError("recv: connection reset (" +
                                fp->status.message() + ")");
      default:
        break;
    }
  }
  for (;;) {
    // dpfs:blocking-ok(event-engine fds are O_NONBLOCK: recv returns
    // EAGAIN instead of parking the loop)
    const ssize_t n = ::recv(fd_, data.data(), limit, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return SomeIo{0, false};
      return UnavailableError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return SomeIo{0, true};
    return SomeIo{static_cast<std::size_t>(n), false};
  }
}

Result<std::size_t> TcpSocket::SendSome(ByteSpan data) {
  std::size_t limit = data.size();
  if (auto fp = failpoint::Check("net.send_some")) {
    switch (fp->action) {
      case failpoint::Action::kReturnError:
        return fp->status;
      case failpoint::Action::kShortIo:
        // Accept at most `arg` bytes this call; arg=0 reports a full socket
        // buffer (would-block) without transferring anything.
        if (fp->arg == 0) return std::size_t{0};
        limit = std::min<std::size_t>(limit,
                                      static_cast<std::size_t>(fp->arg));
        break;
      case failpoint::Action::kDisconnect:
        SendBestEffort(fd_, data.first(std::min<std::size_t>(
                                 static_cast<std::size_t>(fp->arg),
                                 data.size())));
        Close();
        return UnavailableError("send: connection reset (" +
                                fp->status.message() + ")");
      default:
        break;
    }
  }
  for (;;) {
    const ssize_t n = ::send(fd_, data.data(), limit, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
      return UnavailableError(std::string("send: ") + std::strerror(errno));
    }
    return static_cast<std::size_t>(n);
  }
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
    port_ = other.port_;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() noexcept {
  // Claim the fd atomically so a Close() racing Accept()'s reader (or a
  // second Close()) cannot double-close or observe a torn value.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<TcpListener> TcpListener::Bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoErrnoError("socket", "listener");
  TcpListener listener;
  listener.fd_ = fd;

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return IoErrnoError("bind", "127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) {
    return IoErrnoError("listen", std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return IoErrnoError("getsockname", std::to_string(fd));
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Status TcpListener::SetNonBlocking() {
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) return UnavailableError("listener closed");
  const int flags = ::fcntl(listen_fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return IoErrnoError("fcntl O_NONBLOCK", "listener");
  }
  return Status::Ok();
}

Result<std::optional<TcpSocket>> TcpListener::AcceptNonBlocking() {
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) {
    return UnavailableError("accept: listener closed");
  }
  for (;;) {
    // dpfs:blocking-ok(the event engine sets the listener O_NONBLOCK
    // before binding it to the loop: accept returns EAGAIN, never parks)
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return std::optional<TcpSocket>{};
      }
      return UnavailableError(std::string("accept: ") + std::strerror(errno));
    }
    TcpSocket sock(fd);
    DPFS_RETURN_IF_ERROR(sock.SetNoDelay());
    return std::optional<TcpSocket>(std::move(sock));
  }
}

Result<TcpSocket> TcpListener::Accept() {
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) {
    return UnavailableError("accept: listener closed");
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR) return Accept();
    return UnavailableError(std::string("accept: ") + std::strerror(errno));
  }
  TcpSocket sock(fd);
  DPFS_RETURN_IF_ERROR(sock.SetNoDelay());
  return sock;
}

}  // namespace dpfs::net
