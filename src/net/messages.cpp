#include "net/messages.h"

namespace dpfs::net {

std::string_view MessageTypeName(MessageType type) noexcept {
  switch (type) {
    case MessageType::kPing: return "ping";
    case MessageType::kRead: return "read";
    case MessageType::kWrite: return "write";
    case MessageType::kStat: return "stat";
    case MessageType::kDelete: return "delete";
    case MessageType::kTruncate: return "truncate";
    case MessageType::kShutdown: return "shutdown";
    case MessageType::kStats: return "stats";
    case MessageType::kRename: return "rename";
    case MessageType::kList: return "list";
    case MessageType::kMetrics: return "metrics";
    case MessageType::kMetaRegisterServer: return "meta_register_server";
    case MessageType::kMetaUnregisterServer: return "meta_unregister_server";
    case MessageType::kMetaListServers: return "meta_list_servers";
    case MessageType::kMetaLookupServer: return "meta_lookup_server";
    case MessageType::kMetaCreateFile: return "meta_create_file";
    case MessageType::kMetaLookupFile: return "meta_lookup_file";
    case MessageType::kMetaUpdateSize: return "meta_update_size";
    case MessageType::kMetaSetPermission: return "meta_set_permission";
    case MessageType::kMetaSetOwner: return "meta_set_owner";
    case MessageType::kMetaDeleteFile: return "meta_delete_file";
    case MessageType::kMetaFileExists: return "meta_file_exists";
    case MessageType::kMetaRenameFile: return "meta_rename_file";
    case MessageType::kMetaLogAccess: return "meta_log_access";
    case MessageType::kMetaSummarizeAccess: return "meta_summarize_access";
    case MessageType::kMetaClearAccessLog: return "meta_clear_access_log";
    case MessageType::kMetaMakeDirectory: return "meta_make_directory";
    case MessageType::kMetaRemoveDirectory: return "meta_remove_directory";
    case MessageType::kMetaDirectoryExists: return "meta_directory_exists";
    case MessageType::kMetaListDirectory: return "meta_list_directory";
    case MessageType::kListRead: return "list_read";
    case MessageType::kListWrite: return "list_write";
  }
  return "unknown";
}

void StatsReply::Encode(BinaryWriter& writer) const {
  writer.WriteU64(requests);
  writer.WriteU64(bytes_read);
  writer.WriteU64(bytes_written);
  writer.WriteU64(sessions_accepted);
  writer.WriteU64(errors);
  writer.WriteU64(fd_cache_hits);
  writer.WriteU64(fd_cache_misses);
  writer.WriteU64(stored_bytes);
}

Result<StatsReply> StatsReply::Decode(BinaryReader& reader) {
  StatsReply stats;
  DPFS_ASSIGN_OR_RETURN(stats.requests, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.bytes_read, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.bytes_written, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.sessions_accepted, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.errors, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.fd_cache_hits, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.fd_cache_misses, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(stats.stored_bytes, reader.ReadU64());
  return stats;
}

std::uint64_t ReadRequest::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ReadFragment& fragment : fragments) total += fragment.length;
  return total;
}

void ReadRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(subfile);
  writer.WriteU32(static_cast<std::uint32_t>(fragments.size()));
  for (const ReadFragment& fragment : fragments) {
    writer.WriteU64(fragment.offset);
    writer.WriteU64(fragment.length);
  }
}

Result<ReadRequest> ReadRequest::Decode(BinaryReader& reader) {
  ReadRequest request;
  DPFS_ASSIGN_OR_RETURN(request.subfile, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  request.fragments.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ReadFragment fragment;
    DPFS_ASSIGN_OR_RETURN(fragment.offset, reader.ReadU64());
    DPFS_ASSIGN_OR_RETURN(fragment.length, reader.ReadU64());
    request.fragments.push_back(fragment);
  }
  return request;
}

std::uint64_t WriteRequest::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const WriteFragment& fragment : fragments) total += fragment.data.size();
  return total;
}

void WriteRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(subfile);
  writer.WriteBool(sync);
  writer.WriteU32(static_cast<std::uint32_t>(fragments.size()));
  for (const WriteFragment& fragment : fragments) {
    writer.WriteU64(fragment.offset);
    writer.WriteBytes(fragment.data);
  }
}

Result<WriteRequest> WriteRequest::Decode(BinaryReader& reader) {
  WriteRequest request;
  DPFS_ASSIGN_OR_RETURN(request.subfile, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.sync, reader.ReadBool());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  request.fragments.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WriteFragment fragment;
    DPFS_ASSIGN_OR_RETURN(fragment.offset, reader.ReadU64());
    DPFS_ASSIGN_OR_RETURN(const ByteSpan data, reader.ReadBytes());
    fragment.data.assign(data.begin(), data.end());
    request.fragments.push_back(std::move(fragment));
  }
  return request;
}

namespace {

void EncodeListExtents(BinaryWriter& writer,
                       const std::vector<ReadFragment>& extents) {
  writer.WriteU32(static_cast<std::uint32_t>(extents.size()));
  for (const ReadFragment& extent : extents) {
    writer.WriteU64(extent.offset);
    writer.WriteU64(extent.length);
  }
}

/// Shared decode + rejection rules for both list opcodes
/// (docs/WIRE_PROTOCOL.md "List I/O"): at least one extent, every extent
/// non-empty and non-overflowing, offsets strictly ascending with no
/// overlap. The count is checked against the remaining body before any
/// allocation, so a truncated or lying header cannot reserve gigabytes.
Result<std::vector<ReadFragment>> DecodeListExtents(BinaryReader& reader) {
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  if (count == 0) {
    return ProtocolError("list request carries no extents");
  }
  if (count > reader.remaining() / 16) {
    return ProtocolError("list extent count " + std::to_string(count) +
                         " exceeds the request body");
  }
  std::vector<ReadFragment> extents;
  extents.reserve(count);
  std::uint64_t prev_end = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ReadFragment extent;
    DPFS_ASSIGN_OR_RETURN(extent.offset, reader.ReadU64());
    DPFS_ASSIGN_OR_RETURN(extent.length, reader.ReadU64());
    if (extent.length == 0) {
      return ProtocolError("list extent has zero length");
    }
    if (extent.length > ~std::uint64_t{0} - extent.offset) {
      return ProtocolError("list extent overflows the subfile offset space");
    }
    if (i > 0 && extent.offset < prev_end) {
      return ProtocolError(
          "list extents must be ascending and non-overlapping");
    }
    prev_end = extent.offset + extent.length;
    extents.push_back(extent);
  }
  return extents;
}

}  // namespace

std::uint64_t ListReadRequest::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ReadFragment& extent : extents) total += extent.length;
  return total;
}

void ListReadRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(subfile);
  EncodeListExtents(writer, extents);
}

Result<ListReadRequest> ListReadRequest::Decode(BinaryReader& reader) {
  ListReadRequest request;
  DPFS_ASSIGN_OR_RETURN(request.subfile, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.extents, DecodeListExtents(reader));
  return request;
}

std::uint64_t ListWriteRequest::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ReadFragment& extent : extents) total += extent.length;
  return total;
}

void ListWriteRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(subfile);
  writer.WriteBool(sync);
  EncodeListExtents(writer, extents);
  writer.WriteBytes(data);
}

Result<ListWriteRequest> ListWriteRequest::Decode(BinaryReader& reader) {
  ListWriteRequest request;
  DPFS_ASSIGN_OR_RETURN(request.subfile, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.sync, reader.ReadBool());
  DPFS_ASSIGN_OR_RETURN(request.extents, DecodeListExtents(reader));
  DPFS_ASSIGN_OR_RETURN(const ByteSpan payload, reader.ReadBytes());
  const std::uint64_t expected = request.total_bytes();
  if (payload.size() != expected) {
    return ProtocolError("list write payload carries " +
                         std::to_string(payload.size()) + " bytes for " +
                         std::to_string(expected) + " bytes of extents");
  }
  request.data.assign(payload.begin(), payload.end());
  return request;
}

Bytes EncodeRequest(MessageType type, ByteSpan body) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(type));
  writer.WriteRaw(body);
  return std::move(writer).TakeBuffer();
}

Bytes EncodeReply(const Status& status, ByteSpan body) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(status.code()));
  writer.WriteString(status.message());
  writer.WriteRaw(body);
  return std::move(writer).TakeBuffer();
}

Result<DecodedRequest> DecodeRequest(ByteSpan payload) {
  BinaryReader reader(payload);
  DPFS_ASSIGN_OR_RETURN(const std::uint8_t type, reader.ReadU8());
  if (type < 1 || type > kMaxMessageType) {
    return ProtocolError("bad message type " + std::to_string(type));
  }
  return DecodedRequest{static_cast<MessageType>(type),
                        payload.subspan(reader.position())};
}

Result<DecodedReply> DecodeReply(ByteSpan payload) {
  BinaryReader reader(payload);
  DPFS_ASSIGN_OR_RETURN(const std::uint8_t code, reader.ReadU8());
  DPFS_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  return DecodedReply{Status(static_cast<StatusCode>(code), std::move(message)),
                      payload.subspan(reader.position())};
}

}  // namespace dpfs::net
