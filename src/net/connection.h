// Client-side connection to one DPFS I/O server, with typed RPC wrappers
// around the wire protocol. One connection per client thread; instances are
// not thread-safe (DPFS clients open a connection per server, per thread).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/messages.h"
#include "net/socket.h"

namespace dpfs::net {

/// Where a DPFS server listens.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
  /// Parses "host:port" (the inverse of ToString); used by the tools'
  /// --metad flag.
  static Result<Endpoint> Parse(std::string_view text);
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

class ServerConnection {
 public:
  static Result<ServerConnection> Connect(const Endpoint& endpoint);

  ServerConnection(ServerConnection&&) noexcept = default;
  ServerConnection& operator=(ServerConnection&&) noexcept = default;

  /// Reads the fragments of `subfile`; returns their bytes concatenated in
  /// request order. Fragments past EOF read as zeroes (unwritten brick
  /// slots are holes in the sparse subfile).
  Result<Bytes> Read(const std::string& subfile,
                     const std::vector<ReadFragment>& fragments);

  /// Writes all fragments; `sync` forces fsync before the reply.
  Status Write(const std::string& subfile,
               std::vector<WriteFragment> fragments, bool sync = false);

  /// List read (docs/NONCONTIGUOUS_IO.md): fetches the extents of `subfile`
  /// in one round trip; returns their bytes concatenated in extent order.
  /// Extents must obey the wire rules (non-empty, strictly ascending,
  /// non-overlapping) or the server rejects the request at decode time.
  Result<Bytes> ListRead(const std::string& subfile,
                         const std::vector<ReadFragment>& extents);

  /// List write: scatters one batched payload (its size must equal the sum
  /// of the extent lengths) into the extents of `subfile` in order.
  Status ListWrite(const std::string& subfile,
                   const std::vector<ReadFragment>& extents, Bytes data,
                   bool sync = false);

  Result<StatReply> Stat(const std::string& subfile);
  /// Server-wide counters (ops telemetry; shell `df`).
  Result<StatsReply> Stats();
  /// The server process's full metrics text snapshot (docs/OBSERVABILITY.md).
  Result<std::string> Metrics();
  Status Delete(const std::string& subfile);
  Status Truncate(const std::string& subfile, std::uint64_t size);
  Status Rename(const std::string& from, const std::string& to);
  /// Every subfile the server stores (fsck's ground truth).
  Result<std::vector<SubfileInfo>> List();
  Status Ping();
  /// Asks the server process to stop accepting and drain (used by tests and
  /// the in-process cluster bootstrap).
  Status Shutdown();

  [[nodiscard]] const Endpoint& endpoint() const noexcept { return endpoint_; }

  /// True if the peer has already closed or reset this connection (a
  /// non-blocking peek sees EOF or a hard error). Callers that hold a
  /// connection across server restarts probe before reuse so the first
  /// request after a restart redials instead of failing on a dead socket.
  /// Best-effort: false only means no close had arrived at probe time.
  [[nodiscard]] bool PeerClosed() const noexcept;

  /// Sends one request frame and receives the reply; returns the reply body
  /// after unwrapping the status envelope. The typed wrappers above cover
  /// the I/O opcodes; the remote metadata manager drives the kMeta* opcodes
  /// through this directly (its body codecs live in client/meta_wire.h,
  /// above net in the build graph).
  Result<Bytes> Call(MessageType type, ByteSpan body);

 private:
  ServerConnection(TcpSocket socket, Endpoint endpoint)
      : socket_(std::move(socket)), endpoint_(std::move(endpoint)) {}

  TcpSocket socket_;
  Endpoint endpoint_;
};

}  // namespace dpfs::net
